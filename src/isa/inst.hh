/**
 * @file
 * The dynamic instruction record consumed by the trace-driven
 * simulator.
 *
 * A trace instruction carries exactly what Turandot-style simulation
 * needs: the static PC (for I-cache, branch predictor, and BTB
 * indexing), the op class (for functional unit routing and latency),
 * SSA register dependencies (who produced my inputs), the effective
 * memory address for loads/stores, and the branch outcome.
 */

#ifndef BIOARCH_ISA_INST_HH
#define BIOARCH_ISA_INST_HH

#include <cstdint>

#include "opclass.hh"

namespace bioarch::isa
{

/**
 * SSA virtual register id. Each dynamic instruction that produces a
 * value gets a fresh id, so there are no WAW/WAR hazards in the
 * trace (the simulator models physical-register pressure through
 * its in-flight window instead). Id 0 means "no register".
 */
using RegId = std::uint32_t;

/** Addresses are 32-bit: the traced kernels' working sets are far
 * below 4 GB and halving the record size matters at millions of
 * instructions. */
using Addr = std::uint32_t;

/** Maximum register sources one instruction can name. */
constexpr int maxSources = 3;

/**
 * One dynamic instruction.
 *
 * Kept packed (32 bytes) because traces run to tens of millions of
 * records.
 */
struct Inst
{
    Addr pc = 0;            ///< static word PC (byte address / 4)
    RegId dst = 0;          ///< produced register, 0 if none
    RegId src[maxSources] = {0, 0, 0}; ///< consumed registers
    Addr addr = 0;          ///< effective address (loads/stores)
    OpClass cls = OpClass::Other;
    std::uint8_t size = 0;  ///< access size in bytes (loads/stores)
    bool taken = false;     ///< branch outcome
    bool conditional = false; ///< branch is conditional

    bool isBranch() const { return cls == OpClass::Branch; }
    bool isLoad() const { return isa::isLoad(cls); }
    bool isStore() const { return isa::isStore(cls); }
    bool isMemory() const { return isa::isMemory(cls); }

    /** Byte address of the static instruction (4-byte words). */
    std::uint64_t
    byteAddress() const
    {
        return static_cast<std::uint64_t>(pc) * 4;
    }
};

static_assert(sizeof(Inst) <= 32, "trace records must stay compact");

} // namespace bioarch::isa

#endif // BIOARCH_ISA_INST_HH
