/**
 * @file
 * Operation classes of the synthetic PowerPC+Altivec ISA.
 *
 * These are the categories the paper reports in the instruction
 * breakdown (Fig. 1) and maps onto functional units (Table IV):
 * scalar integer ALU, scalar loads/stores, branches, vector
 * loads/stores, vector simple integer (VI), vector permute (VPER),
 * vector complex (VCMPLX), vector float (VFP), scalar float (FP),
 * and a catch-all "other".
 */

#ifndef BIOARCH_ISA_OPCLASS_HH
#define BIOARCH_ISA_OPCLASS_HH

#include <cstdint>
#include <string_view>

namespace bioarch::isa
{

/** Instruction operation class. */
enum class OpClass : std::uint8_t
{
    IntAlu,    ///< scalar integer ALU (add, cmp, logic, shifts)
    IntLoad,   ///< scalar load
    IntStore,  ///< scalar store
    Branch,    ///< conditional and unconditional control flow
    VecLoad,   ///< vector load (lvx)
    VecStore,  ///< vector store (stvx)
    VecSimple, ///< vector simple integer (vaddshs, vmaxsh, ...)
    VecPerm,   ///< vector permute / shift (vperm, vsldoi)
    VecComplex,///< vector complex integer (multiply, sum-across)
    VecFloat,  ///< vector float
    FloatOp,   ///< scalar float
    Other,     ///< everything else (system, mfspr, nop)
    NumClasses
};

/** Number of op classes, for array sizing. */
constexpr int numOpClasses = static_cast<int>(OpClass::NumClasses);

/** Short lower-case mnemonic matching the paper's Fig. 1 legend. */
std::string_view opClassName(OpClass cls);

/** True for IntLoad/VecLoad. */
constexpr bool
isLoad(OpClass cls)
{
    return cls == OpClass::IntLoad || cls == OpClass::VecLoad;
}

/** True for IntStore/VecStore. */
constexpr bool
isStore(OpClass cls)
{
    return cls == OpClass::IntStore || cls == OpClass::VecStore;
}

/** True for any memory-accessing class. */
constexpr bool
isMemory(OpClass cls)
{
    return isLoad(cls) || isStore(cls);
}

/** True for any vector class. */
constexpr bool
isVector(OpClass cls)
{
    return cls == OpClass::VecLoad || cls == OpClass::VecStore
        || cls == OpClass::VecSimple || cls == OpClass::VecPerm
        || cls == OpClass::VecComplex || cls == OpClass::VecFloat;
}

} // namespace bioarch::isa

#endif // BIOARCH_ISA_OPCLASS_HH
