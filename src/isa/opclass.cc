#include "opclass.hh"

namespace bioarch::isa
{

std::string_view
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "ialu";
      case OpClass::IntLoad: return "iload";
      case OpClass::IntStore: return "istore";
      case OpClass::Branch: return "ctrl";
      case OpClass::VecLoad: return "vload";
      case OpClass::VecStore: return "vstore";
      case OpClass::VecSimple: return "vsimple";
      case OpClass::VecPerm: return "vperm";
      case OpClass::VecComplex: return "vcomplex";
      case OpClass::VecFloat: return "vfloat";
      case OpClass::FloatOp: return "float";
      case OpClass::Other: return "other";
      case OpClass::NumClasses: break;
    }
    return "?";
}

} // namespace bioarch::isa
