/**
 * @file
 * Software model of Altivec-style SIMD integer vectors.
 *
 * The paper studies a 128-bit Altivec Smith-Waterman kernel and a
 * "futuristic" 256-bit variant. We model both with a single
 * lane-count-parameterized vector type carrying 16-bit signed lanes
 * (the element width the FASTA Altivec SW kernel uses for scores):
 *
 *   VecI16<8>   == one 128-bit Altivec register
 *   VecI16<16>  == one 256-bit "futuristic" register
 *
 * Operations mirror the Altivec instruction classes the simulator
 * models: vector integer arithmetic (VI: adds/subs/max/cmp),
 * vector permute (VPER: element shifts / selects), and vector
 * load/store. The traced kernels in src/kernels emit exactly one
 * trace instruction per use of these primitives, which is what makes
 * the vmx128 vs vmx256 instruction-count scaling of Table III come
 * out of the real computation rather than being faked.
 */

#ifndef BIOARCH_VEC_SIMD_HH
#define BIOARCH_VEC_SIMD_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

namespace bioarch::vec
{

/**
 * A SIMD vector of @p N signed 16-bit lanes with saturating
 * arithmetic, modelled after Altivec vector short operations.
 */
template <int N>
class VecI16
{
  public:
    static constexpr int lanes = N;
    static constexpr int bits = N * 16;
    using Lane = std::int16_t;

    static_assert(N > 0 && (N & (N - 1)) == 0,
                  "lane count must be a power of two");

    VecI16() { _lanes.fill(0); }

    /** vec_splat: broadcast one value to all lanes. */
    static VecI16
    splat(Lane v)
    {
        VecI16 out;
        out._lanes.fill(v);
        return out;
    }

    /** vec_ld: load N contiguous lanes from memory. */
    static VecI16
    load(const Lane *p)
    {
        VecI16 out;
        std::copy(p, p + N, out._lanes.begin());
        return out;
    }

    /** vec_st: store N contiguous lanes to memory. */
    void
    store(Lane *p) const
    {
        std::copy(_lanes.begin(), _lanes.end(), p);
    }

    Lane operator[](int i) const { return _lanes[i]; }
    void set(int i, Lane v) { _lanes[i] = v; }

    /** vec_adds: lane-wise saturating add (VI class). */
    friend VecI16
    adds(const VecI16 &a, const VecI16 &b)
    {
        VecI16 out;
        for (int i = 0; i < N; ++i)
            out._lanes[i] = saturate(
                static_cast<int>(a._lanes[i]) + b._lanes[i]);
        return out;
    }

    /** vec_subs: lane-wise saturating subtract (VI class). */
    friend VecI16
    subs(const VecI16 &a, const VecI16 &b)
    {
        VecI16 out;
        for (int i = 0; i < N; ++i)
            out._lanes[i] = saturate(
                static_cast<int>(a._lanes[i]) - b._lanes[i]);
        return out;
    }

    /** vec_max: lane-wise maximum (VI class). */
    friend VecI16
    vmax(const VecI16 &a, const VecI16 &b)
    {
        VecI16 out;
        for (int i = 0; i < N; ++i)
            out._lanes[i] = std::max(a._lanes[i], b._lanes[i]);
        return out;
    }

    /** vec_min: lane-wise minimum (VI class). */
    friend VecI16
    vmin(const VecI16 &a, const VecI16 &b)
    {
        VecI16 out;
        for (int i = 0; i < N; ++i)
            out._lanes[i] = std::min(a._lanes[i], b._lanes[i]);
        return out;
    }

    /** vec_cmpgt: lane-wise a > b, all-ones mask on true (VI). */
    friend VecI16
    cmpgt(const VecI16 &a, const VecI16 &b)
    {
        VecI16 out;
        for (int i = 0; i < N; ++i)
            out._lanes[i] =
                a._lanes[i] > b._lanes[i] ? Lane(-1) : Lane(0);
        return out;
    }

    /**
     * vec_sld-style element shift (VPER class): shift lanes toward
     * higher indices by one, inserting @p fill at lane 0. This is the
     * cross-lane data movement the anti-diagonal SW kernel needs
     * between diagonals.
     */
    friend VecI16
    shiftInLow(const VecI16 &a, Lane fill)
    {
        VecI16 out;
        out._lanes[0] = fill;
        for (int i = 1; i < N; ++i)
            out._lanes[i] = a._lanes[i - 1];
        return out;
    }

    /** Reverse VPER shift: toward lane 0, inserting at lane N-1. */
    friend VecI16
    shiftInHigh(const VecI16 &a, Lane fill)
    {
        VecI16 out;
        for (int i = 0; i + 1 < N; ++i)
            out._lanes[i] = a._lanes[i + 1];
        out._lanes[N - 1] = fill;
        return out;
    }

    /** vec_sel via mask (VPER class in Altivec terms). */
    friend VecI16
    select(const VecI16 &mask, const VecI16 &a, const VecI16 &b)
    {
        VecI16 out;
        for (int i = 0; i < N; ++i)
            out._lanes[i] = mask._lanes[i] ? a._lanes[i] : b._lanes[i];
        return out;
    }

    /** Horizontal maximum across lanes (a short VPER+VI reduction). */
    friend typename VecI16::Lane
    horizontalMax(const VecI16 &a)
    {
        Lane m = a._lanes[0];
        for (int i = 1; i < N; ++i)
            m = std::max(m, a._lanes[i]);
        return m;
    }

    /** True if any lane is greater than the scalar @p v. */
    friend bool
    anyGreater(const VecI16 &a, Lane v)
    {
        for (int i = 0; i < N; ++i)
            if (a._lanes[i] > v)
                return true;
        return false;
    }

    bool operator==(const VecI16 &other) const = default;

  private:
    static Lane
    saturate(int v)
    {
        constexpr int lo = std::numeric_limits<Lane>::min();
        constexpr int hi = std::numeric_limits<Lane>::max();
        return static_cast<Lane>(std::clamp(v, lo, hi));
    }

    std::array<Lane, N> _lanes;
};

/** 128-bit Altivec register of 16-bit lanes. */
using Vec128 = VecI16<8>;
/** 256-bit futuristic register of 16-bit lanes. */
using Vec256 = VecI16<16>;

} // namespace bioarch::vec

#endif // BIOARCH_VEC_SIMD_HH
