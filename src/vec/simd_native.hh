/**
 * @file
 * Hardware SIMD vector layer for the *native* alignment backend.
 *
 * This is deliberately separate from vec/simd.hh: that header is the
 * software *model* of Altivec vectors the traced kernels are built
 * on (one trace instruction per primitive, Table III depends on it).
 * This header is the execution layer the serving engine scans the
 * database with — real intrinsics, chosen at compile time:
 *
 *   Sse2U8/Sse2I16   — 128-bit SSE2 (x86-64 baseline)
 *   Avx2U8/Avx2I16   — 256-bit AVX2 (separate -mavx2 TU, runtime
 *                      CPUID-guarded dispatch)
 *   NeonU8/NeonI16   — 128-bit NEON (aarch64)
 *   PortableU8/I16   — plain C++ lanes arrays (autovectorizable
 *                      fallback, also the TSAN-friendly backend)
 *
 * Each variant exposes the same static interface, so the striped
 * Smith-Waterman kernel (align/sw_striped_native_impl.hh) is written
 * once and instantiated per backend:
 *
 *   lanes, Elem, Reg
 *   zero(), splat(x), load(p)          // load requires 64B-aligned p
 *   adds(a,b), subs(a,b), max(a,b)     // saturating add/sub, max
 *   band(a,b)                          // bitwise AND (lane masking)
 *   shiftInZero(a)                     // one lane toward higher
 *                                      // index, 0 into lane 0
 *   hmax(a)                            // horizontal maximum
 *   anyGt(a,b)                         // any lane a > b
 *
 * The U8 flavors are unsigned saturating (Farrar's biased 8-bit
 * profile arithmetic: clamping at 0 is exactly the Smith-Waterman
 * zero clamp); the I16 flavors are signed saturating (the 16-bit
 * rescan level of the overflow ladder).
 */

#ifndef BIOARCH_VEC_SIMD_NATIVE_HH
#define BIOARCH_VEC_SIMD_NATIVE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace bioarch::vec::native
{

/** Alignment of every buffer the native kernels load from. */
inline constexpr std::size_t registerAlignment = 64;

namespace detail
{

struct AlignedDeleter
{
    void
    operator()(void *p) const
    {
        ::operator delete[](p, std::align_val_t(registerAlignment));
    }
};

} // namespace detail

/** Owning pointer to a 64-byte-aligned array of trivial elements. */
template <typename T>
using AlignedArray = std::unique_ptr<T[], detail::AlignedDeleter>;

/**
 * Allocate @p count elements aligned for any native register load.
 * Contents are uninitialized; callers fill every byte they read.
 */
template <typename T>
AlignedArray<T>
allocateAligned(std::size_t count)
{
    static_assert(std::is_trivial_v<T>);
    void *p = ::operator new[](count * sizeof(T),
                               std::align_val_t(registerAlignment));
    return AlignedArray<T>(static_cast<T *>(p));
}

/**
 * Portable fallback lanes, sized to match AVX2 so the striped
 * profile layout (and therefore the lazy-F behavior) is identical
 * between the two on any machine. The loops are written to
 * autovectorize; correctness never depends on that.
 */
struct PortableU8
{
    static constexpr int lanes = 32;
    using Elem = std::uint8_t;
    struct Reg
    {
        alignas(32) Elem v[lanes];
    };

    static Reg
    zero()
    {
        return Reg{};
    }
    static Reg
    splat(Elem x)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = x;
        return r;
    }
    static Reg
    load(const Elem *p)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = p[i];
        return r;
    }
    static Reg
    adds(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i) {
            const int s = int(a.v[i]) + int(b.v[i]);
            r.v[i] = static_cast<Elem>(s > 255 ? 255 : s);
        }
        return r;
    }
    static Reg
    subs(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i) {
            const int s = int(a.v[i]) - int(b.v[i]);
            r.v[i] = static_cast<Elem>(s < 0 ? 0 : s);
        }
        return r;
    }
    static Reg
    max(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return r;
    }
    static Reg
    band(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = a.v[i] & b.v[i];
        return r;
    }
    static Reg
    shiftInZero(Reg a)
    {
        Reg r;
        r.v[0] = 0;
        for (int i = 1; i < lanes; ++i)
            r.v[i] = a.v[i - 1];
        return r;
    }
    static Elem
    hmax(Reg a)
    {
        Elem m = 0;
        for (int i = 0; i < lanes; ++i)
            m = a.v[i] > m ? a.v[i] : m;
        return m;
    }
    static bool
    anyGt(Reg a, Reg b)
    {
        unsigned acc = 0;
        for (int i = 0; i < lanes; ++i)
            acc |= unsigned(a.v[i] > b.v[i]);
        return acc != 0;
    }
};

struct PortableI16
{
    static constexpr int lanes = 16;
    using Elem = std::int16_t;
    struct Reg
    {
        alignas(32) Elem v[lanes];
    };

    static Reg
    zero()
    {
        return Reg{};
    }
    static Reg
    splat(Elem x)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = x;
        return r;
    }
    static Reg
    load(const Elem *p)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = p[i];
        return r;
    }
    static Reg
    adds(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i) {
            const int s = int(a.v[i]) + int(b.v[i]);
            r.v[i] = static_cast<Elem>(
                s > 32767 ? 32767 : (s < -32768 ? -32768 : s));
        }
        return r;
    }
    static Reg
    subs(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i) {
            const int s = int(a.v[i]) - int(b.v[i]);
            r.v[i] = static_cast<Elem>(
                s > 32767 ? 32767 : (s < -32768 ? -32768 : s));
        }
        return r;
    }
    static Reg
    max(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return r;
    }
    static Reg
    band(Reg a, Reg b)
    {
        Reg r;
        for (int i = 0; i < lanes; ++i)
            r.v[i] = static_cast<Elem>(a.v[i] & b.v[i]);
        return r;
    }
    static Reg
    shiftInZero(Reg a)
    {
        Reg r;
        r.v[0] = 0;
        for (int i = 1; i < lanes; ++i)
            r.v[i] = a.v[i - 1];
        return r;
    }
    static Elem
    hmax(Reg a)
    {
        Elem m = a.v[0];
        for (int i = 1; i < lanes; ++i)
            m = a.v[i] > m ? a.v[i] : m;
        return m;
    }
    static bool
    anyGt(Reg a, Reg b)
    {
        unsigned acc = 0;
        for (int i = 0; i < lanes; ++i)
            acc |= unsigned(a.v[i] > b.v[i]);
        return acc != 0;
    }
};

#if defined(__SSE2__)

struct Sse2U8
{
    static constexpr int lanes = 16;
    using Elem = std::uint8_t;
    using Reg = __m128i;

    static Reg zero() { return _mm_setzero_si128(); }
    static Reg
    splat(Elem x)
    {
        return _mm_set1_epi8(static_cast<char>(x));
    }
    static Reg
    load(const Elem *p)
    {
        return _mm_load_si128(reinterpret_cast<const __m128i *>(p));
    }
    static Reg adds(Reg a, Reg b) { return _mm_adds_epu8(a, b); }
    static Reg subs(Reg a, Reg b) { return _mm_subs_epu8(a, b); }
    static Reg max(Reg a, Reg b) { return _mm_max_epu8(a, b); }
    static Reg band(Reg a, Reg b) { return _mm_and_si128(a, b); }
    static Reg shiftInZero(Reg a) { return _mm_slli_si128(a, 1); }
    static Elem
    hmax(Reg a)
    {
        a = _mm_max_epu8(a, _mm_srli_si128(a, 8));
        a = _mm_max_epu8(a, _mm_srli_si128(a, 4));
        a = _mm_max_epu8(a, _mm_srli_si128(a, 2));
        a = _mm_max_epu8(a, _mm_srli_si128(a, 1));
        return static_cast<Elem>(_mm_cvtsi128_si32(a) & 0xFF);
    }
    static bool
    anyGt(Reg a, Reg b)
    {
        // a > b (unsigned) wherever the saturating difference is
        // nonzero.
        const __m128i d = _mm_subs_epu8(a, b);
        const __m128i z = _mm_cmpeq_epi8(d, _mm_setzero_si128());
        return _mm_movemask_epi8(z) != 0xFFFF;
    }
};

struct Sse2I16
{
    static constexpr int lanes = 8;
    using Elem = std::int16_t;
    using Reg = __m128i;

    static Reg zero() { return _mm_setzero_si128(); }
    static Reg splat(Elem x) { return _mm_set1_epi16(x); }
    static Reg
    load(const Elem *p)
    {
        return _mm_load_si128(reinterpret_cast<const __m128i *>(p));
    }
    static Reg adds(Reg a, Reg b) { return _mm_adds_epi16(a, b); }
    static Reg subs(Reg a, Reg b) { return _mm_subs_epi16(a, b); }
    static Reg max(Reg a, Reg b) { return _mm_max_epi16(a, b); }
    static Reg band(Reg a, Reg b) { return _mm_and_si128(a, b); }
    static Reg shiftInZero(Reg a) { return _mm_slli_si128(a, 2); }
    static Elem
    hmax(Reg a)
    {
        a = _mm_max_epi16(a, _mm_srli_si128(a, 8));
        a = _mm_max_epi16(a, _mm_srli_si128(a, 4));
        a = _mm_max_epi16(a, _mm_srli_si128(a, 2));
        return static_cast<Elem>(_mm_extract_epi16(a, 0));
    }
    static bool
    anyGt(Reg a, Reg b)
    {
        return _mm_movemask_epi8(_mm_cmpgt_epi16(a, b)) != 0;
    }
};

#endif // __SSE2__

#if defined(__AVX2__)

namespace detail
{

/**
 * Full-width 256-bit byte shift toward higher lanes (AVX2 has no
 * single cross-lane byte shift): feed alignr the vector paired with
 * [a.low, 0] so lane 1 pulls its carry bytes from a.low.
 */
template <int K>
inline __m256i
shiftLeft256(__m256i a)
{
    const __m256i carry = _mm256_permute2x128_si256(a, a, 0x08);
    return _mm256_alignr_epi8(a, carry, 16 - K);
}

} // namespace detail

struct Avx2U8
{
    static constexpr int lanes = 32;
    using Elem = std::uint8_t;
    using Reg = __m256i;

    static Reg zero() { return _mm256_setzero_si256(); }
    static Reg
    splat(Elem x)
    {
        return _mm256_set1_epi8(static_cast<char>(x));
    }
    static Reg
    load(const Elem *p)
    {
        return _mm256_load_si256(
            reinterpret_cast<const __m256i *>(p));
    }
    static Reg adds(Reg a, Reg b) { return _mm256_adds_epu8(a, b); }
    static Reg subs(Reg a, Reg b) { return _mm256_subs_epu8(a, b); }
    static Reg max(Reg a, Reg b) { return _mm256_max_epu8(a, b); }
    static Reg band(Reg a, Reg b) { return _mm256_and_si256(a, b); }
    static Reg
    shiftInZero(Reg a)
    {
        return detail::shiftLeft256<1>(a);
    }
    static Elem
    hmax(Reg a)
    {
        __m128i m = _mm_max_epu8(_mm256_castsi256_si128(a),
                                 _mm256_extracti128_si256(a, 1));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
        return static_cast<Elem>(_mm_cvtsi128_si32(m) & 0xFF);
    }
    static bool
    anyGt(Reg a, Reg b)
    {
        const __m256i d = _mm256_subs_epu8(a, b);
        return !_mm256_testz_si256(d, d);
    }
};

struct Avx2I16
{
    static constexpr int lanes = 16;
    using Elem = std::int16_t;
    using Reg = __m256i;

    static Reg zero() { return _mm256_setzero_si256(); }
    static Reg splat(Elem x) { return _mm256_set1_epi16(x); }
    static Reg
    load(const Elem *p)
    {
        return _mm256_load_si256(
            reinterpret_cast<const __m256i *>(p));
    }
    static Reg adds(Reg a, Reg b) { return _mm256_adds_epi16(a, b); }
    static Reg subs(Reg a, Reg b) { return _mm256_subs_epi16(a, b); }
    static Reg max(Reg a, Reg b) { return _mm256_max_epi16(a, b); }
    static Reg band(Reg a, Reg b) { return _mm256_and_si256(a, b); }
    static Reg
    shiftInZero(Reg a)
    {
        return detail::shiftLeft256<2>(a);
    }
    static Elem
    hmax(Reg a)
    {
        __m128i m = _mm_max_epi16(_mm256_castsi256_si128(a),
                                  _mm256_extracti128_si256(a, 1));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<Elem>(_mm_extract_epi16(m, 0));
    }
    static bool
    anyGt(Reg a, Reg b)
    {
        return _mm256_movemask_epi8(_mm256_cmpgt_epi16(a, b)) != 0;
    }
};

#endif // __AVX2__

#if defined(__ARM_NEON) && defined(__aarch64__)

struct NeonU8
{
    static constexpr int lanes = 16;
    using Elem = std::uint8_t;
    using Reg = uint8x16_t;

    static Reg zero() { return vdupq_n_u8(0); }
    static Reg splat(Elem x) { return vdupq_n_u8(x); }
    static Reg load(const Elem *p) { return vld1q_u8(p); }
    static Reg adds(Reg a, Reg b) { return vqaddq_u8(a, b); }
    static Reg subs(Reg a, Reg b) { return vqsubq_u8(a, b); }
    static Reg max(Reg a, Reg b) { return vmaxq_u8(a, b); }
    static Reg band(Reg a, Reg b) { return vandq_u8(a, b); }
    static Reg
    shiftInZero(Reg a)
    {
        return vextq_u8(vdupq_n_u8(0), a, 15);
    }
    static Elem hmax(Reg a) { return vmaxvq_u8(a); }
    static bool
    anyGt(Reg a, Reg b)
    {
        return vmaxvq_u8(vcgtq_u8(a, b)) != 0;
    }
};

struct NeonI16
{
    static constexpr int lanes = 8;
    using Elem = std::int16_t;
    using Reg = int16x8_t;

    static Reg zero() { return vdupq_n_s16(0); }
    static Reg splat(Elem x) { return vdupq_n_s16(x); }
    static Reg load(const Elem *p) { return vld1q_s16(p); }
    static Reg adds(Reg a, Reg b) { return vqaddq_s16(a, b); }
    static Reg subs(Reg a, Reg b) { return vqsubq_s16(a, b); }
    static Reg max(Reg a, Reg b) { return vmaxq_s16(a, b); }
    static Reg band(Reg a, Reg b) { return vandq_s16(a, b); }
    static Reg
    shiftInZero(Reg a)
    {
        return vextq_s16(vdupq_n_s16(0), a, 7);
    }
    static Elem hmax(Reg a) { return vmaxvq_s16(a); }
    static bool
    anyGt(Reg a, Reg b)
    {
        return vmaxvq_u16(vcgtq_s16(a, b)) != 0;
    }
};

#endif // __ARM_NEON && __aarch64__

} // namespace bioarch::vec::native

#endif // BIOARCH_VEC_SIMD_NATIVE_HH
