/**
 * @file
 * The long-read nucleotide serving workload: synthetic DNA reads
 * stored as residue Sequences (bases 0..3, one per byte) so the
 * generic serving tier — ShardedDatabase, the engines, the result
 * cache — can shard and scan them exactly like protein databases,
 * while align/blastn.hh re-packs the query side to 2 bits for its
 * word index.
 *
 * The shape mimics a long-read mapping service: reads a few
 * kilobases long with planted homologs of the queries at
 * long-read-ish identity, so blastn's banded gapped extension (not
 * just the ungapped stage) carries the work.
 */

#ifndef BIOARCH_BIO_DNA_WORKLOAD_HH
#define BIOARCH_BIO_DNA_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "database.hh"
#include "nucleotide.hh"
#include "sequence.hh"

namespace bioarch::bio
{

/** Knobs of the synthetic long-read nucleotide workload. */
struct DnaWorkloadSpec
{
    /** Reads in the served database. */
    std::size_t numReads = 200;
    std::size_t minLength = 600;  ///< shortest read (bases)
    std::size_t maxLength = 2400; ///< longest read (bases)
    /** Planted homologous reads per query sequence. */
    int homologsPerQuery = 4;
    /** Base identity of the planted homologs (indels included). */
    double identity = 0.85;
    std::uint64_t seed = 0xD7AD8A5Eu;
};

/** One @p length-base DNA query as a residue Sequence. */
Sequence makeDnaQuery(Rng &rng, std::size_t length,
                      const std::string &id);

/** Deterministic pool of @p count DNA queries (for streams). */
std::vector<Sequence> makeDnaQueryPool(std::size_t count,
                                       std::size_t length,
                                       std::uint64_t seed);

/**
 * Synthetic long-read database: background reads with
 * spec.homologsPerQuery mutated copies of every query planted at
 * deterministic positions. Residue values are all < 4, so the
 * database round-trips losslessly through PackedDna.
 */
SequenceDatabase makeDnaReadDatabase(
    const DnaWorkloadSpec &spec,
    const std::vector<Sequence> &queries);

/** Re-pack a residue DNA sequence to the 2-bit representation. */
PackedDna packDnaSequence(const Sequence &seq);

} // namespace bioarch::bio

#endif // BIOARCH_BIO_DNA_WORKLOAD_HH
