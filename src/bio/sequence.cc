#include "sequence.hh"

#include <utility>

namespace bioarch::bio
{

Sequence::Sequence(std::string id, std::string description,
                   std::string_view letters)
    : _id(std::move(id)), _description(std::move(description)),
      _residues(Alphabet::encode(letters))
{
}

Sequence::Sequence(std::string id, std::string description,
                   std::vector<Residue> residues)
    : _id(std::move(id)), _description(std::move(description)),
      _residues(std::move(residues))
{
}

std::string
Sequence::toString() const
{
    return Alphabet::decode(_residues);
}

} // namespace bioarch::bio
