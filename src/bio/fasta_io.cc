#include "fasta_io.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <tuple>

namespace bioarch::bio
{

namespace
{

/** Split a header line (after '>') into (id, description). */
std::pair<std::string, std::string>
splitHeader(const std::string &line)
{
    std::size_t i = 0;
    while (i < line.size() && !std::isspace(
               static_cast<unsigned char>(line[i]))) {
        ++i;
    }
    std::string id = line.substr(0, i);
    while (i < line.size() && std::isspace(
               static_cast<unsigned char>(line[i]))) {
        ++i;
    }
    return {std::move(id), line.substr(i)};
}

} // namespace

SequenceDatabase
readFasta(std::istream &in)
{
    SequenceDatabase db;
    std::string id;
    std::string description;
    std::vector<Residue> residues;
    bool have_header = false;

    auto flush = [&] {
        if (have_header)
            db.add(Sequence(id, description, std::move(residues)));
        residues = {};
    };

    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            std::tie(id, description) = splitHeader(line.substr(1));
            have_header = true;
        } else if (line[0] == ';') {
            continue; // legacy FASTA comment line
        } else {
            if (!have_header) {
                throw FastaError(
                    "FASTA parse error: residue data before any "
                    "'>' header line");
            }
            for (char c : line) {
                if (std::isspace(static_cast<unsigned char>(c)))
                    continue;
                residues.push_back(Alphabet::encode(c));
            }
        }
    }
    flush();
    return db;
}

SequenceDatabase
readFastaFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw FastaError("cannot open FASTA file: " + path);
    return readFasta(in);
}

SequenceDatabase
readFastaString(const std::string &text)
{
    std::istringstream in(text);
    return readFasta(in);
}

void
writeFasta(std::ostream &out, const SequenceDatabase &db,
           std::size_t line_width)
{
    for (const Sequence &seq : db) {
        out << '>' << seq.id();
        if (!seq.description().empty())
            out << ' ' << seq.description();
        out << '\n';
        const std::string letters = seq.toString();
        for (std::size_t i = 0; i < letters.size(); i += line_width) {
            out << letters.substr(i, line_width) << '\n';
        }
    }
}

void
writeFastaFile(const std::string &path, const SequenceDatabase &db,
               std::size_t line_width)
{
    std::ofstream out(path);
    if (!out)
        throw FastaError("cannot open FASTA file for write: " + path);
    writeFasta(out, db, line_width);
    if (!out)
        throw FastaError("write failure on FASTA file: " + path);
}

} // namespace bioarch::bio
