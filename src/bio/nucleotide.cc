#include "nucleotide.hh"

#include <algorithm>
#include <cctype>

namespace bioarch::bio
{

Base
NucAlphabet::encode(char c)
{
    switch (std::toupper(static_cast<unsigned char>(c))) {
      case 'A': return 0;
      case 'C': return 1;
      case 'G': return 2;
      case 'T': return 3;
      default: return 0; // ambiguity codes collapse to A
    }
}

char
NucAlphabet::decode(Base b)
{
    return letters[b & 3];
}

std::vector<Base>
NucAlphabet::encode(std::string_view s)
{
    std::vector<Base> out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(encode(c));
    return out;
}

std::string
NucAlphabet::decode(const std::vector<Base> &bases)
{
    std::string out;
    out.reserve(bases.size());
    for (Base b : bases)
        out.push_back(decode(b));
    return out;
}

PackedDna::PackedDna(std::string id, std::string_view letters)
    : PackedDna(std::move(id), NucAlphabet::encode(letters))
{
}

PackedDna::PackedDna(std::string id, const std::vector<Base> &bases)
    : _id(std::move(id)), _length(bases.size()),
      _bytes((bases.size() + 3) / 4, 0)
{
    for (std::size_t i = 0; i < bases.size(); ++i) {
        const unsigned shift = 6 - 2 * (i & 3);
        _bytes[i >> 2] = static_cast<std::uint8_t>(
            _bytes[i >> 2] | ((bases[i] & 3) << shift));
    }
}

std::vector<Base>
PackedDna::unpack() const
{
    std::vector<Base> out;
    out.reserve(_length);
    for (std::size_t i = 0; i < _length; ++i)
        out.push_back((*this)[i]);
    return out;
}

std::string
PackedDna::toString() const
{
    return NucAlphabet::decode(unpack());
}

void
DnaDatabase::add(PackedDna seq)
{
    _totalBases += seq.length();
    _sequences.push_back(std::move(seq));
}

PackedDna
makeRandomDna(Rng &rng, std::size_t length, const std::string &id)
{
    std::vector<Base> bases;
    bases.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
        bases.push_back(static_cast<Base>(rng.below(4)));
    return PackedDna(id, bases);
}

PackedDna
mutateDna(Rng &rng, const PackedDna &src, double identity,
          const std::string &id)
{
    std::vector<Base> out;
    out.reserve(src.length() + 16);
    for (std::size_t i = 0; i < src.length(); ++i) {
        if (rng.chance(identity)) {
            out.push_back(src[i]);
            continue;
        }
        // Mostly substitutions, occasionally a short indel.
        const double kind = rng.uniform();
        if (kind < 0.8) {
            out.push_back(static_cast<Base>(
                (src[i] + 1 + rng.below(3)) & 3));
        } else if (kind < 0.9) {
            // deletion: skip this base
        } else {
            out.push_back(static_cast<Base>(rng.below(4)));
            out.push_back(src[i]);
        }
    }
    return PackedDna(id, out);
}

DnaDatabase
makeDnaDatabase(std::size_t num_sequences, std::size_t min_length,
                std::size_t max_length, const PackedDna &query,
                int homologs, std::uint64_t seed)
{
    Rng rng(seed);
    DnaDatabase db;
    // Deterministic planted positions, spread across the database.
    std::vector<std::size_t> planted;
    for (int h = 0; h < homologs; ++h)
        planted.push_back(
            num_sequences > 0
                ? (static_cast<std::size_t>(h) * 7 + 3)
                    % num_sequences
                : 0);
    for (std::size_t i = 0; i < num_sequences; ++i) {
        const bool is_homolog =
            std::find(planted.begin(), planted.end(), i)
            != planted.end();
        if (is_homolog && !query.empty()) {
            const double identity = 0.75 + 0.2 * rng.uniform();
            db.add(mutateDna(rng, query, identity,
                             "HDNA" + std::to_string(i)));
        } else {
            const std::size_t len = min_length
                + rng.below(std::max<std::uint64_t>(
                    1, max_length - min_length));
            db.add(makeRandomDna(rng, len,
                                 "DNA" + std::to_string(i)));
        }
    }
    return db;
}

} // namespace bioarch::bio
