#include "scoring.hh"

#include <algorithm>

namespace bioarch::bio
{

ScoringMatrix::ScoringMatrix() : _name("zero")
{
    _scores.fill(0);
}

ScoringMatrix::ScoringMatrix(
        std::string name,
        const std::array<std::int8_t, dim * dim> &scores)
    : _name(std::move(name)), _scores(scores)
{
}

void
ScoringMatrix::set(Residue a, Residue b, std::int8_t s)
{
    _scores[static_cast<int>(a) * dim + static_cast<int>(b)] = s;
    _scores[static_cast<int>(b) * dim + static_cast<int>(a)] = s;
}

int
ScoringMatrix::maxScore() const
{
    return *std::max_element(_scores.begin(), _scores.end());
}

int
ScoringMatrix::minScore() const
{
    return *std::min_element(_scores.begin(), _scores.end());
}

namespace
{

/**
 * BLOSUM62 over the 23-symbol alphabet ARNDCQEGHILKMFPSTWYVBZX,
 * row-major, standard NCBI values.
 */
constexpr std::int8_t blosum62Data[23][23] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S
    //     T   W   Y   V   B   Z   X
    { 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,
      0, -3, -2,  0, -2, -1,  0},                                 // A
    {-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1,
     -1, -3, -2, -3, -1,  0, -1},                                 // R
    {-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,
      0, -4, -2, -3,  3,  0, -1},                                 // N
    {-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0,
     -1, -4, -3, -3,  4,  1, -1},                                 // D
    { 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1,
     -1, -2, -2, -1, -3, -3, -2},                                 // C
    {-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0,
     -1, -2, -1, -2,  0,  3, -1},                                 // Q
    {-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0,
     -1, -3, -2, -2,  1,  4, -1},                                 // E
    { 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0,
     -2, -2, -3, -3, -1, -2, -1},                                 // G
    {-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1,
     -2, -2,  2, -3,  0,  0, -1},                                 // H
    {-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2,
     -1, -3, -1,  3, -3, -3, -1},                                 // I
    {-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2,
     -1, -2, -1,  1, -4, -3, -1},                                 // L
    {-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0,
     -1, -3, -2, -2,  0,  1, -1},                                 // K
    {-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1,
     -1, -1, -1,  1, -3, -1, -1},                                 // M
    {-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2,
     -2,  1,  3, -1, -3, -3, -1},                                 // F
    {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1,
     -1, -4, -3, -2, -2, -1, -2},                                 // P
    { 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,
      1, -3, -2, -2,  0,  0,  0},                                 // S
    { 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,
      5, -2, -2,  0, -1, -1,  0},                                 // T
    {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3,
     -2, 11,  2, -3, -4, -3, -2},                                 // W
    {-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2,
     -2,  2,  7, -1, -3, -2, -1},                                 // Y
    { 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,
      0, -3, -1,  4, -3, -2, -1},                                 // V
    {-2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0,
     -1, -4, -3, -3,  4,  1, -1},                                 // B
    {-1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0,
     -1, -3, -2, -2,  1,  4, -1},                                 // Z
    { 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,
      0, -2, -1, -1, -1, -1, -1},                                 // X
};

} // namespace

const ScoringMatrix &
blosum62()
{
    static const ScoringMatrix matrix = [] {
        std::array<std::int8_t, ScoringMatrix::dim * ScoringMatrix::dim>
            flat{};
        for (int a = 0; a < ScoringMatrix::dim; ++a)
            for (int b = 0; b < ScoringMatrix::dim; ++b)
                flat[a * ScoringMatrix::dim + b] = blosum62Data[a][b];
        return ScoringMatrix("BLOSUM62", flat);
    }();
    return matrix;
}

ScoringMatrix
makeMatchMismatch(int match, int mismatch)
{
    std::array<std::int8_t, ScoringMatrix::dim * ScoringMatrix::dim>
        flat{};
    for (int a = 0; a < ScoringMatrix::dim; ++a)
        for (int b = 0; b < ScoringMatrix::dim; ++b)
            flat[a * ScoringMatrix::dim + b] =
                static_cast<std::int8_t>(a == b ? match : mismatch);
    return ScoringMatrix("match/mismatch", flat);
}

} // namespace bioarch::bio
