/**
 * @file
 * Amino-acid alphabet: residue encoding, decoding and background
 * composition statistics used by the synthetic database generator.
 */

#ifndef BIOARCH_BIO_ALPHABET_HH
#define BIOARCH_BIO_ALPHABET_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bioarch::bio
{

/** Encoded residue type. Values index rows of the scoring matrix. */
using Residue = std::uint8_t;

/**
 * The 20-letter amino-acid alphabet plus the ambiguity codes B, Z and
 * the unknown residue X, in the canonical NCBI matrix order
 * "ARNDCQEGHILKMFPSTWYVBZX".
 */
class Alphabet
{
  public:
    /** Number of real amino acids. */
    static constexpr int numRealResidues = 20;
    /** Total encoded symbols (20 + B, Z, X). */
    static constexpr int numSymbols = 23;
    /** Encoded value of the unknown residue X. */
    static constexpr Residue unknown = 22;

    /** Letters in encoding order. */
    static constexpr std::string_view letters = "ARNDCQEGHILKMFPSTWYVBZX";

    /**
     * Encode one character. Lower case is accepted; any character that
     * is not a valid residue letter encodes as X.
     *
     * @param c residue letter
     * @return encoded residue in [0, numSymbols)
     */
    static Residue encode(char c);

    /**
     * Decode one residue back to its upper-case letter.
     *
     * @param r encoded residue; out-of-range values decode as 'X'
     */
    static char decode(Residue r);

    /** Encode a whole string of residue letters. */
    static std::vector<Residue> encode(std::string_view s);

    /** Decode a whole residue vector to a string. */
    static std::string decode(const std::vector<Residue> &rs);

    /** @return true if @p c is one of the 23 valid residue letters. */
    static bool isValidLetter(char c);

    /**
     * Background frequency of each of the 20 real amino acids
     * (Robinson & Robinson composition, normalized to sum to 1).
     * Used to synthesize realistic random protein sequences.
     */
    static const std::array<double, numRealResidues> &
    backgroundFrequencies();
};

} // namespace bioarch::bio

#endif // BIOARCH_BIO_ALPHABET_HH
