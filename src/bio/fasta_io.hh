/**
 * @file
 * FASTA *format* reading and writing (the file format, not the FASTA
 * search program). Lets users load real databases in place of the
 * synthetic one.
 */

#ifndef BIOARCH_BIO_FASTA_IO_HH
#define BIOARCH_BIO_FASTA_IO_HH

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "database.hh"
#include "sequence.hh"

namespace bioarch::bio
{

/** Thrown on malformed FASTA input or I/O failure. */
class FastaError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Parse FASTA-formatted text from a stream.
 *
 * Header lines are ">ID description"; the ID is the first
 * whitespace-delimited token. Residue letters may span multiple
 * lines; blank lines are ignored; invalid residue letters encode
 * as X (matching common tool behavior).
 *
 * @throws FastaError if the stream contains residue data before any
 *         header line.
 */
SequenceDatabase readFasta(std::istream &in);

/** Parse a FASTA file by path. @throws FastaError on open failure. */
SequenceDatabase readFastaFile(const std::string &path);

/** Parse FASTA from an in-memory string. */
SequenceDatabase readFastaString(const std::string &text);

/**
 * Write a database in FASTA format.
 *
 * @param out destination stream
 * @param db sequences to write
 * @param line_width residues per line (default 60, the common width)
 */
void writeFasta(std::ostream &out, const SequenceDatabase &db,
                std::size_t line_width = 60);

/** Write a database to a FASTA file. @throws FastaError on failure. */
void writeFastaFile(const std::string &path, const SequenceDatabase &db,
                    std::size_t line_width = 60);

} // namespace bioarch::bio

#endif // BIOARCH_BIO_FASTA_IO_HH
