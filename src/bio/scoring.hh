/**
 * @file
 * Substitution scoring: matrix abstraction, the standard BLOSUM62
 * matrix, and affine gap penalties. All evaluations in the paper use
 * BLOSUM62 with gap open 10 / gap extend 1 (Section IV-A).
 */

#ifndef BIOARCH_BIO_SCORING_HH
#define BIOARCH_BIO_SCORING_HH

#include <array>
#include <cstdint>
#include <string>

#include "alphabet.hh"

namespace bioarch::bio
{

/**
 * Affine gap penalty model: a gap of length L costs
 * open + extend * L (FASTA/SSEARCH "-f 11 -g 1" convention is
 * open+first-extend = 11; we store open = 10, extend = 1 and charge
 * open + extend on gap opening, matching the paper's
 * "gap open penalty of 10 and a gap extension penalty of 1").
 */
struct GapPenalties
{
    int open = 10;   ///< charged once when a gap is opened
    int extend = 1;  ///< charged for every gap position, incl. first

    /** Cost of opening a new gap (first gapped position). */
    int openCost() const { return open + extend; }
    /** Cost of extending an existing gap by one position. */
    int extendCost() const { return extend; }
    /** Total cost of a gap of @p len positions. */
    int cost(int len) const { return len > 0 ? open + extend * len : 0; }
};

/**
 * A square substitution score matrix over the encoded alphabet.
 *
 * Lookups are hot (one per DP cell), so scores are a flat array
 * indexed by a * numSymbols + b.
 */
class ScoringMatrix
{
  public:
    static constexpr int dim = Alphabet::numSymbols;

    /** Construct a matrix with every score zero. */
    ScoringMatrix();

    /**
     * Construct from a full dim x dim table.
     *
     * @param name matrix name (e.g. "BLOSUM62")
     * @param scores row-major score table
     */
    ScoringMatrix(std::string name,
                  const std::array<std::int8_t, dim * dim> &scores);

    /** Score of aligning residue @p a against residue @p b. */
    int score(Residue a, Residue b) const
    {
        return _scores[static_cast<int>(a) * dim + static_cast<int>(b)];
    }

    /** Set one (symmetric) entry; used by tests and custom matrices. */
    void set(Residue a, Residue b, std::int8_t s);

    const std::string &name() const { return _name; }

    /** Largest score in the matrix (BLOSUM62: 11 for W/W). */
    int maxScore() const;
    /** Smallest score in the matrix (BLOSUM62: -4). */
    int minScore() const;

    /** Raw row pointer, for building SIMD query profiles. */
    const std::int8_t *row(Residue a) const
    {
        return _scores.data() + static_cast<int>(a) * dim;
    }

  private:
    std::string _name;
    std::array<std::int8_t, dim * dim> _scores;
};

/** The standard BLOSUM62 matrix (Henikoff & Henikoff). */
const ScoringMatrix &blosum62();

/** A simple match/mismatch matrix, useful in tests. */
ScoringMatrix makeMatchMismatch(int match, int mismatch);

} // namespace bioarch::bio

#endif // BIOARCH_BIO_SCORING_HH
