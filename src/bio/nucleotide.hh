/**
 * @file
 * Nucleotide support: the DNA alphabet and the 2-bit packed
 * database representation that the paper's Listing 1
 * (BlastNtWordFinder, READDB_UNPACK_BASE) operates on.
 */

#ifndef BIOARCH_BIO_NUCLEOTIDE_HH
#define BIOARCH_BIO_NUCLEOTIDE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "random.hh"

namespace bioarch::bio
{

/** Encoded nucleotide: A=0, C=1, G=2, T=3. */
using Base = std::uint8_t;

/** The 4-letter DNA alphabet. */
class NucAlphabet
{
  public:
    static constexpr int numBases = 4;
    static constexpr std::string_view letters = "ACGT";

    /** Encode one letter (case-insensitive; others encode as A). */
    static Base encode(char c);
    /** Decode to an upper-case letter. */
    static char decode(Base b);
    /** Encode a string of letters. */
    static std::vector<Base> encode(std::string_view s);
    /** Decode a base vector to a string. */
    static std::string decode(const std::vector<Base> &bases);
};

/**
 * A DNA sequence stored 2-bit packed, 4 bases per byte, exactly as
 * NCBI's readdb-format databases store nucleotides. Big-endian
 * within the byte (base 0 in the top bits), matching the
 * READDB_UNPACK_BASE_k accessors of the paper's Listing 1.
 */
class PackedDna
{
  public:
    PackedDna() = default;

    /** Pack from letters. */
    PackedDna(std::string id, std::string_view letters);

    /** Pack from encoded bases. */
    PackedDna(std::string id, const std::vector<Base> &bases);

    const std::string &id() const { return _id; }
    std::size_t length() const { return _length; }
    bool empty() const { return _length == 0; }

    /** The packed bytes (length/4 rounded up). */
    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

    /**
     * Base at position @p i — the READDB_UNPACK_BASE operation:
     * byte fetch, shift, mask.
     */
    Base
    operator[](std::size_t i) const
    {
        const std::uint8_t byte = _bytes[i >> 2];
        const unsigned shift = 6 - 2 * (i & 3);
        return static_cast<Base>((byte >> shift) & 3);
    }

    /** Unpack the whole sequence. */
    std::vector<Base> unpack() const;

    /** Decode to letters. */
    std::string toString() const;

  private:
    std::string _id;
    std::size_t _length = 0;
    std::vector<std::uint8_t> _bytes;
};

/** An ordered collection of packed DNA sequences. */
class DnaDatabase
{
  public:
    void add(PackedDna seq);

    std::size_t size() const { return _sequences.size(); }
    bool empty() const { return _sequences.empty(); }
    const PackedDna &operator[](std::size_t i) const
    {
        return _sequences[i];
    }
    std::uint64_t totalBases() const { return _totalBases; }

    auto begin() const { return _sequences.begin(); }
    auto end() const { return _sequences.end(); }

  private:
    std::vector<PackedDna> _sequences;
    std::uint64_t _totalBases = 0;
};

/** Uniform random DNA sequence. */
PackedDna makeRandomDna(Rng &rng, std::size_t length,
                        const std::string &id = "DNA");

/**
 * Mutate DNA to a target identity (substitutions plus occasional
 * short indels), for planting homologs.
 */
PackedDna mutateDna(Rng &rng, const PackedDna &src, double identity,
                    const std::string &id);

/**
 * Synthetic DNA database with @p homologs mutated copies of
 * @p query planted among random background sequences.
 */
DnaDatabase makeDnaDatabase(std::size_t num_sequences,
                            std::size_t min_length,
                            std::size_t max_length,
                            const PackedDna &query, int homologs,
                            std::uint64_t seed);

} // namespace bioarch::bio

#endif // BIOARCH_BIO_NUCLEOTIDE_HH
