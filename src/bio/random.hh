/**
 * @file
 * Small deterministic RNG used everywhere randomness is needed.
 *
 * All synthetic data in this repository must be reproducible across
 * platforms and standard-library versions, so we carry our own
 * SplitMix64/xoshiro256** implementation instead of relying on
 * std::mt19937 distributions (whose std::uniform_* mappings are not
 * specified bit-exactly).
 */

#ifndef BIOARCH_BIO_RANDOM_HH
#define BIOARCH_BIO_RANDOM_HH

#include <array>
#include <cstdint>

namespace bioarch::bio
{

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using rejection-free Lemire. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // 128-bit multiply-shift; slight modulo bias is irrelevant at
        // our bounds (< 2^32) and keeps the generator branch-free.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> _state;
};

} // namespace bioarch::bio

#endif // BIOARCH_BIO_RANDOM_HH
