#include "dna_workload.hh"

#include <algorithm>
#include <string>
#include <utility>

namespace bioarch::bio
{

namespace
{

std::vector<Residue>
randomBases(Rng &rng, std::size_t length)
{
    std::vector<Residue> bases(length);
    for (Residue &b : bases)
        b = static_cast<Residue>(rng.below(4));
    return bases;
}

/** Substitutions plus occasional 1-3 base indels, long-read style. */
std::vector<Residue>
mutateBases(Rng &rng, const std::vector<Residue> &src,
            double identity)
{
    std::vector<Residue> out;
    out.reserve(src.size() + src.size() / 8);
    const std::uint64_t keep =
        static_cast<std::uint64_t>(identity * 1000.0);
    for (const Residue b : src) {
        const std::uint64_t roll = rng.below(1000);
        if (roll < keep) {
            out.push_back(b);
            continue;
        }
        switch (rng.below(3)) {
        case 0: // substitution to a different base
            out.push_back(static_cast<Residue>(
                (b + 1 + rng.below(3)) % 4));
            break;
        case 1: // deletion of 1-3 bases (this one and the skip run)
            break;
        default: { // insertion of 1-3 random bases, then the base
            const std::uint64_t run = 1 + rng.below(3);
            for (std::uint64_t k = 0; k < run; ++k)
                out.push_back(
                    static_cast<Residue>(rng.below(4)));
            out.push_back(b);
            break;
        }
        }
    }
    if (out.empty())
        out.push_back(0);
    return out;
}

} // namespace

Sequence
makeDnaQuery(Rng &rng, std::size_t length, const std::string &id)
{
    return Sequence(id, "synthetic DNA read",
                    randomBases(rng, length));
}

std::vector<Sequence>
makeDnaQueryPool(std::size_t count, std::size_t length,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sequence> pool;
    pool.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        pool.push_back(makeDnaQuery(
            rng, length, "DNAQ" + std::to_string(i)));
    return pool;
}

SequenceDatabase
makeDnaReadDatabase(const DnaWorkloadSpec &spec,
                    const std::vector<Sequence> &queries)
{
    Rng rng(spec.seed);
    const std::size_t lo = std::max<std::size_t>(1, spec.minLength);
    const std::size_t hi = std::max(lo, spec.maxLength);

    // Homolog slots first, spread deterministically through the
    // database so every shard layout sees some hits.
    const std::size_t homologs = queries.empty()
        ? 0
        : queries.size()
            * static_cast<std::size_t>(
                  std::max(0, spec.homologsPerQuery));
    std::vector<Sequence> reads;
    reads.reserve(spec.numReads);
    for (std::size_t i = 0; i < spec.numReads; ++i) {
        const bool plant = homologs != 0 && spec.numReads != 0
            && i % std::max<std::size_t>(1,
                                         spec.numReads / homologs)
                == 0
            && i / std::max<std::size_t>(1,
                                         spec.numReads / homologs)
                < homologs;
        if (plant) {
            const std::size_t q =
                (i / std::max<std::size_t>(
                         1, spec.numReads / homologs))
                % queries.size();
            reads.emplace_back(
                "READH" + std::to_string(i),
                "homolog of " + queries[q].id(),
                mutateBases(rng, queries[q].residues(),
                            spec.identity));
        } else {
            const std::size_t len = lo + rng.below(hi - lo + 1);
            reads.emplace_back("READ" + std::to_string(i),
                               "background DNA read",
                               randomBases(rng, len));
        }
    }

    SequenceDatabase db;
    for (Sequence &r : reads)
        db.add(std::move(r));
    return db;
}

PackedDna
packDnaSequence(const Sequence &seq)
{
    std::vector<Base> bases(seq.residues().begin(),
                            seq.residues().end());
    for (Base &b : bases)
        b = static_cast<Base>(b & 3);
    return PackedDna(seq.id(), bases);
}

} // namespace bioarch::bio
