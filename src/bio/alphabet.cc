#include "alphabet.hh"

#include <cctype>

namespace bioarch::bio
{

namespace
{

/** Build the 256-entry letter -> residue lookup table once. */
std::array<Residue, 256>
buildEncodeTable()
{
    std::array<Residue, 256> table;
    table.fill(Alphabet::unknown);
    for (int i = 0; i < Alphabet::numSymbols; ++i) {
        const char c = Alphabet::letters[i];
        table[static_cast<unsigned char>(c)] = static_cast<Residue>(i);
        table[static_cast<unsigned char>(std::tolower(c))] =
            static_cast<Residue>(i);
    }
    return table;
}

const std::array<Residue, 256> encodeTable = buildEncodeTable();

} // namespace

Residue
Alphabet::encode(char c)
{
    return encodeTable[static_cast<unsigned char>(c)];
}

char
Alphabet::decode(Residue r)
{
    if (r >= numSymbols)
        return 'X';
    return letters[r];
}

std::vector<Residue>
Alphabet::encode(std::string_view s)
{
    std::vector<Residue> out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(encode(c));
    return out;
}

std::string
Alphabet::decode(const std::vector<Residue> &rs)
{
    std::string out;
    out.reserve(rs.size());
    for (Residue r : rs)
        out.push_back(decode(r));
    return out;
}

bool
Alphabet::isValidLetter(char c)
{
    const char u = static_cast<char>(std::toupper(c));
    return letters.find(u) != std::string_view::npos;
}

const std::array<double, Alphabet::numRealResidues> &
Alphabet::backgroundFrequencies()
{
    // Robinson & Robinson (1991) amino-acid composition, in the
    // encoding order ARNDCQEGHILKMFPSTWYV, renormalized to sum to 1.
    static const std::array<double, numRealResidues> freqs = [] {
        std::array<double, numRealResidues> f = {
            0.07805, 0.05129, 0.04487, 0.05364, 0.01925,
            0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
            0.09019, 0.05744, 0.02243, 0.03856, 0.05203,
            0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
        };
        double sum = 0.0;
        for (double v : f)
            sum += v;
        for (double &v : f)
            v /= sum;
        return f;
    }();
    return freqs;
}

} // namespace bioarch::bio
