#include "synthetic.hh"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace bioarch::bio
{

namespace
{

/** Sample one residue from the background composition. */
Residue
sampleBackground(Rng &rng)
{
    const auto &freqs = Alphabet::backgroundFrequencies();
    double u = rng.uniform();
    for (int i = 0; i < Alphabet::numRealResidues; ++i) {
        u -= freqs[i];
        if (u <= 0.0)
            return static_cast<Residue>(i);
    }
    return static_cast<Residue>(Alphabet::numRealResidues - 1);
}

/** Sample a residue different from @p avoid. */
Residue
sampleSubstitution(Rng &rng, Residue avoid)
{
    for (;;) {
        const Residue r = sampleBackground(rng);
        if (r != avoid)
            return r;
    }
}

/**
 * Sample a SwissProt-like sequence length: log-normal-ish spread
 * between min and max, median in the low hundreds.
 */
int
sampleLength(Rng &rng, int min_len, int max_len)
{
    // Sum of three uniforms gives a bell-ish shape; skew toward the
    // short end by squaring.
    const double u =
        (rng.uniform() + rng.uniform() + rng.uniform()) / 3.0;
    const double skewed = u * u;
    const int len = min_len + static_cast<int>(
        skewed * static_cast<double>(max_len - min_len));
    return len;
}

/**
 * Bounded Pareto (Zipf-tail) length in [min, max]: inverse-CDF of
 * p(l) ~ l^-a truncated to the range. Most mass sits near the
 * short end with a heavy tail toward max.
 */
int
sampleZipfLength(Rng &rng, int min_len, int max_len, double a)
{
    const double lo = static_cast<double>(min_len);
    const double hi = static_cast<double>(max_len);
    const double u = rng.uniform();
    const double k = 1.0 - a;
    const double l = std::pow(
        std::pow(lo, k) + u * (std::pow(hi, k) - std::pow(lo, k)),
        1.0 / k);
    return std::clamp(static_cast<int>(l), min_len, max_len);
}

} // namespace

const std::vector<QuerySpec> &
tableIIQueries()
{
    static const std::vector<QuerySpec> queries = {
        {"Globin", "P02232", 143},
        {"Ras", "P01111", 189},
        {"Glutathione S-transferase", "P14942", 222},
        {"Serine Protease", "P00762", 246},
        {"Histocompatibility antigen", "P10318", 362},
        {"Alcohol dehydrogenase", "P07327", 375},
        {"Serine Protease inhibitor", "P01008", 464},
        {"Cytochrome P450", "P10635", 497},
        {"H+-transporting ATP synthase", "P25705", 553},
        {"Hemaglutinin", "P03435", 567},
        // The paper text says 11 sequences but Table II lists 10
        // families; we add a mid-length eleventh to honor the text.
        {"Kinase (synthetic 11th)", "P99999", 310},
    };
    return queries;
}

std::vector<Sequence>
makeQuerySet(std::uint64_t seed)
{
    std::vector<Sequence> out;
    out.reserve(tableIIQueries().size());
    for (const QuerySpec &spec : tableIIQueries()) {
        // Derive a per-query seed so each query is independent of the
        // others and of the set size.
        Rng rng(seed ^ (static_cast<std::uint64_t>(spec.length) << 32)
                ^ static_cast<std::uint64_t>(spec.accession[1] - '0'));
        std::vector<Residue> residues;
        residues.reserve(static_cast<std::size_t>(spec.length));
        for (int i = 0; i < spec.length; ++i)
            residues.push_back(sampleBackground(rng));
        out.emplace_back(spec.accession, spec.family,
                         std::move(residues));
    }
    return out;
}

Sequence
makeDefaultQuery(std::uint64_t seed)
{
    // Glutathione S-transferase (P14942, 222 aa) — the query the
    // paper's result section uses.
    auto set = makeQuerySet(seed);
    return set[2];
}

Sequence
makeRandomSequence(Rng &rng, int length, const std::string &id,
                   const std::string &description)
{
    std::vector<Residue> residues;
    residues.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i)
        residues.push_back(sampleBackground(rng));
    return Sequence(id, description, std::move(residues));
}

Sequence
mutate(Rng &rng, const Sequence &src, double identity,
       const std::string &id, const std::string &description)
{
    std::vector<Residue> out;
    out.reserve(src.length() + 16);
    // Indel rate grows as identity falls; kept small so local
    // alignments stay recoverable.
    const double indel_rate = 0.02 * (1.0 - identity);
    for (std::size_t i = 0; i < src.length(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5)) {
                continue; // deletion
            }
            const int ins_len = static_cast<int>(rng.between(1, 3));
            for (int k = 0; k < ins_len; ++k)
                out.push_back(sampleBackground(rng)); // insertion
        }
        if (rng.chance(identity))
            out.push_back(src[i]);
        else
            out.push_back(sampleSubstitution(rng, src[i]));
    }
    if (out.empty())
        out.push_back(src[0]);
    return Sequence(id, description, std::move(out));
}

SequenceDatabase
makeDatabase(const DatabaseSpec &spec,
             const std::vector<Sequence> &queries)
{
    Rng rng(spec.seed);
    SequenceDatabase db;

    // Pre-plan the homolog payload: (query index, identity) pairs.
    struct Plant
    {
        std::size_t query;
        double identity;
        int copy;
    };
    std::vector<Plant> plants;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        for (double ident : spec.identityLevels) {
            for (int c = 0; c < spec.homologsPerQuery; ++c)
                plants.push_back({q, ident, c});
        }
    }

    // Spread homologs evenly through the database so partial traces
    // still contain hits.
    const std::size_t total =
        static_cast<std::size_t>(spec.numSequences);
    const std::size_t stride =
        plants.empty() ? total + 1
                       : std::max<std::size_t>(1, total / plants.size());

    std::size_t next_plant = 0;
    for (std::size_t i = 0; i < total; ++i) {
        const bool plant_here = next_plant < plants.size()
            && i == (next_plant + 1) * stride - 1;
        if (plant_here) {
            const Plant &p = plants[next_plant++];
            const Sequence &src = queries[p.query];
            const std::string id = "H" + std::to_string(i);
            const std::string desc = "homolog of "
                + src.id() + " id=" + std::to_string(p.identity);
            db.add(mutate(rng, src, p.identity, id, desc));
        } else {
            const int len = spec.zipfLengths
                ? sampleZipfLength(rng, spec.minLength,
                                   spec.maxLength,
                                   spec.zipfExponent)
                : sampleLength(rng, spec.minLength,
                               spec.maxLength);
            db.add(makeRandomSequence(
                rng, len, "S" + std::to_string(i),
                "synthetic background"));
        }
    }
    return db;
}

SequenceDatabase
makeDefaultDatabase(int num_sequences, std::uint64_t seed)
{
    DatabaseSpec spec;
    spec.numSequences = num_sequences;
    spec.seed = seed;
    return makeDatabase(spec, makeQuerySet());
}

SequenceDatabase
makeZipfDatabase(int num_sequences, std::uint64_t seed)
{
    DatabaseSpec spec;
    spec.numSequences = num_sequences;
    spec.seed = seed;
    spec.zipfLengths = true;
    return makeDatabase(spec, makeQuerySet());
}

} // namespace bioarch::bio
