/**
 * @file
 * Protein sequence value type shared by the whole library.
 */

#ifndef BIOARCH_BIO_SEQUENCE_HH
#define BIOARCH_BIO_SEQUENCE_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet.hh"

namespace bioarch::bio
{

/**
 * A named, encoded protein sequence.
 *
 * Residues are stored in encoded form (see Alphabet) because every
 * consumer — scoring matrix lookups, k-mer indices, SIMD profiles —
 * wants small integers, not letters.
 */
class Sequence
{
  public:
    Sequence() = default;

    /**
     * Build a sequence from a letter string.
     *
     * @param id accession identifier (e.g. "P14942")
     * @param description free-form description line
     * @param letters residue letters; invalid letters become X
     */
    Sequence(std::string id, std::string description,
             std::string_view letters);

    /** Build a sequence from already-encoded residues. */
    Sequence(std::string id, std::string description,
             std::vector<Residue> residues);

    const std::string &id() const { return _id; }
    const std::string &description() const { return _description; }
    const std::vector<Residue> &residues() const { return _residues; }

    std::size_t length() const { return _residues.size(); }
    bool empty() const { return _residues.empty(); }

    /** Residue at position @p i (0-based, unchecked). */
    Residue operator[](std::size_t i) const { return _residues[i]; }

    /** Decode back to a letter string. */
    std::string toString() const;

    bool operator==(const Sequence &other) const = default;

  private:
    std::string _id;
    std::string _description;
    std::vector<Residue> _residues;
};

} // namespace bioarch::bio

#endif // BIOARCH_BIO_SEQUENCE_HH
