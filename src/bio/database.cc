#include "database.hh"

#include <algorithm>
#include <utility>

namespace bioarch::bio
{

void
SequenceDatabase::add(Sequence seq)
{
    _totalResidues += seq.length();
    _maxLength = std::max(_maxLength, seq.length());
    _packed.insert(_packed.end(), seq.residues().begin(),
                   seq.residues().end());
    _offsets.push_back(_totalResidues);
    _sequences.push_back(std::move(seq));
}

} // namespace bioarch::bio
