#include "database.hh"

#include <algorithm>
#include <utility>

namespace bioarch::bio
{

void
SequenceDatabase::add(Sequence seq)
{
    _totalResidues += seq.length();
    _maxLength = std::max(_maxLength, seq.length());
    _sequences.push_back(std::move(seq));
}

} // namespace bioarch::bio
