/**
 * @file
 * Synthetic workload data: the Table II query set and a
 * SwissProt-like protein database with planted homologs.
 *
 * The paper searches 11 well-characterized protein queries against
 * SwissProt (62.6M residues / 172K sequences). Neither is
 * redistributable here, so we synthesize:
 *
 *  - queries with the exact Table II accessions and lengths, drawn
 *    from the Robinson-Robinson background composition;
 *  - a database of background-composition sequences with a
 *    SwissProt-like length distribution, into which mutated copies
 *    ("homologs") of each query are planted at several identity
 *    levels so that searches produce genuine high-scoring hits,
 *    extensions, and rankings.
 *
 * Alignment-application *control flow and memory behavior* depend on
 * residue statistics and on the presence/absence of hits, which this
 * construction preserves; it does not preserve biological meaning.
 */

#ifndef BIOARCH_BIO_SYNTHETIC_HH
#define BIOARCH_BIO_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "database.hh"
#include "random.hh"
#include "sequence.hh"

namespace bioarch::bio
{

/** One row of Table II: a named query protein family. */
struct QuerySpec
{
    const char *family;    ///< protein family name
    const char *accession; ///< SwissProt accession (e.g. "P14942")
    int length;            ///< sequence length in residues
};

/** The 11 query specifications of Table II, in paper order. */
const std::vector<QuerySpec> &tableIIQueries();

/**
 * Deterministically generate the synthetic query set (same
 * accessions and lengths as Table II).
 *
 * @param seed RNG seed; the default yields the canonical set used by
 *        all benches
 */
std::vector<Sequence> makeQuerySet(std::uint64_t seed = 0x51ED5EED);

/**
 * Generate the synthetic query used throughout the paper's result
 * section: Glutathione S-transferase P14942 (222 residues).
 */
Sequence makeDefaultQuery(std::uint64_t seed = 0x51ED5EED);

/** Parameters for the synthetic database generator. */
struct DatabaseSpec
{
    /** Number of sequences (paper's SwissProt: 172,233; default is
     * scaled down so benches run in seconds). */
    int numSequences = 1000;
    /** Minimum / maximum background sequence length. SwissProt
     * lengths cluster in the low hundreds. */
    int minLength = 80;
    int maxLength = 800;
    /**
     * Draw background lengths from a bounded Zipf (power-law)
     * distribution instead of the SwissProt-like bell: most
     * sequences near minLength with a heavy tail out to maxLength.
     * This is the serving tier's reference workload — many short
     * subjects (inter-sequence kernel territory) plus a long tail
     * — used by the indexed-serving experiments.
     */
    bool zipfLengths = false;
    /** Power-law exponent of the Zipf length tail (> 1). */
    double zipfExponent = 1.6;
    /** Per-query planted homologs at each identity level. */
    int homologsPerQuery = 3;
    /** Identity levels for planted homologs (fraction of residues
     * kept identical). */
    std::vector<double> identityLevels = {0.9, 0.6, 0.35};
    /** RNG seed; fixed default for reproducibility. */
    std::uint64_t seed = 0xDBDBDBDB;
};

/**
 * Generate a synthetic protein database.
 *
 * Homologs of each query in @p queries are planted at deterministic
 * (seed-derived) positions and carry descriptions of the form
 * "homolog of <accession> id=<identity>" so tests can verify that
 * searches recover them.
 */
SequenceDatabase makeDatabase(const DatabaseSpec &spec,
                              const std::vector<Sequence> &queries);

/** Convenience: database with homologs of the full Table II set. */
SequenceDatabase makeDefaultDatabase(int num_sequences = 1000,
                                     std::uint64_t seed = 0xDBDBDBDB);

/**
 * Convenience: the Zipf-length serving workload (DatabaseSpec with
 * zipfLengths set, homologs of the full Table II set).
 */
SequenceDatabase makeZipfDatabase(int num_sequences = 1000,
                                  std::uint64_t seed = 0xDBDBDBDB);

/**
 * Generate a single random protein sequence from the background
 * composition. Exposed for tests and examples.
 */
Sequence makeRandomSequence(Rng &rng, int length,
                            const std::string &id = "RND",
                            const std::string &description = "");

/**
 * Mutate a sequence to a target identity level: each position is
 * kept with probability @p identity, otherwise substituted; short
 * insertions/deletions are sprinkled to exercise gapped alignment.
 */
Sequence mutate(Rng &rng, const Sequence &src, double identity,
                const std::string &id, const std::string &description);

} // namespace bioarch::bio

#endif // BIOARCH_BIO_SYNTHETIC_HH
