/**
 * @file
 * Sequence database container — the stand-in for SwissProt.
 */

#ifndef BIOARCH_BIO_DATABASE_HH
#define BIOARCH_BIO_DATABASE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sequence.hh"

namespace bioarch::bio
{

/**
 * An ordered collection of protein sequences searched by the
 * alignment applications. Mirrors what SwissProt provides: sequences
 * plus aggregate residue statistics (used for E-value computation and
 * for Table-II-style reporting).
 */
class SequenceDatabase
{
  public:
    SequenceDatabase() = default;

    /** Append one sequence. */
    void add(Sequence seq);

    std::size_t size() const { return _sequences.size(); }
    bool empty() const { return _sequences.empty(); }

    const Sequence &operator[](std::size_t i) const
    {
        return _sequences[i];
    }

    const std::vector<Sequence> &sequences() const { return _sequences; }

    /** Total residues across all sequences. */
    std::uint64_t totalResidues() const { return _totalResidues; }

    /** Length of the longest sequence (0 when empty). */
    std::size_t maxLength() const { return _maxLength; }

    /**
     * SoA view for linear scans: every sequence's residues, back to
     * back in database order. Sequence i occupies
     * [packedOffsets()[i], packedOffsets()[i+1]). Scanning this
     * arena instead of per-Sequence vectors removes one pointer
     * chase (and usually one cache miss) per subject.
     */
    const Residue *packedResidues() const { return _packed.data(); }
    /** size()+1 prefix offsets into packedResidues(). */
    const std::vector<std::uint64_t> &packedOffsets() const
    {
        return _offsets;
    }

    auto begin() const { return _sequences.begin(); }
    auto end() const { return _sequences.end(); }

  private:
    std::vector<Sequence> _sequences;
    std::vector<Residue> _packed;
    std::vector<std::uint64_t> _offsets{0};
    std::uint64_t _totalResidues = 0;
    std::size_t _maxLength = 0;
};

} // namespace bioarch::bio

#endif // BIOARCH_BIO_DATABASE_HH
