/**
 * @file
 * On-disk database+index container: a single mmap-able file
 * holding a sequence database (packed residue arena + offsets +
 * id/description string tables) and, optionally, its seed index
 * (container.hh is the persistence layer; seed_index.hh the
 * in-memory structure).
 *
 * Layout (all little-endian, every section 8-byte aligned):
 *
 *   FileHeader               magic/version/flags, global counts,
 *                            FNV-1a payload checksum, section table
 *   SeqOffsets  u64[n+1]     residue prefix offsets
 *   Arena       u8[total]    packed residues; byte-identical to
 *                            bio::SequenceDatabase::packedResidues()
 *   IdOffsets   u64[n+1] \
 *   IdBlob      char[]    \  accession string table
 *   DescOffsets u64[n+1]  /  description string table
 *   DescBlob    char[]   /
 *   IndexHeads  u64[space+1] seed-index CSR heads   (flag-gated)
 *   IndexPost   Posting[m]   seed-index posting list (flag-gated)
 *
 * DatabaseFile::load() maps the file read-only, verifies the
 * checksum and every structural invariant (monotone offsets,
 * postings in range, ...), and rejects corrupted or truncated
 * files with a descriptive error. The arena, offsets, and index
 * sections are served zero-copy out of the mapping; materialize()
 * rebuilds an owning bio::SequenceDatabase whose packed arena is
 * byte-identical to the stored one.
 */

#ifndef BIOARCH_INDEX_CONTAINER_HH
#define BIOARCH_INDEX_CONTAINER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "bio/database.hh"
#include "core/digest.hh"
#include "seed_index.hh"

namespace bioarch::index
{

/** File-format constants. */
inline constexpr std::uint64_t containerMagic =
    0x4244435241'4F4942ULL; // "BIOARCDB" in little-endian bytes
inline constexpr std::uint32_t containerVersion = 1;
inline constexpr std::uint64_t flagHasIndex = 1ULL << 0;

/** One section's location, relative to the start of the file. */
struct SectionRef
{
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
};

enum class Section : std::size_t
{
    SeqOffsets = 0,
    Arena,
    IdOffsets,
    IdBlob,
    DescOffsets,
    DescBlob,
    IndexHeads,
    IndexPostings,
};
inline constexpr std::size_t numSections = 8;

/** The fixed-size file header (one fwrite / one struct read). */
struct FileHeader
{
    std::uint64_t magic = containerMagic;
    std::uint32_t version = containerVersion;
    std::uint32_t headerBytes = 0; ///< sizeof(FileHeader)
    std::uint64_t flags = 0;
    std::uint64_t numSequences = 0;
    std::uint64_t totalResidues = 0;
    std::uint32_t wordSize = 0;   ///< 0 when no index
    std::uint32_t numSymbols = 0; ///< alphabet size the words use
    std::uint64_t numPostings = 0;
    std::uint64_t fileBytes = 0; ///< total file size
    /** FNV-1a 64 over every byte after the header. */
    std::uint64_t payloadChecksum = 0;
    std::array<SectionRef, numSections> sections{};
};

/** FNV-1a 64 (the container's checksum primitive). */
std::uint64_t fnv1a64(const void *data, std::size_t bytes,
                      std::uint64_t seed = core::fnvOffsetBasis);

/**
 * Serialize @p db (and @p index, when non-null) to @p path.
 * Throws std::runtime_error on I/O failure and
 * std::invalid_argument when the index does not match the
 * database.
 */
void writeDatabaseFile(const std::string &path,
                       const bio::SequenceDatabase &db,
                       const SeedIndex *index = nullptr);

/**
 * A loaded (mmap-ed) container file. Immutable; the mapping lives
 * as long as the object, so zero-copy views (indexView(), arena())
 * must not outlive it — epoch handles keep a shared_ptr for
 * exactly this reason.
 */
class DatabaseFile
{
  public:
    /**
     * Map @p path read-only and verify it: magic, version, section
     * table bounds, payload checksum, and structural invariants.
     * Throws std::runtime_error with a descriptive message on any
     * corruption (truncation, bit flips, malformed tables).
     */
    static std::shared_ptr<DatabaseFile> load(const std::string &path);

    ~DatabaseFile();
    DatabaseFile(const DatabaseFile &) = delete;
    DatabaseFile &operator=(const DatabaseFile &) = delete;

    const FileHeader &header() const { return _header; }
    const std::string &path() const { return _path; }
    std::size_t fileBytes() const { return _bytes; }

    std::size_t numSequences() const
    {
        return static_cast<std::size_t>(_header.numSequences);
    }
    std::uint64_t totalResidues() const
    {
        return _header.totalResidues;
    }
    bool hasIndex() const
    {
        return (_header.flags & flagHasIndex) != 0;
    }

    /** Zero-copy views into the mapping. */
    const bio::Residue *arena() const;
    const std::uint64_t *seqOffsets() const; ///< numSequences()+1
    std::string_view id(std::size_t i) const;
    std::string_view description(std::size_t i) const;

    /** Zero-copy seed-index view; hasIndex() must be true. */
    SeedIndex indexView() const;

    /**
     * Rebuild an owning bio::SequenceDatabase from the mapping
     * (copies). Its packedResidues() arena is byte-identical to
     * arena() — asserted by tests — so engines built on it score
     * exactly as they would against the original database.
     */
    bio::SequenceDatabase materialize() const;

  private:
    DatabaseFile() = default;

    const std::byte *section(Section s) const;
    std::uint64_t sectionBytes(Section s) const;
    void verifyStructure() const;

    std::string _path;
    FileHeader _header{};
    const std::byte *_map = nullptr;
    std::size_t _bytes = 0;
};

} // namespace bioarch::index

#endif // BIOARCH_INDEX_CONTAINER_HH
