#include "seed_index.hh"

#include <algorithm>
#include <stdexcept>

namespace bioarch::index
{

std::size_t
SeedIndex::wordSpace(int word_size)
{
    std::size_t space = 1;
    for (int k = 0; k < word_size; ++k)
        space *= static_cast<std::size_t>(bio::Alphabet::numSymbols);
    return space;
}

std::uint32_t
SeedIndex::encodeWord(const bio::Residue *residues, int word_size)
{
    std::uint32_t w = 0;
    for (int k = 0; k < word_size; ++k)
        w = w * bio::Alphabet::numSymbols + residues[k];
    return w;
}

SeedIndex
SeedIndex::build(const bio::SequenceDatabase &db,
                 const IndexParams &params)
{
    if (params.wordSize < 1 || params.wordSize > 5)
        throw std::invalid_argument(
            "SeedIndex: word size must be in [1, 5]");

    SeedIndex out;
    out._wordSize = params.wordSize;
    out._tableSize = wordSpace(params.wordSize);
    out._ownHeads.assign(out._tableSize + 1, 0);

    const bio::Residue *arena = db.packedResidues();
    const std::vector<std::uint64_t> &offsets = db.packedOffsets();
    const int w = params.wordSize;

    // Pass 1: per-word posting counts (into heads[word + 1] so the
    // prefix sum lands directly in CSR position).
    for (std::size_t s = 0; s < db.size(); ++s) {
        const std::uint64_t off = offsets[s];
        const std::int64_t len =
            static_cast<std::int64_t>(offsets[s + 1] - off);
        for (std::int64_t j = 0; j + w <= len; ++j)
            ++out._ownHeads[encodeWord(arena + off + j, w) + 1];
    }
    for (std::size_t i = 1; i < out._ownHeads.size(); ++i)
        out._ownHeads[i] += out._ownHeads[i - 1];
    out._numPostings = out._ownHeads.back();

    // Pass 2: fill. Walking sequences in database order and
    // positions left to right leaves every posting list sorted by
    // (seq, pos) with no extra sort.
    out._ownPostings.resize(out._numPostings);
    std::vector<std::uint64_t> cursor(out._ownHeads.begin(),
                                      out._ownHeads.end() - 1);
    for (std::size_t s = 0; s < db.size(); ++s) {
        const std::uint64_t off = offsets[s];
        const std::int64_t len =
            static_cast<std::int64_t>(offsets[s + 1] - off);
        for (std::int64_t j = 0; j + w <= len; ++j) {
            const std::uint32_t word =
                encodeWord(arena + off + j, w);
            out._ownPostings[cursor[word]++] =
                Posting{static_cast<std::uint32_t>(s),
                        static_cast<std::uint32_t>(j)};
        }
    }
    return out;
}

SeedIndex
SeedIndex::view(int word_size, const std::uint64_t *heads,
                std::size_t table_size, const Posting *postings,
                std::size_t num_postings)
{
    SeedIndex out;
    out._wordSize = word_size;
    out._tableSize = table_size;
    out._numPostings = num_postings;
    out._viewHeads = heads;
    out._viewPostings = postings;
    return out;
}

std::pair<const Posting *, const Posting *>
SeedIndex::postingsInRange(std::uint32_t w, std::uint32_t seq_begin,
                           std::uint32_t seq_end) const
{
    const auto [begin, end] = postings(w);
    const auto by_seq = [](const Posting &p, std::uint32_t s) {
        return p.seq < s;
    };
    const Posting *lo =
        std::lower_bound(begin, end, seq_begin, by_seq);
    const Posting *hi = std::lower_bound(lo, end, seq_end, by_seq);
    return {lo, hi};
}

bool
SeedIndex::equals(const SeedIndex &other) const
{
    if (_wordSize != other._wordSize
        || _tableSize != other._tableSize
        || _numPostings != other._numPostings)
        return false;
    if (!std::equal(heads(), heads() + _tableSize + 1,
                    other.heads()))
        return false;
    return std::equal(postingData(),
                      postingData() + _numPostings,
                      other.postingData());
}

std::vector<std::uint32_t>
probeCandidates(const SeedIndex &index,
                const align::NeighborhoodIndex &nbhd,
                const align::BlastParams &params,
                std::size_t seq_begin, std::size_t seq_end,
                ProbeStats *stats)
{
    if (nbhd.wordSize() != index.wordSize())
        throw std::invalid_argument(
            "probeCandidates: query neighborhood word size does "
            "not match the index");

    // Join the query neighborhood and the posting lists on the
    // word: every (query position, posting) pair is one seed hit,
    // identified by its subject position and diagonal — exactly
    // the hits the BlastWordFinder scan would see, in a different
    // order. The join is walked twice (count, then scatter) so the
    // hits land directly in per-sequence buckets: a global
    // (seq, diag, pos) sort would dominate the probe, while the
    // per-sequence buckets are a handful of hits each and sort for
    // nearly free. The matched word ranges are remembered so the
    // second walk skips the direct-address table and the per-word
    // binary searches.
    struct WordJoin
    {
        const Posting *pb, *pe;       ///< postings in shard range
        const std::int32_t *qb, *qe;  ///< query positions
    };
    std::vector<WordJoin> joins;
    const std::size_t range = seq_end - seq_begin;
    // counts[s + 1] accumulates sequence seq_begin+s's hits so the
    // prefix sum below lands directly in CSR position.
    std::vector<std::uint32_t> counts(range + 1, 0);
    const std::size_t words = index.tableSize();
    for (std::uint32_t w = 0; w < words; ++w) {
        const auto [qb, qe] = nbhd.positions(w);
        if (qb == qe)
            continue;
        const auto [pb, pe] = index.postingsInRange(
            w, static_cast<std::uint32_t>(seq_begin),
            static_cast<std::uint32_t>(seq_end));
        if (pb == pe)
            continue;
        if (stats)
            ++stats->wordsMatched;
        joins.push_back(WordJoin{pb, pe, qb, qe});
        const std::uint32_t nq =
            static_cast<std::uint32_t>(qe - qb);
        for (const Posting *p = pb; p != pe; ++p)
            counts[p->seq - seq_begin + 1] += nq;
    }

    std::vector<std::uint32_t> candidates;

    // Single-hit mode: any seed hit is a trigger, so the counts
    // alone decide and the hits are never materialized.
    if (!params.twoHit) {
        std::uint64_t seed_hits = 0;
        for (std::size_t s = 0; s < range; ++s) {
            seed_hits += counts[s + 1];
            if (counts[s + 1] != 0)
                candidates.push_back(
                    static_cast<std::uint32_t>(seq_begin + s));
        }
        if (stats) {
            stats->seedHits += seed_hits;
            stats->candidates += candidates.size();
        }
        return candidates;
    }

    for (std::size_t s = 0; s < range; ++s)
        counts[s + 1] += counts[s];
    const std::size_t num_hits = counts[range];
    if (stats)
        stats->seedHits += num_hits;

    // A hit is one u64: the diagonal (sign flipped into an
    // order-preserving unsigned) in the high half, the subject
    // position in the low half — so a plain integer sort orders a
    // bucket by (diag, pos) and the replay recovers both fields
    // with shifts.
    const auto pack = [](std::int32_t diag, std::int32_t pos) {
        const std::uint64_t d =
            static_cast<std::uint32_t>(diag) ^ 0x80000000u;
        return (d << 32) | static_cast<std::uint32_t>(pos);
    };
    std::vector<std::uint64_t> hits(num_hits);
    std::vector<std::uint32_t> cursor(counts.begin(),
                                      counts.end() - 1);
    for (const WordJoin &join : joins)
        for (const Posting *p = join.pb; p != join.pe; ++p) {
            const std::int32_t j =
                static_cast<std::int32_t>(p->pos);
            std::uint32_t &c = cursor[p->seq - seq_begin];
            for (const std::int32_t *q = join.qb; q != join.qe;
                 ++q)
                hits[c++] = pack(j - *q, j);
        }

    // Replay blastScan's trigger per (sequence, diagonal). Within
    // one diagonal the subject positions ascend exactly as the
    // word-by-word scan visits them, so the last-hit state machine
    // below is the same one blastScan runs — up to the first
    // trigger, after which the sequence is already a candidate and
    // the rest of its hits are irrelevant.
    const int w = index.wordSize();
    for (std::size_t s = 0; s < range; ++s) {
        std::uint64_t *const sb = hits.data() + counts[s];
        std::uint64_t *const se = hits.data() + counts[s + 1];
        const std::size_t n = static_cast<std::size_t>(se - sb);
        if (n < 2)
            continue; // one hit can never satisfy the two-hit rule
        if (n <= 24) {
            // Buckets are a handful of hits; insertion sort beats
            // a std::sort call at this size.
            for (std::size_t a = 1; a < n; ++a) {
                const std::uint64_t v = sb[a];
                std::size_t b = a;
                for (; b > 0 && sb[b - 1] > v; --b)
                    sb[b] = sb[b - 1];
                sb[b] = v;
            }
        } else {
            std::sort(sb, se);
        }
        bool is_candidate = false;
        std::uint64_t run_diag = ~(*sb >> 32); // != any diagonal
        std::int32_t last_hit = 0;
        for (const std::uint64_t *h = sb; h != se; ++h) {
            const std::uint64_t diag = *h >> 32;
            const std::int32_t pos = static_cast<std::int32_t>(
                *h & 0xffffffffu);
            if (diag != run_diag) {
                run_diag = diag;
                last_hit = -1000000; // blastScan's fresh-diagonal state
            }
            const std::int32_t dist = pos - last_hit;
            if (dist < w)
                continue; // overlapping: neither triggers nor updates
            if (dist <= params.twoHitWindow) {
                is_candidate = true;
                break;
            }
            last_hit = pos;
        }
        if (is_candidate)
            candidates.push_back(
                static_cast<std::uint32_t>(seq_begin + s));
    }
    if (stats)
        stats->candidates += candidates.size();
    return candidates;
}

} // namespace bioarch::index
