#include "epoch.hh"

namespace bioarch::index
{

std::shared_ptr<const DbEpoch>
loadEpoch(const std::string &path, std::uint64_t epoch)
{
    auto file = DatabaseFile::load(path);
    auto out = std::make_shared<DbEpoch>();
    out->epoch = epoch;
    out->db = file->materialize();
    if (file->hasIndex())
        out->index = file->indexView();
    out->file = std::move(file); // keeps the index view mapped
    return out;
}

std::shared_ptr<const DbEpoch>
makeEpoch(bio::SequenceDatabase db, bool build_index,
          std::uint64_t epoch, const IndexParams &params)
{
    auto out = std::make_shared<DbEpoch>();
    out->epoch = epoch;
    out->db = std::move(db);
    if (build_index)
        out->index = SeedIndex::build(out->db, params);
    return out;
}

} // namespace bioarch::index
