#include "container.hh"

#include "core/digest.hh"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace bioarch::index
{

static_assert(std::endian::native == std::endian::little,
              "the container format is little-endian on disk and "
              "is read back by pointer-cast");
static_assert(sizeof(FileHeader)
                  == 8 + 4 + 4 + 8 * 6 + 4 + 4
                      + numSections * sizeof(SectionRef),
              "FileHeader must be densely packed");

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("database file '" + path
                             + "': " + what);
}

std::size_t
align8(std::size_t n)
{
    return (n + 7) & ~static_cast<std::size_t>(7);
}

/** Append @p bytes of @p data to @p out, then pad to 8 bytes. */
SectionRef
appendSection(std::vector<std::byte> &out, const void *data,
              std::size_t bytes)
{
    SectionRef ref;
    ref.offset = sizeof(FileHeader) + out.size();
    ref.bytes = bytes;
    const auto *p = static_cast<const std::byte *>(data);
    out.insert(out.end(), p, p + bytes);
    out.resize(align8(out.size()), std::byte{0});
    return ref;
}

/** Build a string table: u64 prefix offsets + concatenated blob. */
template <typename GetString>
void
buildStringTable(std::size_t n, GetString get,
                 std::vector<std::uint64_t> &offsets,
                 std::string &blob)
{
    offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        blob += get(i);
        offsets[i + 1] = blob.size();
    }
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    // The container's checksum primitive is the shared FNV-1a
    // (core/digest.hh); the wrapper stays so the on-disk format's
    // header keeps documenting its own hash.
    return core::fnv1a64(data, bytes, seed);
}

void
writeDatabaseFile(const std::string &path,
                  const bio::SequenceDatabase &db,
                  const SeedIndex *index)
{
    if (index != nullptr && index->ownsStorage() == false
        && index->numPostings() > 0 && index->heads() == nullptr)
        throw std::invalid_argument(
            "writeDatabaseFile: index view has no storage");

    FileHeader header;
    header.headerBytes = sizeof(FileHeader);
    header.numSequences = db.size();
    header.totalResidues = db.totalResidues();
    header.numSymbols = bio::Alphabet::numSymbols;

    const std::size_t n = db.size();
    std::vector<std::uint64_t> id_offsets;
    std::string id_blob;
    buildStringTable(
        n, [&](std::size_t i) { return db[i].id(); }, id_offsets,
        id_blob);
    std::vector<std::uint64_t> desc_offsets;
    std::string desc_blob;
    buildStringTable(
        n, [&](std::size_t i) { return db[i].description(); },
        desc_offsets, desc_blob);

    std::vector<std::byte> payload;
    const auto sec = [&header](Section s) -> SectionRef & {
        return header.sections[static_cast<std::size_t>(s)];
    };
    sec(Section::SeqOffsets) = appendSection(
        payload, db.packedOffsets().data(), (n + 1) * 8);
    sec(Section::Arena) = appendSection(
        payload, db.packedResidues(),
        static_cast<std::size_t>(db.totalResidues()));
    sec(Section::IdOffsets) =
        appendSection(payload, id_offsets.data(), (n + 1) * 8);
    sec(Section::IdBlob) =
        appendSection(payload, id_blob.data(), id_blob.size());
    sec(Section::DescOffsets) =
        appendSection(payload, desc_offsets.data(), (n + 1) * 8);
    sec(Section::DescBlob) =
        appendSection(payload, desc_blob.data(), desc_blob.size());
    if (index != nullptr) {
        header.flags |= flagHasIndex;
        header.wordSize =
            static_cast<std::uint32_t>(index->wordSize());
        header.numPostings = index->numPostings();
        sec(Section::IndexHeads) = appendSection(
            payload, index->heads(),
            (index->tableSize() + 1) * 8);
        sec(Section::IndexPostings) = appendSection(
            payload, index->postingData(),
            index->numPostings() * sizeof(Posting));
    }

    header.fileBytes = sizeof(FileHeader) + payload.size();
    header.payloadChecksum =
        fnv1a64(payload.data(), payload.size());

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fail(path, "cannot open for writing");
    out.write(reinterpret_cast<const char *>(&header),
              sizeof(header));
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out)
        fail(path, "write failed");
}

std::shared_ptr<DatabaseFile>
DatabaseFile::load(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "cannot open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(path, "cannot stat");
    }
    const std::size_t bytes = static_cast<std::size_t>(st.st_size);
    if (bytes < sizeof(FileHeader)) {
        ::close(fd);
        fail(path, "truncated: smaller than the file header");
    }
    void *map =
        ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        fail(path, "mmap failed");

    // From here the mapping must be released on any verification
    // failure; funnel through the shared_ptr so its destructor
    // (munmap) runs even when verifyStructure() throws.
    std::shared_ptr<DatabaseFile> file(new DatabaseFile());
    file->_path = path;
    file->_map = static_cast<const std::byte *>(map);
    file->_bytes = bytes;
    std::memcpy(&file->_header, map, sizeof(FileHeader));
    file->verifyStructure();
    return file;
}

DatabaseFile::~DatabaseFile()
{
    if (_map != nullptr)
        ::munmap(const_cast<std::byte *>(_map), _bytes);
}

const std::byte *
DatabaseFile::section(Section s) const
{
    return _map
        + _header.sections[static_cast<std::size_t>(s)].offset;
}

std::uint64_t
DatabaseFile::sectionBytes(Section s) const
{
    return _header.sections[static_cast<std::size_t>(s)].bytes;
}

void
DatabaseFile::verifyStructure() const
{
    const FileHeader &h = _header;
    if (h.magic != containerMagic)
        fail(_path, "bad magic (not a bioarch database file)");
    if (h.version != containerVersion)
        fail(_path,
             "unsupported version "
                 + std::to_string(h.version) + " (expected "
                 + std::to_string(containerVersion) + ")");
    if (h.headerBytes != sizeof(FileHeader))
        fail(_path, "header size mismatch");
    if (h.fileBytes != _bytes)
        fail(_path,
             "truncated: header says "
                 + std::to_string(h.fileBytes) + " bytes, file has "
                 + std::to_string(_bytes));
    if (h.numSymbols != bio::Alphabet::numSymbols)
        fail(_path, "alphabet size mismatch");

    for (std::size_t i = 0; i < numSections; ++i) {
        const SectionRef &s = h.sections[i];
        if (s.bytes == 0 && s.offset == 0)
            continue; // absent (index sections without an index)
        if (s.offset < sizeof(FileHeader)
            || s.offset % 8 != 0
            || s.offset + s.bytes > _bytes)
            fail(_path,
                 "section " + std::to_string(i)
                     + " out of bounds");
    }

    const std::uint64_t checksum = fnv1a64(
        _map + sizeof(FileHeader), _bytes - sizeof(FileHeader));
    if (checksum != h.payloadChecksum)
        fail(_path, "payload checksum mismatch (file corrupt)");

    const std::size_t n =
        static_cast<std::size_t>(h.numSequences);
    if (sectionBytes(Section::SeqOffsets) != (n + 1) * 8)
        fail(_path, "sequence offset table has the wrong size");
    const std::uint64_t *offs = seqOffsets();
    if (offs[0] != 0)
        fail(_path, "sequence offsets do not start at 0");
    for (std::size_t i = 0; i < n; ++i)
        if (offs[i + 1] < offs[i])
            fail(_path, "sequence offsets are not monotone");
    if (offs[n] != h.totalResidues)
        fail(_path, "sequence offsets do not cover the arena");
    if (sectionBytes(Section::Arena) != h.totalResidues)
        fail(_path, "arena size does not match totalResidues");

    const auto check_strings = [&](Section off_s, Section blob_s,
                                   const char *what) {
        if (sectionBytes(off_s) != (n + 1) * 8)
            fail(_path, std::string(what)
                            + " offset table has the wrong size");
        const auto *t = reinterpret_cast<const std::uint64_t *>(
            section(off_s));
        if (t[0] != 0)
            fail(_path,
                 std::string(what) + " offsets do not start at 0");
        for (std::size_t i = 0; i < n; ++i)
            if (t[i + 1] < t[i])
                fail(_path, std::string(what)
                                + " offsets are not monotone");
        if (t[n] != sectionBytes(blob_s))
            fail(_path, std::string(what)
                            + " offsets do not cover the blob");
    };
    check_strings(Section::IdOffsets, Section::IdBlob, "id");
    check_strings(Section::DescOffsets, Section::DescBlob,
                  "description");

    if (!hasIndex()) {
        if (sectionBytes(Section::IndexHeads) != 0
            || sectionBytes(Section::IndexPostings) != 0)
            fail(_path, "index sections present without the flag");
        return;
    }
    if (h.wordSize < 1 || h.wordSize > 5)
        fail(_path, "index word size out of range");
    const std::size_t space =
        SeedIndex::wordSpace(static_cast<int>(h.wordSize));
    if (sectionBytes(Section::IndexHeads) != (space + 1) * 8)
        fail(_path, "index head table has the wrong size");
    const auto *heads = reinterpret_cast<const std::uint64_t *>(
        section(Section::IndexHeads));
    if (heads[0] != 0)
        fail(_path, "index heads do not start at 0");
    for (std::size_t wd = 0; wd < space; ++wd)
        if (heads[wd + 1] < heads[wd])
            fail(_path, "index heads are not monotone");
    if (heads[space] != h.numPostings)
        fail(_path, "index heads do not cover the posting list");
    if (sectionBytes(Section::IndexPostings)
        != h.numPostings * sizeof(Posting))
        fail(_path, "posting list has the wrong size");
    const auto *postings =
        reinterpret_cast<const Posting *>(
            section(Section::IndexPostings));
    for (std::uint64_t i = 0; i < h.numPostings; ++i) {
        const Posting &p = postings[i];
        if (p.seq >= n)
            fail(_path, "posting references a sequence out of "
                        "range");
        const std::uint64_t len = offs[p.seq + 1] - offs[p.seq];
        if (p.pos + h.wordSize > len)
            fail(_path,
                 "posting position exceeds its sequence length");
    }
}

const bio::Residue *
DatabaseFile::arena() const
{
    return reinterpret_cast<const bio::Residue *>(
        section(Section::Arena));
}

const std::uint64_t *
DatabaseFile::seqOffsets() const
{
    return reinterpret_cast<const std::uint64_t *>(
        section(Section::SeqOffsets));
}

std::string_view
DatabaseFile::id(std::size_t i) const
{
    const auto *t = reinterpret_cast<const std::uint64_t *>(
        section(Section::IdOffsets));
    const auto *blob =
        reinterpret_cast<const char *>(section(Section::IdBlob));
    return {blob + t[i],
            static_cast<std::size_t>(t[i + 1] - t[i])};
}

std::string_view
DatabaseFile::description(std::size_t i) const
{
    const auto *t = reinterpret_cast<const std::uint64_t *>(
        section(Section::DescOffsets));
    const auto *blob = reinterpret_cast<const char *>(
        section(Section::DescBlob));
    return {blob + t[i],
            static_cast<std::size_t>(t[i + 1] - t[i])};
}

SeedIndex
DatabaseFile::indexView() const
{
    if (!hasIndex())
        throw std::logic_error("database file '" + _path
                               + "' carries no seed index");
    const std::size_t space = SeedIndex::wordSpace(
        static_cast<int>(_header.wordSize));
    return SeedIndex::view(
        static_cast<int>(_header.wordSize),
        reinterpret_cast<const std::uint64_t *>(
            section(Section::IndexHeads)),
        space,
        reinterpret_cast<const Posting *>(
            section(Section::IndexPostings)),
        static_cast<std::size_t>(_header.numPostings));
}

bio::SequenceDatabase
DatabaseFile::materialize() const
{
    bio::SequenceDatabase db;
    const std::uint64_t *offs = seqOffsets();
    const bio::Residue *res = arena();
    for (std::size_t i = 0; i < numSequences(); ++i) {
        std::vector<bio::Residue> residues(
            res + offs[i], res + offs[i + 1]);
        db.add(bio::Sequence(std::string(id(i)),
                             std::string(description(i)),
                             std::move(residues)));
    }
    return db;
}

} // namespace bioarch::index
