/**
 * @file
 * Persistent database-side k-mer seed index: an inverted map from
 * every length-w word of the database to the posting list of
 * (sequence, position) pairs where it occurs.
 *
 * This is the database half of the BLAST index-then-extend
 * decomposition (Nguyen & Lavenier, PAPERS.md): the query side
 * already exists as align::NeighborhoodIndex (word -> query
 * positions whose T-threshold neighborhood contains it); joining
 * the two on the word gives exactly the seed hits the
 * BlastWordFinder scan would discover — without touching the
 * subject residues at all. probeCandidates() then replays the
 * two-hit diagonal heuristic over those hits and returns the
 * sequences whose hit pattern would have triggered at least one
 * ungapped extension.
 *
 * Exactness: before the first extension on a subject, blastScan's
 * diagonal state (last-hit positions; extendedTo is still -1
 * everywhere) evolves identically to the probe's replay, so the
 * first trigger happens at the same seed hit in both. Hence
 *
 *   candidates == { seq : blastScan(seq).extensionsTried >= 1 }
 *     superset-of { seq : blastScan(seq).score > 0 }
 *
 * and rescoring only the candidates reproduces the full scan's
 * ranked hit list bit for bit (asserted by tests/index_test.cc).
 *
 * The index is either owned (build()) or a zero-copy view into an
 * mmap-ed container file (container.hh); accessors hide which.
 */

#ifndef BIOARCH_INDEX_SEED_INDEX_HH
#define BIOARCH_INDEX_SEED_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "align/blast.hh"
#include "bio/database.hh"

namespace bioarch::index
{

/** Index build tunables. */
struct IndexParams
{
    /** Word length; must match the query-side BlastParams::wordSize
     * for a probe to be usable. */
    int wordSize = 3;
};

/**
 * One posting: word occurrence at @p pos of database sequence
 * @p seq. The on-disk posting array is exactly this layout
 * (little-endian), so a mapped file serves postings zero-copy.
 */
struct Posting
{
    std::uint32_t seq = 0;
    std::uint32_t pos = 0;

    bool operator==(const Posting &other) const = default;
};

static_assert(sizeof(Posting) == 8,
              "Posting must be 8 bytes for the on-disk layout");

/** Work accounting of one probe. */
struct ProbeStats
{
    /** Words present in both the query neighborhood and the db. */
    std::uint64_t wordsMatched = 0;
    /** (query position, posting) seed hits joined on the word. */
    std::uint64_t seedHits = 0;
    /** Sequences whose hits passed the two-hit trigger. */
    std::uint64_t candidates = 0;
};

/**
 * The inverted word index: CSR posting lists over the full word
 * space (Alphabet::numSymbols ^ wordSize slots, ~12k for protein
 * w=3). Posting lists are sorted by (seq, pos) — the natural order
 * of a database-order build — so a shard probe can binary-search
 * the sequence range.
 */
class SeedIndex
{
  public:
    /** Index @p db (reads the packed residue arena). */
    static SeedIndex build(const bio::SequenceDatabase &db,
                           const IndexParams &params = {});

    /**
     * Zero-copy view over externally owned CSR arrays (the mmap-ed
     * container). @p heads has tableSize+1 entries; both arrays
     * must outlive the view.
     */
    static SeedIndex view(int word_size, const std::uint64_t *heads,
                          std::size_t table_size,
                          const Posting *postings,
                          std::size_t num_postings);

    int wordSize() const { return _wordSize; }
    /** Direct-address table slots (numSymbols ^ wordSize). */
    std::size_t tableSize() const { return _tableSize; }
    std::size_t numPostings() const { return _numPostings; }
    bool ownsStorage() const { return !_ownHeads.empty(); }

    /** CSR heads, tableSize()+1 entries. */
    const std::uint64_t *heads() const
    {
        return _ownHeads.empty() ? _viewHeads : _ownHeads.data();
    }
    const Posting *postingData() const
    {
        return _ownPostings.empty() ? _viewPostings
                                    : _ownPostings.data();
    }

    /** Posting list of word @p w, sorted by (seq, pos). */
    std::pair<const Posting *, const Posting *>
    postings(std::uint32_t w) const
    {
        const std::uint64_t *h = heads();
        const Posting *base = postingData();
        return {base + h[w], base + h[w + 1]};
    }

    /**
     * Posting sub-list of word @p w restricted to sequences in
     * [@p seq_begin, @p seq_end) — the shard probe's view.
     */
    std::pair<const Posting *, const Posting *>
    postingsInRange(std::uint32_t w, std::uint32_t seq_begin,
                    std::uint32_t seq_end) const;

    /** Structural equality (word size, heads, postings). */
    bool equals(const SeedIndex &other) const;

    /** Encode the word starting at @p residues (matches
     * align::NeighborhoodIndex::encode). */
    static std::uint32_t encodeWord(const bio::Residue *residues,
                                    int word_size);

    /** numSymbols ^ word_size. */
    static std::size_t wordSpace(int word_size);

  private:
    int _wordSize = 0;
    std::size_t _tableSize = 0;
    std::size_t _numPostings = 0;
    std::vector<std::uint64_t> _ownHeads;
    std::vector<Posting> _ownPostings;
    const std::uint64_t *_viewHeads = nullptr;
    const Posting *_viewPostings = nullptr;
};

/**
 * Probe the index for one prepared query: join the query's
 * neighborhood word table against the posting lists of sequences
 * in [@p seq_begin, @p seq_end), replay the two-hit diagonal
 * trigger (BlastParams::twoHit / twoHitWindow; single-hit mode
 * marks a candidate on the first seed hit), and return the
 * triggering sequence indices in ascending database order.
 *
 * @p nbhd.wordSize() must equal the index's word size.
 */
std::vector<std::uint32_t>
probeCandidates(const SeedIndex &index,
                const align::NeighborhoodIndex &nbhd,
                const align::BlastParams &params,
                std::size_t seq_begin, std::size_t seq_end,
                ProbeStats *stats = nullptr);

} // namespace bioarch::index

#endif // BIOARCH_INDEX_SEED_INDEX_HH
