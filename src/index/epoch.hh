/**
 * @file
 * Epoch handles: an immutable (database, seed index) pair stamped
 * with a monotonically increasing epoch number. A serving tier
 * holds a shared_ptr<const DbEpoch>; hot reload publishes a new
 * epoch and in-flight work keeps the old one alive until its last
 * batch drains (serve/reload.hh builds on this).
 */

#ifndef BIOARCH_INDEX_EPOCH_HH
#define BIOARCH_INDEX_EPOCH_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "bio/database.hh"
#include "container.hh"
#include "seed_index.hh"

namespace bioarch::index
{

/**
 * One immutable database generation. When the epoch was loaded
 * from a container file, @p file keeps the mapping alive and
 * @p index (if present) is a zero-copy view into it; when built
 * in-process, @p index owns its storage and @p file is null.
 */
struct DbEpoch
{
    std::uint64_t epoch = 0;
    bio::SequenceDatabase db;
    std::optional<SeedIndex> index;
    std::shared_ptr<DatabaseFile> file; ///< mapping owner, or null
};

/**
 * Load epoch @p epoch from the container at @p path (mmap +
 * verify + materialize). Carries the file's seed index when one is
 * present. Throws like DatabaseFile::load on corruption.
 */
std::shared_ptr<const DbEpoch> loadEpoch(const std::string &path,
                                         std::uint64_t epoch = 0);

/**
 * Wrap an in-process database as epoch @p epoch, building a fresh
 * seed index when @p build_index is set.
 */
std::shared_ptr<const DbEpoch>
makeEpoch(bio::SequenceDatabase db, bool build_index,
          std::uint64_t epoch = 0, const IndexParams &params = {});

} // namespace bioarch::index

#endif // BIOARCH_INDEX_EPOCH_HH
