#include "tracer.hh"

namespace bioarch::trace
{

Tracer::Tracer(std::string name) : _trace(std::move(name))
{
}

isa::Addr
Tracer::alloc(std::size_t bytes, const char *label)
{
    const isa::Addr base = _arenaTop;
    // 16-byte alignment (Altivec vectors require it).
    _arenaTop += static_cast<isa::Addr>((bytes + 15) & ~std::size_t{15});
    _allocs.emplace_back(label, bytes);
    return base;
}

isa::Addr
Tracer::sitePc(const std::source_location &site)
{
    // One static PC per (file, line, column). The file name pointer
    // is stable per translation unit; mix it with line/column for
    // the key. Collisions across files are possible in principle but
    // harmless (two static instructions would share a PC, as with
    // code sharing).
    const std::uint64_t key =
        (reinterpret_cast<std::uint64_t>(site.file_name()) << 22)
        ^ (static_cast<std::uint64_t>(site.line()) << 10)
        ^ site.column();
    const auto [it, inserted] = _sites.try_emplace(key, _nextPc);
    if (inserted)
        ++_nextPc;
    return it->second;
}

Reg
Tracer::emit(isa::OpClass cls, Deps srcs,
             const std::source_location &site, bool produces,
             isa::Addr addr, unsigned size)
{
    isa::Inst inst;
    inst.pc = sitePc(site);
    inst.cls = cls;
    inst.addr = addr;
    inst.size = static_cast<std::uint8_t>(size);
    int n = 0;
    for (const Reg &r : srcs) {
        if (r.valid() && n < isa::maxSources)
            inst.src[n++] = r.id;
    }
    Reg out;
    if (produces) {
        out.id = _nextReg++;
        inst.dst = out.id;
    }
    _trace.append(inst);
    return out;
}

Reg
Tracer::alu(Deps srcs, std::source_location site)
{
    return emit(isa::OpClass::IntAlu, srcs, site, true);
}

Reg
Tracer::load(isa::Addr addr, unsigned size, Deps addr_srcs,
             std::source_location site)
{
    return emit(isa::OpClass::IntLoad, addr_srcs, site, true, addr,
                size);
}

void
Tracer::store(isa::Addr addr, unsigned size, Reg value, Deps addr_srcs,
              std::source_location site)
{
    isa::Inst inst;
    inst.pc = sitePc(site);
    inst.cls = isa::OpClass::IntStore;
    inst.addr = addr;
    inst.size = static_cast<std::uint8_t>(size);
    int n = 0;
    if (value.valid())
        inst.src[n++] = value.id;
    for (const Reg &r : addr_srcs) {
        if (r.valid() && n < isa::maxSources)
            inst.src[n++] = r.id;
    }
    _trace.append(inst);
}

void
Tracer::branch(bool taken, Deps srcs, std::source_location site)
{
    isa::Inst inst;
    inst.pc = sitePc(site);
    inst.cls = isa::OpClass::Branch;
    inst.taken = taken;
    inst.conditional = true;
    int n = 0;
    for (const Reg &r : srcs) {
        if (r.valid() && n < isa::maxSources)
            inst.src[n++] = r.id;
    }
    _trace.append(inst);
}

void
Tracer::jump(std::source_location site)
{
    isa::Inst inst;
    inst.pc = sitePc(site);
    inst.cls = isa::OpClass::Branch;
    inst.taken = true;
    inst.conditional = false;
    _trace.append(inst);
}

Reg
Tracer::other(Deps srcs, std::source_location site)
{
    return emit(isa::OpClass::Other, srcs, site, true);
}

Reg
Tracer::vload(isa::Addr addr, unsigned size, Deps addr_srcs,
              std::source_location site)
{
    return emit(isa::OpClass::VecLoad, addr_srcs, site, true, addr,
                size);
}

void
Tracer::vstore(isa::Addr addr, unsigned size, Reg value, Deps addr_srcs,
               std::source_location site)
{
    isa::Inst inst;
    inst.pc = sitePc(site);
    inst.cls = isa::OpClass::VecStore;
    inst.addr = addr;
    inst.size = static_cast<std::uint8_t>(size);
    int n = 0;
    if (value.valid())
        inst.src[n++] = value.id;
    for (const Reg &r : addr_srcs) {
        if (r.valid() && n < isa::maxSources)
            inst.src[n++] = r.id;
    }
    _trace.append(inst);
}

Reg
Tracer::vsimple(Deps srcs, std::source_location site)
{
    return emit(isa::OpClass::VecSimple, srcs, site, true);
}

Reg
Tracer::vperm(Deps srcs, std::source_location site)
{
    return emit(isa::OpClass::VecPerm, srcs, site, true);
}

Reg
Tracer::vcomplex(Deps srcs, std::source_location site)
{
    return emit(isa::OpClass::VecComplex, srcs, site, true);
}

Trace
Tracer::take()
{
    return std::move(_trace);
}

} // namespace bioarch::trace
