#include "trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace bioarch::trace
{

namespace
{

constexpr char magic[8] = {'B', 'I', 'O', 'T', 'R', 'C', '0', '1'};

struct Header
{
    char magic[8];
    std::uint32_t nameLength;
    std::uint32_t reserved;
    std::uint64_t instCount;
};

static_assert(sizeof(Header) == 24);

} // namespace

void
writeTrace(std::ostream &out, const Trace &trace)
{
    Header header{};
    std::memcpy(header.magic, magic, sizeof(magic));
    header.nameLength =
        static_cast<std::uint32_t>(trace.name().size());
    header.instCount = trace.size();

    out.write(reinterpret_cast<const char *>(&header),
              sizeof(header));
    out.write(trace.name().data(),
              static_cast<std::streamsize>(trace.name().size()));
    out.write(reinterpret_cast<const char *>(trace.insts().data()),
              static_cast<std::streamsize>(trace.size()
                                           * sizeof(isa::Inst)));
    if (!out)
        throw TraceIoError("trace write failed");
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceIoError("cannot open for writing: " + path);
    writeTrace(out, trace);
}

Trace
readTrace(std::istream &in)
{
    Header header{};
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in || std::memcmp(header.magic, magic, sizeof(magic)) != 0)
        throw TraceIoError("not a bioarch trace (bad magic)");
    if (header.nameLength > 4096)
        throw TraceIoError("implausible trace name length");

    std::string name(header.nameLength, '\0');
    in.read(name.data(),
            static_cast<std::streamsize>(header.nameLength));

    Trace trace(std::move(name));
    trace.reserve(header.instCount);
    isa::Inst inst;
    for (std::uint64_t i = 0; i < header.instCount; ++i) {
        in.read(reinterpret_cast<char *>(&inst), sizeof(inst));
        if (!in)
            throw TraceIoError("truncated trace file");
        trace.append(inst);
    }
    return trace;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceIoError("cannot open for reading: " + path);
    return readTrace(in);
}

} // namespace bioarch::trace
