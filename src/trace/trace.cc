#include "trace.hh"

#include <unordered_set>

namespace bioarch::trace
{

InstructionMix
Trace::mix() const
{
    InstructionMix out;
    for (const isa::Inst &inst : _insts)
        ++out.counts[static_cast<int>(inst.cls)];
    out.total = _insts.size();
    return out;
}

std::uint64_t
Trace::conditionalBranches() const
{
    std::uint64_t n = 0;
    for (const isa::Inst &inst : _insts)
        n += inst.isBranch() && inst.conditional;
    return n;
}

std::size_t
Trace::staticFootprint() const
{
    std::unordered_set<isa::Addr> pcs;
    for (const isa::Inst &inst : _insts)
        pcs.insert(inst.pc);
    return pcs.size();
}

} // namespace bioarch::trace
