/**
 * @file
 * The Tracer: an emission API that instrumented workload twins use
 * to produce dynamic instruction traces while doing the real
 * computation.
 *
 * This is our substitute for the paper's Aria/MET tracing of
 * compiled PowerPC binaries. A traced kernel mirrors each
 * conceptual machine operation of the real inner loop with one
 * Tracer call; the Tracer assigns
 *
 *   - a stable static PC per textual call site (via
 *     std::source_location), so branch predictors and the I-cache
 *     see real static instructions;
 *   - a fresh SSA register per produced value, with explicit source
 *     dependencies, so the out-of-order core sees the real
 *     dependency chains;
 *   - effective addresses from a kernel-managed arena, so the cache
 *     hierarchy sees the real data layout and access pattern;
 *   - actual branch outcomes from the genuine computation, so
 *     predictor accuracy is data-driven, not synthetic.
 */

#ifndef BIOARCH_TRACE_TRACER_HH
#define BIOARCH_TRACE_TRACER_HH

#include <cstdint>
#include <initializer_list>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/inst.hh"
#include "trace.hh"

namespace bioarch::trace
{

/**
 * Handle for a value produced by a traced instruction. A
 * default-constructed Reg means "no dependency" (e.g. an immediate
 * or a value that has long been architecturally stable).
 */
struct Reg
{
    isa::RegId id = 0;
    bool valid() const { return id != 0; }
};

/** Shorthand for dependency lists at emission sites. */
using Deps = std::initializer_list<Reg>;

/**
 * Trace builder. One Tracer per traced kernel execution.
 */
class Tracer
{
  public:
    explicit Tracer(std::string name);

    /** No copies: the trace buffer is large and uniquely owned. */
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    // ---- data memory layout -------------------------------------

    /**
     * Allocate @p bytes in the traced address space (16-byte
     * aligned, as Altivec requires). The label is kept for
     * debugging / working-set reports.
     */
    isa::Addr alloc(std::size_t bytes, const char *label);

    /** Total bytes allocated so far (the static working set). */
    std::size_t allocatedBytes() const { return _arenaTop - arenaBase; }

    // ---- scalar emission ----------------------------------------

    /** Scalar integer ALU op; returns the produced register. */
    Reg alu(Deps srcs = {},
            std::source_location site = std::source_location::current());

    /** Scalar load of @p size bytes at @p addr. */
    Reg load(isa::Addr addr, unsigned size, Deps addr_srcs = {},
             std::source_location site =
                 std::source_location::current());

    /** Scalar store of @p value. */
    void store(isa::Addr addr, unsigned size, Reg value,
               Deps addr_srcs = {},
               std::source_location site =
                   std::source_location::current());

    /** Conditional branch with the given outcome. */
    void branch(bool taken, Deps srcs = {},
                std::source_location site =
                    std::source_location::current());

    /** Unconditional branch (always taken). */
    void jump(std::source_location site =
                  std::source_location::current());

    /** Anything else (system ops, moves the model lumps together). */
    Reg other(Deps srcs = {},
              std::source_location site =
                  std::source_location::current());

    // ---- vector emission ----------------------------------------

    /** Vector load (lvx). */
    Reg vload(isa::Addr addr, unsigned size, Deps addr_srcs = {},
              std::source_location site =
                  std::source_location::current());

    /** Vector store (stvx). */
    void vstore(isa::Addr addr, unsigned size, Reg value,
                Deps addr_srcs = {},
                std::source_location site =
                    std::source_location::current());

    /** Vector simple integer op (VI unit: vaddshs, vmaxsh, ...). */
    Reg vsimple(Deps srcs = {},
                std::source_location site =
                    std::source_location::current());

    /** Vector permute op (VPER unit: vperm, vsldoi, splat). */
    Reg vperm(Deps srcs = {},
              std::source_location site =
                  std::source_location::current());

    /** Vector complex integer op (VCMPLX unit). */
    Reg vcomplex(Deps srcs = {},
                 std::source_location site =
                     std::source_location::current());

    // ---- results ------------------------------------------------

    std::size_t size() const { return _trace.size(); }

    /** Finalize and take the trace (Tracer is then empty). */
    Trace take();

    /** Base of the data arena (first allocation lands here). */
    static constexpr isa::Addr arenaBase = 0x10000000;

  private:
    isa::Addr sitePc(const std::source_location &site);
    Reg emit(isa::OpClass cls, Deps srcs,
             const std::source_location &site, bool produces,
             isa::Addr addr = 0, unsigned size = 0);

    Trace _trace;
    isa::RegId _nextReg = 1;
    isa::Addr _nextPc = 0x1000; // word PC; code starts at 16 KB
    isa::Addr _arenaTop = arenaBase;
    /** (file, line/column) -> static PC. */
    std::unordered_map<std::uint64_t, isa::Addr> _sites;
    std::vector<std::pair<std::string, std::size_t>> _allocs;
};

} // namespace bioarch::trace

#endif // BIOARCH_TRACE_TRACER_HH
