/**
 * @file
 * In-memory dynamic instruction trace and per-class statistics.
 */

#ifndef BIOARCH_TRACE_TRACE_HH
#define BIOARCH_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace bioarch::trace
{

/**
 * Instruction mix of a trace: dynamic counts per op class — the data
 * behind the paper's Fig. 1.
 */
struct InstructionMix
{
    std::array<std::uint64_t, isa::numOpClasses> counts{};
    std::uint64_t total = 0;

    /** Fraction of @p cls in the trace (0 when empty). */
    double
    fraction(isa::OpClass cls) const
    {
        return total == 0
            ? 0.0
            : static_cast<double>(
                  counts[static_cast<int>(cls)])
                / static_cast<double>(total);
    }

    std::uint64_t
    count(isa::OpClass cls) const
    {
        return counts[static_cast<int>(cls)];
    }

    /** Branches + jumps (the paper's "ctrl"). */
    double ctrlFraction() const
    {
        return fraction(isa::OpClass::Branch);
    }
    /** Scalar + vector loads. */
    double
    loadFraction() const
    {
        return fraction(isa::OpClass::IntLoad)
            + fraction(isa::OpClass::VecLoad);
    }
    /** Scalar + vector stores. */
    double
    storeFraction() const
    {
        return fraction(isa::OpClass::IntStore)
            + fraction(isa::OpClass::VecStore);
    }
};

/**
 * A named dynamic instruction trace: the unit of work the simulator
 * consumes. Owns the instruction records and aggregate statistics.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    std::size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }

    const isa::Inst &operator[](std::size_t i) const
    {
        return _insts[i];
    }

    const std::vector<isa::Inst> &insts() const { return _insts; }

    /** Append one instruction. */
    void
    append(const isa::Inst &inst)
    {
        _insts.push_back(inst);
    }

    void reserve(std::size_t n) { _insts.reserve(n); }

    /**
     * Release the growth headroom left by append(). Tracing cannot
     * predict the dynamic length, so the instruction vector ends up
     * to ~50% over-allocated; a finished trace is read-only, so a
     * suite holding all five traces gives that memory back.
     */
    void
    shrinkToFit()
    {
        _insts.shrink_to_fit();
    }

    /** Compute the per-class instruction mix. */
    InstructionMix mix() const;

    /** Number of conditional branches in the trace. */
    std::uint64_t conditionalBranches() const;

    /** Number of distinct static PCs (static code footprint). */
    std::size_t staticFootprint() const;

    auto begin() const { return _insts.begin(); }
    auto end() const { return _insts.end(); }

  private:
    std::string _name;
    std::vector<isa::Inst> _insts;
};

} // namespace bioarch::trace

#endif // BIOARCH_TRACE_TRACE_HH
