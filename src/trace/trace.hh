/**
 * @file
 * In-memory dynamic instruction trace and per-class statistics.
 */

#ifndef BIOARCH_TRACE_TRACE_HH
#define BIOARCH_TRACE_TRACE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace bioarch::trace
{

/**
 * Instruction mix of a trace: dynamic counts per op class — the data
 * behind the paper's Fig. 1.
 */
struct InstructionMix
{
    std::array<std::uint64_t, isa::numOpClasses> counts{};
    std::uint64_t total = 0;

    /** Fraction of @p cls in the trace (0 when empty). */
    double
    fraction(isa::OpClass cls) const
    {
        return total == 0
            ? 0.0
            : static_cast<double>(
                  counts[static_cast<int>(cls)])
                / static_cast<double>(total);
    }

    std::uint64_t
    count(isa::OpClass cls) const
    {
        return counts[static_cast<int>(cls)];
    }

    /** Branches + jumps (the paper's "ctrl"). */
    double ctrlFraction() const
    {
        return fraction(isa::OpClass::Branch);
    }
    /** Scalar + vector loads. */
    double
    loadFraction() const
    {
        return fraction(isa::OpClass::IntLoad)
            + fraction(isa::OpClass::VecLoad);
    }
    /** Scalar + vector stores. */
    double
    storeFraction() const
    {
        return fraction(isa::OpClass::IntStore)
            + fraction(isa::OpClass::VecStore);
    }
};

/**
 * A zero-copy view over a contiguous run of trace instructions —
 * the unit the sampled-simulation driver hands to the detailed
 * pipeline. Indices are view-relative (0 .. size()); baseIndex()
 * records where the window sits in the owning trace. Views never
 * own or copy instruction records, so splitting a multi-million-
 * instruction trace into measurement windows costs nothing.
 */
class TraceView
{
  public:
    TraceView() = default;
    TraceView(const isa::Inst *data, std::size_t size,
              std::uint64_t base_index = 0)
        : _data(data), _size(size), _baseIndex(base_index)
    {
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    /** Index of this window's first instruction in the full trace. */
    std::uint64_t baseIndex() const { return _baseIndex; }

    const isa::Inst &operator[](std::size_t i) const
    {
        return _data[i];
    }

    const isa::Inst *begin() const { return _data; }
    const isa::Inst *end() const { return _data + _size; }

  private:
    const isa::Inst *_data = nullptr;
    std::size_t _size = 0;
    std::uint64_t _baseIndex = 0;
};

/**
 * A named dynamic instruction trace: the unit of work the simulator
 * consumes. Owns the instruction records and aggregate statistics.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    std::size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }

    const isa::Inst &operator[](std::size_t i) const
    {
        return _insts[i];
    }

    const std::vector<isa::Inst> &insts() const { return _insts; }

    /** Append one instruction. */
    void
    append(const isa::Inst &inst)
    {
        _insts.push_back(inst);
    }

    void reserve(std::size_t n) { _insts.reserve(n); }

    /**
     * Release the growth headroom left by append(). Tracing cannot
     * predict the dynamic length, so the instruction vector ends up
     * to ~50% over-allocated; a finished trace is read-only, so a
     * suite holding all five traces gives that memory back.
     */
    void
    shrinkToFit()
    {
        _insts.shrink_to_fit();
    }

    /** View over the whole trace. */
    TraceView
    view() const
    {
        return TraceView(_insts.data(), _insts.size(), 0);
    }

    /**
     * Zero-copy window [begin, begin + count), clamped to the
     * trace's end. A @p begin past the end yields an empty view.
     */
    TraceView
    subspan(std::size_t begin, std::size_t count) const
    {
        if (begin >= _insts.size())
            return TraceView(nullptr, 0, begin);
        const std::size_t n =
            std::min(count, _insts.size() - begin);
        return TraceView(_insts.data() + begin, n, begin);
    }

    /** Bytes held by the instruction records (capacity, i.e. what
     * the process actually pays, not just what is filled). */
    std::size_t
    memoryBytes() const
    {
        return _insts.capacity() * sizeof(isa::Inst);
    }

    /** Compute the per-class instruction mix. */
    InstructionMix mix() const;

    /** Number of conditional branches in the trace. */
    std::uint64_t conditionalBranches() const;

    /** Number of distinct static PCs (static code footprint). */
    std::size_t staticFootprint() const;

    auto begin() const { return _insts.begin(); }
    auto end() const { return _insts.end(); }

  private:
    std::string _name;
    std::vector<isa::Inst> _insts;
};

} // namespace bioarch::trace

#endif // BIOARCH_TRACE_TRACE_HH
