/**
 * @file
 * Binary trace file format: persist generated traces so expensive
 * workloads are traced once and simulated many times across runs
 * (the role Aria trace files played in the paper's methodology).
 *
 * Format: a fixed header (magic, version, name, instruction count)
 * followed by packed Inst records. The format is
 * endianness-naive (little-endian hosts only), which every
 * platform this library targets satisfies.
 */

#ifndef BIOARCH_TRACE_TRACE_IO_HH
#define BIOARCH_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace.hh"

namespace bioarch::trace
{

/** Thrown on malformed trace files or I/O failure. */
class TraceIoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Write @p trace to a binary stream. @throws TraceIoError */
void writeTrace(std::ostream &out, const Trace &trace);

/** Write @p trace to a file. @throws TraceIoError */
void writeTraceFile(const std::string &path, const Trace &trace);

/** Read a trace from a binary stream. @throws TraceIoError */
Trace readTrace(std::istream &in);

/** Read a trace from a file. @throws TraceIoError */
Trace readTraceFile(const std::string &path);

} // namespace bioarch::trace

#endif // BIOARCH_TRACE_TRACE_IO_HH
