/**
 * @file
 * SSEARCH-style optimized scalar Smith-Waterman.
 *
 * This mirrors the hot loop of SSEARCH34's dropgsw.c (Listing 2 of
 * the paper): a query profile is built once per query, the DP state
 * lives in an array of {H, E} cells indexed by query position, and
 * the inner loop is written with the same computation-avoidance
 * branches (`if ((e = ssj->E) > 0)`, `if (h > 0)`,
 * `if (h > ngap_init)`) that make the application branch-bound on
 * real hardware. Scores are exactly equal to the reference
 * Smith-Waterman (asserted by tests).
 */

#ifndef BIOARCH_ALIGN_SSEARCH_HH
#define BIOARCH_ALIGN_SSEARCH_HH

#include <cstdint>
#include <vector>

#include "bio/database.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"

namespace bioarch::align
{

/**
 * Query profile: for each possible subject residue, the row of
 * per-query-position substitution scores. Built once per query so
 * the inner loop does a single sequential pointer walk (the `*pwaa++`
 * of Listing 2) instead of a 2-D matrix lookup.
 */
class QueryProfile
{
  public:
    QueryProfile(const bio::Sequence &query,
                 const bio::ScoringMatrix &matrix);

    /** Profile row for subject residue @p r (length = query length). */
    const std::int16_t *
    row(bio::Residue r) const
    {
        return _rows.data()
            + static_cast<std::size_t>(r) * _queryLength;
    }

    int queryLength() const { return _queryLength; }

  private:
    int _queryLength;
    std::vector<std::int16_t> _rows; ///< numSymbols rows, row-major
};

/**
 * SSEARCH-style scalar SW scan of one subject sequence.
 *
 * @param profile prebuilt query profile
 * @param subject subject sequence
 * @param gaps affine gap penalties
 * @param[out] cells optional DP cell counter (for work accounting)
 * @return best local score with end coordinates
 */
LocalScore ssearchScan(const QueryProfile &profile,
                       const bio::Sequence &subject,
                       const bio::GapPenalties &gaps,
                       std::uint64_t *cells = nullptr);

/**
 * Search a whole database, ranking hits by E-value, as the SSEARCH
 * program does ("-b 500" keeps the best 500 scores).
 *
 * @param query query sequence
 * @param db database to scan
 * @param matrix substitution matrix
 * @param gaps gap penalties
 * @param max_hits maximum hits reported (default 500, Table I)
 */
SearchResults ssearchSearch(const bio::Sequence &query,
                            const bio::SequenceDatabase &db,
                            const bio::ScoringMatrix &matrix,
                            const bio::GapPenalties &gaps,
                            std::size_t max_hits = 500);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_SSEARCH_HH
