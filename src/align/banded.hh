/**
 * @file
 * Banded local alignment around a diagonal, the workhorse of the
 * FASTA "opt" stage and of BLAST's gapped extension.
 */

#ifndef BIOARCH_ALIGN_BANDED_HH
#define BIOARCH_ALIGN_BANDED_HH

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"

namespace bioarch::align
{

/**
 * Smith-Waterman restricted to cells with
 * |(j - i) - center_diagonal| <= half_width.
 *
 * Equivalent to full SW when the band covers the whole matrix, which
 * the tests exploit. Cells outside the band are treated as
 * unreachable.
 *
 * @param center_diagonal diagonal d = j - i at the band center
 * @param half_width band half width in diagonals (>= 0)
 */
LocalScore bandedSmithWaterman(const bio::Sequence &query,
                               const bio::Sequence &subject,
                               const bio::ScoringMatrix &matrix,
                               const bio::GapPenalties &gaps,
                               int center_diagonal, int half_width);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_BANDED_HH
