#include "banded.hh"

#include "banded_impl.hh"

namespace bioarch::align
{

LocalScore
bandedSmithWaterman(const bio::Sequence &query,
                    const bio::Sequence &subject,
                    const bio::ScoringMatrix &matrix,
                    const bio::GapPenalties &gaps,
                    int center_diagonal, int half_width)
{
    return bandedSmithWatermanScan(
        query, subject, matrix, gaps, center_diagonal, half_width,
        [](int, int, int, int, int) {});
}

} // namespace bioarch::align
