/**
 * @file
 * Shared ungapped X-drop run scorer.
 *
 * BLASTP and blastn both extend a seed hit along its diagonal in
 * two directions, tracking the best running score and stopping when
 * the score drops more than X below it. The four loops (left/right
 * x protein/nucleotide) differed only in how one step is scored, so
 * they share this template; bit-identity with the historical loops
 * is pinned by blast_test and blastn_test.
 */

#ifndef BIOARCH_ALIGN_XDROP_HH
#define BIOARCH_ALIGN_XDROP_HH

namespace bioarch::align
{

/** Outcome of one directional ungapped x-drop run. */
struct XdropRun
{
    int best = 0; ///< best running score seen (>= 0)
    int len = 0;  ///< steps included in the best prefix
};

/**
 * Walk up to @p limit diagonal steps, accumulating step scores and
 * keeping the best prefix; stop once the running score falls more
 * than @p x_drop below the best.
 *
 * @param score_at callable: score of step k (k = 0..limit-1)
 * @param step_hook callable invoked after every non-terminating
 *        step (the nucleotide scan counts unpacked bases there)
 */
template <typename ScoreAt, typename StepHook>
XdropRun
xdropRun(int limit, int x_drop, ScoreAt &&score_at,
         StepHook &&step_hook)
{
    XdropRun out;
    int run = 0;
    for (int k = 0; k < limit; ++k) {
        run += score_at(k);
        if (run > out.best) {
            out.best = run;
            out.len = k + 1;
        }
        if (run < out.best - x_drop)
            break;
        step_hook(k);
    }
    return out;
}

/** xdropRun without a per-step hook. */
template <typename ScoreAt>
XdropRun
xdropRun(int limit, int x_drop, ScoreAt &&score_at)
{
    return xdropRun(limit, x_drop,
                    static_cast<ScoreAt &&>(score_at), [](int) {});
}

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_XDROP_HH
