#include "sw_striped.hh"

#include <algorithm>

#include "karlin.hh"

namespace bioarch::align
{

template <int N>
StripedProfile<N>::StripedProfile(const bio::Sequence &query,
                                  const bio::ScoringMatrix &matrix)
    : _queryLength(static_cast<int>(query.length())),
      _segmentLength((_queryLength + N - 1) / N),
      _scores(static_cast<std::size_t>(bio::Alphabet::numSymbols)
                  * std::max(_segmentLength, 1) * N,
              padScore)
{
    // Striped layout: segment position s, lane l -> row s + l*S.
    for (int r = 0; r < bio::Alphabet::numSymbols; ++r) {
        for (int s = 0; s < _segmentLength; ++s) {
            for (int l = 0; l < N; ++l) {
                const int i = s + l * _segmentLength;
                if (i >= _queryLength)
                    continue;
                _scores[(static_cast<std::size_t>(r)
                             * _segmentLength
                         + static_cast<std::size_t>(s))
                            * N
                        + static_cast<std::size_t>(l)] =
                    static_cast<std::int16_t>(matrix.score(
                        query[static_cast<std::size_t>(i)],
                        static_cast<bio::Residue>(r)));
            }
        }
    }
}

template <int N>
LocalScore
swStripedScan(const StripedProfile<N> &profile,
              const bio::Sequence &subject,
              const bio::GapPenalties &gaps,
              std::uint64_t *lazy_iterations)
{
    using Vec = vec::VecI16<N>;
    using Lane = typename Vec::Lane;

    const int m = profile.queryLength();
    const int n = static_cast<int>(subject.length());
    const int seg = profile.segmentLength();

    LocalScore best;
    if (m == 0 || n == 0)
        return best;

    const Vec v_open = Vec::splat(static_cast<Lane>(gaps.openCost()));
    const Vec v_ext = Vec::splat(static_cast<Lane>(gaps.extendCost()));
    const Vec v_zero = Vec::splat(0);

    std::vector<Vec> h_store(static_cast<std::size_t>(seg));
    std::vector<Vec> h_load(static_cast<std::size_t>(seg));
    std::vector<Vec> e(static_cast<std::size_t>(seg));

    Lane best_score = 0;
    int best_column = -1;

    for (int j = 0; j < n; ++j) {
        const bio::Residue res = subject[static_cast<std::size_t>(j)];

        // Diagonal input for segment position 0: previous column's
        // last position, shifted up one lane (row s+lS-1 for s=0 is
        // position S-1 of lane l-1).
        Vec v_h = shiftInLow(h_store[static_cast<std::size_t>(seg - 1)],
                             0);
        std::swap(h_store, h_load);

        Vec v_f = v_zero;
        Vec v_col_best = v_zero;

        for (int s = 0; s < seg; ++s) {
            const std::size_t ss = static_cast<std::size_t>(s);
            v_h = adds(v_h, profile.vector(res, s));
            v_h = vmax(v_h, e[ss]);
            v_h = vmax(v_h, v_f);
            v_h = vmax(v_h, v_zero);
            v_col_best = vmax(v_col_best, v_h);
            h_store[ss] = v_h;

            const Vec v_h_open = subs(v_h, v_open);
            e[ss] = vmax(subs(e[ss], v_ext), v_h_open);
            v_f = vmax(subs(v_f, v_ext), v_h_open);

            v_h = h_load[ss]; // diagonal for position s+1
        }

        // Lazy F: propagate the vertical gap across segment
        // boundaries only while it can still improve something.
        // The improvement tracking also guarantees termination for
        // degenerate penalties (extend = 0), where Farrar's
        // condition alone would spin.
        v_f = shiftInLow(v_f, 0);
        int s = 0;
        bool improved_this_wrap = true;
        while (anyGreater(
            subs(v_f,
                 subs(h_store[static_cast<std::size_t>(s)], v_open)),
            0)) {
            const std::size_t ss = static_cast<std::size_t>(s);
            const Vec h_new = vmax(h_store[ss], v_f);
            improved_this_wrap |= !(h_new == h_store[ss]);
            h_store[ss] = h_new;
            e[ss] = vmax(e[ss], subs(h_new, v_open));
            v_col_best = vmax(v_col_best, h_new);
            v_f = subs(v_f, v_ext);
            if (lazy_iterations)
                ++*lazy_iterations;
            if (++s >= seg) {
                if (!improved_this_wrap)
                    break;
                improved_this_wrap = false;
                s = 0;
                v_f = shiftInLow(v_f, 0);
            }
        }

        const Lane column_max = horizontalMax(v_col_best);
        if (column_max > best_score) {
            best_score = column_max;
            best_column = j;
        }
    }

    // The striped scan reports the score and subject end; the query
    // coordinate is not tracked in the hot loop (as in the real
    // striped implementations, which re-align the few reported hits
    // when coordinates are needed).
    best.score = best_score;
    best.subjectEnd = best_column;
    return best;
}

template <int N>
SearchResults
swStripedSearch(const bio::Sequence &query,
                const bio::SequenceDatabase &db,
                const bio::ScoringMatrix &matrix,
                const bio::GapPenalties &gaps, std::size_t max_hits)
{
    SearchResults out;
    const StripedProfile<N> profile(query, matrix);
    const KarlinParams &ka = blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const LocalScore ls = swStripedScan<N>(profile, db[idx], gaps);
        out.cellsComputed += query.length() * db[idx].length();
        ++out.sequencesSearched;
        if (ls.score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.subjectEnd = ls.subjectEnd;
        hit.bitScore = ka.bitScore(ls.score);
        hit.evalue = ka.evalue(
            ls.score, static_cast<double>(query.length()), total);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

template class StripedProfile<8>;
template class StripedProfile<16>;
template LocalScore swStripedScan<8>(const StripedProfile<8> &,
                                     const bio::Sequence &,
                                     const bio::GapPenalties &,
                                     std::uint64_t *);
template LocalScore swStripedScan<16>(const StripedProfile<16> &,
                                      const bio::Sequence &,
                                      const bio::GapPenalties &,
                                      std::uint64_t *);
template SearchResults swStripedSearch<8>(
    const bio::Sequence &, const bio::SequenceDatabase &,
    const bio::ScoringMatrix &, const bio::GapPenalties &,
    std::size_t);
template SearchResults swStripedSearch<16>(
    const bio::Sequence &, const bio::SequenceDatabase &,
    const bio::ScoringMatrix &, const bio::GapPenalties &,
    std::size_t);

} // namespace bioarch::align
