#include "karlin.hh"

#include <cmath>
#include <map>
#include <vector>

namespace bioarch::align
{

namespace
{

/**
 * Probability of each distinct score value when aligning two random
 * residues from the background distribution.
 */
std::map<int, double>
scoreDistribution(const bio::ScoringMatrix &matrix,
                  const std::array<double,
                                   bio::Alphabet::numRealResidues>
                      &freqs)
{
    std::map<int, double> dist;
    for (int a = 0; a < bio::Alphabet::numRealResidues; ++a) {
        for (int b = 0; b < bio::Alphabet::numRealResidues; ++b) {
            const int s = matrix.score(static_cast<bio::Residue>(a),
                                       static_cast<bio::Residue>(b));
            dist[s] += freqs[a] * freqs[b];
        }
    }
    return dist;
}

/** sum_s p(s) * exp(lambda * s). */
double
momentGenerating(const std::map<int, double> &dist, double lambda)
{
    double sum = 0.0;
    for (const auto &[s, p] : dist)
        sum += p * std::exp(lambda * s);
    return sum;
}

} // namespace

KarlinParams
solveKarlin(const bio::ScoringMatrix &matrix,
            const std::array<double, bio::Alphabet::numRealResidues>
                &freqs)
{
    KarlinParams out;
    const auto dist = scoreDistribution(matrix, freqs);

    double mean = 0.0;
    int max_score = 0;
    for (const auto &[s, p] : dist) {
        mean += s * p;
        max_score = std::max(max_score, s);
    }
    if (mean >= 0.0 || max_score <= 0)
        return out; // theory requires E[s] < 0 and some s > 0

    // Bisect on f(lambda) = MGF(lambda) - 1. f(0) = 0 with f'(0) =
    // E[s] < 0, and f -> +inf as lambda grows, so the positive root
    // is bracketed once MGF exceeds 1.
    double hi = 1.0;
    while (momentGenerating(dist, hi) < 1.0)
        hi *= 2.0;
    double lo = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (momentGenerating(dist, mid) < 1.0)
            lo = mid;
        else
            hi = mid;
    }
    out.lambda = 0.5 * (lo + hi);

    // Relative entropy H = lambda * sum_s s p(s) exp(lambda s).
    double h = 0.0;
    for (const auto &[s, p] : dist)
        h += s * p * std::exp(out.lambda * s);
    out.h = out.lambda * h;

    // K via the Karlin-Altschul approximation
    //   K ~= H / lambda * C,  with C the standard correction for
    // lattice effects. The full series (Karlin & Altschul 1990,
    // eq. 4) needs the distribution of partial-sum minima; the
    // widely used approximation K ~= 0.1 * H / lambda is within a
    // factor ~2 of the exact value for protein matrices, which only
    // shifts E-values by a constant factor and never reorders hits.
    out.k = 0.1 * out.h / out.lambda;
    if (out.k <= 0.0)
        out.k = 0.01;
    return out;
}

const KarlinParams &
blosum62Karlin()
{
    static const KarlinParams params = solveKarlin(
        bio::blosum62(), bio::Alphabet::backgroundFrequencies());
    return params;
}

} // namespace bioarch::align
