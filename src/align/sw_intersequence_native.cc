#include "sw_intersequence_native.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "sw_intersequence_native_impl.hh"

namespace bioarch::align
{

#if BIOARCH_NATIVE_AVX2
// Implemented in sw_striped_avx2.cc (the only -mavx2 TU).
namespace detail
{
void interScanU8Avx2(const std::uint8_t *mat_t,
                     const bio::Residue *query, int m,
                     const InterSubject *subjects,
                     std::size_t count, int open_cost, int ext_cost,
                     int bias, InterLaneResult *results);
} // namespace detail
#endif

namespace
{

void
dispatchInterU8(SimdBackend backend, const std::uint8_t *mat_t,
                const bio::Residue *query, int m,
                const detail::InterSubject *subjects,
                std::size_t count, int open_cost, int ext_cost,
                int bias, detail::InterLaneResult *results)
{
    switch (backend) {
#if BIOARCH_NATIVE_SIMD && defined(__SSE2__)
    case SimdBackend::SSE2:
        detail::interScanU8<vec::native::Sse2U8>(
            mat_t, query, m, subjects, count, open_cost, ext_cost,
            bias, results);
        return;
#endif
#if BIOARCH_NATIVE_AVX2
    case SimdBackend::AVX2:
        detail::interScanU8Avx2(mat_t, query, m, subjects, count,
                                open_cost, ext_cost, bias, results);
        return;
#endif
#if BIOARCH_NATIVE_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
    case SimdBackend::NEON:
        detail::interScanU8<vec::native::NeonU8>(
            mat_t, query, m, subjects, count, open_cost, ext_cost,
            bias, results);
        return;
#endif
    default:
        detail::interScanU8<vec::native::PortableU8>(
            mat_t, query, m, subjects, count, open_cost, ext_cost,
            bias, results);
        return;
    }
}

} // namespace

void
swInterSequenceScan(const NativeQueryProfile &profile,
                    const SubjectSpan *subjects, std::size_t count,
                    const bio::GapPenalties &gaps, LocalScore *out,
                    std::uint64_t *cells, NativeScanStats *stats)
{
    const int m = profile.queryLength();
    for (std::size_t i = 0; i < count; ++i)
        out[i] = LocalScore{};
    if (cells) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < count; ++i)
            total += subjects[i].length;
        *cells += static_cast<std::uint64_t>(m) * total;
    }
    if (m == 0 || count == 0)
        return;

    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();
    const bool u8_ok = profile.hasU8() && open_cost >= 0
        && ext_cost >= 0 && open_cost <= 255 && ext_cost <= 255;
    if (!u8_ok) {
        // The whole batch rides the striped ladder per subject
        // (cells were already accounted above).
        for (std::size_t i = 0; i < count; ++i)
            if (subjects[i].length > 0)
                out[i] = swStripedNativeScan(
                    profile, subjects[i].data, subjects[i].length,
                    gaps, nullptr, stats);
        return;
    }

    // Length-sorted lane schedule: lanes retire together, and the
    // stable (length, index) key makes the schedule — and therefore
    // the retire/refill sequence — a pure function of the batch,
    // independent of how the caller discovered the subjects.
    thread_local std::vector<std::uint32_t> order;
    order.clear();
    for (std::size_t i = 0; i < count; ++i)
        if (subjects[i].length > 0)
            order.push_back(static_cast<std::uint32_t>(i));
    if (order.empty())
        return;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (subjects[a].length != subjects[b].length)
                      return subjects[a].length
                          < subjects[b].length;
                  return a < b;
              });

    thread_local std::vector<detail::InterSubject> sorted;
    thread_local std::vector<detail::InterLaneResult> results;
    sorted.resize(order.size());
    results.assign(order.size(), detail::InterLaneResult{});
    for (std::size_t k = 0; k < order.size(); ++k)
        sorted[k] = detail::InterSubject{
            subjects[order[k]].data,
            static_cast<int>(subjects[order[k]].length)};

    dispatchInterU8(profile.backend(), profile.interMatrix(),
                    profile.query().residues().data(), m,
                    sorted.data(), sorted.size(), open_cost,
                    ext_cost, profile.bias(), results.data());
    if (stats) {
        stats->scans += order.size();
        stats->interSequence += order.size();
    }

    for (std::size_t k = 0; k < order.size(); ++k) {
        const std::size_t slot = order[k];
        const detail::InterLaneResult &r = results[k];
        if (!r.saturated) {
            out[slot].score = static_cast<int>(r.best);
            out[slot].subjectEnd = r.subjectEnd;
            continue;
        }
        // Same climb the striped scan takes after 8-bit clipping:
        // 16-bit lanes, then the scalar reference.
        if (stats)
            ++stats->rescans16;
        out[slot] = swStripedScan16Tail(profile, subjects[slot].data,
                                        subjects[slot].length, gaps,
                                        stats);
    }
}

std::size_t
interSequenceCutover()
{
    if (const char *env =
            std::getenv("BIOARCH_INTERSEQ_CUTOVER")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 0)
            return static_cast<std::size_t>(v);
    }
    // From bench_aligners' GCUPS-by-length-bucket breakdown (AVX2,
    // reference container): with lanes filled, the inter-sequence
    // kernel leads in every bucket — ~1.1x at 128-255 residues,
    // ~1.9x at >= 512 — so only outliers several times the
    // SwissProt-like median stay striped, where a lone subject
    // monopolizes the lane schedule (tail divergence) and u8
    // overflow rescans get likelier. Lane *underfill* is the other
    // reason to prefer striped, and the serving shard scan handles
    // that separately with a batch-occupancy floor.
    return 2048;
}

} // namespace bioarch::align
