#include "sw_striped_native.hh"

#include <algorithm>
#include <cstdlib>

#include "smith_waterman.hh"
#include "sw_striped_native_impl.hh"

namespace bioarch::align
{

namespace
{

/** Lane counts per backend for the two ladder levels. */
int
lanes8(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Portable:
        return vec::native::PortableU8::lanes;
#if BIOARCH_NATIVE_SIMD && defined(__SSE2__)
    case SimdBackend::SSE2:
        return vec::native::Sse2U8::lanes;
#endif
#if BIOARCH_NATIVE_AVX2
    case SimdBackend::AVX2:
        return 32;
#endif
#if BIOARCH_NATIVE_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
    case SimdBackend::NEON:
        return vec::native::NeonU8::lanes;
#endif
    default:
        return vec::native::PortableU8::lanes;
    }
}

int
lanes16(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Portable:
        return vec::native::PortableI16::lanes;
#if BIOARCH_NATIVE_SIMD && defined(__SSE2__)
    case SimdBackend::SSE2:
        return vec::native::Sse2I16::lanes;
#endif
#if BIOARCH_NATIVE_AVX2
    case SimdBackend::AVX2:
        return 16;
#endif
#if BIOARCH_NATIVE_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
    case SimdBackend::NEON:
        return vec::native::NeonI16::lanes;
#endif
    default:
        return vec::native::PortableI16::lanes;
    }
}

bool
avx2Runnable()
{
#if BIOARCH_NATIVE_AVX2 && defined(__GNUC__) \
    && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

std::vector<SimdBackend>
computeCompiledBackends()
{
    std::vector<SimdBackend> out;
    if (avx2Runnable())
        out.push_back(SimdBackend::AVX2);
#if BIOARCH_NATIVE_SIMD && defined(__SSE2__)
    out.push_back(SimdBackend::SSE2);
#endif
#if BIOARCH_NATIVE_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
    out.push_back(SimdBackend::NEON);
#endif
    out.push_back(SimdBackend::Portable);
    return out;
}

} // namespace

std::string_view
backendName(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Model:
        return "model";
    case SimdBackend::Portable:
        return "portable";
    case SimdBackend::SSE2:
        return "sse2";
    case SimdBackend::AVX2:
        return "avx2";
    case SimdBackend::NEON:
        return "neon";
    }
    return "unknown";
}

std::optional<SimdBackend>
parseBackend(std::string_view name)
{
    if (name == "model")
        return SimdBackend::Model;
    if (name == "portable")
        return SimdBackend::Portable;
    if (name == "sse2")
        return SimdBackend::SSE2;
    if (name == "avx2")
        return SimdBackend::AVX2;
    if (name == "neon")
        return SimdBackend::NEON;
    if (name == "auto")
        return bestNativeBackend();
    return std::nullopt;
}

const std::vector<SimdBackend> &
compiledNativeBackends()
{
    static const std::vector<SimdBackend> backends =
        computeCompiledBackends();
    return backends;
}

SimdBackend
bestNativeBackend()
{
    return compiledNativeBackends().front();
}

SimdBackend
defaultScanBackend()
{
    if (const char *env = std::getenv("BIOARCH_SIMD_BACKEND")) {
        const auto parsed = parseBackend(env);
        if (parsed) {
            if (*parsed == SimdBackend::Model)
                return SimdBackend::Model;
            const auto &avail = compiledNativeBackends();
            if (std::find(avail.begin(), avail.end(), *parsed)
                != avail.end())
                return *parsed;
        }
        // Unknown or unrunnable request: fall through to auto.
    }
    return bestNativeBackend();
}

NativeQueryProfile::NativeQueryProfile(
    const bio::Sequence &query, const bio::ScoringMatrix &matrix,
    SimdBackend backend)
    : _query(&query), _matrix(&matrix),
      _backend(backend == SimdBackend::Model ? bestNativeBackend()
                                             : backend),
      _m(static_cast<int>(query.length())), _bias(0), _seg8(0),
      _seg16(0)
{
    if (_m == 0)
        return;

    const int min_score = matrix.minScore();
    _bias = min_score < 0 ? -min_score : 0;

    const int l16 = lanes16(_backend);
    _seg16 = (_m + l16 - 1) / l16;
    _i16 = vec::native::allocateAligned<std::int16_t>(
        static_cast<std::size_t>(bio::Alphabet::numSymbols)
        * static_cast<std::size_t>(_seg16)
        * static_cast<std::size_t>(l16));
    for (int r = 0; r < bio::Alphabet::numSymbols; ++r) {
        const bio::Residue res = static_cast<bio::Residue>(r);
        std::int16_t *row = _i16.get()
            + static_cast<std::size_t>(r)
                * static_cast<std::size_t>(_seg16)
                * static_cast<std::size_t>(l16);
        for (int s = 0; s < _seg16; ++s) {
            for (int l = 0; l < l16; ++l) {
                const int p = s + l * _seg16;
                row[s * l16 + l] =
                    p < _m ? static_cast<std::int16_t>(
                        matrix.score(res, query[p]))
                           : padScore;
            }
        }
    }

    // The 8-bit level only exists when a biased score fits a byte.
    // Today's int8 score tables always do (bias <= 128, max <= 127);
    // the check guards against a future wider score type.
    if (_bias + matrix.maxScore() > 255)
        return;
    const int l8 = lanes8(_backend);
    _seg8 = (_m + l8 - 1) / l8;
    _u8 = vec::native::allocateAligned<std::uint8_t>(
        static_cast<std::size_t>(bio::Alphabet::numSymbols)
        * static_cast<std::size_t>(_seg8)
        * static_cast<std::size_t>(l8));
    for (int r = 0; r < bio::Alphabet::numSymbols; ++r) {
        const bio::Residue res = static_cast<bio::Residue>(r);
        std::uint8_t *row = _u8.get()
            + static_cast<std::size_t>(r)
                * static_cast<std::size_t>(_seg8)
                * static_cast<std::size_t>(l8);
        for (int s = 0; s < _seg8; ++s) {
            for (int l = 0; l < l8; ++l) {
                const int p = s + l * _seg8;
                // Pad rows hold 0 (== score -bias): a pad H can only
                // decay along any alignment path, so it never
                // inflates the maximum.
                row[s * l8 + l] =
                    p < _m ? static_cast<std::uint8_t>(
                        matrix.score(res, query[p]) + _bias)
                           : 0;
            }
        }
    }

    // Transposed biased matrix for the inter-sequence kernel: row
    // per subject symbol, columns indexed by query residue, plus an
    // all-zero pad row (index numSymbols) idle lanes read — zero is
    // score -bias, which only ever decays an already-dead lane.
    const std::size_t n_sym =
        static_cast<std::size_t>(bio::Alphabet::numSymbols);
    _matT = vec::native::allocateAligned<std::uint8_t>(
        (n_sym + 1) * n_sym);
    for (int c = 0; c < bio::Alphabet::numSymbols; ++c)
        for (int r = 0; r < bio::Alphabet::numSymbols; ++r)
            _matT[static_cast<std::size_t>(c) * n_sym
                  + static_cast<std::size_t>(r)] =
                static_cast<std::uint8_t>(
                    matrix.score(static_cast<bio::Residue>(r),
                                 static_cast<bio::Residue>(c))
                    + _bias);
    for (std::size_t r = 0; r < n_sym; ++r)
        _matT[n_sym * n_sym + r] = 0;
}

#if BIOARCH_NATIVE_AVX2
// Implemented in sw_striped_avx2.cc (the only -mavx2 TU).
namespace detail
{
LocalScore scanU8Avx2(const std::uint8_t *profile, int seg,
                      const bio::Residue *subject, std::size_t n,
                      int open_cost, int ext_cost, int bias,
                      bool *saturated);
LocalScore scanI16Avx2(const std::int16_t *profile, int seg,
                       const bio::Residue *subject, std::size_t n,
                       int open_cost, int ext_cost,
                       bool *saturated);
} // namespace detail
#endif

namespace
{

LocalScore
dispatchU8(SimdBackend backend, const std::uint8_t *profile,
           int seg, const bio::Residue *subject, std::size_t n,
           int open_cost, int ext_cost, int bias, bool *saturated)
{
    switch (backend) {
#if BIOARCH_NATIVE_SIMD && defined(__SSE2__)
    case SimdBackend::SSE2:
        return detail::stripedScanU8<vec::native::Sse2U8>(
            profile, seg, subject, n, open_cost, ext_cost, bias,
            saturated);
#endif
#if BIOARCH_NATIVE_AVX2
    case SimdBackend::AVX2:
        return detail::scanU8Avx2(profile, seg, subject, n,
                                  open_cost, ext_cost, bias,
                                  saturated);
#endif
#if BIOARCH_NATIVE_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
    case SimdBackend::NEON:
        return detail::stripedScanU8<vec::native::NeonU8>(
            profile, seg, subject, n, open_cost, ext_cost, bias,
            saturated);
#endif
    default:
        return detail::stripedScanU8<vec::native::PortableU8>(
            profile, seg, subject, n, open_cost, ext_cost, bias,
            saturated);
    }
}

LocalScore
dispatchI16(SimdBackend backend, const std::int16_t *profile,
            int seg, const bio::Residue *subject, std::size_t n,
            int open_cost, int ext_cost, bool *saturated)
{
    switch (backend) {
#if BIOARCH_NATIVE_SIMD && defined(__SSE2__)
    case SimdBackend::SSE2:
        return detail::stripedScanI16<vec::native::Sse2I16>(
            profile, seg, subject, n, open_cost, ext_cost,
            saturated);
#endif
#if BIOARCH_NATIVE_AVX2
    case SimdBackend::AVX2:
        return detail::scanI16Avx2(profile, seg, subject, n,
                                   open_cost, ext_cost, saturated);
#endif
#if BIOARCH_NATIVE_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
    case SimdBackend::NEON:
        return detail::stripedScanI16<vec::native::NeonI16>(
            profile, seg, subject, n, open_cost, ext_cost,
            saturated);
#endif
    default:
        return detail::stripedScanI16<vec::native::PortableI16>(
            profile, seg, subject, n, open_cost, ext_cost,
            saturated);
    }
}

} // namespace

LocalScore
swStripedNativeScan(const NativeQueryProfile &profile,
                    const bio::Residue *subject, std::size_t n,
                    const bio::GapPenalties &gaps,
                    std::uint64_t *cells, NativeScanStats *stats)
{
    const int m = profile.queryLength();
    if (cells)
        *cells += static_cast<std::uint64_t>(m)
            * static_cast<std::uint64_t>(n);
    LocalScore out;
    if (m == 0 || n == 0)
        return out;
    if (stats) {
        ++stats->scans;
        ++stats->striped;
    }

    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    // Gap costs outside the 16-bit range would corrupt the splat
    // registers; no realistic penalty comes close, but stay exact.
    if (open_cost < 0 || ext_cost < 0 || open_cost > 32767
        || ext_cost > 32767)
        return smithWatermanScoreRaw(
            profile.query().residues().data(),
            static_cast<std::size_t>(m), subject, n,
            profile.matrix(), gaps);

    bool saturated = false;
    if (profile.hasU8() && open_cost <= 255 && ext_cost <= 255) {
        out = dispatchU8(profile.backend(), profile.profile8(),
                         profile.segmentLength8(), subject, n,
                         open_cost, ext_cost, profile.bias(),
                         &saturated);
        if (!saturated)
            return out;
        if (stats)
            ++stats->rescans16;
    }

    return swStripedScan16Tail(profile, subject, n, gaps, stats);
}

LocalScore
swStripedScan16Tail(const NativeQueryProfile &profile,
                    const bio::Residue *subject, std::size_t n,
                    const bio::GapPenalties &gaps,
                    NativeScanStats *stats)
{
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();
    bool saturated = false;
    const LocalScore out = dispatchI16(
        profile.backend(), profile.profile16(),
        profile.segmentLength16(), subject, n, open_cost, ext_cost,
        &saturated);
    if (!saturated)
        return out;

    if (stats)
        ++stats->rescansScalar;
    return smithWatermanScoreRaw(
        profile.query().residues().data(),
        static_cast<std::size_t>(profile.queryLength()), subject, n,
        profile.matrix(), gaps);
}

LocalScore
swStripedNativeScan(const NativeQueryProfile &profile,
                    const bio::Sequence &subject,
                    const bio::GapPenalties &gaps,
                    std::uint64_t *cells, NativeScanStats *stats)
{
    return swStripedNativeScan(profile,
                               subject.residues().data(),
                               subject.length(), gaps, cells,
                               stats);
}

} // namespace bioarch::align
