/**
 * @file
 * Striped SIMD Smith-Waterman (Farrar's algorithm) — the successor
 * to the paper's anti-diagonal/vertical Altivec kernels.
 *
 * The query is laid out *striped*: with segment length
 * S = ceil(m / N), the vector at segment position s holds query
 * rows {s, s+S, ..., s+(N-1)S}. The F (vertical-gap) dependency is
 * resolved lazily: the main column pass ignores cross-position F
 * propagation, and a correction loop runs only while F can still
 * improve some H — which for real scoring systems is rare. The
 * result is exactly the Smith-Waterman score (asserted against the
 * scalar reference in tests).
 *
 * Included because it is where the paper's line of work led: the
 * striped layout removes most of the permute traffic that limits
 * the paper's SW_vmx kernels (compare BM_SwSimdScan vs
 * BM_SwStripedScan in bench_aligners).
 */

#ifndef BIOARCH_ALIGN_SW_STRIPED_HH
#define BIOARCH_ALIGN_SW_STRIPED_HH

#include <cstdint>
#include <vector>

#include "bio/database.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"
#include "vec/simd.hh"

namespace bioarch::align
{

/**
 * Striped query profile: per subject residue, segment-position
 * vectors in Farrar's layout.
 */
template <int N>
class StripedProfile
{
  public:
    /** Sentinel score for pad rows (beyond the query). */
    static constexpr std::int16_t padScore = -1000;

    StripedProfile(const bio::Sequence &query,
                   const bio::ScoringMatrix &matrix);

    int queryLength() const { return _queryLength; }
    /** Segment length S = ceil(m / N). */
    int segmentLength() const { return _segmentLength; }

    /** The vector for subject residue @p r, segment position @p s. */
    vec::VecI16<N>
    vector(bio::Residue r, int s) const
    {
        return vec::VecI16<N>::load(
            _scores.data()
            + (static_cast<std::size_t>(r) * _segmentLength
               + static_cast<std::size_t>(s))
                * N);
    }

  private:
    int _queryLength;
    int _segmentLength;
    std::vector<std::int16_t> _scores;
};

/**
 * Striped Smith-Waterman scan of one subject sequence.
 *
 * @param[out] lazy_iterations optional count of lazy-F correction
 *             steps (a measure of how rare the F path is)
 */
template <int N>
LocalScore swStripedScan(const StripedProfile<N> &profile,
                         const bio::Sequence &subject,
                         const bio::GapPenalties &gaps,
                         std::uint64_t *lazy_iterations = nullptr);

/** Database search with the striped kernel. */
template <int N>
SearchResults swStripedSearch(const bio::Sequence &query,
                              const bio::SequenceDatabase &db,
                              const bio::ScoringMatrix &matrix,
                              const bio::GapPenalties &gaps,
                              std::size_t max_hits = 500);

extern template class StripedProfile<8>;
extern template class StripedProfile<16>;
extern template LocalScore
swStripedScan<8>(const StripedProfile<8> &, const bio::Sequence &,
                 const bio::GapPenalties &, std::uint64_t *);
extern template LocalScore
swStripedScan<16>(const StripedProfile<16> &, const bio::Sequence &,
                  const bio::GapPenalties &, std::uint64_t *);
extern template SearchResults
swStripedSearch<8>(const bio::Sequence &,
                   const bio::SequenceDatabase &,
                   const bio::ScoringMatrix &,
                   const bio::GapPenalties &, std::size_t);
extern template SearchResults
swStripedSearch<16>(const bio::Sequence &,
                    const bio::SequenceDatabase &,
                    const bio::ScoringMatrix &,
                    const bio::GapPenalties &, std::size_t);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_SW_STRIPED_HH
