#include "ssearch.hh"

#include <algorithm>

#include "karlin.hh"

namespace bioarch::align
{

QueryProfile::QueryProfile(const bio::Sequence &query,
                           const bio::ScoringMatrix &matrix)
    : _queryLength(static_cast<int>(query.length())),
      _rows(static_cast<std::size_t>(bio::Alphabet::numSymbols)
                * _queryLength,
            0)
{
    for (int r = 0; r < bio::Alphabet::numSymbols; ++r) {
        std::int16_t *row =
            _rows.data() + static_cast<std::size_t>(r) * _queryLength;
        for (int i = 0; i < _queryLength; ++i) {
            row[i] = static_cast<std::int16_t>(
                matrix.score(query[i], static_cast<bio::Residue>(r)));
        }
    }
}

LocalScore
ssearchScan(const QueryProfile &profile, const bio::Sequence &subject,
            const bio::GapPenalties &gaps, std::uint64_t *cells)
{
    const int m = profile.queryLength();
    const int n = static_cast<int>(subject.length());
    const int ngap_init = gaps.openCost(); // open + first extend
    const int gap_ext = gaps.extendCost();

    LocalScore best;
    if (m == 0 || n == 0)
        return best;

    // The ss[] array of dropgsw.c: one {H, E} pair per query
    // position, reused across subject positions.
    struct Cell { int h; int e; };
    std::vector<Cell> ss(static_cast<std::size_t>(m), Cell{0, 0});

    for (int j = 0; j < n; ++j) {
        const std::int16_t *pwaa = profile.row(subject[j]);
        // p carries H[i-1][j-1] down the column; f carries F[i][j].
        int p = 0;
        int f = 0;
        for (int i = 0; i < m; ++i) {
            Cell &ssj = ss[static_cast<std::size_t>(i)];
            // h = H[i-1][j-1] + score (the `h = p + *pwaa++`).
            int h = p + pwaa[i];
            p = ssj.h;

            // F update (gap in subject, vertical). Written with the
            // same avoidance structure as E below.
            int e = ssj.e;
            if (f > 0) {
                if (h < f)
                    h = f;
                f -= gap_ext;
            }
            // E update (gap in query, horizontal).
            if (e > 0) {
                if (h < e)
                    h = e;
                e -= gap_ext;
            }
            if (h > 0) {
                if (h > best.score) {
                    best.score = h;
                    best.queryEnd = i;
                    best.subjectEnd = j;
                }
                const int open = h - ngap_init;
                if (open > e)
                    e = open;
                if (open > f)
                    f = open;
                ssj.h = h;
            } else {
                ssj.h = 0;
            }
            ssj.e = e > 0 ? e : 0;
            if (f < 0)
                f = 0;
        }
        if (cells)
            *cells += static_cast<std::uint64_t>(m);
    }
    return best;
}

SearchResults
ssearchSearch(const bio::Sequence &query, const bio::SequenceDatabase &db,
              const bio::ScoringMatrix &matrix,
              const bio::GapPenalties &gaps, std::size_t max_hits)
{
    SearchResults out;
    const QueryProfile profile(query, matrix);
    const KarlinParams &ka = blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const LocalScore ls =
            ssearchScan(profile, db[idx], gaps, &out.cellsComputed);
        ++out.sequencesSearched;
        if (ls.score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        hit.bitScore = ka.bitScore(ls.score);
        hit.evalue =
            ka.evalue(ls.score, static_cast<double>(query.length()),
                      total);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

} // namespace bioarch::align
