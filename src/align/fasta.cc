#include "fasta.hh"

#include <algorithm>
#include <cmath>

#include "banded.hh"
#include "karlin.hh"

namespace bioarch::align
{

namespace
{

/** Power of the alphabet size, for direct-address table sizing. */
std::size_t
tablePower(int ktup)
{
    std::size_t size = 1;
    for (int k = 0; k < ktup; ++k)
        size *= bio::Alphabet::numSymbols;
    return size;
}

} // namespace

KtupIndex::KtupIndex(const bio::Sequence &query, int ktup)
    : _ktup(ktup), _queryLength(static_cast<int>(query.length())),
      _heads(tablePower(ktup) + 1, 0)
{
    const int num_words = _queryLength - _ktup + 1;
    if (num_words <= 0)
        return;

    // Counting pass, then prefix sums (CSR construction).
    std::vector<std::uint32_t> words(
        static_cast<std::size_t>(num_words));
    for (int i = 0; i < num_words; ++i) {
        words[static_cast<std::size_t>(i)] =
            encode(query.residues().data() + i);
        ++_heads[words[static_cast<std::size_t>(i)] + 1];
    }
    for (std::size_t w = 1; w < _heads.size(); ++w)
        _heads[w] += _heads[w - 1];

    _positions.resize(static_cast<std::size_t>(num_words));
    std::vector<std::int32_t> cursor(_heads.begin(), _heads.end() - 1);
    for (int i = 0; i < num_words; ++i) {
        const std::uint32_t w = words[static_cast<std::size_t>(i)];
        _positions[static_cast<std::size_t>(cursor[w]++)] = i;
    }
}

namespace
{

/**
 * Rescore a diagonal run with the substitution matrix: best
 * contiguous sub-segment (Kadane) over the aligned residue pairs of
 * diagonal @p diag between query rows [lo, hi].
 */
FastaRegion
rescoreRun(const bio::Sequence &query, const bio::Sequence &subject,
           const bio::ScoringMatrix &matrix, int diag, int lo, int hi)
{
    FastaRegion out;
    out.diag = diag;
    int run = 0;
    int run_start = lo;
    for (int i = lo; i <= hi; ++i) {
        const int j = i + diag;
        const int s = matrix.score(query[i], subject[j]);
        if (run <= 0) {
            run = s;
            run_start = i;
        } else {
            run += s;
        }
        if (run > out.score) {
            out.score = run;
            out.queryStart = run_start;
            out.queryEnd = i;
        }
    }
    return out;
}

} // namespace

FastaScores
fastaScan(const KtupIndex &index, const bio::Sequence &query,
          const bio::Sequence &subject, const bio::ScoringMatrix &matrix,
          const bio::GapPenalties &gaps, const FastaParams &params,
          std::uint64_t *cells)
{
    FastaScores out;
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int ktup = index.ktup();
    if (m < ktup || n < ktup)
        return out;

    // Stage 2: diagonal hit accumulation. For each diagonal we track
    // the last hit and a running hit-count score; a gap between hits
    // on the same diagonal pays a distance penalty, and when the
    // running score goes negative the run is flushed as a candidate
    // region (the "savemax" of fasta's dropff.c).
    const int num_diags = m + n - 1;
    const int diag_offset = m - 1; // diag d=j-i maps to d+offset >= 0
    struct DiagState
    {
        std::int32_t lastQueryPos = -1000000;
        std::int32_t runStart = 0;
        std::int32_t runScore = 0;
        std::int32_t bestScore = 0;
        std::int32_t bestStart = 0;
        std::int32_t bestEnd = 0;
    };
    std::vector<DiagState> diags(static_cast<std::size_t>(num_diags));

    const int hit_bonus = 4 * ktup; // nominal score per word hit
    const auto *sres = subject.residues().data();

    for (int j = 0; j + ktup <= n; ++j) {
        const std::uint32_t w = index.encode(sres + j);
        const auto [begin, end] = index.positions(w);
        for (const std::int32_t *p = begin; p != end; ++p) {
            const int i = *p;
            const int d = j - i + diag_offset;
            DiagState &ds = diags[static_cast<std::size_t>(d)];
            const int gap = i - ds.lastQueryPos - ktup;
            if (gap < 0) {
                // Overlapping word; extends the run with no penalty.
                ds.runScore += hit_bonus + 2 * gap;
            } else if (ds.runScore - gap > 0) {
                ds.runScore += hit_bonus - gap;
            } else {
                ds.runScore = hit_bonus;
                ds.runStart = i;
            }
            ds.lastQueryPos = i;
            if (ds.runScore > ds.bestScore) {
                ds.bestScore = ds.runScore;
                ds.bestStart = ds.runStart;
                ds.bestEnd = i + ktup - 1;
            }
        }
        if (cells)
            *cells += static_cast<std::uint64_t>(end - begin) + 1;
    }

    // Collect the best regions across diagonals.
    std::vector<FastaRegion> candidates;
    for (int d = 0; d < num_diags; ++d) {
        const DiagState &ds = diags[static_cast<std::size_t>(d)];
        if (ds.bestScore <= 0)
            continue;
        FastaRegion r;
        r.diag = d - diag_offset;
        r.queryStart = ds.bestStart;
        r.queryEnd = ds.bestEnd;
        r.score = ds.bestScore;
        candidates.push_back(r);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const FastaRegion &a, const FastaRegion &b) {
                  return a.score > b.score;
              });
    if (static_cast<int>(candidates.size()) > params.maxRegions)
        candidates.resize(static_cast<std::size_t>(params.maxRegions));

    // Stage 3: matrix rescoring of each region (init1).
    for (FastaRegion &r : candidates) {
        r = rescoreRun(query, subject, matrix, r.diag,
                       std::max(0, r.queryStart),
                       std::min({r.queryEnd, m - 1,
                                 n - 1 - r.diag}));
        if (cells)
            *cells += static_cast<std::uint64_t>(
                r.queryEnd - r.queryStart + 1);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const FastaRegion &a, const FastaRegion &b) {
                  return a.score > b.score;
              });
    while (!candidates.empty() && candidates.back().score <= 0)
        candidates.pop_back();
    out.regions = candidates;
    if (candidates.empty())
        return out;
    out.init1 = candidates.front().score;

    // Stage 4: join regions (initn). Greedy chain in query order:
    // regions must not overlap in query rows; each join pays the
    // fixed gap penalty.
    std::vector<FastaRegion> byQuery = candidates;
    std::sort(byQuery.begin(), byQuery.end(),
              [](const FastaRegion &a, const FastaRegion &b) {
                  return a.queryStart < b.queryStart;
              });
    int chain = 0;
    int chain_end = -1;
    int chain_diag_end = -1000000;
    for (const FastaRegion &r : byQuery) {
        const int subj_start = r.queryStart + r.diag;
        if (r.queryStart > chain_end && subj_start > chain_diag_end) {
            const int joined =
                chain > 0 ? chain + r.score - params.joinGapPenalty
                          : r.score;
            chain = std::max(joined, r.score);
        } else {
            chain = std::max(chain, r.score);
        }
        chain_end = std::max(chain_end, r.queryEnd);
        chain_diag_end =
            std::max(chain_diag_end, r.queryEnd + r.diag);
    }
    out.initn = std::max(chain, out.init1);

    // Stage 5: banded optimization around the best region (opt).
    if (out.initn >= params.optThreshold) {
        const LocalScore banded = bandedSmithWaterman(
            query, subject, matrix, gaps, candidates.front().diag,
            params.bandHalfWidth);
        out.opt = banded.score;
        if (cells) {
            *cells += static_cast<std::uint64_t>(
                          2 * params.bandHalfWidth + 1)
                * static_cast<std::uint64_t>(n);
        }
    }
    return out;
}

SearchResults
fastaSearch(const bio::Sequence &query, const bio::SequenceDatabase &db,
            const bio::ScoringMatrix &matrix,
            const bio::GapPenalties &gaps, const FastaParams &params,
            std::size_t max_hits)
{
    SearchResults out;
    const KtupIndex index(query, params.ktup);
    const KarlinParams &ka = blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const FastaScores fs =
            fastaScan(index, query, db[idx], matrix, gaps, params,
                      &out.cellsComputed);
        ++out.sequencesSearched;
        const int score = std::max(fs.opt, fs.initn);
        if (score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = score;
        hit.bitScore = ka.bitScore(score);
        hit.evalue = ka.evalue(
            score, static_cast<double>(query.length()), total);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

} // namespace bioarch::align
