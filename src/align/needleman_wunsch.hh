/**
 * @file
 * Needleman-Wunsch global alignment with affine gaps — the classical
 * dynamic-programming baseline ([19] in the paper) that local
 * alignment generalizes.
 */

#ifndef BIOARCH_ALIGN_NEEDLEMAN_WUNSCH_HH
#define BIOARCH_ALIGN_NEEDLEMAN_WUNSCH_HH

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"

namespace bioarch::align
{

/**
 * Best global alignment score of @p query vs @p subject (both
 * sequences aligned end to end, leading/trailing gaps charged).
 */
int needlemanWunschScore(const bio::Sequence &query,
                         const bio::Sequence &subject,
                         const bio::ScoringMatrix &matrix,
                         const bio::GapPenalties &gaps);

/** Global alignment with traceback. */
Alignment needlemanWunschAlign(const bio::Sequence &query,
                               const bio::Sequence &subject,
                               const bio::ScoringMatrix &matrix,
                               const bio::GapPenalties &gaps);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_NEEDLEMAN_WUNSCH_HH
