/**
 * @file
 * The inter-sequence (multi-subject) Smith-Waterman kernel template
 * instantiated once per native SIMD backend. Private to
 * sw_intersequence_native.cc and sw_striped_avx2.cc — everything
 * else goes through the dispatching API in
 * sw_intersequence_native.hh.
 *
 * Where the striped kernel (sw_striped_native_impl.hh) spreads ONE
 * subject's DP column across all lanes — paying Farrar's lazy-F
 * correction for the stripe permutation — this kernel assigns one
 * database subject per lane (the SWIPE / SWAPHI arrangement) and
 * walks the DP column-by-column *down the query*. Within a column
 * the vertical gap F is carried serially in a register, so the
 * recurrence is exact with no correction loop at all; lanes never
 * interact except through refill masking. The trade-off is a
 * per-column gather: each lane's subject residue selects a column
 * of the transposed score matrix, scattered into a [query-residue]
 * [lane] scratch table the inner loop then loads by query residue.
 *
 * The arithmetic is the same biased unsigned 8-bit scheme as the
 * striped kernel (profile stores score+bias; unsigned saturating
 * subtraction is the local-alignment zero clamp), and a lane whose
 * running best enters the clip band [255-bias, 255] is flagged so
 * the caller can rescan that one subject up the striped 16-bit ->
 * scalar ladder. Scores and end coordinates are therefore
 * bit-identical to swStripedNativeScan for every subject.
 */

#ifndef BIOARCH_ALIGN_SW_INTERSEQUENCE_NATIVE_IMPL_HH
#define BIOARCH_ALIGN_SW_INTERSEQUENCE_NATIVE_IMPL_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bio/alphabet.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"
#endif

namespace bioarch::align::detail
{

#if defined(__SSE2__)

/**
 * 16x16 byte transpose as a 4-stage unpack network. On return,
 * output row kInterBitrev16[c] holds input column c (the network
 * permutes rows by 4-bit bit-reversal; callers index through the
 * table, which is its own inverse).
 */
inline constexpr int kInterBitrev16[16] = {0, 8, 4, 12, 2, 10,
                                           6, 14, 1, 9,  5, 13,
                                           3, 11, 7, 15};

inline void
interTranspose16(__m128i v[16])
{
    __m128i b[16], c[16], d[16];
    for (int i = 0; i < 8; ++i) {
        b[i] = _mm_unpacklo_epi8(v[2 * i], v[2 * i + 1]);
        b[i + 8] = _mm_unpackhi_epi8(v[2 * i], v[2 * i + 1]);
    }
    for (int i = 0; i < 8; ++i) {
        c[i] = _mm_unpacklo_epi16(b[2 * i], b[2 * i + 1]);
        c[i + 8] = _mm_unpackhi_epi16(b[2 * i], b[2 * i + 1]);
    }
    for (int i = 0; i < 8; ++i) {
        d[i] = _mm_unpacklo_epi32(c[2 * i], c[2 * i + 1]);
        d[i + 8] = _mm_unpackhi_epi32(c[2 * i], c[2 * i + 1]);
    }
    for (int i = 0; i < 8; ++i) {
        v[i] = _mm_unpacklo_epi64(d[2 * i], d[2 * i + 1]);
        v[i + 8] = _mm_unpackhi_epi64(d[2 * i], d[2 * i + 1]);
    }
}

/**
 * Gather one column's substitution scores for 16 lanes by SIMD
 * transpose instead of 16 x num_symbols scalar scatter stores: load
 * each lane's matrix row in two overlapping 16-byte slices (bytes
 * 0..15 and 7..22 — the pad row is the last row, and its second
 * slice ends exactly at the end of the matrix buffer), transpose
 * both blocks, and store one 16-byte vector per query symbol.
 */
inline void
interGatherGroup16(const std::uint8_t *mat_t, const int *col_idx,
                   std::uint8_t *scratch_group, int lanes)
{
    constexpr int num_symbols = bio::Alphabet::numSymbols;
    static_assert(num_symbols == 23,
                  "slice offsets assume 23 matrix columns");
    __m128i lo[16], hi[16];
    for (int l = 0; l < 16; ++l) {
        const std::uint8_t *row = mat_t
            + static_cast<std::size_t>(col_idx[l]) * num_symbols;
        lo[l] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row));
        hi[l] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + 7));
    }
    interTranspose16(lo);
    interTranspose16(hi);
    for (int r = 0; r < 16; ++r)
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(
                scratch_group
                + static_cast<std::size_t>(r) * lanes),
            lo[kInterBitrev16[r]]);
    for (int r = 16; r < num_symbols; ++r)
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(
                scratch_group
                + static_cast<std::size_t>(r) * lanes),
            hi[kInterBitrev16[r - 7]]);
}

#endif // __SSE2__

/** One lane's worth of work: a packed-arena subject slice. */
struct InterSubject
{
    const bio::Residue *data;
    int length;
};

/** Per-subject kernel output, in the caller's subject order. */
struct InterLaneResult
{
    std::uint8_t best = 0;
    std::int32_t subjectEnd = -1;
    bool saturated = false;
};

/**
 * Scan @p count subjects, one per u8 lane, against the query.
 * Subjects should arrive length-sorted so co-resident lanes retire
 * together (correct in any order, just slower). A retiring lane is
 * refilled from the queue immediately; its H/E/best state is zeroed
 * with a lane mask, and exhausted lanes idle on the all-zero pad
 * row of @p mat_t until the batch drains.
 *
 * @param mat_t  transposed biased matrix: row per *subject* symbol
 *               (numSymbols rows + one all-zero pad row), each row
 *               numSymbols biased scores indexed by query residue
 *               (NativeQueryProfile::interMatrix())
 * @param query  encoded query residues
 * @param m      query length (> 0)
 * @param results one entry per subject: best score (biased scale
 *               clips flagged via `saturated`), and the 0-based
 *               subject column the final best was first attained in
 *               (the striped kernel's subjectEnd convention)
 */
template <class V>
void
interScanU8(const std::uint8_t *mat_t, const bio::Residue *query,
            int m, const InterSubject *subjects, std::size_t count,
            int open_cost, int ext_cost, int bias,
            InterLaneResult *results)
{
    using Reg = typename V::Reg;
    using Elem = typename V::Elem;
    constexpr int lanes = V::lanes;
    constexpr int num_symbols = bio::Alphabet::numSymbols;

    const Reg v_open = V::splat(static_cast<Elem>(open_cost));
    const Reg v_ext = V::splat(static_cast<Elem>(ext_cost));
    const Reg v_bias = V::splat(static_cast<Elem>(bias));

    // Per-query-position state, reused across calls on this thread.
    thread_local std::vector<Reg> h;
    thread_local std::vector<Reg> e;
    thread_local std::vector<std::size_t> qoff;
    const std::size_t mm = static_cast<std::size_t>(m);
    h.assign(mm, V::zero());
    e.assign(mm, V::zero());
    qoff.resize(mm);
    for (std::size_t i = 0; i < mm; ++i)
        qoff[i] = static_cast<std::size_t>(query[i])
            * static_cast<std::size_t>(lanes);

    int slot[lanes];      // subject index per lane, -1 = idle
    int pos[lanes];       // current column within the subject
    Elem lane_best[lanes];
    int lane_end[lanes];
    alignas(64) Elem mask[lanes];
    alignas(64) Elem best_now[lanes];
    alignas(64) Elem best_was[lanes];
    alignas(64) Elem scratch[static_cast<std::size_t>(num_symbols)
                             * static_cast<std::size_t>(lanes)];

    Reg v_best = V::zero();
    std::size_t next = 0;
    int active = 0;
    for (int l = 0; l < lanes; ++l) {
        slot[l] = -1;
        pos[l] = 0;
        lane_best[l] = 0;
        lane_end[l] = -1;
    }
    for (int l = 0; l < lanes && next < count; ++l, ++next) {
        slot[l] = static_cast<int>(next);
        ++active;
    }

    while (active > 0) {
        // Retire finished subjects and refill from the queue. The
        // mask zeroes a refilled lane's H/E/best columns in one
        // vectorized pass; length-sorted input makes simultaneous
        // retirements (one mask pass for many lanes) the common
        // case.
        bool retired = false;
        for (int l = 0; l < lanes; ++l) {
            mask[l] = static_cast<Elem>(0xFF);
            if (slot[l] < 0 || pos[l] < subjects[slot[l]].length)
                continue;
            InterLaneResult &r = results[slot[l]];
            r.best = lane_best[l];
            r.subjectEnd = lane_end[l];
            r.saturated =
                static_cast<int>(lane_best[l]) >= 255 - bias;
            retired = true;
            mask[l] = 0;
            lane_best[l] = 0;
            lane_end[l] = -1;
            pos[l] = 0;
            if (next < count) {
                slot[l] = static_cast<int>(next++);
            } else {
                slot[l] = -1;
                --active;
            }
        }
        if (active == 0)
            break;
        if (retired) {
            const Reg v_mask = V::load(mask);
            for (std::size_t i = 0; i < mm; ++i) {
                h[i] = V::band(h[i], v_mask);
                e[i] = V::band(e[i], v_mask);
            }
            v_best = V::band(v_best, v_mask);
        }

        // Gather this column's substitution scores: each lane's
        // subject residue picks a row of the transposed matrix,
        // scattered to [query residue][lane] so the inner loop is a
        // single aligned load per query position. Idle lanes read
        // the pad row (all zeros == score -bias), which only ever
        // decays their already-zero state. On x86 the scatter runs
        // as 16-lane SIMD transposes — the scalar form is
        // store-port-bound at lanes x num_symbols byte stores per
        // column, a sizable share of the kernel.
        int col_idx[lanes];
        for (int l = 0; l < lanes; ++l)
            col_idx[l] = slot[l] >= 0
                ? static_cast<int>(subjects[slot[l]].data[pos[l]])
                : num_symbols;
#if defined(__SSE2__)
        if constexpr (sizeof(Elem) == 1 && lanes % 16 == 0) {
            for (int g = 0; g < lanes / 16; ++g)
                interGatherGroup16(
                    mat_t, col_idx + g * 16,
                    reinterpret_cast<std::uint8_t *>(scratch)
                        + g * 16,
                    lanes);
        } else
#endif
        {
            for (int l = 0; l < lanes; ++l) {
                const std::uint8_t *col = mat_t
                    + static_cast<std::size_t>(col_idx[l])
                        * num_symbols;
                for (int r = 0; r < num_symbols; ++r)
                    scratch[static_cast<std::size_t>(r) * lanes
                            + l] = static_cast<Elem>(col[r]);
            }
        }

        // One DP column for all lanes. F is carried serially down
        // the query, so the recurrence is exact — the inter-sequence
        // arrangement never needs a lazy-F correction.
        Reg v_f = V::zero();
        Reg v_diag = V::zero();
        const Reg v_best_in = v_best;
        for (std::size_t i = 0; i < mm; ++i) {
            const Reg old_h = h[i];
            const Reg v_e = V::max(V::subs(e[i], v_ext),
                                   V::subs(old_h, v_open));
            Reg v_h = V::subs(
                V::adds(v_diag, V::load(scratch + qoff[i])),
                v_bias);
            v_h = V::max(v_h, v_e);
            v_h = V::max(v_h, v_f);
            h[i] = v_h;
            e[i] = v_e;
            v_best = V::max(v_best, v_h);
            v_f = V::max(V::subs(v_f, v_ext),
                         V::subs(v_h, v_open));
            v_diag = old_h;
        }

        // Track, per lane, the column its best last strictly
        // improved in — the striped kernel's subjectEnd convention,
        // extracted only on the (self-limiting: at most 255 per
        // lane) columns where some lane actually improved.
        if (V::anyGt(v_best, v_best_in)) {
            std::memcpy(best_now, &v_best, sizeof(Reg));
            std::memcpy(best_was, &v_best_in, sizeof(Reg));
            for (int l = 0; l < lanes; ++l) {
                if (best_now[l] > best_was[l]) {
                    lane_best[l] = best_now[l];
                    lane_end[l] = pos[l];
                }
            }
        }
        for (int l = 0; l < lanes; ++l)
            pos[l] += slot[l] >= 0 ? 1 : 0;
    }
}

} // namespace bioarch::align::detail

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

#endif // BIOARCH_ALIGN_SW_INTERSEQUENCE_NATIVE_IMPL_HH
