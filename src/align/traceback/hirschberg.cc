#include "hirschberg.hh"

#include <algorithm>
#include <limits>
#include <vector>

namespace bioarch::align
{

namespace
{

constexpr int neg_inf = std::numeric_limits<int>::min() / 4;

/**
 * The divide-and-conquer core, oriented so the DP arrays run along
 * B — callers put the *shorter* sequence there, which is what makes
 * the whole traceback O(min(m, n)) space. In core coordinates an
 * 'I' consumes A and a 'D' consumes B; hirschbergAlign flips the
 * ops back when it had to swap the inputs.
 *
 * Myers-Miller gap bookkeeping: a gap of length L costs
 * g + h * L with g = gaps.open and h = gaps.extend (identical to
 * GapPenalties::cost). tb/te are the gap-open costs in force at a
 * subproblem's top/bottom boundary: g normally, 0 when the parent
 * split inside a vertical gap (the open was already charged), so a
 * gap crossing a split is charged exactly one open.
 */
class MyersMiller
{
  public:
    MyersMiller(const bio::Residue *a, const bio::Residue *b,
                const bio::ScoringMatrix &matrix, int g, int h)
        : _a(a), _b(b), _matrix(&matrix), _g(g), _h(h)
    {
    }

    /** Align A[a0..a0+m-1] vs B[b0..b0+n-1] globally; emit ops. */
    void
    run(int a0, int m, int b0, int n, Cigar &cigar)
    {
        _cc.assign(static_cast<std::size_t>(n) + 1, 0);
        _dd.assign(static_cast<std::size_t>(n) + 1, 0);
        _rr.assign(static_cast<std::size_t>(n) + 1, 0);
        _ss.assign(static_cast<std::size_t>(n) + 1, 0);
        _cigar = &cigar;
        diff(a0, m, b0, n, _g, _g);
    }

    /**
     * run() with the top-level backward arrays supplied by the
     * caller: rr[j] / ss[j] must hold the global score (score
     * ending in a vertical gap) of aligning A[a0+midi..a0+m-1]
     * against B[b0+j..b0+n-1] with terminal gaps fully charged —
     * exactly what the reverse begin-pass computes row by row, so
     * traceWindow hands its captured row across and the top level
     * only pays the forward half. Only valid at the outermost
     * level (tb = te = g); requires 1 <= midi <= m - 1.
     */
    void
    runWithBottomRows(int a0, int m, int b0, int n, int midi,
                      const int *rr, const int *ss, Cigar &cigar)
    {
        _cc.assign(static_cast<std::size_t>(n) + 1, 0);
        _dd.assign(static_cast<std::size_t>(n) + 1, 0);
        _rr.assign(rr, rr + n + 1);
        _ss.assign(ss, ss + n + 1);
        _cigar = &cigar;
        forwardTop(a0, midi, b0, n, _g);
        joinAndRecurse(a0, m, b0, n, midi, _g, _g);
    }

    std::uint64_t cells() const { return _cells; }
    /** Live DP ints while run() executes (4 arrays along B). */
    static std::uint64_t
    liveCells(std::size_t n)
    {
        return 4 * (static_cast<std::uint64_t>(n) + 1);
    }

  private:
    /** Cost of a gap of @p len (0 when empty). */
    int gapCost(int len) const { return len > 0 ? _g + _h * len : 0; }

    void
    diff(int a0, int m, int b0, int n, int tb, int te)
    {
        if (n == 0) {
            cigarAppend(*_cigar, 'I', m);
            return;
        }
        if (m == 0) {
            cigarAppend(*_cigar, 'D', n);
            return;
        }
        if (m == 1) {
            diffSingleRow(a0, b0, n, tb, te);
            return;
        }

        const int midi = m / 2;
        forwardTop(a0, midi, b0, n, tb);
        backwardBottom(a0, m, b0, n, midi, te);
        joinAndRecurse(a0, m, b0, n, midi, tb, te);
    }

    /**
     * Forward half of a split: _cc[j] / _dd[j] = best score (best
     * score ending in a vertical gap) of aligning the top half
     * A[a0..a0+midi-1] against B[b0..b0+j-1].
     */
    void
    forwardTop(int a0, int midi, int b0, int n, int tb)
    {
        _cells += static_cast<std::uint64_t>(midi)
            * static_cast<std::uint64_t>(n);
        int *const __restrict cc = _cc.data();
        int *const __restrict dd = _dd.data();
        cc[0] = 0;
        int t = _g;
        for (int j = 1; j <= n; ++j) {
            t += _h;
            cc[j] = -t;
            dd[j] = -(t + _g);
        }
        t = tb;
        const bio::Residue *const __restrict bw = _b + b0 - 1;
        for (int i = 1; i <= midi; ++i) {
            int s = cc[0];
            t += _h;
            int c = -t;
            cc[0] = c;
            int e = -(t + _g);
            const std::int8_t *const __restrict prof =
                _matrix->row(_a[a0 + i - 1]);
            for (int j = 1; j <= n; ++j) {
                const int eo = c - _g;
                e = (e > eo ? e : eo) - _h;
                const int dj = dd[j];
                const int dopen = cc[j] - _g;
                const int d = (dj > dopen ? dj : dopen) - _h;
                dd[j] = d;
                c = s + prof[bw[j]];
                c = c > d ? c : d;
                c = c > e ? c : e;
                s = cc[j];
                cc[j] = c;
            }
        }
        dd[0] = cc[0];
    }

    /**
     * Backward half: _rr[j] / _ss[j] = best score of aligning the
     * bottom half A[a0+midi..a0+m-1] against B[b0+j..b0+n-1].
     */
    void
    backwardBottom(int a0, int m, int b0, int n, int midi, int te)
    {
        _cells += static_cast<std::uint64_t>(m - midi)
            * static_cast<std::uint64_t>(n);
        int *const __restrict rr = _rr.data();
        int *const __restrict ss = _ss.data();
        rr[n] = 0;
        int t = _g;
        for (int j = n - 1; j >= 0; --j) {
            t += _h;
            rr[j] = -t;
            ss[j] = -(t + _g);
        }
        t = te;
        const bio::Residue *const __restrict bb = _b + b0;
        for (int i = m - 1; i >= midi; --i) {
            int s = rr[n];
            t += _h;
            int c = -t;
            rr[n] = c;
            int e = -(t + _g);
            const std::int8_t *const __restrict prof =
                _matrix->row(_a[a0 + i]);
            for (int j = n - 1; j >= 0; --j) {
                const int eo = c - _g;
                e = (e > eo ? e : eo) - _h;
                const int sj2 = ss[j];
                const int sopen = rr[j] - _g;
                const int d = (sj2 > sopen ? sj2 : sopen) - _h;
                ss[j] = d;
                c = s + prof[bb[j]];
                c = c > d ? c : d;
                c = c > e ? c : e;
                s = rr[j];
                rr[j] = c;
            }
        }
        ss[n] = rr[n];
    }

    /**
     * Join: the split column midj on row midi, either through a
     * match/mismatch boundary (type 1) or inside a vertical gap
     * spanning rows midi and midi+1 (type 2, which refunds the
     * double-charged open with +g); then recurse on both halves.
     */
    void
    joinAndRecurse(int a0, int m, int b0, int n, int midi, int tb,
                   int te)
    {
        int midc = _cc[0] + _rr[0];
        int midj = 0;
        int type = 1;
        for (int j = 0; j <= n; ++j) {
            const std::size_t sj = static_cast<std::size_t>(j);
            const int c = _cc[sj] + _rr[sj];
            if (c >= midc
                && (c > midc
                    || (_cc[sj] != _dd[sj] && _rr[sj] == _ss[sj]))) {
                midc = c;
                midj = j;
            }
        }
        for (int j = n; j >= 0; --j) {
            const std::size_t sj = static_cast<std::size_t>(j);
            const int c = _dd[sj] + _ss[sj] + _g;
            if (c > midc) {
                midc = c;
                midj = j;
                type = 2;
            }
        }

        if (type == 1) {
            diff(a0, midi, b0, midj, tb, _g);
            diff(a0 + midi, m - midi, b0 + midj, n - midj, _g, te);
        } else {
            diff(a0, midi - 1, b0, midj, tb, 0);
            cigarAppend(*_cigar, 'I', 2);
            diff(a0 + midi + 1, m - midi - 1, b0 + midj, n - midj,
                 0, te);
        }
    }

    /** m == 1 base case: A[a0] matches one B residue or none. */
    void
    diffSingleRow(int a0, int b0, int n, int tb, int te)
    {
        _cells += static_cast<std::uint64_t>(n);
        // Option 0: A[a0] in a vertical gap (merged with whichever
        // boundary gap is cheaper), every B residue deleted.
        int best = -(std::min(tb, te) + _h) - gapCost(n);
        int midj = 0;
        for (int j = 1; j <= n; ++j) {
            const int c = -gapCost(j - 1)
                + _matrix->score(_a[a0], _b[b0 + j - 1])
                - gapCost(n - j);
            if (c > best) {
                best = c;
                midj = j;
            }
        }
        if (midj == 0) {
            // Keep the vertical gap adjacent to the boundary it
            // merged with so the replayed CIGAR charges one open.
            if (tb <= te) {
                cigarAppend(*_cigar, 'I', 1);
                cigarAppend(*_cigar, 'D', n);
            } else {
                cigarAppend(*_cigar, 'D', n);
                cigarAppend(*_cigar, 'I', 1);
            }
        } else {
            cigarAppend(*_cigar, 'D', midj - 1);
            cigarAppend(*_cigar, 'M', 1);
            cigarAppend(*_cigar, 'D', n - midj);
        }
    }

    const bio::Residue *_a;
    const bio::Residue *_b;
    const bio::ScoringMatrix *_matrix;
    const int _g; ///< gap open (GapPenalties::open)
    const int _h; ///< gap extend per position
    Cigar *_cigar = nullptr;
    std::vector<int> _cc, _dd, _rr, _ss;
    std::uint64_t _cells = 0;
};

/** End point of the best local alignment (forward SW pass). */
struct LocalEnd
{
    int score = 0;
    int aEnd = -1;
    int bEnd = -1;
};

/**
 * Forward local score pass with the DP arrays along B. Strict->
 * best updates in (i asc, j asc) scan order make the end point the
 * first maximum — deterministic for any input.
 *
 * @param capture_i when in [1, m], the clamped H row is copied
 *        after row i = capture_i into @p cap_h (n + 1 ints):
 *        cap_h[j] = best local score ending at cell (capture_i, j).
 *        traceMidJoin uses it to join the traceback at that row
 *        without sweeping the reverse pass above it.
 */
LocalEnd
localEndPass(const bio::Residue *a, int m, const bio::Residue *b,
             int n, const bio::ScoringMatrix &matrix, int open_cost,
             int ext_cost, TracebackStats *stats, int capture_i = 0,
             int *cap_h = nullptr)
{
    LocalEnd best;
    if (m == 0 || n == 0)
        return best;
    std::vector<int> h_row(static_cast<std::size_t>(n) + 1, 0);
    std::vector<int> v_row(static_cast<std::size_t>(n) + 1, 0);
    if (stats != nullptr) {
        stats->totalCells += static_cast<std::uint64_t>(m)
            * static_cast<std::uint64_t>(n);
        stats->peakCells = std::max(
            stats->peakCells,
            2 * (static_cast<std::uint64_t>(n) + 1));
    }
    // The gap states carry no 0-clamp: E/F only reach H through a
    // max against 0, so negative values are equivalent to the
    // clamped formulation cell for cell (H is bit-identical), and
    // dropping the clamps removes two comparisons per cell.
    int *const __restrict hr = h_row.data();
    int *const __restrict vr = v_row.data();
    std::fill(vr, vr + n + 1, neg_inf);
    for (int i = 1; i <= m; ++i) {
        int h_diag = 0;
        int h_left = 0;
        int u = neg_inf;
        const std::int8_t *const __restrict prof = matrix.row(a[i - 1]);
        const bio::Residue *const __restrict bw = b - 1;
        for (int j = 1; j <= n; ++j) {
            const int vup = hr[j] - open_cost;
            const int vext = vr[j] - ext_cost;
            const int v = vup > vext ? vup : vext;
            const int uo = h_left - open_cost;
            const int ue = u - ext_cost;
            u = uo > ue ? uo : ue;
            int h = h_diag + prof[bw[j]];
            h = h > v ? h : v;
            h = h > u ? h : u;
            h = h > 0 ? h : 0;
            if (h > best.score) {
                best.score = h;
                best.aEnd = i - 1;
                best.bEnd = j - 1;
            }
            h_diag = hr[j];
            hr[j] = h;
            vr[j] = v;
            h_left = h;
        }
        if (i == capture_i)
            std::copy(hr, hr + n + 1, cap_h);
    }
    return best;
}

/**
 * Reverse globally-anchored pass: over the reversed prefixes
 * ra = reverse(A[0..aEnd]), rb = reverse(B[0..bEnd]), the (i, j)
 * maximizing the global affine alignment score of ra[0..i-1] vs
 * rb[0..j-1] (terminal gaps charged) equals the local score, and
 * pins the begin point at (aEnd - i + 1, bEnd - j + 1). Returns
 * that maximum — the score of the best local alignment ending
 * exactly at (a_end, b_end).
 */
/**
 * @param capture_i when in [1, ma], the pass copies its H and
 *        vertical-gap rows after processing row i = capture_i into
 *        @p cap_h / @p cap_f (each nb + 1 ints). Those are the
 *        backward global scores of A[a_end-capture_i+1 .. a_end] vs
 *        every B suffix — reusable as the Myers-Miller top-level
 *        backward arrays (see emitWindow).
 * @param stop_i when in [1, ma], the sweep stops after row
 *        i = stop_i; the returned best / begin then cover only the
 *        swept rows (a prefix of the full sweep, so when the best
 *        already equals the local score the begin is exactly what
 *        the full sweep would pin). @p stop_h receives the final H
 *        row (nb + 1 ints): the global score of A[a_end-stop_i+1 ..
 *        a_end] vs every B suffix, used for the mid-row join.
 */
int
reverseBeginPass(const bio::Residue *a, int a_end,
                 const bio::Residue *b, int b_end,
                 const bio::ScoringMatrix &matrix, int open_cost,
                 int ext_cost, TracebackStats *stats, int &a_begin,
                 int &b_begin, int capture_i = 0,
                 int *cap_h = nullptr, int *cap_f = nullptr,
                 int stop_i = 0, int *stop_h = nullptr)
{
    const int ma = a_end + 1;
    const int nb = b_end + 1;
    const int last = stop_i >= 1 ? stop_i : ma;
    std::vector<int> h_row(static_cast<std::size_t>(nb) + 1);
    std::vector<int> f_row(static_cast<std::size_t>(nb) + 1,
                           neg_inf);
    if (stats != nullptr) {
        stats->totalCells += static_cast<std::uint64_t>(last)
            * static_cast<std::uint64_t>(nb);
        stats->peakCells = std::max(
            stats->peakCells,
            2 * (static_cast<std::uint64_t>(nb) + 1));
    }
    int *const __restrict hr = h_row.data();
    int *const __restrict fr = f_row.data();
    hr[0] = 0;
    for (int j = 1; j <= nb; ++j)
        hr[j] = -(open_cost + ext_cost * (j - 1));

    int best = neg_inf;
    int best_i = 1;
    int best_j = 1;
    const bio::Residue *const rb = b + b_end + 1;
    for (int i = 1; i <= last; ++i) {
        int h_diag = hr[0];
        hr[0] = -(open_cost + ext_cost * (i - 1));
        int e = neg_inf;
        int h_left = hr[0];
        const std::int8_t *const __restrict prof =
            matrix.row(a[a_end - (i - 1)]);
        for (int j = 1; j <= nb; ++j) {
            const int eo = h_left - open_cost;
            const int ee = e - ext_cost;
            e = eo > ee ? eo : ee;
            const int fo = hr[j] - open_cost;
            const int fe = fr[j] - ext_cost;
            const int f = fo > fe ? fo : fe;
            int h = h_diag + prof[rb[-j]];
            h = h > e ? h : e;
            h = h > f ? h : f;
            if (h > best) {
                best = h;
                best_i = i;
                best_j = j;
            }
            h_diag = hr[j];
            hr[j] = h;
            fr[j] = f;
            h_left = h;
        }
        if (i == capture_i) {
            std::copy(hr, hr + nb + 1, cap_h);
            std::copy(fr, fr + nb + 1, cap_f);
        }
    }
    if (stop_h != nullptr)
        std::copy(hr, hr + nb + 1, stop_h);
    a_begin = a_end - (best_i - 1);
    b_begin = b_end - (best_j - 1);
    return best;
}

/** Count identities and columns of a core-oriented CIGAR. */
void
fillIdentityStats(const Cigar &cigar, const bio::Residue *a, int a0,
                  const bio::Residue *b, int b0, int &identities,
                  int &columns)
{
    identities = 0;
    columns = 0;
    int ai = a0;
    int bi = b0;
    for (const CigarOp &run : cigar) {
        columns += run.len;
        switch (run.op) {
        case 'M':
            for (std::int32_t k = 0; k < run.len; ++k)
                if (a[ai + k] == b[bi + k])
                    ++identities;
            ai += run.len;
            bi += run.len;
            break;
        case 'I':
            ai += run.len;
            break;
        default:
            bi += run.len;
            break;
        }
    }
}

/**
 * Emit one window's ops through Myers-Miller, reusing captured
 * reverse-pass rows when the capture row falls strictly inside the
 * window — the captured rows ARE the top-level backward arrays
 * (same recurrence, same terminal-gap charging, tb = te = g at the
 * top level), so MM skips its own backward half. @p cap_i is the
 * reverse-pass row index of the capture: the piece below the split
 * is A[a_end-cap_i+1 .. a_end].
 */
void
emitWindow(MyersMiller &mm, int a_begin, int b_begin, int a_end,
           int b_end, int cap_i, const std::vector<int> &cap_h,
           const std::vector<int> &cap_f, Cigar &cigar,
           TracebackStats *stats)
{
    const int m_w = a_end - a_begin + 1;
    const int n_w = b_end - b_begin + 1;
    const int midi = a_end - cap_i + 1 - a_begin;
    if (cap_i >= 1 && midi >= 1 && midi <= m_w - 1) {
        std::vector<int> rr_w(static_cast<std::size_t>(n_w) + 1);
        std::vector<int> ss_w(static_cast<std::size_t>(n_w) + 1);
        // Column mapping: MM's j counts window columns from
        // b_begin; the reverse pass counts them from b_end.
        for (int j = 0; j <= n_w; ++j) {
            rr_w[static_cast<std::size_t>(j)] =
                cap_h[static_cast<std::size_t>(n_w - j)];
            ss_w[static_cast<std::size_t>(j)] =
                cap_f[static_cast<std::size_t>(n_w - j)];
        }
        // MM's backward pass leaves ss[n] = rr[n] (no vertical-gap
        // state against an empty suffix); mirror that convention.
        ss_w[static_cast<std::size_t>(n_w)] =
            rr_w[static_cast<std::size_t>(n_w)];
        mm.runWithBottomRows(a_begin, m_w, b_begin, n_w, midi,
                             rr_w.data(), ss_w.data(), cigar);
    } else {
        mm.run(a_begin, m_w, b_begin, n_w, cigar);
    }
    if (stats != nullptr)
        stats->peakCells = std::max(
            stats->peakCells,
            6 * (static_cast<std::uint64_t>(n_w) + 1));
}

/**
 * Find the begin point of the alignment ending exactly at
 * (a_end, b_end), append its ops to @p cigar, and return its score
 * (the reverse pass's maximum). The reverse pass captures its rows
 * at the fixed row ma/2 for the fused MM top level.
 */
int
traceCore(const bio::Residue *a, const bio::Residue *b, int a_end,
          int b_end, const bio::ScoringMatrix &matrix,
          const bio::GapPenalties &gaps, TracebackStats *stats,
          Cigar &cigar, int &a_begin, int &b_begin)
{
    const int ma = a_end + 1;
    const int nb = b_end + 1;
    const int capture_i = ma / 2;
    std::vector<int> cap_h;
    std::vector<int> cap_f;
    if (capture_i >= 1) {
        cap_h.resize(static_cast<std::size_t>(nb) + 1);
        cap_f.resize(static_cast<std::size_t>(nb) + 1);
    }
    const int score = reverseBeginPass(
        a, a_end, b, b_end, matrix, gaps.openCost(),
        gaps.extendCost(), stats, a_begin, b_begin, capture_i,
        cap_h.data(), cap_f.data());
    if (score <= 0)
        return score;
    MyersMiller mm(a, b, matrix, gaps.open, gaps.extend);
    if (stats != nullptr)
        stats->peakCells = std::max(
            stats->peakCells,
            4 * (static_cast<std::uint64_t>(nb) + 1));
    emitWindow(mm, a_begin, b_begin, a_end, b_end, capture_i, cap_h,
               cap_f, cigar, stats);
    if (stats != nullptr)
        stats->totalCells += mm.cells();
    return score;
}

/** Map a core-oriented window back to query/subject coordinates. */
CigarAlignment
assembleAlignment(const bio::Residue *a, const bio::Residue *b,
                  bool swapped, int a_begin, int b_begin, int a_end,
                  int b_end, int score, Cigar &&cigar)
{
    CigarAlignment out;
    out.score = score;
    fillIdentityStats(cigar, a, a_begin, b, b_begin, out.identities,
                      out.columns);
    if (swapped) {
        for (CigarOp &run : cigar)
            if (run.op != 'M')
                run.op = run.op == 'I' ? 'D' : 'I';
        out.qBegin = b_begin;
        out.qEnd = b_end;
        out.sBegin = a_begin;
        out.sEnd = a_end;
    } else {
        out.qBegin = a_begin;
        out.qEnd = a_end;
        out.sBegin = b_begin;
        out.sEnd = b_end;
    }
    out.cigar = std::move(cigar);
    return out;
}

/**
 * The shared tail of both entry points: given an end cell in core
 * orientation (A rows, B columns), find the begin point with the
 * reverse pass, emit the CIGAR with Myers-Miller, and map back to
 * query/subject coordinates. The returned score is the reverse
 * pass's maximum — the best local alignment ending exactly at
 * (a_end, b_end), which equals the optimal local score whenever
 * the anchor is an argmax cell of the forward matrix.
 */
CigarAlignment
traceWindow(const bio::Residue *a, const bio::Residue *b,
            bool swapped, int a_end, int b_end,
            const bio::ScoringMatrix &matrix,
            const bio::GapPenalties &gaps, TracebackStats *stats)
{
    Cigar cigar;
    int a_begin = 0;
    int b_begin = 0;
    const int score = traceCore(a, b, a_end, b_end, matrix, gaps,
                                stats, cigar, a_begin, b_begin);
    if (score <= 0)
        return {};
    return assembleAlignment(a, b, swapped, a_begin, b_begin, a_end,
                             b_end, score, std::move(cigar));
}

/**
 * Mid-row join traceback: the forward end-pass captured its
 * clamped H row at the fixed row @p split_i (eh[j] = best local
 * score ending at cell (split_i, j)), so the reverse pass only
 * sweeps from the anchor down to that row. If the begin shows up
 * inside the swept rows the window is already pinned — identical
 * to what the full sweep would find, since the swept rows are its
 * first rows. Otherwise the optimal path crosses the split row,
 * and any column j with eh[j] + rev[j..] == score splits the
 * problem exactly: an anchored-local top ending at (split_i, j)
 * and a global bottom over A[split_i..a_end] x B[j..b_end], each
 * emitted with the existing fused machinery. A path that crosses
 * strictly inside a vertical gap (no co-optimal match-state
 * crossing) is rare and falls back to the full reverse sweep.
 * Every accepted join candidate is itself a valid alignment
 * ending at the anchor, so acceptance at == score is exact.
 */
CigarAlignment
traceMidJoin(const bio::Residue *a, const bio::Residue *b,
             bool swapped, int a_end, int b_end, int split_i,
             std::vector<int> &eh, int score,
             const bio::ScoringMatrix &matrix,
             const bio::GapPenalties &gaps, TracebackStats *stats)
{
    const int nb = b_end + 1;
    // Bottom piece below the split: A[split_i .. a_end].
    const int m_b = a_end - split_i + 1;
    const int cap_i = m_b / 2;
    std::vector<int> cap_h;
    std::vector<int> cap_f;
    if (cap_i >= 1) {
        cap_h.resize(static_cast<std::size_t>(nb) + 1);
        cap_f.resize(static_cast<std::size_t>(nb) + 1);
    }
    std::vector<int> join_h(static_cast<std::size_t>(nb) + 1);
    int a_begin = 0;
    int b_begin = 0;
    const int best = reverseBeginPass(
        a, a_end, b, b_end, matrix, gaps.openCost(),
        gaps.extendCost(), stats, a_begin, b_begin, cap_i,
        cap_h.data(), cap_f.data(), m_b, join_h.data());
    if (stats != nullptr)
        stats->peakCells = std::max(
            stats->peakCells,
            static_cast<std::uint64_t>(eh.size())
                + 8 * (static_cast<std::uint64_t>(nb) + 1));
    Cigar cigar;
    if (best == score) {
        MyersMiller mm(a, b, matrix, gaps.open, gaps.extend);
        emitWindow(mm, a_begin, b_begin, a_end, b_end, cap_i, cap_h,
                   cap_f, cigar, stats);
        if (stats != nullptr)
            stats->totalCells += mm.cells();
    } else {
        // The begin lies above the split row; find the smallest
        // match-state crossing column (deterministic).
        int j1 = -1;
        for (int j = 0; j <= nb; ++j) {
            if (eh[static_cast<std::size_t>(j)]
                    + join_h[static_cast<std::size_t>(nb - j)]
                == score) {
                j1 = j;
                break;
            }
        }
        if (j1 < 0)
            return traceWindow(a, b, swapped, a_end, b_end, matrix,
                               gaps, stats);
        const int top_score = eh[static_cast<std::size_t>(j1)];
        eh.clear();
        eh.shrink_to_fit();
        join_h.clear();
        join_h.shrink_to_fit();
        if (top_score == 0) {
            // Empty top piece: the alignment begins at the split.
            a_begin = split_i;
            b_begin = j1;
        } else {
            traceCore(a, b, split_i - 1, j1 - 1, matrix, gaps,
                      stats, cigar, a_begin, b_begin);
        }
        MyersMiller mm(a, b, matrix, gaps.open, gaps.extend);
        emitWindow(mm, split_i, j1, a_end, b_end, cap_i, cap_h,
                   cap_f, cigar, stats);
        if (stats != nullptr)
            stats->totalCells += mm.cells();
    }
    return assembleAlignment(a, b, swapped, a_begin, b_begin, a_end,
                             b_end, score, std::move(cigar));
}

} // namespace

CigarAlignment
hirschbergAlign(const bio::Residue *query, std::size_t query_len,
                const bio::Residue *subject, std::size_t subject_len,
                const bio::ScoringMatrix &matrix,
                const bio::GapPenalties &gaps, TracebackStats *stats)
{
    // Orient the DP arrays along the shorter sequence: A supplies
    // the rows, B the columns; a core 'I' consumes A. When the
    // subject is the shorter one it becomes B and the core output
    // maps back directly; otherwise the roles (and the ops) flip.
    const bool swapped = subject_len > query_len;
    const bio::Residue *a = swapped ? subject : query;
    const bio::Residue *b = swapped ? query : subject;
    const int m =
        static_cast<int>(swapped ? subject_len : query_len);
    const int n =
        static_cast<int>(swapped ? query_len : subject_len);

    // Capture the end-pass's H row at m/2 so the reverse pass only
    // has to sweep the anchor's lower half (traceMidJoin).
    const int split_i = m / 2;
    std::vector<int> eh;
    if (split_i >= 1)
        eh.resize(static_cast<std::size_t>(n) + 1);
    const LocalEnd end = localEndPass(a, m, b, n, matrix,
                                      gaps.openCost(),
                                      gaps.extendCost(), stats,
                                      split_i, eh.data());
    if (end.score <= 0)
        return {};
    if (split_i >= 1 && end.aEnd >= split_i)
        return traceMidJoin(a, b, swapped, end.aEnd, end.bEnd,
                            split_i, eh, end.score, matrix, gaps,
                            stats);
    return traceWindow(a, b, swapped, end.aEnd, end.bEnd, matrix,
                       gaps, stats);
}

CigarAlignment
hirschbergAlignAnchored(const bio::Residue *query,
                        std::size_t query_len,
                        const bio::Residue *subject,
                        std::size_t subject_len, int query_end,
                        int subject_end,
                        const bio::ScoringMatrix &matrix,
                        const bio::GapPenalties &gaps,
                        TracebackStats *stats)
{
    const bool q_ok = query_end >= 0
        && static_cast<std::size_t>(query_end) < query_len;
    const bool s_ok = subject_end >= 0
        && static_cast<std::size_t>(subject_end) < subject_len;
    // Half-known anchor (the striped kernels track the subject end
    // column but not the query row): the best alignment ends at
    // the known coordinate, so the other coordinate's forward
    // end-pass can stop there — truncate and realign. Scores and
    // replay stay exact because the truncated prefix still
    // contains an argmax cell of the full matrix.
    if (!q_ok || !s_ok) {
        const std::size_t q_len = q_ok
            ? static_cast<std::size_t>(query_end) + 1
            : query_len;
        const std::size_t s_len = s_ok
            ? static_cast<std::size_t>(subject_end) + 1
            : subject_len;
        return hirschbergAlign(query, q_len, subject, s_len,
                               matrix, gaps, stats);
    }

    const bool swapped = subject_len > query_len;
    const bio::Residue *a = swapped ? subject : query;
    const bio::Residue *b = swapped ? query : subject;
    const int a_end = swapped ? subject_end : query_end;
    const int b_end = swapped ? query_end : subject_end;
    return traceWindow(a, b, swapped, a_end, b_end, matrix, gaps,
                       stats);
}

CigarAlignment
hirschbergAlign(const bio::Sequence &query, const bio::Sequence &subject,
                const bio::ScoringMatrix &matrix,
                const bio::GapPenalties &gaps, TracebackStats *stats)
{
    return hirschbergAlign(query.residues().data(), query.length(),
                           subject.residues().data(),
                           subject.length(), matrix, gaps, stats);
}

} // namespace bioarch::align
