/**
 * @file
 * CIGAR alignment encoding and the replay oracle.
 *
 * The traceback tier reports alignments as run-length-encoded edit
 * scripts (SAM conventions, query-centric):
 *
 *   M — one query residue aligned to one subject residue
 *   I — query residue against a gap (gap in the subject)
 *   D — subject residue against a gap (gap in the query)
 *
 * cigarScore() replays a CIGAR against the scoring matrix and gap
 * penalties and returns the exact score the alignment is worth —
 * the correctness oracle every served alignment is gated on
 * (tests/traceback_test.cc): replayed score == reported score,
 * spans in bounds, run lengths consistent with the spans.
 */

#ifndef BIOARCH_ALIGN_TRACEBACK_CIGAR_HH
#define BIOARCH_ALIGN_TRACEBACK_CIGAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bio/scoring.hh"
#include "bio/sequence.hh"

namespace bioarch::align
{

/** One run of a CIGAR edit script. */
struct CigarOp
{
    char op = 'M';          ///< 'M', 'I' or 'D'
    std::int32_t len = 0;   ///< run length, > 0

    bool operator==(const CigarOp &other) const = default;
};

/** A full edit script, e.g. {M12, D1, M30}. */
using Cigar = std::vector<CigarOp>;

/** Append a run, merging with an adjacent run of the same op. */
void cigarAppend(Cigar &cigar, char op, std::int32_t len);

/** SAM-style text form, e.g. "12M1D30M" ("" when empty). */
std::string cigarToString(const Cigar &cigar);

/** Query residues consumed (M + I run lengths). */
std::int64_t cigarQuerySpan(const Cigar &cigar);

/** Subject residues consumed (M + D run lengths). */
std::int64_t cigarSubjectSpan(const Cigar &cigar);

/**
 * A local alignment as the reporting tier serves it: spans are
 * 0-based with inclusive ends (empty alignment: qEnd < qBegin and
 * an empty CIGAR).
 */
struct CigarAlignment
{
    int score = 0;
    int qBegin = 0;   ///< first aligned query residue
    int qEnd = -1;    ///< last aligned query residue, inclusive
    int sBegin = 0;   ///< first aligned subject residue
    int sEnd = -1;    ///< last aligned subject residue, inclusive
    Cigar cigar;
    /** Identical residue pairs among the M columns. */
    int identities = 0;
    /** Alignment columns (M + I + D run lengths). */
    int columns = 0;

    bool empty() const { return cigar.empty(); }
    /** Fraction of identical columns (0 when empty). */
    double
    identity() const
    {
        return columns == 0
            ? 0.0
            : static_cast<double>(identities) / columns;
    }

    bool operator==(const CigarAlignment &other) const = default;
};

/**
 * Replay @p alignment's CIGAR against the sequences and return the
 * exact score it is worth: M columns score via @p matrix, every
 * I/D run of length L costs gaps.cost(L). Adjacent runs of the
 * same op are treated as one gap (cigarAppend never produces
 * them, but the oracle must not reward a split).
 *
 * Throws std::invalid_argument when the CIGAR walks out of either
 * sequence or its spans disagree with qBegin/sBegin..qEnd/sEnd —
 * a malformed alignment must fail loudly, not score plausibly.
 */
int cigarScore(const CigarAlignment &alignment,
               const bio::Residue *query, std::size_t query_len,
               const bio::Residue *subject, std::size_t subject_len,
               const bio::ScoringMatrix &matrix,
               const bio::GapPenalties &gaps);

/** Sequence-object convenience overload. */
int cigarScore(const CigarAlignment &alignment,
               const bio::Sequence &query,
               const bio::Sequence &subject,
               const bio::ScoringMatrix &matrix,
               const bio::GapPenalties &gaps);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_TRACEBACK_CIGAR_HH
