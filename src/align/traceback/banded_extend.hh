/**
 * @file
 * Banded X-drop gapped extension with CIGAR traceback.
 *
 * The gapped-extension stage BLAST actually runs: a banded affine
 * DP around a seed diagonal, optionally cut short when every cell
 * of a column falls more than X below the best score seen. Unlike
 * align/banded.hh (score-only), this variant records per-cell
 * traceback directions — but only for the O(n * band) in-band
 * cells, never a full matrix — and walks them back into a CIGAR.
 *
 * With the X-drop disabled the per-cell arithmetic and the strict
 * '>' best-cell update replicate bandedSmithWatermanScan
 * (banded_impl.hh) exactly, so the reported score is bit-identical
 * to the score-only scan the serving tier ranked by; that identity
 * is what lets blastAlign()/blastnAlign() re-derive the CIGAR of a
 * ranked hit without perturbing its score.
 */

#ifndef BIOARCH_ALIGN_TRACEBACK_BANDED_EXTEND_HH
#define BIOARCH_ALIGN_TRACEBACK_BANDED_EXTEND_HH

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "cigar.hh"
#include "hirschberg.hh"

namespace bioarch::align
{

/**
 * Banded local alignment with traceback around @p center_diagonal
 * (band semantics of banded.hh: cells with
 * |(subject - query) - center| <= half_width).
 *
 * @param x_drop stop scanning further subject columns once every
 *        in-band cell of a column scores more than this below the
 *        best cell seen; negative disables the cutoff (full band,
 *        scores bit-identical to bandedSmithWatermanScan)
 */
CigarAlignment
bandedExtendAlign(const bio::Sequence &query,
                  const bio::Sequence &subject,
                  const bio::ScoringMatrix &matrix,
                  const bio::GapPenalties &gaps, int center_diagonal,
                  int half_width, int x_drop = -1,
                  TracebackStats *stats = nullptr);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_TRACEBACK_BANDED_EXTEND_HH
