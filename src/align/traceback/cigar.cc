#include "cigar.hh"

#include <stdexcept>

namespace bioarch::align
{

void
cigarAppend(Cigar &cigar, char op, std::int32_t len)
{
    if (len <= 0)
        return;
    if (!cigar.empty() && cigar.back().op == op) {
        cigar.back().len += len;
        return;
    }
    cigar.push_back(CigarOp{op, len});
}

std::string
cigarToString(const Cigar &cigar)
{
    std::string out;
    for (const CigarOp &run : cigar) {
        out += std::to_string(run.len);
        out += run.op;
    }
    return out;
}

std::int64_t
cigarQuerySpan(const Cigar &cigar)
{
    std::int64_t span = 0;
    for (const CigarOp &run : cigar)
        if (run.op == 'M' || run.op == 'I')
            span += run.len;
    return span;
}

std::int64_t
cigarSubjectSpan(const Cigar &cigar)
{
    std::int64_t span = 0;
    for (const CigarOp &run : cigar)
        if (run.op == 'M' || run.op == 'D')
            span += run.len;
    return span;
}

int
cigarScore(const CigarAlignment &alignment, const bio::Residue *query,
           std::size_t query_len, const bio::Residue *subject,
           std::size_t subject_len, const bio::ScoringMatrix &matrix,
           const bio::GapPenalties &gaps)
{
    if (alignment.cigar.empty()) {
        if (alignment.qEnd >= alignment.qBegin
            || alignment.sEnd >= alignment.sBegin)
            throw std::invalid_argument(
                "cigarScore: empty CIGAR with non-empty spans");
        return 0;
    }
    if (alignment.qBegin < 0 || alignment.sBegin < 0)
        throw std::invalid_argument(
            "cigarScore: negative begin coordinate");

    std::int64_t qi = alignment.qBegin;
    std::int64_t si = alignment.sBegin;
    int score = 0;
    char prev_op = '\0';
    for (const CigarOp &run : alignment.cigar) {
        if (run.len <= 0)
            throw std::invalid_argument(
                "cigarScore: non-positive run length");
        switch (run.op) {
        case 'M':
            if (qi + run.len > static_cast<std::int64_t>(query_len)
                || si + run.len
                    > static_cast<std::int64_t>(subject_len))
                throw std::invalid_argument(
                    "cigarScore: M run out of bounds");
            for (std::int32_t k = 0; k < run.len; ++k)
                score += matrix.score(query[qi + k], subject[si + k]);
            qi += run.len;
            si += run.len;
            break;
        case 'I':
            if (qi + run.len > static_cast<std::int64_t>(query_len))
                throw std::invalid_argument(
                    "cigarScore: I run out of bounds");
            // A run adjacent to a same-op run is one gap: charge
            // only the extensions, not a second open.
            score -= prev_op == 'I'
                ? gaps.extendCost() * run.len
                : gaps.cost(run.len);
            qi += run.len;
            break;
        case 'D':
            if (si + run.len
                > static_cast<std::int64_t>(subject_len))
                throw std::invalid_argument(
                    "cigarScore: D run out of bounds");
            score -= prev_op == 'D'
                ? gaps.extendCost() * run.len
                : gaps.cost(run.len);
            si += run.len;
            break;
        default:
            throw std::invalid_argument(
                "cigarScore: unknown CIGAR op");
        }
        prev_op = run.op;
    }
    if (qi != alignment.qEnd + 1 || si != alignment.sEnd + 1)
        throw std::invalid_argument(
            "cigarScore: CIGAR spans disagree with qEnd/sEnd");
    return score;
}

int
cigarScore(const CigarAlignment &alignment, const bio::Sequence &query,
           const bio::Sequence &subject,
           const bio::ScoringMatrix &matrix,
           const bio::GapPenalties &gaps)
{
    return cigarScore(alignment, query.residues().data(),
                      query.length(), subject.residues().data(),
                      subject.length(), matrix, gaps);
}

} // namespace bioarch::align
