/**
 * @file
 * Linear-space affine-gap local traceback (Hirschberg / Myers-Miller).
 *
 * The serving tier's phase-2 reporter: given a (query, subject)
 * pair whose top-K rank is already known from the score scan, emit
 * the optimal local alignment as a CIGAR in O(min(m, n)) space —
 * long subjects never allocate a full DP matrix.
 *
 * Three passes, all over linear arrays:
 *
 *   1. a forward Smith-Waterman score pass finds the optimal score
 *      and its END point (qEnd, sEnd);
 *   2. a reverse *globally anchored* Needleman-Wunsch pass over the
 *      reversed prefixes finds the BEGIN point: the (i, j) prefix
 *      pair of the reversed strings whose global alignment score
 *      equals the local score. (A second local pass would be wrong:
 *      its argmax may belong to a different, equal-scoring
 *      alignment that does not end at (qEnd, sEnd).)
 *   3. Myers-Miller divide-and-conquer global alignment between
 *      begin and end emits the CIGAR, splitting on the middle row
 *      and recursing on the two halves with boundary-gap credits
 *      (tb/te) so a gap crossing the split is charged one open.
 *
 * Two cross-pass fusions cut the constant factor: the end-pass
 * captures its clamped H row at the fixed row m/2, letting the
 * reverse pass stop there and join mid-matrix (an anchored-local
 * top plus a global bottom) instead of sweeping the whole window;
 * and the reverse pass captures its rows at the window midpoint,
 * which ARE Myers-Miller's top-level backward arrays, so the
 * divide-and-conquer skips its own first backward half.
 *
 * The emitted CIGAR replays to exactly the reported score via
 * cigarScore(), and the score is bit-identical to the full-matrix
 * smithWatermanAlign() — both asserted on fuzzed pairs by
 * tests/traceback_test.cc.
 */

#ifndef BIOARCH_ALIGN_TRACEBACK_HIRSCHBERG_HH
#define BIOARCH_ALIGN_TRACEBACK_HIRSCHBERG_HH

#include <cstdint>

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "cigar.hh"

namespace bioarch::align
{

/**
 * Traceback work accounting. peakCells is the high-water mark of
 * concurrently live DP array elements — the linear-space guarantee
 * is asserted as peakCells = O(min(m, n)), never O(m * n).
 */
struct TracebackStats
{
    std::uint64_t totalCells = 0; ///< DP cells evaluated
    std::uint64_t peakCells = 0;  ///< max live DP array elements

    TracebackStats &
    operator+=(const TracebackStats &other)
    {
        totalCells += other.totalCells;
        peakCells = peakCells > other.peakCells ? peakCells
                                                : other.peakCells;
        return *this;
    }
};

/**
 * Optimal local alignment of @p query vs @p subject as a CIGAR, in
 * O(min(m, n)) space and O(m * n) time. Returns an empty alignment
 * (score 0) when no residue pair scores positive.
 */
CigarAlignment
hirschbergAlign(const bio::Residue *query, std::size_t query_len,
                const bio::Residue *subject, std::size_t subject_len,
                const bio::ScoringMatrix &matrix,
                const bio::GapPenalties &gaps,
                TracebackStats *stats = nullptr);

/** Sequence-object convenience overload. */
CigarAlignment
hirschbergAlign(const bio::Sequence &query,
                const bio::Sequence &subject,
                const bio::ScoringMatrix &matrix,
                const bio::GapPenalties &gaps,
                TracebackStats *stats = nullptr);

/**
 * Local traceback anchored at a known end cell (query_end,
 * subject_end) — e.g. the endpoint a score-only scan already
 * reported. Skips the forward end-pass entirely, so it costs only
 * the reverse begin-pass over the anchored prefixes plus the
 * divide-and-conquer over the aligned window. The score is the
 * best local alignment ending exactly at the anchor; when the
 * anchor is an argmax cell of the Smith-Waterman matrix this is
 * the optimal local score, bit-identical to hirschbergAlign's.
 *
 * A half-known anchor (one coordinate negative or out of range —
 * the striped kernels report the subject end column but not the
 * query row) truncates the sequence whose end IS known to end + 1
 * and realigns with hirschbergAlign: the truncated matrix still
 * contains an argmax cell, so the score and replay stay exact.
 * With both coordinates unknown this degenerates to a plain
 * hirschbergAlign over the full pair.
 */
CigarAlignment
hirschbergAlignAnchored(const bio::Residue *query,
                        std::size_t query_len,
                        const bio::Residue *subject,
                        std::size_t subject_len, int query_end,
                        int subject_end,
                        const bio::ScoringMatrix &matrix,
                        const bio::GapPenalties &gaps,
                        TracebackStats *stats = nullptr);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_TRACEBACK_HIRSCHBERG_HH
