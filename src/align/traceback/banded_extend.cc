#include "banded_extend.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "align/types.hh"

namespace bioarch::align
{

namespace
{

constexpr int neg_inf = std::numeric_limits<int>::min() / 4;

// Direction bits packed per in-band cell: H source (2 bits), then
// whether E/F extended an existing gap (1 bit each). Same tie
// rules as smith_waterman.cc's full-matrix traceback.
enum : std::uint8_t
{
    hFromZero = 0,
    hFromDiag = 1,
    hFromE = 2,
    hFromF = 3,
    eExtBit = 1 << 2,
    fExtBit = 1 << 3,
};

} // namespace

CigarAlignment
bandedExtendAlign(const bio::Sequence &query,
                  const bio::Sequence &subject,
                  const bio::ScoringMatrix &matrix,
                  const bio::GapPenalties &gaps, int center_diagonal,
                  int half_width, int x_drop, TracebackStats *stats)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    CigarAlignment out;
    if (m == 0 || n == 0 || half_width < 0)
        return out;

    const int d_lo = center_diagonal - half_width;
    const int d_hi = center_diagonal + half_width;
    const int band = 2 * half_width + 1;

    std::vector<int> h_row(static_cast<std::size_t>(m), neg_inf);
    std::vector<int> e_row(static_cast<std::size_t>(m), neg_inf);
    // One direction byte per in-band cell, column-major within the
    // band: cell (i, j) lives at j * band + (i - i_lo(j)).
    std::vector<std::uint8_t> dirs(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(band),
        hFromZero);
    const auto band_lo = [&](int j) {
        return std::max(0, j - d_hi);
    };
    const auto dir_at = [&](int i, int j) -> std::uint8_t & {
        return dirs[static_cast<std::size_t>(j)
                        * static_cast<std::size_t>(band)
                    + static_cast<std::size_t>(i - band_lo(j))];
    };

    LocalScore best;
    int last_col = -1; ///< last column scanned (X-drop may stop early)
    std::uint64_t cells = 0;
    for (int j = 0; j < n; ++j) {
        const std::int8_t *profile = matrix.row(subject[j]);
        const int i_lo = band_lo(j);
        const int i_hi = std::min(m - 1, j - d_lo);
        last_col = j;
        if (i_lo > i_hi)
            continue;
        int h_diag = 0;
        int h_above = 0;
        int f = 0;
        if (i_lo > 0) {
            h_above = neg_inf;
            f = neg_inf;
            h_diag = h_row[static_cast<std::size_t>(i_lo - 1)];
        }
        int col_best = neg_inf;
        for (int i = i_lo; i <= i_hi; ++i) {
            const std::size_t si = static_cast<std::size_t>(i);
            const int h_left = h_row[si];
            const int e_left = e_row[si];
            int e;
            std::uint8_t dir = hFromZero;
            if (h_left > neg_inf / 2 || e_left > neg_inf / 2) {
                const int e_open = h_left - open_cost;
                const int e_ext = e_left - ext_cost;
                e = std::max({0, e_open, e_ext});
                if (e_ext > e_open)
                    dir |= eExtBit;
            } else {
                e = 0;
            }
            if (f > neg_inf / 2 || h_above > neg_inf / 2) {
                const int f_open = h_above - open_cost;
                const int f_ext = f - ext_cost;
                f = std::max({0, f_open, f_ext});
                if (f_ext > f_open)
                    dir |= fExtBit;
            } else {
                f = 0;
            }
            const int diag_base = h_diag > neg_inf / 2 ? h_diag : 0;
            const int diag = diag_base + profile[query[i]];
            int h = 0;
            if (diag > h) {
                h = diag;
                dir = static_cast<std::uint8_t>(
                    (dir & ~std::uint8_t{3}) | hFromDiag);
            }
            if (e > h) {
                h = e;
                dir = static_cast<std::uint8_t>(
                    (dir & ~std::uint8_t{3}) | hFromE);
            }
            if (f > h) {
                h = f;
                dir = static_cast<std::uint8_t>(
                    (dir & ~std::uint8_t{3}) | hFromF);
            }
            dir_at(i, j) = dir;
            ++cells;
            if (h > best.score) {
                best.score = h;
                best.queryEnd = i;
                best.subjectEnd = j;
            }
            col_best = std::max(col_best, h);
            h_diag = h_row[si];
            h_row[si] = h;
            e_row[si] = e;
            h_above = h;
        }
        if (i_lo > 0) {
            h_row[static_cast<std::size_t>(i_lo - 1)] = neg_inf;
            e_row[static_cast<std::size_t>(i_lo - 1)] = neg_inf;
        }
        if (x_drop >= 0 && best.score > 0
            && col_best < best.score - x_drop)
            break;
    }
    if (stats != nullptr) {
        stats->totalCells += cells;
        stats->peakCells = std::max(
            stats->peakCells,
            2 * static_cast<std::uint64_t>(m)
                + static_cast<std::uint64_t>(last_col + 1)
                    * static_cast<std::uint64_t>(band));
    }

    out.score = best.score;
    if (best.score <= 0) {
        out.score = 0;
        return out;
    }

    // Walk the in-band direction bytes from the best cell. Every
    // E/F step provably stays inside the band (a gap source on the
    // band edge is neg_inf, clamps to 0, and a 0 never feeds an
    // H > 0); a diagonal step that leaves the band means the
    // alignment opened from the zero floor there, so it ends.
    Cigar rev;
    int i = best.queryEnd;
    int j = best.subjectEnd;
    out.qEnd = i;
    out.sEnd = j;
    enum class Layer { h, e, f };
    Layer layer = Layer::h;
    while (true) {
        const std::uint8_t dir = dir_at(i, j);
        if (layer == Layer::h) {
            const std::uint8_t h_src = dir & std::uint8_t{3};
            if (h_src == hFromZero)
                break;
            if (h_src == hFromDiag) {
                cigarAppend(rev, 'M', 1);
                if (query[i] == subject[j])
                    ++out.identities;
                --i;
                --j;
                if (i < 0 || j < 0 || i < band_lo(j)
                    || i > j - d_lo)
                    break;
            } else {
                layer = h_src == hFromE ? Layer::e : Layer::f;
            }
        } else if (layer == Layer::e) {
            // Gap in the query: consume a subject residue.
            cigarAppend(rev, 'D', 1);
            --j;
            if ((dir & eExtBit) == 0)
                layer = Layer::h;
        } else {
            // Gap in the subject: consume a query residue.
            cigarAppend(rev, 'I', 1);
            --i;
            if ((dir & fExtBit) == 0)
                layer = Layer::h;
        }
    }
    out.qBegin = i + 1;
    out.sBegin = j + 1;
    std::reverse(rev.begin(), rev.end());
    out.cigar = std::move(rev);
    for (const CigarOp &run : out.cigar)
        out.columns += run.len;
    return out;
}

} // namespace bioarch::align
