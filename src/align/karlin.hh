/**
 * @file
 * Karlin-Altschul statistics for local alignment scores: the lambda
 * and K parameters that turn raw scores into bit scores and E-values
 * (used by the BLAST and FASTA drivers to rank hits the way the real
 * tools do).
 */

#ifndef BIOARCH_ALIGN_KARLIN_HH
#define BIOARCH_ALIGN_KARLIN_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "bio/alphabet.hh"
#include "bio/scoring.hh"

namespace bioarch::align
{

/**
 * Karlin-Altschul parameters for a scoring system over a residue
 * background distribution.
 */
struct KarlinParams
{
    double lambda = 0.0; ///< scale of the score distribution
    double k = 0.0;      ///< search-space correction constant
    double h = 0.0;      ///< relative entropy (bits per position)

    /** Raw score -> bit score. */
    double
    bitScore(int raw) const
    {
        // S' = (lambda*S - ln K) / ln 2
        return (lambda * raw - std::log(k)) / std::log(2.0);
    }

    /**
     * Expected number of chance hits with score >= @p raw when
     * searching a query of length @p m against a database of
     * @p n total residues.
     */
    double
    evalue(int raw, double m, double n) const
    {
        return k * m * n * std::exp(-lambda * raw);
    }
};

/**
 * Solve for the Karlin-Altschul parameters of an ungapped scoring
 * system.
 *
 * Lambda is the unique positive root of
 *   sum_ij p_i p_j exp(lambda * s_ij) = 1,
 * found by bisection + Newton refinement. K is computed with the
 * standard geometric-series approximation (accurate to a few percent
 * for matrices like BLOSUM62, which is all ranking needs). H is the
 * relative entropy of the aligned-pair distribution.
 *
 * The score system must have negative expected score and at least
 * one positive score; otherwise the theory does not apply and the
 * function returns all-zero parameters.
 *
 * @param matrix substitution matrix
 * @param freqs background frequency of the 20 real residues
 */
KarlinParams
solveKarlin(const bio::ScoringMatrix &matrix,
            const std::array<double, bio::Alphabet::numRealResidues>
                &freqs);

/**
 * Parameters for BLOSUM62 against the standard Robinson-Robinson
 * background (computed once, cached).
 */
const KarlinParams &blosum62Karlin();

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_KARLIN_HH
