/**
 * @file
 * FASTA-style heuristic database search (the paper's FASTA34
 * workload).
 *
 * The pipeline follows Pearson & Lipman's algorithm:
 *
 *   1. hash the query's k-tuples (ktup = 2 for proteins);
 *   2. scan each database sequence, accumulating identical-word hits
 *      per diagonal and chaining nearby hits into initial regions;
 *   3. rescore the best regions with the substitution matrix
 *      (best sub-segment) -> init1;
 *   4. join compatible regions across diagonals with gap penalties
 *      -> initn;
 *   5. run a banded Smith-Waterman around the best region for
 *      sequences that pass the initn threshold -> opt (the reported
 *      score).
 *
 * The stage structure — table lookups, per-diagonal counters, and
 * data-dependent thresholds at every step — is what gives FASTA its
 * branchy, moderately memory-light character in the paper.
 */

#ifndef BIOARCH_ALIGN_FASTA_HH
#define BIOARCH_ALIGN_FASTA_HH

#include <cstdint>
#include <vector>

#include "bio/database.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"

namespace bioarch::align
{

/** Tunables of the FASTA pipeline (defaults match fasta34 protein). */
struct FastaParams
{
    int ktup = 2;            ///< word size (2 for proteins)
    int maxRegions = 10;     ///< initial regions kept per sequence
    int joinGapPenalty = 20; ///< penalty for chaining two regions
    int optThreshold = 22;   ///< initn needed to run the opt stage
    int bandHalfWidth = 32;  ///< band half-width of the opt stage
};

/**
 * Query k-tuple index: direct-address table over all ktup-length
 * words, each entry listing the query positions where that word
 * occurs.
 */
class KtupIndex
{
  public:
    KtupIndex(const bio::Sequence &query, int ktup);

    int ktup() const { return _ktup; }
    int queryLength() const { return _queryLength; }
    std::size_t tableSize() const { return _heads.size(); }

    /** Encode the word starting at residues[pos]. */
    std::uint32_t
    encode(const bio::Residue *residues) const
    {
        std::uint32_t w = 0;
        for (int k = 0; k < _ktup; ++k)
            w = w * bio::Alphabet::numSymbols + residues[k];
        return w;
    }

    /** Query positions holding word @p w, as a [begin,end) range. */
    std::pair<const std::int32_t *, const std::int32_t *>
    positions(std::uint32_t w) const
    {
        const std::int32_t head = _heads[w];
        const std::int32_t tail = _heads[w + 1];
        return {_positions.data() + head, _positions.data() + tail};
    }

  private:
    int _ktup;
    int _queryLength;
    /** CSR layout: _heads[w].._heads[w+1] indexes _positions. */
    std::vector<std::int32_t> _heads;
    std::vector<std::int32_t> _positions;
};

/** One initial region found by the diagonal scan. */
struct FastaRegion
{
    int diag = 0;       ///< diagonal d = j - i
    int queryStart = 0; ///< 0-based, inclusive
    int queryEnd = 0;   ///< 0-based, inclusive
    int score = 0;      ///< matrix-rescored best sub-segment

    bool operator==(const FastaRegion &other) const = default;
};

/** Scores of the three FASTA stages for one subject. */
struct FastaScores
{
    int init1 = 0; ///< best single rescored region
    int initn = 0; ///< best chained region score
    int opt = 0;   ///< banded-SW score (0 if below threshold)
    std::vector<FastaRegion> regions; ///< surviving initial regions
};

/**
 * Run the FASTA stages for one subject sequence.
 *
 * @param index prebuilt query k-tuple index
 * @param query query sequence (needed for matrix rescoring)
 * @param subject subject sequence
 * @param matrix substitution matrix
 * @param gaps gap penalties (used by the opt stage)
 * @param params pipeline tunables
 * @param[out] cells optional work counter (diagonal cells + band)
 */
FastaScores fastaScan(const KtupIndex &index, const bio::Sequence &query,
                      const bio::Sequence &subject,
                      const bio::ScoringMatrix &matrix,
                      const bio::GapPenalties &gaps,
                      const FastaParams &params,
                      std::uint64_t *cells = nullptr);

/** Full database search ranked by opt score / E-value. */
SearchResults fastaSearch(const bio::Sequence &query,
                          const bio::SequenceDatabase &db,
                          const bio::ScoringMatrix &matrix,
                          const bio::GapPenalties &gaps,
                          const FastaParams &params = {},
                          std::size_t max_hits = 500);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_FASTA_HH
