#include "needleman_wunsch.hh"

#include <algorithm>
#include <limits>
#include <vector>

namespace bioarch::align
{

namespace
{

/** A safely small value that cannot underflow when decremented. */
constexpr int negInf = std::numeric_limits<int>::min() / 4;

} // namespace

int
needlemanWunschScore(const bio::Sequence &query,
                     const bio::Sequence &subject,
                     const bio::ScoringMatrix &matrix,
                     const bio::GapPenalties &gaps)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    if (m == 0 && n == 0)
        return 0;
    if (m == 0)
        return -gaps.cost(n);
    if (n == 0)
        return -gaps.cost(m);

    // h_row[i] = H[i][j-1], e_row[i] = E[i][j-1] (gap in query).
    std::vector<int> h_row(m + 1);
    std::vector<int> e_row(m + 1, negInf);
    h_row[0] = 0;
    for (int i = 1; i <= m; ++i)
        h_row[i] = -gaps.cost(i);

    for (int j = 1; j <= n; ++j) {
        const std::int8_t *profile = matrix.row(subject[j - 1]);
        int h_diag = h_row[0];
        h_row[0] = -gaps.cost(j);
        int f = negInf;
        for (int i = 1; i <= m; ++i) {
            const int e = std::max(h_row[i] - open_cost,
                                   e_row[i] - ext_cost);
            f = std::max(h_row[i - 1] - open_cost, f - ext_cost);
            const int h = std::max(
                {h_diag + profile[query[i - 1]], e, f});
            h_diag = h_row[i];
            h_row[i] = h;
            e_row[i] = e;
        }
    }
    return h_row[m];
}

Alignment
needlemanWunschAlign(const bio::Sequence &query,
                     const bio::Sequence &subject,
                     const bio::ScoringMatrix &matrix,
                     const bio::GapPenalties &gaps)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    Alignment out;
    // Full (m+1) x (n+1) score matrices for the three layers.
    const std::size_t w = static_cast<std::size_t>(m) + 1;
    auto at = [w](int i, int j) {
        return static_cast<std::size_t>(j) * w
            + static_cast<std::size_t>(i);
    };
    const std::size_t cells = w * (static_cast<std::size_t>(n) + 1);
    std::vector<int> h(cells, negInf);
    std::vector<int> e(cells, negInf);
    std::vector<int> f(cells, negInf);

    h[at(0, 0)] = 0;
    for (int i = 1; i <= m; ++i) {
        f[at(i, 0)] = -gaps.cost(i);
        h[at(i, 0)] = f[at(i, 0)];
    }
    for (int j = 1; j <= n; ++j) {
        e[at(0, j)] = -gaps.cost(j);
        h[at(0, j)] = e[at(0, j)];
    }

    for (int j = 1; j <= n; ++j) {
        const std::int8_t *profile = matrix.row(subject[j - 1]);
        for (int i = 1; i <= m; ++i) {
            e[at(i, j)] = std::max(h[at(i, j - 1)] - open_cost,
                                   e[at(i, j - 1)] - ext_cost);
            f[at(i, j)] = std::max(h[at(i - 1, j)] - open_cost,
                                   f[at(i - 1, j)] - ext_cost);
            h[at(i, j)] = std::max(
                {h[at(i - 1, j - 1)] + profile[query[i - 1]],
                 e[at(i, j)], f[at(i, j)]});
        }
    }

    out.score = h[at(m, n)];
    out.queryStart = 0;
    out.subjectStart = 0;
    out.queryEnd = m - 1;
    out.subjectEnd = n - 1;

    // Traceback across the three layers.
    std::string aq;
    std::string as;
    int i = m;
    int j = n;
    enum class Layer { h, e, f };
    Layer layer = Layer::h;
    while (i > 0 || j > 0) {
        if (layer == Layer::h) {
            const int v = h[at(i, j)];
            if (i > 0 && j > 0
                && v == h[at(i - 1, j - 1)]
                    + matrix.score(query[i - 1], subject[j - 1])) {
                aq.push_back(bio::Alphabet::decode(query[i - 1]));
                as.push_back(bio::Alphabet::decode(subject[j - 1]));
                if (query[i - 1] == subject[j - 1])
                    ++out.identities;
                --i;
                --j;
            } else if (j > 0 && v == e[at(i, j)]) {
                layer = Layer::e;
            } else {
                layer = Layer::f;
            }
        } else if (layer == Layer::e) {
            const int v = e[at(i, j)];
            aq.push_back('-');
            as.push_back(bio::Alphabet::decode(subject[j - 1]));
            const bool ext = j > 1
                && v == e[at(i, j - 1)] - ext_cost
                && e[at(i, j - 1)] > negInf / 2;
            --j;
            layer = ext ? Layer::e : Layer::h;
        } else {
            const int v = f[at(i, j)];
            aq.push_back(bio::Alphabet::decode(query[i - 1]));
            as.push_back('-');
            const bool ext = i > 1
                && v == f[at(i - 1, j)] - ext_cost
                && f[at(i - 1, j)] > negInf / 2;
            --i;
            layer = ext ? Layer::f : Layer::h;
        }
    }
    std::reverse(aq.begin(), aq.end());
    std::reverse(as.begin(), as.end());
    out.alignedQuery = std::move(aq);
    out.alignedSubject = std::move(as);
    return out;
}

} // namespace bioarch::align
