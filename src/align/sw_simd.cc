#include "sw_simd.hh"

#include <algorithm>

#include "karlin.hh"

namespace bioarch::align
{

template <int N>
VectorProfile<N>::VectorProfile(const bio::Sequence &query,
                                const bio::ScoringMatrix &matrix)
    : _queryLength(static_cast<int>(query.length())),
      _numStrips((_queryLength + N - 1) / N),
      _rows(static_cast<std::size_t>(bio::Alphabet::numSymbols)
                * std::max(_numStrips, 1) * N,
            padScore)
{
    for (int r = 0; r < bio::Alphabet::numSymbols; ++r) {
        for (int i = 0; i < _queryLength; ++i) {
            const int s = i / N;
            const int lane = i % N;
            _rows[(static_cast<std::size_t>(r) * _numStrips + s) * N
                  + lane] =
                static_cast<std::int16_t>(matrix.score(
                    query[i], static_cast<bio::Residue>(r)));
        }
    }
}

template <int N>
LocalScore
swSimdScan(const VectorProfile<N> &profile, const bio::Sequence &subject,
           const bio::GapPenalties &gaps, std::uint64_t *cells)
{
    using Vec = vec::VecI16<N>;
    using Lane = typename Vec::Lane;

    const int m = profile.queryLength();
    const int n = static_cast<int>(subject.length());
    const int strips = profile.numStrips();

    LocalScore best;
    if (m == 0 || n == 0)
        return best;

    const Vec v_open = Vec::splat(static_cast<Lane>(gaps.openCost()));
    const Vec v_ext = Vec::splat(static_cast<Lane>(gaps.extendCost()));
    const Vec v_zero = Vec::splat(0);

    // Strip boundary rows: H and incoming F of the row above the
    // current strip, per column. Double-buffered across strips.
    std::vector<Lane> h_bound(static_cast<std::size_t>(n), 0);
    std::vector<Lane> f_bound(static_cast<std::size_t>(n), 0);
    std::vector<Lane> h_bound_next(static_cast<std::size_t>(n), 0);
    std::vector<Lane> f_bound_next(static_cast<std::size_t>(n), 0);

    for (int s = 0; s < strips; ++s) {
        // Anti-diagonal state: lane l covers query row s*N + l and,
        // at diagonal step d, subject column j = d - l.
        Vec v_h_prev;        // H on diagonal d-1
        Vec v_h_prev2;       // H on diagonal d-2
        Vec v_e;             // E on diagonal d-1 (per lane)
        Vec v_f;             // F on diagonal d-1 (per lane)
        Vec v_best;          // running per-lane max of H

        for (int d = 0; d < n + N - 1; ++d) {
            const int j0 = d; // column of lane 0

            // Gather the substitution scores for this diagonal:
            // lane l needs profile[subject[d-l]] at strip s, lane l.
            // (The Altivec kernel does this with preloaded profile
            // vectors and a vec_perm; the traced twin emits that
            // pattern.)
            Vec v_score = Vec::splat(VectorProfile<N>::padScore);
            const int l_lo = std::max(0, d - n + 1);
            const int l_hi = std::min(N - 1, d);
            for (int l = l_lo; l <= l_hi; ++l) {
                const int j = d - l;
                v_score.set(l, profile.strip(subject[j], s)[l]);
            }

            // E[i][j] = max(H[i][j-1] - open, E[i][j-1] - ext):
            // same lane, previous diagonal.
            const Vec v_e_new = vmax(
                vmax(subs(v_h_prev, v_open), subs(v_e, v_ext)),
                v_zero);

            // F[i][j] = max(H[i-1][j] - open, F[i-1][j] - ext):
            // lane l-1, previous diagonal, then shift down one lane.
            const Vec v_f_cand =
                vmax(subs(v_h_prev, v_open), subs(v_f, v_ext));
            const Lane f_in = j0 < n
                ? f_bound[static_cast<std::size_t>(j0)] : Lane(0);
            const Vec v_f_new =
                vmax(shiftInLow(v_f_cand, f_in), v_zero);

            // H[i-1][j-1]: lane l-1, diagonal d-2, shifted.
            const Lane h_diag_in =
                (j0 >= 1 && j0 - 1 < n)
                    ? h_bound[static_cast<std::size_t>(j0 - 1)]
                    : Lane(0);
            const Vec v_h_diag = shiftInLow(v_h_prev2, h_diag_in);

            const Vec v_h_new = vmax(
                vmax(adds(v_h_diag, v_score), v_e_new),
                vmax(v_f_new, v_zero));

            v_best = vmax(v_best, v_h_new);

            // Record the strip boundary for the next strip: lane N-1
            // is the strip's last row; it computes column j once, at
            // d = j + N - 1.
            const int j_last = d - (N - 1);
            if (j_last >= 0 && j_last < n) {
                const Lane h = v_h_new[N - 1];
                const Lane f = v_f_new[N - 1];
                h_bound_next[static_cast<std::size_t>(j_last)] = h;
                f_bound_next[static_cast<std::size_t>(j_last)] =
                    std::max<Lane>(
                        static_cast<Lane>(std::max(
                            h - gaps.openCost(), f - gaps.extendCost())),
                        0);
            }

            // Coordinate tracking: only on global improvement (rare)
            // do a scalar scan, mirroring how the real kernel
            // re-derives coordinates outside the hot loop.
            if (anyGreater(v_h_new, static_cast<Lane>(best.score))) {
                for (int l = l_lo; l <= l_hi; ++l) {
                    if (v_h_new[l] > best.score) {
                        best.score = v_h_new[l];
                        best.queryEnd = s * N + l;
                        best.subjectEnd = d - l;
                    }
                }
            }

            v_h_prev2 = v_h_prev;
            v_h_prev = v_h_new;
            v_e = v_e_new;
            v_f = v_f_new;
        }
        std::swap(h_bound, h_bound_next);
        std::swap(f_bound, f_bound_next);
        if (cells)
            *cells += static_cast<std::uint64_t>(n) * N;
    }
    return best;
}

template <int N>
SearchResults
swSimdSearch(const bio::Sequence &query, const bio::SequenceDatabase &db,
             const bio::ScoringMatrix &matrix,
             const bio::GapPenalties &gaps, std::size_t max_hits)
{
    SearchResults out;
    const VectorProfile<N> profile(query, matrix);
    const KarlinParams &ka = blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const LocalScore ls =
            swSimdScan<N>(profile, db[idx], gaps, &out.cellsComputed);
        ++out.sequencesSearched;
        if (ls.score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        hit.bitScore = ka.bitScore(ls.score);
        hit.evalue = ka.evalue(
            ls.score, static_cast<double>(query.length()), total);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

template class VectorProfile<4>;
template class VectorProfile<8>;
template class VectorProfile<16>;
template class VectorProfile<32>;
template LocalScore swSimdScan<4>(const VectorProfile<4> &,
                                  const bio::Sequence &,
                                  const bio::GapPenalties &,
                                  std::uint64_t *);
template LocalScore swSimdScan<8>(const VectorProfile<8> &,
                                  const bio::Sequence &,
                                  const bio::GapPenalties &,
                                  std::uint64_t *);
template LocalScore swSimdScan<16>(const VectorProfile<16> &,
                                   const bio::Sequence &,
                                   const bio::GapPenalties &,
                                   std::uint64_t *);
template LocalScore swSimdScan<32>(const VectorProfile<32> &,
                                   const bio::Sequence &,
                                   const bio::GapPenalties &,
                                   std::uint64_t *);
template SearchResults swSimdSearch<8>(const bio::Sequence &,
                                       const bio::SequenceDatabase &,
                                       const bio::ScoringMatrix &,
                                       const bio::GapPenalties &,
                                       std::size_t);
template SearchResults swSimdSearch<16>(const bio::Sequence &,
                                        const bio::SequenceDatabase &,
                                        const bio::ScoringMatrix &,
                                        const bio::GapPenalties &,
                                        std::size_t);

} // namespace bioarch::align
