/**
 * @file
 * Nucleotide BLAST (blastn) over 2-bit packed databases — the code
 * path the paper's Listing 1 (BlastNtWordFinder with
 * READDB_UNPACK_BASE) belongs to.
 *
 * Differences from the protein pipeline (blast.hh):
 *  - exact word matching (no neighborhood: DNA words only hit on
 *    identity), with a larger word size (default w = 8 over a
 *    4-letter alphabet -> a 64K-entry direct-address table);
 *  - match/mismatch scoring (+1 / -3 by default) instead of a
 *    substitution matrix;
 *  - one-hit seeding (classic blastn), ungapped X-drop extension
 *    performed directly on the packed representation (unpack per
 *    base, as Listing 1 does), then a windowed gapped extension.
 */

#ifndef BIOARCH_ALIGN_BLASTN_HH
#define BIOARCH_ALIGN_BLASTN_HH

#include <cstdint>
#include <vector>

#include "bio/nucleotide.hh"
#include "bio/sequence.hh"
#include "traceback/cigar.hh"
#include "traceback/hirschberg.hh"
#include "types.hh"

namespace bioarch::align
{

/** Tunables of the blastn pipeline. */
struct BlastnParams
{
    int wordSize = 8;      ///< w: exact-match word length
    int matchScore = 1;    ///< reward per identical base
    int mismatchScore = -3;///< penalty per mismatching base
    int xDropUngapped = 12;///< ungapped extension drop-off
    int gapTrigger = 18;   ///< ungapped score starting a gapped ext
    int gapOpen = 5;       ///< gap open (blastn default 5)
    int gapExtend = 2;     ///< gap extend (blastn default 2)
    int bandHalfWidth = 16;///< gapped extension band half-width
    int gappedWindowMargin = 24; ///< slack around the HSP
};

/**
 * Exact-word query index over the 4^w word space.
 */
class DnaWordIndex
{
  public:
    DnaWordIndex(const bio::PackedDna &query, int word_size);

    int wordSize() const { return _wordSize; }
    std::size_t tableSize() const { return _heads.size() - 1; }
    std::size_t numWords() const { return _positions.size(); }

    /** Query positions where word @p w starts. */
    std::pair<const std::int32_t *, const std::int32_t *>
    positions(std::uint32_t w) const
    {
        return {_positions.data() + _heads[w],
                _positions.data() + _heads[w + 1]};
    }

  private:
    int _wordSize;
    std::vector<std::int32_t> _heads;
    std::vector<std::int32_t> _positions;
};

/** Per-subject outcome of a blastn scan. */
struct BlastnScores
{
    int wordHits = 0;
    int extensionsTried = 0;
    int bestUngapped = 0;
    int gappedExtensions = 0;
    int score = 0;
};

/**
 * Scan one packed subject against the query.
 */
BlastnScores blastnScan(const DnaWordIndex &index,
                        const bio::PackedDna &query,
                        const bio::PackedDna &subject,
                        const BlastnParams &params,
                        std::uint64_t *cells = nullptr);

/**
 * Scan one subject stored as a residue array (bases 0..3, one per
 * byte — the representation the serving tier shards). Bit-identical
 * to the packed-subject overload on equal base strings.
 */
BlastnScores blastnScan(const DnaWordIndex &index,
                        const bio::PackedDna &query,
                        const bio::Residue *subject,
                        std::size_t subject_len,
                        const BlastnParams &params,
                        std::uint64_t *cells = nullptr);

/**
 * Phase-2 reporting twin of blastnScan (see blastAlign): rerun the
 * word scan and ungapped stage, then trace the gapped extension of
 * the best HSP. With @p x_drop_gapped negative the score is
 * bit-identical to blastnScan's. Empty when the gap trigger never
 * fires.
 */
CigarAlignment blastnAlign(const DnaWordIndex &index,
                           const bio::PackedDna &query,
                           const bio::Residue *subject,
                           std::size_t subject_len,
                           const BlastnParams &params,
                           std::uint64_t *cells = nullptr,
                           int x_drop_gapped = -1,
                           TracebackStats *stats = nullptr);

/** Full database search, ranked by score / E-value. */
SearchResults blastnSearch(const bio::PackedDna &query,
                           const bio::DnaDatabase &db,
                           const BlastnParams &params = {},
                           std::size_t max_hits = 500);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_BLASTN_HH
