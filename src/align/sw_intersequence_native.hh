/**
 * @file
 * Inter-sequence (multi-subject) native Smith-Waterman — the second
 * execution kernel of the serving engine, packing one database
 * subject per SIMD lane (the SWIPE / SWAPHI arrangement) instead of
 * striping one subject across all lanes.
 *
 * Per-lane DP walks the query column-by-column, so the vertical gap
 * F is carried exactly in a register and there is no lazy-F
 * correction loop at all; the cost moved into a per-column gather
 * of each lane's substitution scores. That trade wins on the short
 * subjects the synthetic database's Zipf length mix is full of
 * (where the striped kernel's per-scan setup and lazy-F entry
 * checks dominate) and loses on long subjects (where the gather
 * overhead can't amortize) — hence the cutover heuristic the
 * serving shard scan applies (interSequenceCutover()).
 *
 * Ladder contract: identical to swStripedNativeScan. Every subject
 * is scanned at unsigned 8 bits first; a subject whose lane clips
 * is rescanned up the striped 16-bit -> scalar ladder, so final
 * scores (and end coordinates) are bit-identical to
 * align::smithWatermanScore — and to the striped kernel — for every
 * input, on every backend (asserted by tests/sw_native_test.cc).
 */

#ifndef BIOARCH_ALIGN_SW_INTERSEQUENCE_NATIVE_HH
#define BIOARCH_ALIGN_SW_INTERSEQUENCE_NATIVE_HH

#include <cstddef>
#include <cstdint>

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "sw_striped_native.hh"
#include "types.hh"

namespace bioarch::align
{

/**
 * One subject to scan: a slice of contiguous encoded residues (a
 * Sequence's own storage or the database's packed arena).
 */
struct SubjectSpan
{
    const bio::Residue *data = nullptr;
    std::size_t length = 0;
};

/**
 * Scan @p count subjects against the profile's query with the
 * inter-sequence kernel, writing one LocalScore per subject (in the
 * caller's order) to @p out. Subjects are processed in a stable
 * (length, index)-sorted lane schedule internally — results do not
 * depend on the caller's ordering beyond the output slots.
 *
 * Scores and subjectEnd match swStripedNativeScan bit-for-bit;
 * queryEnd is -1 unless the scalar ladder level ran. Subjects that
 * cannot take the 8-bit inter-sequence path (no u8 profile, or gap
 * costs outside a byte) fall back to the striped kernel per
 * subject; u8-saturated lanes are rescanned up the striped 16-bit
 * -> scalar ladder. stats->interSequence / stats->striped count the
 * subjects each kernel handled.
 */
void swInterSequenceScan(const NativeQueryProfile &profile,
                         const SubjectSpan *subjects,
                         std::size_t count,
                         const bio::GapPenalties &gaps,
                         LocalScore *out,
                         std::uint64_t *cells = nullptr,
                         NativeScanStats *stats = nullptr);

/**
 * Default subject-length cutover of the serving heuristic: subjects
 * strictly shorter go to the inter-sequence kernel, the rest stay
 * striped. Chosen from bench_aligners' GCUPS-by-length-bucket
 * breakdown; the BIOARCH_INTERSEQ_CUTOVER environment variable
 * overrides it (0 disables the inter-sequence kernel entirely).
 */
std::size_t interSequenceCutover();

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_SW_INTERSEQUENCE_NATIVE_HH
