#include "blast.hh"

#include <algorithm>

#include "banded.hh"
#include "karlin.hh"
#include "traceback/banded_extend.hh"
#include "xdrop.hh"

namespace bioarch::align
{

namespace
{

std::size_t
wordSpace(int word_size)
{
    std::size_t space = 1;
    for (int k = 0; k < word_size; ++k)
        space *= bio::Alphabet::numSymbols;
    return space;
}

} // namespace

NeighborhoodIndex::NeighborhoodIndex(const bio::Sequence &query,
                                     const bio::ScoringMatrix &matrix,
                                     const BlastParams &params)
    : _wordSize(params.wordSize),
      _queryLength(static_cast<int>(query.length())),
      _heads(wordSpace(params.wordSize) + 1, 0)
{
    const int num_words = _queryLength - _wordSize + 1;
    if (num_words <= 0)
        return;

    // Enumerate, for every query word, all words over the 20 real
    // residues whose pairwise score reaches the threshold T. The
    // candidate space is pruned with per-position "best remaining"
    // bounds so the recursion only explores viable prefixes.
    struct Entry
    {
        std::uint32_t word;
        std::int32_t qpos;
    };
    std::vector<Entry> entries;

    // bestTail[k] = max over residues of matrix row max, for the
    // remaining word positions k..w-1, given the query word.
    std::vector<int> row_max(
        static_cast<std::size_t>(bio::Alphabet::numSymbols), 0);
    for (int a = 0; a < bio::Alphabet::numSymbols; ++a) {
        int best = -1000;
        for (int b = 0; b < bio::Alphabet::numRealResidues; ++b)
            best = std::max(
                best, matrix.score(static_cast<bio::Residue>(a),
                                   static_cast<bio::Residue>(b)));
        row_max[static_cast<std::size_t>(a)] = best;
    }

    for (int i = 0; i < num_words; ++i) {
        const bio::Residue *qw = query.residues().data() + i;
        std::vector<int> tail(static_cast<std::size_t>(_wordSize) + 1,
                              0);
        for (int k = _wordSize - 1; k >= 0; --k)
            tail[static_cast<std::size_t>(k)] =
                tail[static_cast<std::size_t>(k) + 1]
                + row_max[qw[k]];

        // Iterative DFS over word prefixes.
        struct Frame { int residue; int score; };
        std::vector<Frame> stack(static_cast<std::size_t>(_wordSize),
                                 Frame{0, 0});
        int depth = 0;
        while (depth >= 0) {
            Frame &f = stack[static_cast<std::size_t>(depth)];
            if (f.residue >= bio::Alphabet::numRealResidues) {
                --depth;
                if (depth >= 0)
                    ++stack[static_cast<std::size_t>(depth)].residue;
                continue;
            }
            const int s = f.score
                + matrix.score(qw[depth],
                               static_cast<bio::Residue>(f.residue));
            // Prune: even perfect remaining residues cannot reach T.
            if (s + tail[static_cast<std::size_t>(depth) + 1]
                < params.neighborThreshold) {
                ++f.residue;
                continue;
            }
            if (depth == _wordSize - 1) {
                if (s >= params.neighborThreshold) {
                    std::uint32_t w = 0;
                    for (int k = 0; k < _wordSize; ++k) {
                        const int r =
                            k == depth
                                ? f.residue
                                : stack[static_cast<std::size_t>(k)]
                                      .residue;
                        w = w * bio::Alphabet::numSymbols
                            + static_cast<std::uint32_t>(r);
                    }
                    entries.push_back(
                        Entry{w, static_cast<std::int32_t>(i)});
                }
                ++f.residue;
            } else {
                ++depth;
                stack[static_cast<std::size_t>(depth)] =
                    Frame{0, s};
            }
        }
    }

    // CSR construction.
    for (const Entry &e : entries)
        ++_heads[e.word + 1];
    for (std::size_t w = 1; w < _heads.size(); ++w)
        _heads[w] += _heads[w - 1];
    _positions.resize(entries.size());
    std::vector<std::int32_t> cursor(_heads.begin(), _heads.end() - 1);
    for (const Entry &e : entries)
        _positions[static_cast<std::size_t>(cursor[e.word]++)] =
            e.qpos;
}

UngappedExtension
ungappedExtend(const bio::Sequence &query, const bio::Sequence &subject,
               const bio::ScoringMatrix &matrix, int qpos, int spos,
               int seed_len, int x_drop)
{
    UngappedExtension out;
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());

    int seed = 0;
    for (int k = 0; k < seed_len; ++k)
        seed += matrix.score(query[qpos + k], subject[spos + k]);

    // Right extension from the end of the seed, then left extension
    // from its start, both via the shared x-drop run scorer.
    const XdropRun right = xdropRun(
        std::min(m - qpos, n - spos) - seed_len, x_drop, [&](int k) {
            return matrix.score(query[qpos + seed_len + k],
                                subject[spos + seed_len + k]);
        });
    const XdropRun left =
        xdropRun(std::min(qpos, spos), x_drop, [&](int k) {
            return matrix.score(query[qpos - 1 - k],
                                subject[spos - 1 - k]);
        });

    out.score = seed + right.best + left.best;
    out.queryStart = qpos - left.len;
    out.queryEnd = qpos + seed_len - 1 + right.len;
    return out;
}

GappedWindow
gappedWindow(const UngappedExtension &ext, int diag, int query_len,
             int subject_len, int margin)
{
    GappedWindow w;
    w.queryLo = std::max(0, ext.queryStart - margin);
    w.queryHi = std::min(query_len - 1, ext.queryEnd + margin);
    w.subjectLo = std::max(0, ext.queryStart + diag - margin);
    w.subjectHi =
        std::min(subject_len - 1, ext.queryEnd + diag + margin);
    w.center = diag - (w.subjectLo - w.queryLo);
    return w;
}

namespace
{

/** Extract [lo, hi] of a sequence (for windowed gapped extension). */
bio::Sequence
window(const bio::Sequence &seq, int lo, int hi)
{
    const auto &res = seq.residues();
    return bio::Sequence(
        seq.id(), "window",
        std::vector<bio::Residue>(
            res.begin() + lo, res.begin() + hi + 1));
}

/** The word scan + ungapped stage, up to (but not including) the
 * gapped extension: counters plus the best HSP and its diagonal.
 * blastScan and blastAlign share this so the alignment a hit
 * reports is derived from exactly the HSP its score came from. */
struct HspScan
{
    BlastScores scores;       ///< gapped fields still zero
    int bestDiag = 0;
    UngappedExtension bestExt;
};

HspScan
hspScan(const NeighborhoodIndex &index, const bio::Sequence &query,
        const bio::Sequence &subject, const bio::ScoringMatrix &matrix,
        const BlastParams &params, std::uint64_t *cells)
{
    HspScan hsp;
    BlastScores &out = hsp.scores;
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int w = index.wordSize();
    if (m < w || n < w)
        return hsp;

    // Per-diagonal state: subject position of the last unextended
    // hit, and the subject position up to which the diagonal has
    // already been covered by an extension (suppresses re-triggering
    // inside an extended region, as NCBI BLAST's diag array does).
    const int num_diags = m + n - 1;
    const int diag_offset = m - 1;
    struct DiagState
    {
        std::int32_t lastHit = -1000000;
        std::int32_t extendedTo = -1;
    };
    std::vector<DiagState> diag(static_cast<std::size_t>(num_diags));

    // Best ungapped HSP seen during the scan; the (single) gapped
    // extension runs around its diagonal after the scan, mirroring
    // how NCBI BLAST gap-extends the preliminary HSP list rather
    // than every triggering seed.
    const auto *sres = subject.residues().data();

    for (int j = 0; j + w <= n; ++j) {
        const std::uint32_t word = index.encode(sres + j);
        const auto [begin, end] = index.positions(word);
        if (cells)
            *cells += 1;
        for (const std::int32_t *p = begin; p != end; ++p) {
            const int i = *p;
            const int d = j - i + diag_offset;
            DiagState &ds = diag[static_cast<std::size_t>(d)];
            ++out.wordHits;
            if (j <= ds.extendedTo)
                continue; // inside an already-extended region

            bool trigger;
            if (params.twoHit) {
                const int dist = j - ds.lastHit;
                if (dist < w) {
                    // Overlapping the previous hit: neither triggers
                    // nor replaces it (otherwise runs of consecutive
                    // hits — e.g. a perfect match — would never put
                    // two non-overlapping hits in the window).
                    continue;
                }
                trigger = dist <= params.twoHitWindow;
            } else {
                trigger = true;
            }
            ds.lastHit = j;
            if (!trigger)
                continue;

            ++out.extensionsTried;
            const UngappedExtension ext =
                ungappedExtend(query, subject, matrix, i, j, w,
                               params.xDropUngapped);
            if (cells)
                *cells += static_cast<std::uint64_t>(
                    ext.queryEnd - ext.queryStart + 1);
            ds.extendedTo = ext.queryEnd + (j - i);
            if (ext.score > out.bestUngapped) {
                out.bestUngapped = ext.score;
                hsp.bestDiag = j - i;
                hsp.bestExt = ext;
            }
        }
    }
    return hsp;
}

} // namespace

BlastScores
blastScan(const NeighborhoodIndex &index, const bio::Sequence &query,
          const bio::Sequence &subject, const bio::ScoringMatrix &matrix,
          const bio::GapPenalties &gaps, const BlastParams &params,
          std::uint64_t *cells)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const HspScan hsp =
        hspScan(index, query, subject, matrix, params, cells);
    BlastScores out = hsp.scores;
    if (m < index.wordSize() || n < index.wordSize())
        return out;

    if (out.bestUngapped >= params.gapTrigger) {
        ++out.gappedExtensions;
        // The gapped stage explores a window around the HSP, not
        // the whole subject (the real gapped extension's X-drop
        // keeps it local).
        const GappedWindow win =
            gappedWindow(hsp.bestExt, hsp.bestDiag, m, n,
                         params.gappedWindowMargin);
        const bio::Sequence qw =
            window(query, win.queryLo, win.queryHi);
        const bio::Sequence sw =
            window(subject, win.subjectLo, win.subjectHi);
        const LocalScore gapped =
            bandedSmithWaterman(qw, sw, matrix, gaps, win.center,
                                params.bandHalfWidth);
        if (cells) {
            *cells += static_cast<std::uint64_t>(
                          2 * params.bandHalfWidth + 1)
                * static_cast<std::uint64_t>(
                          win.subjectHi - win.subjectLo + 1);
        }
        out.score = std::max(gapped.score, 0);
    }
    return out;
}

CigarAlignment
blastAlign(const NeighborhoodIndex &index, const bio::Sequence &query,
           const bio::Sequence &subject,
           const bio::ScoringMatrix &matrix,
           const bio::GapPenalties &gaps, const BlastParams &params,
           std::uint64_t *cells, int x_drop_gapped,
           TracebackStats *stats)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const HspScan hsp =
        hspScan(index, query, subject, matrix, params, cells);

    CigarAlignment out;
    if (m < index.wordSize() || n < index.wordSize()
        || hsp.scores.bestUngapped < params.gapTrigger)
        return out;
    // Re-run the gapped stage of blastScan over the identical
    // window and band, with traceback. A disabled X-drop keeps the
    // banded sweep — and therefore the score — bit-identical to
    // the score-only scan the hit was ranked by.
    const GappedWindow win =
        gappedWindow(hsp.bestExt, hsp.bestDiag, m, n,
                     params.gappedWindowMargin);
    const bio::Sequence qw = window(query, win.queryLo, win.queryHi);
    const bio::Sequence sw =
        window(subject, win.subjectLo, win.subjectHi);
    out = bandedExtendAlign(qw, sw, matrix, gaps, win.center,
                            params.bandHalfWidth, x_drop_gapped,
                            stats);
    if (cells && stats)
        *cells += stats->totalCells;
    if (out.empty())
        return out;
    out.qBegin += win.queryLo;
    out.qEnd += win.queryLo;
    out.sBegin += win.subjectLo;
    out.sEnd += win.subjectLo;
    return out;
}

SearchResults
blastSearch(const bio::Sequence &query, const bio::SequenceDatabase &db,
            const bio::ScoringMatrix &matrix,
            const bio::GapPenalties &gaps, const BlastParams &params,
            std::size_t max_hits)
{
    SearchResults out;
    const NeighborhoodIndex index(query, matrix, params);
    const KarlinParams &ka = blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const BlastScores bs =
            blastScan(index, query, db[idx], matrix, gaps, params,
                      &out.cellsComputed);
        ++out.sequencesSearched;
        const int score = std::max(bs.score, 0);
        if (score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = score;
        hit.bitScore = ka.bitScore(score);
        hit.evalue = ka.evalue(
            score, static_cast<double>(query.length()), total);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

} // namespace bioarch::align
