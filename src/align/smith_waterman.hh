/**
 * @file
 * Reference Smith-Waterman local alignment (Gotoh affine-gap
 * recurrence), score-only and with full traceback.
 *
 * This is the sensitivity gold standard every other aligner in the
 * library is validated against (Section III of the paper). The
 * recurrence, shared exactly by the SSEARCH-style scalar kernel and
 * both SIMD kernels, is:
 *
 *   E[i][j] = max(0, H[i][j-1] - (open+ext), E[i][j-1] - ext)
 *   F[i][j] = max(0, H[i-1][j] - (open+ext), F[i-1][j] - ext)
 *   H[i][j] = max(0, H[i-1][j-1] + S(q_i, s_j), E[i][j], F[i][j])
 *
 * Clamping E and F at zero (as SSEARCH does) never changes the best
 * local score because H is itself clamped at zero.
 */

#ifndef BIOARCH_ALIGN_SMITH_WATERMAN_HH
#define BIOARCH_ALIGN_SMITH_WATERMAN_HH

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"

namespace bioarch::align
{

/**
 * Compute the best local alignment score of @p query vs @p subject.
 *
 * Linear memory, O(m*n) time.
 */
LocalScore smithWatermanScore(const bio::Sequence &query,
                              const bio::Sequence &subject,
                              const bio::ScoringMatrix &matrix,
                              const bio::GapPenalties &gaps);

/**
 * Raw-pointer form of smithWatermanScore, for callers that hold
 * residues in contiguous storage other than a Sequence (the packed
 * database arena, the native overflow ladder's scalar level).
 */
LocalScore smithWatermanScoreRaw(const bio::Residue *query,
                                 std::size_t m,
                                 const bio::Residue *subject,
                                 std::size_t n,
                                 const bio::ScoringMatrix &matrix,
                                 const bio::GapPenalties &gaps);

/**
 * Compute the best local alignment with traceback.
 *
 * Quadratic memory; intended for reporting the final alignments of
 * the top hits, not for database scanning.
 */
Alignment smithWatermanAlign(const bio::Sequence &query,
                             const bio::Sequence &subject,
                             const bio::ScoringMatrix &matrix,
                             const bio::GapPenalties &gaps);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_SMITH_WATERMAN_HH
