/**
 * @file
 * Result types shared by all aligners.
 */

#ifndef BIOARCH_ALIGN_TYPES_HH
#define BIOARCH_ALIGN_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bioarch::align
{

/**
 * A local alignment score with its matrix end coordinates
 * (0-based, inclusive, positions in query/subject).
 */
struct LocalScore
{
    int score = 0;
    int queryEnd = -1;
    int subjectEnd = -1;

    bool operator==(const LocalScore &other) const = default;
};

/**
 * A full pairwise alignment: score plus the aligned strings with '-'
 * for gaps, as in the paper's introduction example.
 */
struct Alignment
{
    int score = 0;
    int queryStart = 0;   ///< 0-based inclusive
    int queryEnd = -1;    ///< 0-based inclusive
    int subjectStart = 0;
    int subjectEnd = -1;
    std::string alignedQuery;    ///< query residues and '-' gaps
    std::string alignedSubject;  ///< subject residues and '-' gaps

    /** Number of identical aligned residue pairs. */
    int identities = 0;
    /** Alignment length including gap columns. */
    int length() const
    {
        return static_cast<int>(alignedQuery.size());
    }
    /** Fraction of identical columns (0 when empty). */
    double
    identityFraction() const
    {
        return alignedQuery.empty()
            ? 0.0
            : static_cast<double>(identities) / length();
    }
};

/** One database hit produced by a search application. */
struct SearchHit
{
    std::size_t dbIndex = 0;   ///< index of subject in the database
    int score = 0;             ///< raw alignment score
    double bitScore = 0.0;     ///< normalized bit score
    double evalue = 0.0;       ///< expected chance hits at this score
    int queryEnd = -1;
    int subjectEnd = -1;
};

/** Ranked results of searching one query against a database. */
struct SearchResults
{
    std::vector<SearchHit> hits;   ///< sorted by descending score
    std::uint64_t cellsComputed = 0; ///< DP cells / extension steps
    std::uint64_t sequencesSearched = 0;
};

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_TYPES_HH
