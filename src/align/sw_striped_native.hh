/**
 * @file
 * Native hardware-SIMD striped Smith-Waterman — the execution
 * backend the serving engine scans the database with.
 *
 * Strictly separate from the traced/simulated kernels: those keep
 * using the portable vector *model* (vec/simd.hh) so the paper's
 * Table III instruction counts are untouched. This backend exists
 * to make `bioarch-serve` run as fast as the hardware allows
 * (Farrar-striped layout, 8-bit saturating lanes, lazy-F loop —
 * the SSW/SWIPE lineage the paper's SW kernels led to).
 *
 * Overflow ladder (classic Farrar/SSW): every subject is scanned
 * with unsigned 8-bit lanes first; a subject whose score enters the
 * 8-bit saturation range is rescanned with signed 16-bit lanes; a
 * subject that saturates those too falls back to the scalar
 * reference. Final scores are therefore bit-identical to
 * align::smithWatermanScore for every input (asserted by
 * tests/sw_native_test.cc across all compiled backends).
 *
 * Backend selection: the BIOARCH_NATIVE_SIMD CMake option compiles
 * the intrinsic variants (SSE2 on x86-64, AVX2 in its own -mavx2
 * TU, NEON on aarch64); the portable autovectorizable variant is
 * always compiled. bestNativeBackend() picks the widest variant the
 * running CPU supports (AVX2 is additionally guarded by runtime
 * CPUID), and the BIOARCH_SIMD_BACKEND environment variable forces
 * a specific backend — including "model", which tells the serving
 * layer to keep using the instruction-accurate model kernels.
 */

#ifndef BIOARCH_ALIGN_SW_STRIPED_NATIVE_HH
#define BIOARCH_ALIGN_SW_STRIPED_NATIVE_HH

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"
#include "vec/simd_native.hh"

namespace bioarch::align
{

/**
 * Which kernel implementation scans the database. Model is the
 * software Altivec model (vec/simd.hh) — not a native backend, but
 * part of this enum so the serving engine and the benches can A/B
 * the two layers through one switch.
 */
enum class SimdBackend
{
    Model,
    Portable,
    SSE2,
    AVX2,
    NEON,
};

/** Lower-case display name ("model", "sse2", ...). */
std::string_view backendName(SimdBackend backend);

/** Parse a backend name; "auto" maps to bestNativeBackend(). */
std::optional<SimdBackend> parseBackend(std::string_view name);

/**
 * The native backends this binary can actually run, best first:
 * compiled in (BIOARCH_NATIVE_SIMD + ISA availability) and passing
 * the runtime CPUID guard. Always contains at least Portable.
 */
const std::vector<SimdBackend> &compiledNativeBackends();

/** The widest runnable native backend (never Model). */
SimdBackend bestNativeBackend();

/**
 * The backend the serving layer uses when nothing else is
 * specified: BIOARCH_SIMD_BACKEND if set (unknown or unrunnable
 * values fall back to auto), else bestNativeBackend().
 */
SimdBackend defaultScanBackend();

/** Ladder accounting, for tests and bench/obs reporting. */
struct NativeScanStats
{
    std::uint64_t scans = 0;         ///< subjects scanned
    std::uint64_t rescans16 = 0;     ///< 8-bit saturated, redone @16
    std::uint64_t rescansScalar = 0; ///< 16-bit saturated too
    /** Subjects whose 8-bit pass ran in the inter-sequence kernel. */
    std::uint64_t interSequence = 0;
    /** Subjects scanned by the striped kernel. */
    std::uint64_t striped = 0;
};

/** Merge per-task ladder counts (e.g. per-shard into per-batch). */
inline NativeScanStats &
operator+=(NativeScanStats &a, const NativeScanStats &b)
{
    a.scans += b.scans;
    a.rescans16 += b.rescans16;
    a.rescansScalar += b.rescansScalar;
    a.interSequence += b.interSequence;
    a.striped += b.striped;
    return a;
}

/**
 * Striped query profile for one native backend: the 8-bit biased
 * and 16-bit raw score layouts, both padded to the backend's lane
 * count and 64-byte aligned. Built once per query and shared
 * read-only across every shard-scan task. The query and matrix
 * must outlive the profile (it keeps references for the scalar
 * fallback level).
 */
class NativeQueryProfile
{
  public:
    /** Pad sentinel of the 16-bit level (as the model profile). */
    static constexpr std::int16_t padScore = -1000;

    NativeQueryProfile(const bio::Sequence &query,
                       const bio::ScoringMatrix &matrix,
                       SimdBackend backend);

    SimdBackend backend() const { return _backend; }
    const bio::Sequence &query() const { return *_query; }
    int queryLength() const { return _m; }
    /** Bias added to every 8-bit profile score (= -min score). */
    int bias() const { return _bias; }
    /** False when the matrix range does not fit 8-bit lanes. */
    bool hasU8() const { return _u8 != nullptr; }

    int segmentLength8() const { return _seg8; }
    int segmentLength16() const { return _seg16; }
    const std::uint8_t *profile8() const { return _u8.get(); }
    const std::int16_t *profile16() const { return _i16.get(); }
    const bio::ScoringMatrix &matrix() const { return *_matrix; }

    /**
     * Transposed biased matrix for the inter-sequence kernel: one
     * row per *subject* symbol (numSymbols rows plus one all-zero
     * pad row for idle lanes), each row numSymbols biased scores
     * indexed by *query* residue. Built whenever the 8-bit level
     * exists (hasU8()); nullptr otherwise.
     */
    const std::uint8_t *interMatrix() const { return _matT.get(); }

  private:
    const bio::Sequence *_query;
    const bio::ScoringMatrix *_matrix;
    SimdBackend _backend;
    int _m;
    int _bias;
    int _seg8;
    int _seg16;
    vec::native::AlignedArray<std::uint8_t> _u8;
    vec::native::AlignedArray<std::int16_t> _i16;
    vec::native::AlignedArray<std::uint8_t> _matT;
};

/**
 * Scan one subject with the profile's backend, climbing the
 * 8-bit -> 16-bit -> scalar overflow ladder as levels saturate.
 * The score is exactly align::smithWatermanScore's; like the model
 * striped kernel, queryEnd is not tracked (-1) unless the scalar
 * fallback level ran.
 *
 * @param subject encoded residues (any contiguous storage — a
 *        Sequence's own vector or the database's packed arena)
 * @param[out] cells optional logical DP cell counter (m*n per call)
 * @param[out] stats optional ladder accounting
 */
LocalScore swStripedNativeScan(const NativeQueryProfile &profile,
                               const bio::Residue *subject,
                               std::size_t n,
                               const bio::GapPenalties &gaps,
                               std::uint64_t *cells = nullptr,
                               NativeScanStats *stats = nullptr);

/** Convenience overload scanning a Sequence. */
LocalScore swStripedNativeScan(const NativeQueryProfile &profile,
                               const bio::Sequence &subject,
                               const bio::GapPenalties &gaps,
                               std::uint64_t *cells = nullptr,
                               NativeScanStats *stats = nullptr);

/**
 * The upper half of the overflow ladder on its own: scan at 16
 * bits, falling back to the scalar reference (counted in
 * stats->rescansScalar) if those lanes saturate too. Used by the
 * striped scan after 8-bit saturation and by the inter-sequence
 * driver to rescan clipped lanes — both climbs are the same code,
 * so the two kernels share one ladder contract. Does not touch
 * stats->scans/rescans16 or the cell count; the caller owns those.
 */
LocalScore swStripedScan16Tail(const NativeQueryProfile &profile,
                               const bio::Residue *subject,
                               std::size_t n,
                               const bio::GapPenalties &gaps,
                               NativeScanStats *stats = nullptr);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_SW_STRIPED_NATIVE_HH
