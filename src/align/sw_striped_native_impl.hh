/**
 * @file
 * The striped Smith-Waterman kernel template instantiated once per
 * native SIMD backend (vec/simd_native.hh variants). Private to
 * sw_striped_native.cc and sw_striped_avx2.cc — everything else
 * goes through the dispatching API in sw_striped_native.hh.
 *
 * The recurrence mirrors align/sw_striped.cc (the model-vector
 * striped kernel, already asserted bit-identical to the scalar
 * reference), with three differences:
 *
 *  - the lazy-F correction is deconstructed (Snytsar): a prefix
 *    scan folds every wrap's boundary-crossing gap flow into one
 *    steady-state inflow, replacing the data-dependent wrap loop
 *    with a single bounded sweep — same H/E values, column for
 *    column, as the classic loop;
 *  - the 8-bit level runs Farrar's biased unsigned arithmetic: the
 *    profile stores score+bias, each H update adds the biased score
 *    and subtracts the bias back out, and unsigned saturating
 *    subtraction clamps H/E/F at zero exactly as the scalar
 *    recurrence does;
 *  - both levels detect saturation (8-bit: best >= 255-bias once
 *    adds can have clipped; 16-bit: best == INT16_MAX) so the
 *    caller can climb the overflow ladder.
 */

#ifndef BIOARCH_ALIGN_SW_STRIPED_NATIVE_IMPL_HH
#define BIOARCH_ALIGN_SW_STRIPED_NATIVE_IMPL_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "bio/alphabet.hh"
#include "types.hh"

// Containers of intrinsic register types drop the type attributes
// from their template arguments; that is fine (the data is still
// stored with the register's alignment) but GCC warns about it.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"
#endif

namespace bioarch::align::detail
{

/**
 * One striped column pass + lazy-F correction, shared verbatim by
 * the 8-bit and 16-bit levels (the only asymmetry — bias handling —
 * is folded into @p v_bias, zero for the 16-bit level whose profile
 * stores raw scores).
 *
 * @param profile [residue][segment][lane] scores, V::lanes wide
 * @param seg     segment length (ceil(m / V::lanes))
 * @return        best lane value seen anywhere, and the column it
 *                was first attained in
 */
template <class V>
std::pair<typename V::Elem, int>
stripedScanImpl(const typename V::Elem *profile, int seg,
                const bio::Residue *subject, std::size_t n,
                typename V::Elem open_cost, typename V::Elem ext_cost,
                typename V::Elem bias)
{
    using Reg = typename V::Reg;
    using Elem = typename V::Elem;
    const int lanes = V::lanes;

    const Reg v_open = V::splat(open_cost);
    const Reg v_ext = V::splat(ext_cost);
    const Reg v_bias = V::splat(bias);
    const Reg v_zero = V::zero();

    // Reused across scans on this thread: the serving engine calls
    // this once per database subject, and for the short-subject
    // tail three heap allocations per scan used to dominate the
    // kernel itself.
    thread_local std::vector<Reg> h_store;
    thread_local std::vector<Reg> h_load;
    thread_local std::vector<Reg> e;
    h_store.assign(static_cast<std::size_t>(seg), V::zero());
    h_load.assign(static_cast<std::size_t>(seg), V::zero());
    e.assign(static_cast<std::size_t>(seg), V::zero());

    // Per-lane decay of a vertical gap passing through one whole
    // segment's stripe, clamped to the element range (the clamp
    // only ever *over*-decays flow that was already dead).
    const Elem seg_decay_max = std::numeric_limits<Elem>::max();
    const long seg_decay = static_cast<long>(seg)
        * static_cast<long>(ext_cost);

    Elem best = 0;
    int best_column = -1;

    for (std::size_t j = 0; j < n; ++j) {
        const Elem *prof_row = profile
            + static_cast<std::size_t>(subject[j])
                * static_cast<std::size_t>(seg)
                * static_cast<std::size_t>(lanes);

        Reg v_h = V::shiftInZero(
            h_store[static_cast<std::size_t>(seg - 1)]);
        std::swap(h_store, h_load);

        Reg v_f = V::zero();
        Reg v_col_best = V::zero();

        for (int s = 0; s < seg; ++s) {
            const std::size_t ss = static_cast<std::size_t>(s);
            v_h = V::subs(
                V::adds(v_h,
                        V::load(prof_row
                                + ss * static_cast<std::size_t>(
                                      lanes))),
                v_bias);
            v_h = V::max(v_h, e[ss]);
            v_h = V::max(v_h, v_f);
            // Local-alignment zero clamp; a no-op at the unsigned
            // 8-bit level, load-bearing at the signed 16-bit one.
            v_h = V::max(v_h, v_zero);
            v_col_best = V::max(v_col_best, v_h);
            h_store[ss] = v_h;

            const Reg v_h_open = V::subs(v_h, v_open);
            e[ss] = V::max(V::subs(e[ss], v_ext), v_h_open);
            v_f = V::max(V::subs(v_f, v_ext), v_h_open);

            v_h = h_load[ss];
        }

        // Lazy-F correction, deconstructed (after Snytsar,
        // "De(con)struction of the lazy-F loop"). The classic
        // correction chases the vertical gap across segment
        // boundaries with a data-dependent wrap loop — worst case
        // seg x lanes serialized iterations per column. Inside the
        // correction the gap only ever decays (raised H never
        // regenerates flow that isn't dominated, the same invariant
        // the classic early exit rests on), so wrap w's inflow to a
        // lane is just the outflow of the lane w below, decayed by
        // w-1 whole segments — a shift-subtract-max prefix scan can
        // fold every remaining wrap into one steady-state inflow
        // applied by a single bounded sweep. Staging: the cheap
        // entry check first (most columns carry no boundary-
        // crossing gap at all), then ONE classic early-exit sweep
        // (when flow does cross, it near-always dies within a few
        // segments — the prefix scan's 31 single-element shifts
        // would cost more than it saves), and only if that sweep
        // runs the column end-to-end without converging does the
        // deconstructed steady state take over and finish the
        // correction in one more bounded pass.
        Reg v_in = V::shiftInZero(v_f);
        if (V::anyGt(v_in, V::subs(h_store[0], v_open))) {
            bool converged = false;
            for (int s = 0; s < seg; ++s) {
                const std::size_t ss = static_cast<std::size_t>(s);
                if (!V::anyGt(v_in,
                              V::subs(h_store[ss], v_open))) {
                    converged = true;
                    break;
                }
                const Reg h_new = V::max(h_store[ss], v_in);
                h_store[ss] = h_new;
                e[ss] = V::max(e[ss], V::subs(h_new, v_open));
                v_col_best = V::max(v_col_best, h_new);
                v_in = V::subs(v_in, v_ext);
            }
            if (!converged) {
                // v_in is the first sweep's outflow; scan it into
                // the max-over-all-further-wraps inflow.
                Reg g = v_in;
                for (int k = 1; k < lanes; k <<= 1) {
                    Reg sh = g;
                    for (int t = 0; t < k; ++t)
                        sh = V::shiftInZero(sh);
                    const long dec =
                        static_cast<long>(k) * seg_decay;
                    const Elem d =
                        dec > static_cast<long>(seg_decay_max)
                        ? seg_decay_max
                        : static_cast<Elem>(dec);
                    g = V::max(g, V::subs(sh, V::splat(d)));
                }
                v_in = V::shiftInZero(g);
                for (int s = 0; s < seg; ++s) {
                    const std::size_t ss =
                        static_cast<std::size_t>(s);
                    if (!V::anyGt(v_in,
                                  V::subs(h_store[ss], v_open)))
                        break;
                    const Reg h_new = V::max(h_store[ss], v_in);
                    h_store[ss] = h_new;
                    e[ss] =
                        V::max(e[ss], V::subs(h_new, v_open));
                    v_col_best = V::max(v_col_best, h_new);
                    v_in = V::subs(v_in, v_ext);
                }
            }
        }

        const Elem column_max = V::hmax(v_col_best);
        if (column_max > best) {
            best = column_max;
            best_column = static_cast<int>(j);
        }
    }
    return {best, best_column};
}

/** 16-bit H never saturates its signed lane type below this. */
inline constexpr int i16SaturationCeiling = 32767;

/**
 * 8-bit unsigned level. The profile holds score+bias per cell (pad
 * rows hold 0 == score -bias, which only ever decays phantom
 * alignments, never inflates the maximum). Saturation is flagged
 * when the best value enters the range where a biased add may have
 * clipped at 255.
 */
template <class V>
LocalScore
stripedScanU8(const std::uint8_t *profile, int seg,
              const bio::Residue *subject, std::size_t n,
              int open_cost, int ext_cost, int bias,
              bool *saturated)
{
    const auto [best, column] = stripedScanImpl<V>(
        profile, seg, subject, n,
        static_cast<std::uint8_t>(open_cost),
        static_cast<std::uint8_t>(ext_cost),
        static_cast<std::uint8_t>(bias));
    *saturated = static_cast<int>(best) >= 255 - bias;
    LocalScore out;
    out.score = static_cast<int>(best);
    out.subjectEnd = column;
    return out;
}

/**
 * 16-bit signed level. The profile holds raw scores with the same
 * -1000 pad sentinel as the model striped profile; H is clamped at
 * zero by maxing against the zero register inside the shared
 * column pass (e and v_f start at zero, and the biased-subtraction
 * with bias == 0 is a no-op).
 */
template <class V>
LocalScore
stripedScanI16(const std::int16_t *profile, int seg,
               const bio::Residue *subject, std::size_t n,
               int open_cost, int ext_cost, bool *saturated)
{
    const auto [best, column] = stripedScanImpl<V>(
        profile, seg, subject, n,
        static_cast<std::int16_t>(open_cost),
        static_cast<std::int16_t>(ext_cost),
        static_cast<std::int16_t>(0));
    *saturated = static_cast<int>(best) >= i16SaturationCeiling;
    LocalScore out;
    out.score = static_cast<int>(best) < 0 ? 0
                                           : static_cast<int>(best);
    out.subjectEnd = column;
    return out;
}

} // namespace bioarch::align::detail

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

#endif // BIOARCH_ALIGN_SW_STRIPED_NATIVE_IMPL_HH
