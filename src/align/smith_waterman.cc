#include "smith_waterman.hh"

#include <algorithm>
#include <vector>

namespace bioarch::align
{

LocalScore
smithWatermanScore(const bio::Sequence &query,
                   const bio::Sequence &subject,
                   const bio::ScoringMatrix &matrix,
                   const bio::GapPenalties &gaps)
{
    return smithWatermanScoreRaw(query.residues().data(),
                                 query.length(),
                                 subject.residues().data(),
                                 subject.length(), matrix, gaps);
}

LocalScore
smithWatermanScoreRaw(const bio::Residue *query, std::size_t m_in,
                      const bio::Residue *subject, std::size_t n_in,
                      const bio::ScoringMatrix &matrix,
                      const bio::GapPenalties &gaps)
{
    const int m = static_cast<int>(m_in);
    const int n = static_cast<int>(n_in);
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    LocalScore best;
    if (m == 0 || n == 0)
        return best;

    // Query on rows (i), subject on columns (j). One row-indexed
    // array each for H and E; F and the diagonal are carried in
    // scalars down the inner loop.
    std::vector<int> h_row(m, 0); // H[i][j-1] entering column j
    std::vector<int> e_row(m, 0); // E[i][j-1] entering column j

    for (int j = 0; j < n; ++j) {
        const std::int8_t *profile = matrix.row(subject[j]);
        int h_diag = 0;  // H[i-1][j-1]
        int h_above = 0; // H[i-1][j]
        int f = 0;       // F[i-1][j]
        for (int i = 0; i < m; ++i) {
            const int e = std::max(
                {0, h_row[i] - open_cost, e_row[i] - ext_cost});
            f = std::max({0, h_above - open_cost, f - ext_cost});
            const int h = std::max(
                {0, h_diag + profile[query[i]], e, f});
            if (h > best.score) {
                best.score = h;
                best.queryEnd = i;
                best.subjectEnd = j;
            }
            h_diag = h_row[i];
            h_row[i] = h;
            e_row[i] = e;
            h_above = h;
        }
    }
    return best;
}

namespace
{

/** Traceback direction tags for the three DP layers. */
enum : std::uint8_t
{
    hFromZero = 0,
    hFromDiag = 1,
    hFromE = 2,
    hFromF = 3,
    eFromOpen = 0, // E opened from H[i][j-1]
    eFromExt = 1,  // E extended from E[i][j-1]
    fFromOpen = 0,
    fFromExt = 1,
};

} // namespace

Alignment
smithWatermanAlign(const bio::Sequence &query,
                   const bio::Sequence &subject,
                   const bio::ScoringMatrix &matrix,
                   const bio::GapPenalties &gaps)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    Alignment out;
    if (m == 0 || n == 0)
        return out;

    // Full matrices: h/e/f values plus packed traceback bits.
    const std::size_t cells =
        static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
    std::vector<int> h_mat(cells, 0);
    std::vector<std::uint8_t> h_dir(cells, hFromZero);
    std::vector<std::uint8_t> e_dir(cells, eFromOpen);
    std::vector<std::uint8_t> f_dir(cells, fFromOpen);

    std::vector<int> e_col(m, 0);
    auto at = [m](int i, int j) {
        return static_cast<std::size_t>(j)
            * static_cast<std::size_t>(m)
            + static_cast<std::size_t>(i);
    };

    int best_score = 0;
    int best_i = -1;
    int best_j = -1;

    for (int j = 0; j < n; ++j) {
        const std::int8_t *profile = matrix.row(subject[j]);
        int f = 0;
        for (int i = 0; i < m; ++i) {
            const int h_left = j > 0 ? h_mat[at(i, j - 1)] : 0;
            const int e_left = j > 0 ? e_col[i] : 0;
            const int e_open = h_left - open_cost;
            const int e_ext = e_left - ext_cost;
            int e = std::max({0, e_open, e_ext});
            e_dir[at(i, j)] =
                e_ext > e_open ? eFromExt : eFromOpen;

            const int h_up = i > 0 ? h_mat[at(i - 1, j)] : 0;
            const int f_open = h_up - open_cost;
            const int f_ext = f - ext_cost;
            f = std::max({0, f_open, f_ext});
            f_dir[at(i, j)] =
                f_ext > f_open ? fFromExt : fFromOpen;

            const int h_diag =
                (i > 0 && j > 0) ? h_mat[at(i - 1, j - 1)] : 0;
            const int diag = h_diag + profile[query[i]];

            int h = 0;
            std::uint8_t dir = hFromZero;
            if (diag > h) {
                h = diag;
                dir = hFromDiag;
            }
            if (e > h) {
                h = e;
                dir = hFromE;
            }
            if (f > h) {
                h = f;
                dir = hFromF;
            }
            h_mat[at(i, j)] = h;
            h_dir[at(i, j)] = dir;
            e_col[i] = e;

            if (h > best_score) {
                best_score = h;
                best_i = i;
                best_j = j;
            }
        }
    }

    out.score = best_score;
    if (best_score == 0)
        return out;

    // Traceback from the maximum, honoring the layer (H/E/F) we are
    // in so affine gaps unwind correctly.
    std::string aq;
    std::string as;
    int i = best_i;
    int j = best_j;
    out.queryEnd = i;
    out.subjectEnd = j;

    enum class Layer { h, e, f };
    Layer layer = Layer::h;
    while (i >= 0 && j >= 0) {
        if (layer == Layer::h) {
            const std::uint8_t dir = h_dir[at(i, j)];
            if (dir == hFromZero)
                break;
            if (dir == hFromDiag) {
                aq.push_back(bio::Alphabet::decode(query[i]));
                as.push_back(bio::Alphabet::decode(subject[j]));
                if (query[i] == subject[j])
                    ++out.identities;
                --i;
                --j;
            } else if (dir == hFromE) {
                layer = Layer::e;
            } else {
                layer = Layer::f;
            }
        } else if (layer == Layer::e) {
            // Gap in the query: consume a subject residue.
            const std::uint8_t dir = e_dir[at(i, j)];
            aq.push_back('-');
            as.push_back(bio::Alphabet::decode(subject[j]));
            --j;
            layer = dir == eFromExt ? Layer::e : Layer::h;
        } else {
            // Gap in the subject: consume a query residue.
            const std::uint8_t dir = f_dir[at(i, j)];
            aq.push_back(bio::Alphabet::decode(query[i]));
            as.push_back('-');
            --i;
            layer = dir == fFromExt ? Layer::f : Layer::h;
        }
    }
    out.queryStart = i + 1;
    out.subjectStart = j + 1;
    std::reverse(aq.begin(), aq.end());
    std::reverse(as.begin(), as.end());
    out.alignedQuery = std::move(aq);
    out.alignedSubject = std::move(as);
    return out;
}

} // namespace bioarch::align
