/**
 * @file
 * BLASTP-style heuristic database search (the paper's NCBI BLAST
 * workload).
 *
 * Stages follow Altschul et al. (1990, 1997):
 *
 *   1. build the query's *neighborhood word index*: for every
 *      length-w query word, all words scoring >= T against it are
 *      entered into a direct-address lookup table over the full word
 *      space (alphabet^w entries). This table is the large, randomly
 *      indexed data structure that makes BLAST memory-bound in the
 *      paper;
 *   2. scan each database sequence word by word (the
 *      BlastWordFinder of Listing 1); on a table hit, apply the
 *      *two-hit* heuristic: two non-overlapping hits on the same
 *      diagonal within a window trigger an ungapped extension;
 *   3. ungapped X-drop extension along the diagonal;
 *   4. if the ungapped score passes the gap trigger, run a gapped
 *      (banded Smith-Waterman) extension and report the best score.
 */

#ifndef BIOARCH_ALIGN_BLAST_HH
#define BIOARCH_ALIGN_BLAST_HH

#include <cstdint>
#include <vector>

#include "bio/database.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "traceback/cigar.hh"
#include "traceback/hirschberg.hh"
#include "types.hh"

namespace bioarch::align
{

/** Tunables of the BLASTP pipeline (defaults match blastp). */
struct BlastParams
{
    int wordSize = 3;        ///< w: word length
    int neighborThreshold = 11; ///< T: neighborhood word score
    int twoHitWindow = 40;   ///< A: max diagonal distance of hit pair
    int xDropUngapped = 16;  ///< X: ungapped extension drop-off
    /** Ungapped score that starts a gapped extension. 38 raw is the
     * BLOSUM62 equivalent of NCBI's 22-bit gap trigger. */
    int gapTrigger = 38;
    int bandHalfWidth = 24;  ///< band half-width of gapped extension
    /** Residues of slack around the HSP explored by the gapped
     * extension (models the X-drop locality of the real gapped
     * stage — the band does not sweep the whole subject). */
    int gappedWindowMargin = 32;
    bool twoHit = true;      ///< use the two-hit heuristic
};

/**
 * Neighborhood word index over the full word space.
 *
 * The table is direct-addressed: word -> CSR range of query
 * positions whose neighborhood contains that word. For w = 3 over a
 * 23-symbol alphabet the head array alone is ~48 KB and the accesses
 * during the scan are data-dependent (indexed by database content),
 * which reproduces BLAST's large irregular working set.
 */
class NeighborhoodIndex
{
  public:
    NeighborhoodIndex(const bio::Sequence &query,
                      const bio::ScoringMatrix &matrix,
                      const BlastParams &params);

    int wordSize() const { return _wordSize; }
    int queryLength() const { return _queryLength; }

    /** Total (word, query position) pairs stored. */
    std::size_t numEntries() const { return _positions.size(); }

    /** Number of direct-address table slots (alphabet^w). */
    std::size_t tableSize() const { return _heads.size() - 1; }

    /** Encode the word starting at @p residues. */
    std::uint32_t
    encode(const bio::Residue *residues) const
    {
        std::uint32_t w = 0;
        for (int k = 0; k < _wordSize; ++k)
            w = w * bio::Alphabet::numSymbols + residues[k];
        return w;
    }

    /** Query positions whose neighborhood contains word @p w. */
    std::pair<const std::int32_t *, const std::int32_t *>
    positions(std::uint32_t w) const
    {
        const std::int32_t head = _heads[w];
        const std::int32_t tail = _heads[w + 1];
        return {_positions.data() + head, _positions.data() + tail};
    }

  private:
    int _wordSize;
    int _queryLength;
    std::vector<std::int32_t> _heads;     ///< CSR heads, size^w + 1
    std::vector<std::int32_t> _positions; ///< query positions
};

/** Result of one ungapped extension. */
struct UngappedExtension
{
    int score = 0;
    int queryStart = 0;
    int queryEnd = 0; ///< inclusive

    bool operator==(const UngappedExtension &other) const = default;
};

/**
 * Ungapped X-drop extension of a seed hit along its diagonal.
 *
 * @param query query sequence
 * @param subject subject sequence
 * @param matrix substitution matrix
 * @param qpos query position of the seed's first residue
 * @param spos subject position of the seed's first residue
 * @param seed_len residues of the seed (scored as part of the hit)
 * @param x_drop stop when the running score drops this far below
 *        the best seen
 */
UngappedExtension ungappedExtend(const bio::Sequence &query,
                                 const bio::Sequence &subject,
                                 const bio::ScoringMatrix &matrix,
                                 int qpos, int spos, int seed_len,
                                 int x_drop);

/**
 * The sub-matrix a gapped extension explores: the HSP extent plus
 * margin, clipped to the sequences. Shared between the library scan
 * and the instrumented kernel twin so both run the identical gapped
 * stage.
 */
struct GappedWindow
{
    int queryLo = 0;   ///< first query row, inclusive
    int queryHi = -1;  ///< last query row, inclusive
    int subjectLo = 0; ///< first subject column, inclusive
    int subjectHi = -1;///< last subject column, inclusive
    int center = 0;    ///< band center diagonal in window coordinates

    bool empty() const { return queryHi < queryLo; }
};

/**
 * Compute the gapped-extension window for an HSP.
 *
 * @param ext the ungapped HSP
 * @param diag its diagonal (subject - query)
 * @param query_len length of the query
 * @param subject_len length of the subject
 * @param margin extra residues explored on each side
 */
GappedWindow gappedWindow(const UngappedExtension &ext, int diag,
                          int query_len, int subject_len, int margin);

/** Per-subject outcome of the BLAST stages. */
struct BlastScores
{
    int wordHits = 0;          ///< lookup-table hits during the scan
    int extensionsTried = 0;   ///< ungapped extensions started
    int bestUngapped = 0;      ///< best ungapped extension score
    int gappedExtensions = 0;  ///< gapped extensions started
    int score = 0;             ///< final (gapped) score; 0 if none
};

/**
 * Run the BLAST word scan + extensions for one subject.
 *
 * @param index prebuilt neighborhood index
 * @param query query sequence
 * @param subject subject sequence
 * @param matrix substitution matrix
 * @param gaps gap penalties for the gapped stage
 * @param params pipeline tunables
 * @param[out] cells optional work counter
 */
BlastScores blastScan(const NeighborhoodIndex &index,
                      const bio::Sequence &query,
                      const bio::Sequence &subject,
                      const bio::ScoringMatrix &matrix,
                      const bio::GapPenalties &gaps,
                      const BlastParams &params,
                      std::uint64_t *cells = nullptr);

/**
 * Phase-2 reporting twin of blastScan: rerun the word scan and
 * ungapped stage, then trace the gapped extension of the best HSP
 * through the identical band and window. With @p x_drop_gapped
 * negative (the serving default) the returned score is
 * bit-identical to blastScan's — the CIGAR explains exactly the
 * score the hit was ranked by. Returns an empty alignment when the
 * gap trigger never fires (blastScan would have scored 0).
 *
 * @param x_drop_gapped column X-drop of the traced gapped
 *        extension; negative sweeps the full band (score parity
 *        with blastScan), non-negative values may stop early
 * @param[out] stats traceback DP accounting (cells, peak space)
 */
CigarAlignment blastAlign(const NeighborhoodIndex &index,
                          const bio::Sequence &query,
                          const bio::Sequence &subject,
                          const bio::ScoringMatrix &matrix,
                          const bio::GapPenalties &gaps,
                          const BlastParams &params,
                          std::uint64_t *cells = nullptr,
                          int x_drop_gapped = -1,
                          TracebackStats *stats = nullptr);

/** Full database search ranked by score / E-value. */
SearchResults blastSearch(const bio::Sequence &query,
                          const bio::SequenceDatabase &db,
                          const bio::ScoringMatrix &matrix,
                          const bio::GapPenalties &gaps,
                          const BlastParams &params = {},
                          std::size_t max_hits = 500);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_BLAST_HH
