#include "blastn.hh"

#include <algorithm>
#include <cmath>

#include "banded_impl.hh"
#include "bio/scoring.hh"
#include "blast.hh"

namespace bioarch::align
{

namespace
{

/** 4^w. */
std::size_t
dnaWordSpace(int w)
{
    return std::size_t{1} << (2 * w);
}

/**
 * Karlin lambda for uniform-composition match/mismatch scoring:
 * the root of (1/4) e^{lambda*match} + (3/4) e^{lambda*mismatch} = 1.
 */
double
dnaLambda(int match, int mismatch)
{
    if (match <= 0)
        return 0.0;
    auto f = [&](double lambda) {
        return 0.25 * std::exp(lambda * match)
            + 0.75 * std::exp(lambda * mismatch) - 1.0;
    };
    double hi = 1.0;
    while (f(hi) < 0.0)
        hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        (f(mid) < 0.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

/** Decode packed DNA into a Sequence over residues 0..3 (for the
 * banded gapped stage, which is alphabet-agnostic). */
bio::Sequence
decode(const bio::PackedDna &dna, std::size_t lo, std::size_t hi)
{
    std::vector<bio::Residue> out;
    out.reserve(hi - lo + 1);
    for (std::size_t i = lo; i <= hi; ++i)
        out.push_back(static_cast<bio::Residue>(dna[i]));
    return bio::Sequence(dna.id(), "window", std::move(out));
}

} // namespace

DnaWordIndex::DnaWordIndex(const bio::PackedDna &query, int word_size)
    : _wordSize(word_size), _heads(dnaWordSpace(word_size) + 1, 0)
{
    const std::size_t m = query.length();
    if (m < static_cast<std::size_t>(word_size))
        return;
    const std::size_t num = m - static_cast<std::size_t>(word_size)
        + 1;
    const std::uint32_t mask = static_cast<std::uint32_t>(
        dnaWordSpace(word_size) - 1);

    std::vector<std::uint32_t> words(num);
    std::uint32_t w = 0;
    for (std::size_t i = 0; i < m; ++i) {
        w = ((w << 2) | query[i]) & mask;
        if (i + 1 >= static_cast<std::size_t>(word_size)) {
            const std::size_t start =
                i + 1 - static_cast<std::size_t>(word_size);
            words[start] = w;
            ++_heads[w + 1];
        }
    }
    for (std::size_t k = 1; k < _heads.size(); ++k)
        _heads[k] += _heads[k - 1];
    _positions.resize(num);
    std::vector<std::int32_t> cursor(_heads.begin(),
                                     _heads.end() - 1);
    for (std::size_t i = 0; i < num; ++i)
        _positions[static_cast<std::size_t>(
            cursor[words[i]]++)] = static_cast<std::int32_t>(i);
}

BlastnScores
blastnScan(const DnaWordIndex &index, const bio::PackedDna &query,
           const bio::PackedDna &subject, const BlastnParams &params,
           std::uint64_t *cells)
{
    BlastnScores out;
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int w = index.wordSize();
    if (m < w || n < w)
        return out;

    const int num_diags = m + n - 1;
    const int diag_offset = m - 1;
    std::vector<std::int32_t> extended_to(
        static_cast<std::size_t>(num_diags), -1);

    int best_diag = 0;
    UngappedExtension best_ext;

    const std::uint32_t mask = static_cast<std::uint32_t>(
        (std::size_t{1} << (2 * w)) - 1);
    std::uint32_t word = 0;
    for (int j = 0; j < n; ++j) {
        word = ((word << 2) | subject[static_cast<std::size_t>(j)])
            & mask;
        if (j + 1 < w)
            continue;
        const int start = j + 1 - w;
        const auto [begin, end] = index.positions(word);
        if (cells)
            ++*cells;
        for (const std::int32_t *p = begin; p != end; ++p) {
            const int i = *p;
            const int d = start - i + diag_offset;
            ++out.wordHits;
            if (start <= extended_to[static_cast<std::size_t>(d)])
                continue;

            // One-hit seeding: extend immediately (classic blastn).
            ++out.extensionsTried;
            int seed = params.matchScore * w;

            // Right extension, unpacking base by base (the
            // READDB_UNPACK_BASE pattern).
            int best_right = 0;
            int right_len = 0;
            int run = 0;
            for (int k = w; i + k < m && start + k < n; ++k) {
                run += query[static_cast<std::size_t>(i + k)]
                        == subject[static_cast<std::size_t>(
                            start + k)]
                    ? params.matchScore
                    : params.mismatchScore;
                if (run > best_right) {
                    best_right = run;
                    right_len = k - w + 1;
                }
                if (run < best_right - params.xDropUngapped)
                    break;
                if (cells)
                    ++*cells;
            }
            // Left extension.
            int best_left = 0;
            int left_len = 0;
            run = 0;
            for (int k = 1; i - k >= 0 && start - k >= 0; ++k) {
                run += query[static_cast<std::size_t>(i - k)]
                        == subject[static_cast<std::size_t>(
                            start - k)]
                    ? params.matchScore
                    : params.mismatchScore;
                if (run > best_left) {
                    best_left = run;
                    left_len = k;
                }
                if (run < best_left - params.xDropUngapped)
                    break;
                if (cells)
                    ++*cells;
            }

            const int score = seed + best_right + best_left;
            extended_to[static_cast<std::size_t>(d)] =
                start + w - 1 + right_len;
            if (score > out.bestUngapped) {
                out.bestUngapped = score;
                best_diag = start - i;
                best_ext.score = score;
                best_ext.queryStart = i - left_len;
                best_ext.queryEnd = i + w - 1 + right_len;
            }
        }
    }

    if (out.bestUngapped >= params.gapTrigger) {
        ++out.gappedExtensions;
        const GappedWindow win =
            gappedWindow(best_ext, best_diag, m, n,
                         params.gappedWindowMargin);
        const bio::Sequence qw = decode(
            query, static_cast<std::size_t>(win.queryLo),
            static_cast<std::size_t>(win.queryHi));
        const bio::Sequence sw = decode(
            subject, static_cast<std::size_t>(win.subjectLo),
            static_cast<std::size_t>(win.subjectHi));
        const bio::ScoringMatrix mm = bio::makeMatchMismatch(
            params.matchScore, params.mismatchScore);
        const bio::GapPenalties gaps{params.gapOpen,
                                     params.gapExtend};
        const LocalScore gapped = bandedSmithWatermanScan(
            qw, sw, mm, gaps, win.center, params.bandHalfWidth,
            [](int, int, int, int, int) {});
        if (cells) {
            *cells += static_cast<std::uint64_t>(
                          2 * params.bandHalfWidth + 1)
                * static_cast<std::uint64_t>(
                          win.subjectHi - win.subjectLo + 1);
        }
        out.score = std::max(gapped.score, 0);
    }
    return out;
}

SearchResults
blastnSearch(const bio::PackedDna &query, const bio::DnaDatabase &db,
             const BlastnParams &params, std::size_t max_hits)
{
    SearchResults out;
    const DnaWordIndex index(query, params.wordSize);
    const double lambda =
        dnaLambda(params.matchScore, params.mismatchScore);
    const double k = 0.3; // standard blastn-scale constant
    const double total = static_cast<double>(db.totalBases());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const BlastnScores bs = blastnScan(
            index, query, db[idx], params, &out.cellsComputed);
        ++out.sequencesSearched;
        if (bs.score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = bs.score;
        hit.bitScore =
            (lambda * bs.score - std::log(k)) / std::log(2.0);
        hit.evalue = k * static_cast<double>(query.length()) * total
            * std::exp(-lambda * bs.score);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

} // namespace bioarch::align
