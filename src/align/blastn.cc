#include "blastn.hh"

#include <algorithm>
#include <cmath>

#include "banded_impl.hh"
#include "bio/scoring.hh"
#include "blast.hh"
#include "traceback/banded_extend.hh"
#include "xdrop.hh"

namespace bioarch::align
{

namespace
{

/** 4^w. */
std::size_t
dnaWordSpace(int w)
{
    return std::size_t{1} << (2 * w);
}

/**
 * Karlin lambda for uniform-composition match/mismatch scoring:
 * the root of (1/4) e^{lambda*match} + (3/4) e^{lambda*mismatch} = 1.
 */
double
dnaLambda(int match, int mismatch)
{
    if (match <= 0)
        return 0.0;
    auto f = [&](double lambda) {
        return 0.25 * std::exp(lambda * match)
            + 0.75 * std::exp(lambda * mismatch) - 1.0;
    };
    double hi = 1.0;
    while (f(hi) < 0.0)
        hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        (f(mid) < 0.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

/** Decode packed DNA into a Sequence over residues 0..3 (for the
 * banded gapped stage, which is alphabet-agnostic). */
bio::Sequence
decode(const bio::PackedDna &dna, std::size_t lo, std::size_t hi)
{
    std::vector<bio::Residue> out;
    out.reserve(hi - lo + 1);
    for (std::size_t i = lo; i <= hi; ++i)
        out.push_back(static_cast<bio::Residue>(dna[i]));
    return bio::Sequence(dna.id(), "window", std::move(out));
}

} // namespace

DnaWordIndex::DnaWordIndex(const bio::PackedDna &query, int word_size)
    : _wordSize(word_size), _heads(dnaWordSpace(word_size) + 1, 0)
{
    const std::size_t m = query.length();
    if (m < static_cast<std::size_t>(word_size))
        return;
    const std::size_t num = m - static_cast<std::size_t>(word_size)
        + 1;
    const std::uint32_t mask = static_cast<std::uint32_t>(
        dnaWordSpace(word_size) - 1);

    std::vector<std::uint32_t> words(num);
    std::uint32_t w = 0;
    for (std::size_t i = 0; i < m; ++i) {
        w = ((w << 2) | query[i]) & mask;
        if (i + 1 >= static_cast<std::size_t>(word_size)) {
            const std::size_t start =
                i + 1 - static_cast<std::size_t>(word_size);
            words[start] = w;
            ++_heads[w + 1];
        }
    }
    for (std::size_t k = 1; k < _heads.size(); ++k)
        _heads[k] += _heads[k - 1];
    _positions.resize(num);
    std::vector<std::int32_t> cursor(_heads.begin(),
                                     _heads.end() - 1);
    for (std::size_t i = 0; i < num; ++i)
        _positions[static_cast<std::size_t>(
            cursor[words[i]]++)] = static_cast<std::int32_t>(i);
}

namespace
{

/** Counters plus the best ungapped HSP of one blastn word scan
 * (the gapped stage runs afterwards, in the caller). */
struct HspScanN
{
    BlastnScores scores;
    int bestDiag = 0;
    UngappedExtension bestExt;
};

/**
 * The word scan + ungapped x-drop stage, shared — via the
 * subject-base accessor @p sub — between the 2-bit packed subject
 * path and the residue-array path the serving tier scans
 * (identical arithmetic, bit-identical HSPs).
 */
template <typename SubjectAt>
HspScanN
hspScanN(const DnaWordIndex &index, const bio::PackedDna &query,
         SubjectAt &&sub, int n, const BlastnParams &params,
         std::uint64_t *cells)
{
    HspScanN hsp;
    BlastnScores &out = hsp.scores;
    const int m = static_cast<int>(query.length());
    const int w = index.wordSize();
    if (m < w || n < w)
        return hsp;

    const int num_diags = m + n - 1;
    const int diag_offset = m - 1;
    std::vector<std::int32_t> extended_to(
        static_cast<std::size_t>(num_diags), -1);

    const std::uint32_t mask = static_cast<std::uint32_t>(
        (std::size_t{1} << (2 * w)) - 1);
    std::uint32_t word = 0;
    for (int j = 0; j < n; ++j) {
        word = ((word << 2) | sub(j)) & mask;
        if (j + 1 < w)
            continue;
        const int start = j + 1 - w;
        const auto [begin, end] = index.positions(word);
        if (cells)
            ++*cells;
        for (const std::int32_t *p = begin; p != end; ++p) {
            const int i = *p;
            const int d = start - i + diag_offset;
            ++out.wordHits;
            if (start <= extended_to[static_cast<std::size_t>(d)])
                continue;

            // One-hit seeding: extend immediately (classic
            // blastn), unpacking base by base (the
            // READDB_UNPACK_BASE pattern).
            ++out.extensionsTried;
            const int seed = params.matchScore * w;
            const auto count_step = [&](int) {
                if (cells)
                    ++*cells;
            };
            const XdropRun right = xdropRun(
                std::min(m - i, n - start) - w,
                params.xDropUngapped,
                [&](int k) {
                    return query[static_cast<std::size_t>(i + w
                                                          + k)]
                            == sub(start + w + k)
                        ? params.matchScore
                        : params.mismatchScore;
                },
                count_step);
            const XdropRun left = xdropRun(
                std::min(i, start), params.xDropUngapped,
                [&](int k) {
                    return query[static_cast<std::size_t>(i - 1
                                                          - k)]
                            == sub(start - 1 - k)
                        ? params.matchScore
                        : params.mismatchScore;
                },
                count_step);

            const int score = seed + right.best + left.best;
            extended_to[static_cast<std::size_t>(d)] =
                start + w - 1 + right.len;
            if (score > out.bestUngapped) {
                out.bestUngapped = score;
                hsp.bestDiag = start - i;
                hsp.bestExt.score = score;
                hsp.bestExt.queryStart = i - left.len;
                hsp.bestExt.queryEnd = i + w - 1 + right.len;
            }
        }
    }
    return hsp;
}

/** The gapped window of the best HSP (empty() when none fires). */
GappedWindow
gappedWindowN(const HspScanN &hsp, int m, int n,
              const BlastnParams &params)
{
    if (hsp.scores.bestUngapped < params.gapTrigger)
        return GappedWindow{};
    return gappedWindow(hsp.bestExt, hsp.bestDiag, m, n,
                        params.gappedWindowMargin);
}

/** Score-only gapped stage shared by both blastnScan overloads. */
void
gappedStageN(const GappedWindow &win, const bio::Sequence &qw,
             const bio::Sequence &sw, const BlastnParams &params,
             BlastnScores &out, std::uint64_t *cells)
{
    ++out.gappedExtensions;
    const bio::ScoringMatrix mm = bio::makeMatchMismatch(
        params.matchScore, params.mismatchScore);
    const bio::GapPenalties gaps{params.gapOpen, params.gapExtend};
    const LocalScore gapped = bandedSmithWatermanScan(
        qw, sw, mm, gaps, win.center, params.bandHalfWidth,
        [](int, int, int, int, int) {});
    if (cells) {
        *cells += static_cast<std::uint64_t>(
                      2 * params.bandHalfWidth + 1)
            * static_cast<std::uint64_t>(win.subjectHi
                                         - win.subjectLo + 1);
    }
    out.score = std::max(gapped.score, 0);
}

/** Window of a residue-array subject (bases stored as residues). */
bio::Sequence
residueWindow(const bio::Residue *subject, int lo, int hi)
{
    return bio::Sequence(
        "subject", "window",
        std::vector<bio::Residue>(subject + lo, subject + hi + 1));
}

} // namespace

BlastnScores
blastnScan(const DnaWordIndex &index, const bio::PackedDna &query,
           const bio::PackedDna &subject, const BlastnParams &params,
           std::uint64_t *cells)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const HspScanN hsp = hspScanN(
        index, query,
        [&](int k) { return subject[static_cast<std::size_t>(k)]; },
        n, params, cells);
    BlastnScores out = hsp.scores;
    const GappedWindow win = gappedWindowN(hsp, m, n, params);
    if (!win.empty()) {
        const bio::Sequence qw = decode(
            query, static_cast<std::size_t>(win.queryLo),
            static_cast<std::size_t>(win.queryHi));
        const bio::Sequence sw = decode(
            subject, static_cast<std::size_t>(win.subjectLo),
            static_cast<std::size_t>(win.subjectHi));
        gappedStageN(win, qw, sw, params, out, cells);
    }
    return out;
}

BlastnScores
blastnScan(const DnaWordIndex &index, const bio::PackedDna &query,
           const bio::Residue *subject, std::size_t subject_len,
           const BlastnParams &params, std::uint64_t *cells)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject_len);
    const HspScanN hsp = hspScanN(
        index, query,
        [&](int k) { return static_cast<unsigned>(subject[k]); }, n,
        params, cells);
    BlastnScores out = hsp.scores;
    const GappedWindow win = gappedWindowN(hsp, m, n, params);
    if (!win.empty()) {
        const bio::Sequence qw = decode(
            query, static_cast<std::size_t>(win.queryLo),
            static_cast<std::size_t>(win.queryHi));
        const bio::Sequence sw =
            residueWindow(subject, win.subjectLo, win.subjectHi);
        gappedStageN(win, qw, sw, params, out, cells);
    }
    return out;
}

CigarAlignment
blastnAlign(const DnaWordIndex &index, const bio::PackedDna &query,
            const bio::Residue *subject, std::size_t subject_len,
            const BlastnParams &params, std::uint64_t *cells,
            int x_drop_gapped, TracebackStats *stats)
{
    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject_len);
    const HspScanN hsp = hspScanN(
        index, query,
        [&](int k) { return static_cast<unsigned>(subject[k]); }, n,
        params, cells);

    CigarAlignment out;
    const GappedWindow win = gappedWindowN(hsp, m, n, params);
    if (win.empty())
        return out;
    // Same window, band and scoring as the score-only gapped
    // stage; a disabled X-drop keeps the traced score
    // bit-identical to blastnScan's.
    const bio::Sequence qw =
        decode(query, static_cast<std::size_t>(win.queryLo),
               static_cast<std::size_t>(win.queryHi));
    const bio::Sequence sw =
        residueWindow(subject, win.subjectLo, win.subjectHi);
    const bio::ScoringMatrix mm = bio::makeMatchMismatch(
        params.matchScore, params.mismatchScore);
    const bio::GapPenalties gaps{params.gapOpen, params.gapExtend};
    out = bandedExtendAlign(qw, sw, mm, gaps, win.center,
                            params.bandHalfWidth, x_drop_gapped,
                            stats);
    if (cells && stats)
        *cells += stats->totalCells;
    if (out.empty())
        return out;
    out.qBegin += win.queryLo;
    out.qEnd += win.queryLo;
    out.sBegin += win.subjectLo;
    out.sEnd += win.subjectLo;
    return out;
}

SearchResults
blastnSearch(const bio::PackedDna &query, const bio::DnaDatabase &db,
             const BlastnParams &params, std::size_t max_hits)
{
    SearchResults out;
    const DnaWordIndex index(query, params.wordSize);
    const double lambda =
        dnaLambda(params.matchScore, params.mismatchScore);
    const double k = 0.3; // standard blastn-scale constant
    const double total = static_cast<double>(db.totalBases());

    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const BlastnScores bs = blastnScan(
            index, query, db[idx], params, &out.cellsComputed);
        ++out.sequencesSearched;
        if (bs.score <= 0)
            continue;
        SearchHit hit;
        hit.dbIndex = idx;
        hit.score = bs.score;
        hit.bitScore =
            (lambda * bs.score - std::log(k)) / std::log(2.0);
        hit.evalue = k * static_cast<double>(query.length()) * total
            * std::exp(-lambda * bs.score);
        out.hits.push_back(hit);
    }
    std::sort(out.hits.begin(), out.hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  return a.score > b.score;
              });
    if (out.hits.size() > max_hits)
        out.hits.resize(max_hits);
    return out;
}

} // namespace bioarch::align
