/**
 * @file
 * Header-only banded Smith-Waterman engine with a per-cell hook.
 *
 * The hook lets instrumented kernel twins (src/kernels) emit one
 * trace-instruction pattern per DP cell while computing exactly the
 * same scores as align::bandedSmithWaterman — which is itself this
 * template instantiated with a no-op hook.
 */

#ifndef BIOARCH_ALIGN_BANDED_IMPL_HH
#define BIOARCH_ALIGN_BANDED_IMPL_HH

#include <algorithm>
#include <limits>
#include <vector>

#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"

namespace bioarch::align
{

/**
 * Banded Smith-Waterman around @p center_diagonal; see banded.hh for
 * the band semantics.
 *
 * @param hook callable invoked once per in-band cell as
 *        hook(i, j, h, e, f) with the freshly computed cell values
 */
template <typename CellHook>
LocalScore
bandedSmithWatermanScan(const bio::Sequence &query,
                        const bio::Sequence &subject,
                        const bio::ScoringMatrix &matrix,
                        const bio::GapPenalties &gaps,
                        int center_diagonal, int half_width,
                        CellHook &&hook)
{
    constexpr int neg_inf = std::numeric_limits<int>::min() / 4;

    const int m = static_cast<int>(query.length());
    const int n = static_cast<int>(subject.length());
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    LocalScore best;
    if (m == 0 || n == 0 || half_width < 0)
        return best;

    const int d_lo = center_diagonal - half_width;
    const int d_hi = center_diagonal + half_width;

    std::vector<int> h_row(static_cast<std::size_t>(m), neg_inf);
    std::vector<int> e_row(static_cast<std::size_t>(m), neg_inf);

    for (int j = 0; j < n; ++j) {
        const std::int8_t *profile = matrix.row(subject[j]);
        const int i_lo = std::max(0, j - d_hi);
        const int i_hi = std::min(m - 1, j - d_lo);
        if (i_lo > i_hi)
            continue;
        int h_diag = 0;
        int h_above = 0;
        int f = 0;
        if (i_lo > 0) {
            h_above = neg_inf;
            f = neg_inf;
            h_diag = h_row[static_cast<std::size_t>(i_lo - 1)];
        }
        for (int i = i_lo; i <= i_hi; ++i) {
            const std::size_t si = static_cast<std::size_t>(i);
            const int h_left = h_row[si];
            const int e_left = e_row[si];
            int e;
            if (h_left > neg_inf / 2 || e_left > neg_inf / 2) {
                e = std::max(
                    {0, h_left - open_cost, e_left - ext_cost});
            } else {
                e = 0;
            }
            if (f > neg_inf / 2 || h_above > neg_inf / 2)
                f = std::max({0, h_above - open_cost, f - ext_cost});
            else
                f = 0;
            const int diag_base = h_diag > neg_inf / 2 ? h_diag : 0;
            const int h = std::max(
                {0, diag_base + profile[query[i]], e, f});
            if (h > best.score) {
                best.score = h;
                best.queryEnd = i;
                best.subjectEnd = j;
            }
            hook(i, j, h, e, f);
            h_diag = h_row[si];
            h_row[si] = h;
            e_row[si] = e;
            h_above = h;
        }
        if (i_lo > 0) {
            h_row[static_cast<std::size_t>(i_lo - 1)] = neg_inf;
            e_row[static_cast<std::size_t>(i_lo - 1)] = neg_inf;
        }
    }
    return best;
}

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_BANDED_IMPL_HH
