/**
 * @file
 * The only translation unit compiled with -mavx2: the AVX2 kernel
 * instantiations (striped u8/i16 and inter-sequence u8), reached
 * through plain function pointers so the rest of the library stays
 * at the baseline ISA and dispatch is guarded by runtime CPUID
 * (sw_striped_native.cc / sw_intersequence_native.cc).
 */

#include "sw_intersequence_native_impl.hh"
#include "sw_striped_native_impl.hh"

#include "vec/simd_native.hh"

#if !defined(__AVX2__)
#error "sw_striped_avx2.cc must be compiled with -mavx2"
#endif

namespace bioarch::align::detail
{

LocalScore
scanU8Avx2(const std::uint8_t *profile, int seg,
           const bio::Residue *subject, std::size_t n,
           int open_cost, int ext_cost, int bias, bool *saturated)
{
    return stripedScanU8<vec::native::Avx2U8>(
        profile, seg, subject, n, open_cost, ext_cost, bias,
        saturated);
}

LocalScore
scanI16Avx2(const std::int16_t *profile, int seg,
            const bio::Residue *subject, std::size_t n,
            int open_cost, int ext_cost, bool *saturated)
{
    return stripedScanI16<vec::native::Avx2I16>(
        profile, seg, subject, n, open_cost, ext_cost, saturated);
}

void
interScanU8Avx2(const std::uint8_t *mat_t, const bio::Residue *query,
                int m, const InterSubject *subjects,
                std::size_t count, int open_cost, int ext_cost,
                int bias, InterLaneResult *results)
{
    interScanU8<vec::native::Avx2U8>(mat_t, query, m, subjects,
                                     count, open_cost, ext_cost,
                                     bias, results);
}

} // namespace bioarch::align::detail
