/**
 * @file
 * Data-parallel Smith-Waterman in the style of the Altivec kernel in
 * FASTA's SSEARCH (the paper's SW_vmx128) and its futuristic 256-bit
 * variant (SW_vmx256).
 *
 * The kernel processes the query in strips of N rows (N = vector
 * lanes) and walks anti-diagonals within a strip (the Wozniak
 * scheme), so a vector operation has no intra-vector dependency and
 * the loop body is branch-free — exactly the property the paper
 * highlights (Listing 3: fixed trip counts, no data-dependent
 * control flow). Scores are bit-identical to the reference scalar
 * Smith-Waterman.
 *
 *   N = 8  lanes of int16 -> one 128-bit Altivec register (vmx128)
 *   N = 16 lanes of int16 -> one 256-bit register       (vmx256)
 */

#ifndef BIOARCH_ALIGN_SW_SIMD_HH
#define BIOARCH_ALIGN_SW_SIMD_HH

#include <cstdint>
#include <vector>

#include "bio/database.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "types.hh"
#include "vec/simd.hh"

namespace bioarch::align
{

/**
 * Vector query profile: per subject residue, the query scores laid
 * out so a strip's score vector is one aligned load plus a permute
 * (we store them strip-major: strip s, lane l holds score for query
 * row s*N + l). Pad rows score a large negative sentinel so they can
 * never contribute a best score.
 */
template <int N>
class VectorProfile
{
  public:
    /** Sentinel score for pad rows / out-of-range columns. */
    static constexpr std::int16_t padScore = -1000;

    VectorProfile(const bio::Sequence &query,
                  const bio::ScoringMatrix &matrix);

    int queryLength() const { return _queryLength; }
    int numStrips() const { return _numStrips; }

    /**
     * Pointer to the N scores of strip @p strip for subject residue
     * @p r.
     */
    const std::int16_t *
    strip(bio::Residue r, int s) const
    {
        return _rows.data()
            + (static_cast<std::size_t>(r) * _numStrips
               + static_cast<std::size_t>(s)) * N;
    }

  private:
    int _queryLength;
    int _numStrips;
    std::vector<std::int16_t> _rows;
};

/**
 * SIMD Smith-Waterman scan of one subject sequence.
 *
 * @tparam N vector lanes (8 = vmx128, 16 = vmx256)
 * @param profile prebuilt vector profile
 * @param subject subject sequence
 * @param gaps affine gap penalties
 * @param[out] cells optional DP cell counter
 */
template <int N>
LocalScore swSimdScan(const VectorProfile<N> &profile,
                      const bio::Sequence &subject,
                      const bio::GapPenalties &gaps,
                      std::uint64_t *cells = nullptr);

/**
 * Database search using the SIMD kernel; ranking matches
 * ssearchSearch exactly (same scores, same E-values).
 */
template <int N>
SearchResults swSimdSearch(const bio::Sequence &query,
                           const bio::SequenceDatabase &db,
                           const bio::ScoringMatrix &matrix,
                           const bio::GapPenalties &gaps,
                           std::size_t max_hits = 500);

/** The paper's SW_vmx128: 8 lanes of int16 in a 128-bit register. */
inline LocalScore
swVmx128Scan(const VectorProfile<8> &profile,
             const bio::Sequence &subject, const bio::GapPenalties &gaps,
             std::uint64_t *cells = nullptr)
{
    return swSimdScan<8>(profile, subject, gaps, cells);
}

/** The paper's SW_vmx256: 16 lanes of int16 in a 256-bit register. */
inline LocalScore
swVmx256Scan(const VectorProfile<16> &profile,
             const bio::Sequence &subject, const bio::GapPenalties &gaps,
             std::uint64_t *cells = nullptr)
{
    return swSimdScan<16>(profile, subject, gaps, cells);
}

extern template class VectorProfile<4>;
extern template class VectorProfile<8>;
extern template class VectorProfile<16>;
extern template class VectorProfile<32>;
extern template LocalScore swSimdScan<4>(const VectorProfile<4> &,
                                         const bio::Sequence &,
                                         const bio::GapPenalties &,
                                         std::uint64_t *);
extern template LocalScore swSimdScan<8>(const VectorProfile<8> &,
                                         const bio::Sequence &,
                                         const bio::GapPenalties &,
                                         std::uint64_t *);
extern template LocalScore swSimdScan<16>(const VectorProfile<16> &,
                                          const bio::Sequence &,
                                          const bio::GapPenalties &,
                                          std::uint64_t *);
extern template LocalScore swSimdScan<32>(const VectorProfile<32> &,
                                          const bio::Sequence &,
                                          const bio::GapPenalties &,
                                          std::uint64_t *);
extern template SearchResults swSimdSearch<8>(
    const bio::Sequence &, const bio::SequenceDatabase &,
    const bio::ScoringMatrix &, const bio::GapPenalties &, std::size_t);
extern template SearchResults swSimdSearch<16>(
    const bio::Sequence &, const bio::SequenceDatabase &,
    const bio::ScoringMatrix &, const bio::GapPenalties &, std::size_t);

} // namespace bioarch::align

#endif // BIOARCH_ALIGN_SW_SIMD_HH
