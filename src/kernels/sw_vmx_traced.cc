#include "sw_vmx_traced.hh"

#include <algorithm>
#include <vector>

#include "bio/scoring.hh"
#include "trace/tracer.hh"

namespace bioarch::kernels
{

namespace
{

using trace::Reg;
using trace::Tracer;

/** Sentinel profile score for pad rows (beyond the query). */
constexpr int padScore = -1000;

} // namespace

template <int N>
TracedRun
traceSwVmx(const TraceInput &input)
{
    static_assert(N >= 4 && (N & (N - 1)) == 0);
    /** 128-bit granules per vector register. */
    constexpr int granules = N > 8 ? N / 8 : 1;

    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    const int open_cost = gaps.openCost();
    const int ext_cost = gaps.extendCost();

    const bio::Sequence &query = input.query;
    const int m = static_cast<int>(query.length());
    const int strips = (m + N - 1) / N;
    const std::size_t max_n = input.db.maxLength();

    Tracer t(N == 8 ? "SW_vmx128"
                    : (N == 16 ? "SW_vmx256" : "SW_vmx"));

    // Memory image: strip-major vector profile, the strip boundary
    // H/F arrays (double-buffered), a scratch H-row buffer the
    // kernel vector-stores into, and the database byte stream.
    const isa::Addr a_prof = t.alloc(
        static_cast<std::size_t>(bio::Alphabet::numSymbols)
            * strips * N * 2,
        "vector query profile");
    const isa::Addr a_hbound = t.alloc(max_n * 2 * 2, "H boundary");
    const isa::Addr a_fbound = t.alloc(max_n * 2 * 2, "F boundary");
    // The kernel's working H/E vectors live in a memory-resident
    // row buffer (the real Altivec code spills them: 28 strips do
    // not fit in 32 vector registers). The per-step store/reload of
    // this state is what puts L1 latency on the dependency chain
    // (the paper's Fig. 7 observation).
    const isa::Addr a_state = t.alloc(
        static_cast<std::size_t>(granules) * 16 * 2,
        "H/E row buffer");
    const isa::Addr a_db =
        t.alloc(input.db.totalResidues(), "database residues");

    TracedRun run;
    run.scores.reserve(input.db.size());

    // Computation state (the emission mirrors it; see below).
    std::vector<int> hcol(static_cast<std::size_t>(N));
    std::vector<int> ecol(static_cast<std::size_t>(N));
    std::vector<int> h_bound(max_n, 0);
    std::vector<int> f_bound(max_n, 0);
    std::vector<int> h_bound_next(max_n, 0);
    std::vector<int> f_bound_next(max_n, 0);

    isa::Addr seq_base = a_db;
    for (std::size_t sidx = 0; sidx < input.db.size(); ++sidx) {
        const bio::Sequence &subject = input.db[sidx];
        const int n = static_cast<int>(subject.length());

        std::fill(h_bound.begin(), h_bound.end(), 0);
        std::fill(f_bound.begin(), f_bound.end(), 0);
        int best = 0;

        // Per-sequence setup.
        Reg r_dbptr = t.alu();
        Reg r_len = t.load(seq_base, 1);
        Reg v_zero = t.vperm(); // vspltish 0
        Reg v_best = t.vperm();

        for (int s = 0; s < strips; ++s) {
            const int i0 = s * N;
            std::fill(hcol.begin(), hcol.end(), 0);
            std::fill(ecol.begin(), ecol.end(), 0);
            std::fill(h_bound_next.begin(), h_bound_next.end(), 0);
            std::fill(f_bound_next.begin(), f_bound_next.end(), 0);

            // Strip prologue: zero the row-buffer state, reload
            // pointers.
            Reg v_fprev = t.vperm({v_zero});
            Reg r_jptr = t.alu({r_dbptr});
            Reg r_bptr = t.alu();
            for (int g = 0; g < granules; ++g) {
                const isa::Addr ga = static_cast<isa::Addr>(g) * 16;
                t.vstore(a_state + ga, 16, v_zero, {r_bptr});
                t.vstore(a_state + granules * 16 + ga, 16, v_zero,
                         {r_bptr});
            }

            for (int j = 0; j < n; ++j) {
                const bio::Residue res = subject[j];

                // ---- real computation: N cells of column j ------
                const int f_in = f_bound[static_cast<std::size_t>(j)];
                const int hb_diag =
                    j > 0 ? h_bound[static_cast<std::size_t>(j - 1)]
                          : 0;
                int f_cur = f_in;
                int h_diag_prev = hb_diag; // H[i-1][j-1] for lane l
                int new_best = best;
                int best_lane = -1;
                for (int l = 0; l < N; ++l) {
                    const int i = i0 + l;
                    const int score =
                        i < m ? matrix.score(query[i], res)
                              : padScore;
                    const std::size_t sl =
                        static_cast<std::size_t>(l);
                    const int e_new = std::max(
                        {0, hcol[sl] - open_cost,
                         ecol[sl] - ext_cost});
                    if (l > 0) {
                        f_cur = std::max(
                            {0, hcol[sl - 1] /*just updated: H[i-1][j]*/
                                 - open_cost,
                             f_cur - ext_cost});
                    }
                    const int h_new = std::max(
                        {0, h_diag_prev + score, e_new, f_cur});
                    h_diag_prev = hcol[sl]; // H[i][j-1] -> next diag
                    hcol[sl] = h_new;
                    ecol[sl] = e_new;
                    if (h_new > new_best) {
                        new_best = h_new;
                        best_lane = l;
                    }
                }
                if (best_lane >= 0 && i0 + best_lane < m)
                    best = new_best;
                h_bound_next[static_cast<std::size_t>(j)] =
                    hcol[static_cast<std::size_t>(N - 1)];
                f_bound_next[static_cast<std::size_t>(j)] =
                    std::max({0,
                              hcol[static_cast<std::size_t>(N - 1)]
                                  - open_cost,
                              f_cur - ext_cost});

                // ---- emission: the Altivec instruction pattern --
                //
                // Scalar bookkeeping + vector loads + permutes are
                // emitted once per 128-bit granule; VI arithmetic
                // once per register (see the header comment).
                const isa::Addr row_addr = a_prof
                    + (static_cast<isa::Addr>(res) * strips + s)
                        * N * 2;
                const isa::Addr col2 = static_cast<isa::Addr>(j) * 2;

                Reg v_prof; // merged profile vector
                Reg v_hl;   // H state reloaded from the row buffer
                Reg v_el;   // E state reloaded from the row buffer
                Reg r_state;
                for (int g = 0; g < granules; ++g) {
                    const isa::Addr ga =
                        static_cast<isa::Addr>(g) * 16;
                    // Scalar block (3 loads, 6 alu, 2 stores, 3
                    // other per granule).
                    Reg r_res = t.load(
                        seq_base + static_cast<isa::Addr>(j), 1,
                        {r_jptr});
                    Reg r_row = t.alu({r_res});
                    Reg r_hb = t.load(a_hbound + col2, 2, {r_bptr});
                    Reg r_fb = t.load(a_fbound + col2, 2, {r_bptr});
                    Reg r_a1 = t.alu({r_row});
                    Reg r_a2 = t.alu({r_hb});
                    Reg r_a3 = t.alu({r_fb});
                    Reg r_a4 = t.alu({r_jptr});
                    r_bptr = t.alu({r_bptr});
                    t.store(a_hbound + max_n * 2 + col2, 2, r_a2,
                            {r_bptr});
                    t.store(a_fbound + max_n * 2 + col2, 2, r_a3,
                            {r_bptr});
                    Reg r_o1 = t.other({r_a1});
                    Reg r_o2 = t.other({r_a4});
                    t.other({r_o1, r_o2});
                    r_state = r_a4;

                    // Vector loads: the profile strip plus the H/E
                    // working state written back at the end of the
                    // previous step (a real store->load dependency
                    // the simulator honors).
                    Reg v_l1 = t.vload(row_addr + ga, 16, {r_row});
                    v_hl = t.vload(a_state + ga, 16, {r_a4});
                    v_el = t.vload(a_state + granules * 16 + ga, 16,
                                   {r_a4});
                    Reg v_al = t.vperm({v_l1}); // lvsl alignment
                    v_prof = v_prof.valid()
                        ? t.vperm({v_prof, v_al}) // granule merge
                        : t.vperm({v_al});
                    Reg v_ins1 = t.vperm({v_prof, r_hb});
                    Reg v_ins2 = t.vperm({v_ins1, r_fb});
                    Reg v_fix1 = t.vperm({v_fprev, v_ins2});
                    Reg v_fix2 = t.vperm({v_fix1});
                    Reg v_ext = t.vperm({v_fix2});
                    v_prof = v_ext;
                }

                // VI arithmetic: one op per N-lane register (8 ops).
                Reg v_e1 = t.vsimple({v_hl});           // subs open
                Reg v_e2 = t.vsimple({v_el});           // subs ext
                Reg v_e = t.vsimple({v_e1, v_e2});      // vmax -> E
                Reg v_f1 = t.vsimple({v_hl});           // subs open
                Reg v_f = t.vsimple({v_f1, v_fprev});   // vmax -> F
                Reg v_h1 = t.vsimple({v_prof, v_hl});   // adds diag
                Reg v_h2 = t.vsimple({v_h1, v_e});      // vmax
                Reg v_h = t.vsimple({v_h2, v_f});       // vmax -> H
                v_best = t.vsimple({v_best, v_h});

                // Wide registers pay cross-granule realignment on
                // the loop-carried H value: the next diagonal's
                // shifts cross the 128-bit lane boundary, which the
                // modeled extension implements as extra permutes in
                // the critical path (this is the serialization that
                // keeps the 256-bit version from a 2x speedup).
                for (int g = 1; g < granules; ++g) {
                    // Cross-lane realignment of the carried H value
                    // (two permute stages per extra granule).
                    v_h = t.vperm({v_h});
                    v_h = t.vperm({v_h});
                }

                // Write the working state back to the row buffer
                // (reloaded at the top of the next step).
                for (int g = 0; g < granules; ++g) {
                    const isa::Addr ga =
                        static_cast<isa::Addr>(g) * 16;
                    t.vstore(a_state + ga, 16, v_h, {r_state});
                    t.vstore(a_state + granules * 16 + ga, 16, v_e,
                             {r_state});
                }
                v_fprev = v_f;

                // Loop control: the body is unrolled 2x, so the
                // back edge appears every other column.
                if ((j & 1) == 1 || j + 1 == n)
                    t.branch(j + 1 < n, {r_jptr, r_len});
            }
            std::swap(h_bound, h_bound_next);
            std::swap(f_bound, f_bound_next);
            t.branch(s + 1 < strips, {r_dbptr}); // strip loop
        }

        run.scores.push_back(best);
        seq_base += static_cast<isa::Addr>(n);
        t.jump(); // back to the database-scan driver
    }

    run.trace = t.take();
    return run;
}

template TracedRun traceSwVmx<4>(const TraceInput &);
template TracedRun traceSwVmx<8>(const TraceInput &);
template TracedRun traceSwVmx<16>(const TraceInput &);
template TracedRun traceSwVmx<32>(const TraceInput &);

} // namespace bioarch::kernels
