#include "blast_traced.hh"

#include <algorithm>

#include "align/banded_impl.hh"
#include "align/blast.hh"
#include "bio/scoring.hh"
#include "trace/tracer.hh"

namespace bioarch::kernels
{

namespace
{

using trace::Reg;
using trace::Tracer;

} // namespace

TracedRun
traceBlast(const TraceInput &input)
{
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    const align::BlastParams params;

    const bio::Sequence &query = input.query;
    const int m = static_cast<int>(query.length());
    const int w = params.wordSize;
    const align::NeighborhoodIndex index(query, matrix, params);
    const std::size_t max_n = input.db.maxLength();

    Tracer t("BLAST");

    // Memory image. The neighborhood CSR heads array over the full
    // word space (~55 KB for w=3 over 23 symbols) plus the position
    // lists are BLAST's big, data-indexed working set.
    const isa::Addr a_heads =
        t.alloc((index.tableSize() + 1) * 4, "neighborhood heads");
    const isa::Addr a_pos = t.alloc(
        std::max<std::size_t>(index.numEntries(), 1) * 4,
        "neighborhood positions");
    const isa::Addr a_diag = t.alloc(
        (static_cast<std::size_t>(m) + max_n) * 8, "diagonal state");
    const isa::Addr a_mat = t.alloc(
        static_cast<std::size_t>(bio::Alphabet::numSymbols)
            * bio::Alphabet::numSymbols,
        "scoring matrix");
    const isa::Addr a_query =
        t.alloc(static_cast<std::size_t>(m), "query residues");
    const isa::Addr a_rows = t.alloc(
        static_cast<std::size_t>(m) * 8, "gapped H/E rows");
    const isa::Addr a_db =
        t.alloc(input.db.totalResidues(), "database residues");

    // The CSR offset of each word's position list, for realistic
    // position-array addresses during the scan.
    const auto pos_offset = [&](std::uint32_t word) {
        return static_cast<isa::Addr>(
            index.positions(word).first
            - index.positions(0).first);
    };

    TracedRun run;
    run.scores.reserve(input.db.size());

    struct DiagState
    {
        std::int32_t lastHit = -1000000;
        std::int32_t extendedTo = -1;
    };

    isa::Addr seq_base = a_db;
    for (std::size_t sidx = 0; sidx < input.db.size(); ++sidx) {
        const bio::Sequence &subject = input.db[sidx];
        const int n = static_cast<int>(subject.length());
        const int num_diags = m + n - 1;
        const int diag_offset = m - 1;
        const auto *sres = subject.residues().data();

        std::vector<DiagState> diag(
            static_cast<std::size_t>(std::max(num_diags, 1)));

        int best_ungapped = 0;
        int best_diag = 0;
        align::UngappedExtension best_ext;

        // Per-sequence setup: clear the diagonal array.
        Reg r_dbptr = t.alu();
        Reg r_diagbase = t.alu();
        for (int d = 0; d < num_diags; d += 16) {
            t.store(a_diag + static_cast<isa::Addr>(d) * 8, 8, Reg{},
                    {r_diagbase});
            t.branch(d + 16 < num_diags, {r_diagbase});
        }

        if (m >= w && n >= w) {
            Reg r_word = t.alu(); // rolling packed word
            for (int j = 0; j + w <= n; ++j) {
                const std::uint32_t word = index.encode(sres + j);
                const auto [begin, end] = index.positions(word);

                // BlastWordFinder step: roll the next residue into
                // the packed word (Listing 1's READDB_UNPACK shift
                // games), then probe the lookup table.
                Reg r_res = t.load(
                    seq_base + static_cast<isa::Addr>(j), 1,
                    {r_dbptr});
                r_word = t.alu({r_word, r_res}); // shift+or
                Reg r_mask = t.alu({r_word});    // mask to word space
                Reg r_head = t.load(
                    a_heads + static_cast<isa::Addr>(word) * 4, 4,
                    {r_mask});
                Reg r_tail = t.load(
                    a_heads + static_cast<isa::Addr>(word + 1) * 4,
                    4, {r_mask});
                // READDB_UNPACK-style dependent arithmetic on the
                // loaded table entries (Listing 1): the serial
                // integer chain behind each (possibly missing) load
                // is what makes RG_FIX the top BLAST trauma.
                Reg r_u1 = t.alu({r_head});
                Reg r_u2 = t.alu({r_u1, r_tail});
                Reg r_cnt = t.alu({r_u2});
                t.branch(begin != end, {r_cnt});

                for (const std::int32_t *p = begin; p != end; ++p) {
                    const int i = *p;
                    const int d = j - i + diag_offset;
                    DiagState &ds =
                        diag[static_cast<std::size_t>(d)];

                    // Load the query position and the diagonal
                    // record (both data-dependent addresses).
                    Reg r_qpos = t.load(
                        a_pos
                            + (pos_offset(word)
                               + static_cast<isa::Addr>(p - begin))
                                * 4,
                        4, {r_head});
                    Reg r_d = t.alu({r_qpos});
                    const isa::Addr ds_addr =
                        a_diag + static_cast<isa::Addr>(d) * 8;
                    Reg r_state = t.load(ds_addr, 8, {r_d});

                    t.branch(j <= ds.extendedTo, {r_state});
                    if (j <= ds.extendedTo)
                        continue;

                    bool trigger;
                    Reg r_dist = t.alu({r_state});
                    if (params.twoHit) {
                        const int dist = j - ds.lastHit;
                        t.branch(dist < w, {r_dist});
                        if (dist < w)
                            continue;
                        trigger = dist <= params.twoHitWindow;
                    } else {
                        trigger = true;
                    }
                    ds.lastHit = j;
                    t.store(ds_addr, 4, r_dist, {r_d});
                    t.branch(!trigger, {r_dist});
                    if (!trigger)
                        continue;

                    // ---- ungapped X-drop extension --------------
                    int seed = 0;
                    Reg r_run = t.alu();
                    for (int k = 0; k < w; ++k)
                        seed += matrix.score(
                            query[static_cast<std::size_t>(i + k)],
                            subject[static_cast<std::size_t>(j
                                                             + k)]);

                    const auto extend_step =
                        [&](int qi, int sj, Reg &racc) {
                            Reg r_q = t.load(
                                a_query
                                    + static_cast<isa::Addr>(qi),
                                1, {});
                            Reg r_s = t.load(
                                seq_base
                                    + static_cast<isa::Addr>(sj),
                                1, {});
                            Reg r_ma = t.alu({r_q, r_s});
                            Reg r_sc = t.load(a_mat, 1, {r_ma});
                            racc = t.alu({racc, r_sc});
                        };

                    int best_right = 0;
                    int ext_run = 0;
                    for (int k = w; i + k < m && j + k < n; ++k) {
                        extend_step(i + k, j + k, r_run);
                        ext_run += matrix.score(
                            query[static_cast<std::size_t>(i + k)],
                            subject[static_cast<std::size_t>(j
                                                             + k)]);
                        t.branch(ext_run > best_right, {r_run});
                        if (ext_run > best_right)
                            best_right = ext_run;
                        const bool drop = ext_run
                            < best_right - params.xDropUngapped;
                        t.branch(drop, {r_run});
                        if (drop)
                            break;
                    }
                    int best_left = 0;
                    int left_len = 0;
                    ext_run = 0;
                    for (int k = 1; i - k >= 0 && j - k >= 0; ++k) {
                        extend_step(i - k, j - k, r_run);
                        ext_run += matrix.score(
                            query[static_cast<std::size_t>(i - k)],
                            subject[static_cast<std::size_t>(j
                                                             - k)]);
                        t.branch(ext_run > best_left, {r_run});
                        if (ext_run > best_left) {
                            best_left = ext_run;
                            left_len = k;
                        }
                        const bool drop = ext_run
                            < best_left - params.xDropUngapped;
                        t.branch(drop, {r_run});
                        if (drop)
                            break;
                    }

                    const int score = seed + best_right + best_left;
                    // Right extent of the extension on this
                    // diagonal (mirrors align::ungappedExtend).
                    int right_len = 0;
                    {
                        // recompute right_len for extendedTo
                        int rbest = 0;
                        int rrun = 0;
                        for (int k = w; i + k < m && j + k < n;
                             ++k) {
                            rrun += matrix.score(
                                query[static_cast<std::size_t>(
                                    i + k)],
                                subject[static_cast<std::size_t>(
                                    j + k)]);
                            if (rrun > rbest) {
                                rbest = rrun;
                                right_len = k - w + 1;
                            }
                            if (rrun
                                < rbest - params.xDropUngapped)
                                break;
                        }
                    }
                    ds.extendedTo = (i + w - 1 + right_len) + (j - i);
                    t.store(ds_addr + 4, 4, r_run, {r_d});

                    t.branch(score > best_ungapped, {r_run});
                    if (score > best_ungapped) {
                        best_ungapped = score;
                        best_diag = j - i;
                        best_ext.score = score;
                        best_ext.queryStart = i - left_len;
                        best_ext.queryEnd = i + w - 1 + right_len;
                    }
                    t.branch(p + 1 != end, {r_head});
                }
                t.branch(j + w + 1 <= n, {r_dbptr}); // scan loop
            }
        }

        // ---- gapped extension of the best HSP -------------------
        int gapped_score = 0;
        Reg r_g = t.alu();
        t.branch(best_ungapped >= params.gapTrigger, {r_g});
        if (best_ungapped >= params.gapTrigger) {
            Reg r_h = t.alu();
            Reg r_rowptr = t.alu();
            // Identical windowed gapped stage as align::blastScan.
            const align::GappedWindow win = align::gappedWindow(
                best_ext, best_diag, m, n,
                params.gappedWindowMargin);
            const bio::Sequence qw(
                "qw", "",
                std::vector<bio::Residue>(
                    query.residues().begin() + win.queryLo,
                    query.residues().begin() + win.queryHi + 1));
            const bio::Sequence sw(
                "sw", "",
                std::vector<bio::Residue>(
                    subject.residues().begin() + win.subjectLo,
                    subject.residues().begin() + win.subjectHi
                        + 1));
            const align::LocalScore gapped =
                align::bandedSmithWatermanScan(
                    qw, sw, matrix, gaps, win.center,
                    params.bandHalfWidth,
                    [&](int i, int jj, int h, int e, int f) {
                        const isa::Addr cell =
                            a_rows + static_cast<isa::Addr>(i) * 8;
                        (void)jj;
                        (void)e;
                        Reg r_sc = t.load(a_mat, 1, {r_rowptr});
                        Reg r_he = t.load(cell, 8, {r_rowptr});
                        Reg r_x1 = t.alu({r_h, r_sc});
                        Reg r_x2 = t.alu({r_x1, r_he});
                        Reg r_x3 = t.alu({r_x2});
                        r_h = t.alu({r_x3});
                        t.branch(h > 0, {r_h});
                        t.branch(f > 0, {r_h});
                        t.store(cell, 8, r_h, {r_rowptr});
                        r_rowptr = t.alu({r_rowptr});
                    });
            gapped_score = std::max(gapped.score, 0);
        }

        run.scores.push_back(gapped_score);
        seq_base += static_cast<isa::Addr>(n);
        t.jump();
    }

    run.trace = t.take();
    return run;
}

} // namespace bioarch::kernels
