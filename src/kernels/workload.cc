#include "workload.hh"

#include "bio/synthetic.hh"

namespace bioarch::kernels
{

std::string_view
workloadName(Workload w)
{
    switch (w) {
      case Workload::Ssearch34: return "SSEARCH34";
      case Workload::SwVmx128: return "SW_vmx128";
      case Workload::SwVmx256: return "SW_vmx256";
      case Workload::Fasta34: return "FASTA34";
      case Workload::Blast: return "BLAST";
      case Workload::Blastn: return "BLASTN";
      case Workload::NumWorkloads: break;
    }
    return "?";
}

TraceInput
makeTraceInput(const TraceSpec &spec)
{
    TraceInput input;
    const auto queries = bio::makeQuerySet();
    for (const bio::Sequence &q : queries) {
        if (q.id() == spec.queryAccession) {
            input.query = q;
            break;
        }
    }
    if (input.query.empty())
        input.query = bio::makeDefaultQuery();

    bio::DatabaseSpec db_spec;
    db_spec.numSequences = spec.dbSequences;
    db_spec.homologsPerQuery = spec.homologsPerQuery;
    db_spec.seed = spec.seed;
    input.db = bio::makeDatabase(db_spec, {input.query});
    return input;
}

} // namespace bioarch::kernels
