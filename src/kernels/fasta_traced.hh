/**
 * @file
 * Instrumented twin of the FASTA34 heuristic search.
 *
 * Mirrors align::fastaScan stage by stage — k-tuple table scan,
 * diagonal run accumulation, matrix rescoring, region chaining, and
 * the banded opt pass — while emitting the corresponding instruction
 * stream. The scan and diagonal stages are short, branchy,
 * table-driven code (the source of FASTA's ~18% control share and
 * poor branch prediction in the paper); the opt stage contributes
 * DP-cell work on the sequences that pass the initn threshold.
 */

#ifndef BIOARCH_KERNELS_FASTA_TRACED_HH
#define BIOARCH_KERNELS_FASTA_TRACED_HH

#include "workload.hh"

namespace bioarch::kernels
{

/**
 * Trace a full FASTA database search.
 *
 * @return trace plus per-sequence scores equal to
 *         max(opt, initn) of align::fastaScan on the same inputs
 */
TracedRun traceFasta(const TraceInput &input);

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_FASTA_TRACED_HH
