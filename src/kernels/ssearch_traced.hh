/**
 * @file
 * Instrumented twin of the SSEARCH34 scalar Smith-Waterman kernel.
 *
 * Runs the exact dropgsw-style inner loop of align::ssearchScan on
 * the real data while emitting the corresponding PowerPC-like
 * instruction stream: three loads, two stores, ~6 integer ALU ops
 * and 3-5 data-dependent conditional branches per DP cell — the
 * profile that makes SSEARCH 44% ALU / 25% control in the paper's
 * Fig. 1, and branch-bound in its Fig. 2/9.
 */

#ifndef BIOARCH_KERNELS_SSEARCH_TRACED_HH
#define BIOARCH_KERNELS_SSEARCH_TRACED_HH

#include "workload.hh"

namespace bioarch::kernels
{

/**
 * Trace a full SSEARCH database scan.
 *
 * @param input query + database working set
 * @return trace plus the per-sequence best scores (equal to
 *         align::ssearchScan on the same inputs)
 */
TracedRun traceSsearch(const TraceInput &input);

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_SSEARCH_TRACED_HH
