#include "ssearch_traced.hh"

#include "align/ssearch.hh"
#include "bio/scoring.hh"
#include "trace/tracer.hh"

namespace bioarch::kernels
{

namespace
{

using trace::Reg;
using trace::Tracer;

/**
 * Traced-twin state for one database scan. The memory image mirrors
 * the real program: a 16-bit query profile (numSymbols rows of m
 * scores), the ss[] array of {H, E} pairs, and the database residues
 * as one contiguous byte stream.
 */
struct SsearchImage
{
    isa::Addr profile; ///< numSymbols x m x 2 bytes
    isa::Addr ss;      ///< m x 8 bytes ({H,E} per query row)
    isa::Addr db;      ///< database residue bytes
};

} // namespace

TracedRun
traceSsearch(const TraceInput &input)
{
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    const int m = static_cast<int>(input.query.length());
    const int ngap_init = gaps.openCost();
    const int gap_ext = gaps.extendCost();

    Tracer t("SSEARCH34");

    SsearchImage img;
    img.profile = t.alloc(
        static_cast<std::size_t>(bio::Alphabet::numSymbols) * m * 2,
        "query profile");
    img.ss = t.alloc(static_cast<std::size_t>(m) * 8, "ss[] H/E");
    img.db = t.alloc(input.db.totalResidues(), "database residues");

    const align::QueryProfile profile(input.query, matrix);

    TracedRun run;
    run.scores.reserve(input.db.size());

    struct Cell { int h; int e; };
    std::vector<Cell> ss(static_cast<std::size_t>(m));

    isa::Addr seq_base = img.db;
    for (std::size_t sidx = 0; sidx < input.db.size(); ++sidx) {
        const bio::Sequence &subject = input.db[sidx];
        const int n = static_cast<int>(subject.length());

        // Per-sequence setup: clear the ss[] array (memset-style
        // loop: the real code re-initializes the row between
        // sequences) and load loop bounds.
        std::fill(ss.begin(), ss.end(), Cell{0, 0});
        Reg ss_base = t.alu();        // la ss
        Reg db_ptr = t.alu();         // sequence start pointer
        Reg len = t.load(seq_base - 8, 4); // length header
        for (int i = 0; i < m; i += 16) {
            // dcbz-style block clear, one store per 2 cells.
            t.store(img.ss + static_cast<isa::Addr>(i) * 8, 8,
                    Reg{}, {ss_base});
            t.alu({ss_base});
            t.branch(i + 16 < m, {len});
        }

        int best = 0;
        Reg r_best = t.alu(); // li best, 0

        for (int j = 0; j < n; ++j) {
            // Load the subject residue and derive the profile row.
            const bio::Residue res = subject[j];
            Reg r_res = t.load(
                seq_base + static_cast<isa::Addr>(j), 1, {db_ptr});
            Reg r_row = t.alu({r_res}); // rowbase = prof + res*m*2
            const std::int16_t *pwaa = profile.row(res);
            const isa::Addr row_addr = img.profile
                + static_cast<isa::Addr>(res) * m * 2;

            Reg r_p = t.alu();  // li p, 0
            Reg r_f = t.alu();  // li f, 0
            Reg r_ss = t.alu({ss_base}); // mr ssj, ss

            int p = 0;
            int f = 0;
            for (int i = 0; i < m; ++i) {
                Cell &ssj = ss[static_cast<std::size_t>(i)];
                const isa::Addr cell_addr =
                    img.ss + static_cast<isa::Addr>(i) * 8;

                // h = p + *pwaa++ (update-form halfword load).
                Reg r_w = t.load(
                    row_addr + static_cast<isa::Addr>(i) * 2, 2,
                    {r_row});
                Reg r_h = t.alu({r_p, r_w});
                int h = p + pwaa[i];

                // e = ssj->E; p = ssj->H (two loads).
                Reg r_e = t.load(cell_addr + 4, 4, {r_ss});
                r_p = t.load(cell_addr, 4, {r_ss});
                int e = ssj.e;
                p = ssj.h;

                // F path: if (f > 0) { h = max(h, f); f -= ext; }
                t.alu({r_f});              // cmpwi f, 0
                t.branch(f > 0, {r_f});
                if (f > 0) {
                    r_h = t.alu({r_h, r_f});   // max via cmp+isel
                    r_f = t.alu({r_f});        // f -= gap_ext
                    if (h < f)
                        h = f;
                    f -= gap_ext;
                }

                // E path: if (e > 0) { h = max(h, e); e -= ext; }
                t.alu({r_e});              // cmpwi e, 0
                t.branch(e > 0, {r_e});
                if (e > 0) {
                    r_h = t.alu({r_h, r_e});
                    r_e = t.alu({r_e});
                    if (h < e)
                        h = e;
                    e -= gap_ext;
                }

                // H path with computation avoidance.
                t.alu({r_h});              // cmpwi h, 0
                t.branch(h > 0, {r_h});
                if (h > 0) {
                    t.branch(h > best, {r_h, r_best});
                    if (h > best) {
                        r_best = t.alu({r_h}); // mr best, h
                        best = h;
                    }
                    Reg r_open = t.alu({r_h}); // open = h - ngap_init
                    const int open = h - ngap_init;
                    r_e = t.alu({r_open, r_e}); // e = max(e, open)
                    r_f = t.alu({r_open, r_f}); // f = max(f, open)
                    if (open > e)
                        e = open;
                    if (open > f)
                        f = open;
                    ssj.h = h;
                } else {
                    r_h = t.alu(); // li h, 0
                    ssj.h = 0;
                }

                // ssj->H = h; ssj->E = max(e, 0); ssj++.
                t.store(cell_addr, 4, r_h, {r_ss});
                t.store(cell_addr + 4, 4, r_e, {r_ss});
                ssj.e = e > 0 ? e : 0;
                if (f < 0)
                    f = 0;
                r_ss = t.alu({r_ss}); // addi ssj, 8
                t.branch(i + 1 < m, {r_ss}); // bdnz inner loop
            }
            db_ptr = t.alu({db_ptr}); // advance subject pointer
            t.branch(j + 1 < n, {db_ptr, len}); // outer loop
        }

        run.scores.push_back(best);
        seq_base += static_cast<isa::Addr>(n);
        t.jump(); // return to the database-scan driver
    }

    run.trace = t.take();
    return run;
}

} // namespace bioarch::kernels
