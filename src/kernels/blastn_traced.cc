#include "blastn_traced.hh"

#include <algorithm>

#include "align/banded_impl.hh"
#include "align/blast.hh"
#include "bio/scoring.hh"
#include "trace/tracer.hh"

namespace bioarch::kernels
{

namespace
{

using trace::Reg;
using trace::Tracer;

} // namespace

BlastnTracedRun
traceBlastn(const bio::PackedDna &query, const bio::DnaDatabase &db,
            const align::BlastnParams &params)
{
    const int w = params.wordSize;
    const align::DnaWordIndex index(query, w);
    const int m = static_cast<int>(query.length());

    std::size_t max_n = 0;
    std::size_t total_bytes = 0;
    for (const bio::PackedDna &s : db) {
        max_n = std::max(max_n, s.length());
        total_bytes += s.bytes().size();
    }

    Tracer t("BLASTN");

    const isa::Addr a_heads =
        t.alloc((index.tableSize() + 1) * 4, "word heads (256K)");
    const isa::Addr a_pos = t.alloc(
        std::max<std::size_t>(index.numWords(), 1) * 4,
        "word positions");
    const isa::Addr a_diag = t.alloc(
        (static_cast<std::size_t>(m) + max_n) * 4, "diag extents");
    const isa::Addr a_query =
        t.alloc((query.length() + 3) / 4, "packed query");
    const isa::Addr a_rows =
        t.alloc(static_cast<std::size_t>(m) * 8, "gapped H/E rows");
    const isa::Addr a_db = t.alloc(std::max<std::size_t>(total_bytes, 1),
                                   "packed database");

    BlastnTracedRun run;
    run.scores.reserve(db.size());

    const std::uint32_t mask = static_cast<std::uint32_t>(
        (std::size_t{1} << (2 * w)) - 1);

    isa::Addr seq_base = a_db;
    for (std::size_t sidx = 0; sidx < db.size(); ++sidx) {
        const bio::PackedDna &subject = db[sidx];
        const int n = static_cast<int>(subject.length());
        const int num_diags = m + n - 1;
        const int diag_offset = m - 1;

        std::vector<std::int32_t> extended_to(
            static_cast<std::size_t>(std::max(num_diags, 1)), -1);
        int best_ungapped = 0;
        int best_diag = 0;
        align::UngappedExtension best_ext;

        Reg r_dbptr = t.alu();
        Reg r_diagbase = t.alu();
        for (int d = 0; d < num_diags; d += 32) {
            t.store(a_diag + static_cast<isa::Addr>(d) * 4, 16,
                    Reg{}, {r_diagbase});
            t.branch(d + 32 < num_diags, {r_diagbase});
        }

        // An instrumented byte-unpacking read of base @p pos of a
        // packed sequence: a byte load (amortized: one per 4 bases,
        // modeled as reload on byte change) + shift/mask ALU.
        int last_byte = -1;
        Reg r_byte;
        auto unpack = [&](isa::Addr base_addr, int pos,
                          Reg addr_dep) {
            const int byte = pos >> 2;
            if (byte != last_byte || !r_byte.valid()) {
                r_byte = t.load(
                    base_addr + static_cast<isa::Addr>(byte), 1,
                    {addr_dep});
                last_byte = byte;
            }
            Reg r_shift = t.alu({r_byte}); // srwi + andi (the
            return t.alu({r_shift});       // READDB_UNPACK_BASE)
        };

        if (m >= w && n >= w) {
            std::uint32_t word = 0;
            Reg r_word = t.alu();
            for (int j = 0; j < n; ++j) {
                word = ((word << 2)
                        | subject[static_cast<std::size_t>(j)])
                    & mask;
                // Roll the next base into the word register.
                last_byte = -1; // subject pointer moved
                Reg r_base = unpack(seq_base, j, r_dbptr);
                r_word = t.alu({r_word, r_base});
                if (j + 1 < w)
                    continue;
                const int start = j + 1 - w;
                const auto [begin, end] = index.positions(word);

                Reg r_taddr = t.alu({r_word});
                Reg r_head = t.load(
                    a_heads + static_cast<isa::Addr>(word) * 4, 4,
                    {r_taddr});
                Reg r_tail = t.load(
                    a_heads + static_cast<isa::Addr>(word + 1) * 4,
                    4, {r_taddr});
                Reg r_cnt = t.alu({r_head, r_tail});
                t.branch(begin != end, {r_cnt});

                for (const std::int32_t *p = begin; p != end; ++p) {
                    const int i = *p;
                    const int d = start - i + diag_offset;
                    Reg r_qpos = t.load(
                        a_pos
                            + static_cast<isa::Addr>(p - begin) * 4,
                        4, {r_head});
                    Reg r_d = t.alu({r_qpos});
                    const isa::Addr ds_addr =
                        a_diag + static_cast<isa::Addr>(d) * 4;
                    Reg r_ext = t.load(ds_addr, 4, {r_d});
                    t.branch(
                        start <= extended_to[
                            static_cast<std::size_t>(d)],
                        {r_ext});
                    if (start
                        <= extended_to[static_cast<std::size_t>(d)])
                        continue;

                    // ---- ungapped extension (Listing 1's nested
                    // unpack-compare cascade per base) ------------
                    int best_right = 0;
                    int right_len = 0;
                    int racc = 0;
                    Reg r_run = t.alu();
                    last_byte = -1;
                    for (int k = w; i + k < m && start + k < n;
                         ++k) {
                        Reg r_q =
                            unpack(a_query, i + k, Reg{});
                        Reg r_s =
                            unpack(seq_base, start + k, r_dbptr);
                        Reg r_cmp = t.alu({r_q, r_s});
                        const bool match =
                            query[static_cast<std::size_t>(i + k)]
                            == subject[static_cast<std::size_t>(
                                start + k)];
                        t.branch(match, {r_cmp});
                        r_run = t.alu({r_run, r_cmp});
                        racc += match ? params.matchScore
                                      : params.mismatchScore;
                        if (racc > best_right) {
                            best_right = racc;
                            right_len = k - w + 1;
                        }
                        const bool drop = racc
                            < best_right - params.xDropUngapped;
                        t.branch(drop, {r_run});
                        if (drop)
                            break;
                    }
                    int best_left = 0;
                    int left_len = 0;
                    racc = 0;
                    last_byte = -1;
                    for (int k = 1; i - k >= 0 && start - k >= 0;
                         ++k) {
                        Reg r_q =
                            unpack(a_query, i - k, Reg{});
                        Reg r_s =
                            unpack(seq_base, start - k, r_dbptr);
                        Reg r_cmp = t.alu({r_q, r_s});
                        const bool match =
                            query[static_cast<std::size_t>(i - k)]
                            == subject[static_cast<std::size_t>(
                                start - k)];
                        t.branch(match, {r_cmp});
                        r_run = t.alu({r_run, r_cmp});
                        racc += match ? params.matchScore
                                      : params.mismatchScore;
                        if (racc > best_left) {
                            best_left = racc;
                            left_len = k;
                        }
                        const bool drop = racc
                            < best_left - params.xDropUngapped;
                        t.branch(drop, {r_run});
                        if (drop)
                            break;
                    }

                    const int score = params.matchScore * w
                        + best_right + best_left;
                    extended_to[static_cast<std::size_t>(d)] =
                        start + w - 1 + right_len;
                    t.store(ds_addr, 4, r_run, {r_d});

                    t.branch(score > best_ungapped, {r_run});
                    if (score > best_ungapped) {
                        best_ungapped = score;
                        best_diag = start - i;
                        best_ext.score = score;
                        best_ext.queryStart = i - left_len;
                        best_ext.queryEnd =
                            i + w - 1 + right_len;
                    }
                    t.branch(p + 1 != end, {r_head});
                }
                t.branch(j + 1 < n, {r_dbptr}); // scan loop
            }
        }

        // ---- gapped extension, identical to align::blastnScan ---
        int gapped_score = 0;
        Reg r_g = t.alu();
        t.branch(best_ungapped >= params.gapTrigger, {r_g});
        if (best_ungapped >= params.gapTrigger) {
            const align::GappedWindow win = align::gappedWindow(
                best_ext, best_diag, m, n,
                params.gappedWindowMargin);
            auto decode = [](const bio::PackedDna &dna, int lo,
                             int hi) {
                std::vector<bio::Residue> out;
                for (int i = lo; i <= hi; ++i)
                    out.push_back(static_cast<bio::Residue>(
                        dna[static_cast<std::size_t>(i)]));
                return bio::Sequence("w", "", std::move(out));
            };
            const bio::Sequence qw =
                decode(query, win.queryLo, win.queryHi);
            const bio::Sequence sw =
                decode(subject, win.subjectLo, win.subjectHi);
            const bio::ScoringMatrix mm = bio::makeMatchMismatch(
                params.matchScore, params.mismatchScore);
            const bio::GapPenalties gaps{params.gapOpen,
                                         params.gapExtend};
            Reg r_h = t.alu();
            Reg r_rowptr = t.alu();
            const align::LocalScore gapped =
                align::bandedSmithWatermanScan(
                    qw, sw, mm, gaps, win.center,
                    params.bandHalfWidth,
                    [&](int i, int jj, int h, int e, int f) {
                        const isa::Addr cell =
                            a_rows + static_cast<isa::Addr>(i) * 8;
                        (void)jj;
                        (void)e;
                        Reg r_sc = t.load(cell, 8, {r_rowptr});
                        Reg r_x1 = t.alu({r_h, r_sc});
                        Reg r_x2 = t.alu({r_x1});
                        r_h = t.alu({r_x2});
                        t.branch(h > 0, {r_h});
                        t.branch(f > 0, {r_h});
                        t.store(cell, 8, r_h, {r_rowptr});
                        r_rowptr = t.alu({r_rowptr});
                    });
            gapped_score = std::max(gapped.score, 0);
        }

        run.scores.push_back(gapped_score);
        seq_base +=
            static_cast<isa::Addr>(subject.bytes().size());
        t.jump();
    }

    run.trace = t.take();
    return run;
}

} // namespace bioarch::kernels
