/**
 * @file
 * Instrumented twin of the blastn word finder — the literal code of
 * the paper's Listing 1: rolling 2-bit words built from packed
 * database bytes, a large direct-address word table (4^8 entries =
 * 256 KB of heads), and extensions that unpack bases with the
 * nested if-cascade of READDB_UNPACK_BASE_4..1.
 *
 * Included as an extension beyond the paper's five workloads: it
 * shows the nucleotide variant is even more memory-bound than
 * blastp (the table alone exceeds any L1), with the same
 * ALU-heavy, branchy character.
 */

#ifndef BIOARCH_KERNELS_BLASTN_TRACED_HH
#define BIOARCH_KERNELS_BLASTN_TRACED_HH

#include "align/blastn.hh"
#include "bio/nucleotide.hh"
#include "trace/trace.hh"

namespace bioarch::kernels
{

/** Result of a traced blastn run. */
struct BlastnTracedRun
{
    trace::Trace trace;
    /** Final (gapped) score per database sequence. */
    std::vector<int> scores;
};

/**
 * Trace a blastn database scan.
 *
 * @return trace plus per-sequence scores equal to
 *         align::blastnScan on the same inputs
 */
BlastnTracedRun traceBlastn(const bio::PackedDna &query,
                            const bio::DnaDatabase &db,
                            const align::BlastnParams &params = {});

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_BLASTN_TRACED_HH
