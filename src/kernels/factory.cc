#include "factory.hh"

#include <stdexcept>

#include "blast_traced.hh"
#include "fasta_traced.hh"
#include "ssearch_traced.hh"
#include "sw_vmx_traced.hh"

namespace bioarch::kernels
{

TracedRun
traceWorkload(Workload workload, const TraceInput &input)
{
    TracedRun run = [&]() -> TracedRun {
        switch (workload) {
          case Workload::Ssearch34:
            return traceSsearch(input);
          case Workload::SwVmx128:
            return traceSwVmx128(input);
          case Workload::SwVmx256:
            return traceSwVmx256(input);
          case Workload::Fasta34:
            return traceFasta(input);
          case Workload::Blast:
            return traceBlast(input);
          case Workload::Blastn: // served-only, never traced here
          case Workload::NumWorkloads:
            break;
        }
        throw std::invalid_argument("unknown workload");
    }();
    // Tracing over-allocates (the dynamic length is unknown up
    // front); the trace is immutable from here on, so return the
    // vector headroom before the run is cached suite-wide.
    run.trace.shrinkToFit();
    return run;
}

TracedRun
traceWorkload(Workload workload, const TraceSpec &spec)
{
    return traceWorkload(workload, makeTraceInput(spec));
}

} // namespace bioarch::kernels
