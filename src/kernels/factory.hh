/**
 * @file
 * One-call trace generation for any of the paper's five workloads.
 */

#ifndef BIOARCH_KERNELS_FACTORY_HH
#define BIOARCH_KERNELS_FACTORY_HH

#include "workload.hh"

namespace bioarch::kernels
{

/**
 * Run the traced twin of @p workload on the working set @p input.
 */
TracedRun traceWorkload(Workload workload, const TraceInput &input);

/**
 * Convenience: build the working set from @p spec and trace
 * @p workload on it.
 */
TracedRun traceWorkload(Workload workload, const TraceSpec &spec = {});

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_FACTORY_HH
