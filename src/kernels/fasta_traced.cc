#include "fasta_traced.hh"

#include <algorithm>

#include "align/banded_impl.hh"
#include "align/fasta.hh"
#include "bio/scoring.hh"
#include "trace/tracer.hh"

namespace bioarch::kernels
{

namespace
{

using trace::Reg;
using trace::Tracer;

} // namespace

TracedRun
traceFasta(const TraceInput &input)
{
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    const align::FastaParams params;

    const bio::Sequence &query = input.query;
    const int m = static_cast<int>(query.length());
    const int ktup = params.ktup;
    const align::KtupIndex index(query, ktup);
    const std::size_t max_n = input.db.maxLength();

    Tracer t("FASTA34");

    // Memory image: k-tuple CSR table (heads + positions), the
    // per-diagonal run-state array, the scoring matrix, query and
    // database bytes, and the banded-opt H/E rows.
    const isa::Addr a_heads =
        t.alloc((index.tableSize() + 1) * 4, "ktup heads");
    const isa::Addr a_pos = t.alloc(
        static_cast<std::size_t>(std::max(m, 1)) * 4,
        "ktup positions");
    const isa::Addr a_diag = t.alloc(
        (static_cast<std::size_t>(m) + max_n) * 16, "diagonal state");
    const isa::Addr a_mat = t.alloc(
        static_cast<std::size_t>(bio::Alphabet::numSymbols)
            * bio::Alphabet::numSymbols,
        "scoring matrix");
    const isa::Addr a_query = t.alloc(
        static_cast<std::size_t>(m), "query residues");
    const isa::Addr a_rows = t.alloc(
        static_cast<std::size_t>(m) * 8, "banded H/E rows");
    const isa::Addr a_db =
        t.alloc(input.db.totalResidues(), "database residues");

    TracedRun run;
    run.scores.reserve(input.db.size());

    struct DiagState
    {
        std::int32_t lastQueryPos = -1000000;
        std::int32_t runStart = 0;
        std::int32_t runScore = 0;
        std::int32_t bestScore = 0;
        std::int32_t bestStart = 0;
        std::int32_t bestEnd = 0;
    };

    isa::Addr seq_base = a_db;
    for (std::size_t sidx = 0; sidx < input.db.size(); ++sidx) {
        const bio::Sequence &subject = input.db[sidx];
        const int n = static_cast<int>(subject.length());
        const int num_diags = m + n - 1;
        const int diag_offset = m - 1;
        const int hit_bonus = 4 * ktup;
        const auto *sres = subject.residues().data();

        std::vector<DiagState> diags(
            static_cast<std::size_t>(std::max(num_diags, 1)));

        // Per-sequence setup: clear the diagonal array (the real
        // code re-zeroes its active diagonals between sequences).
        Reg r_dbptr = t.alu();
        Reg r_diagbase = t.alu();
        for (int d = 0; d < num_diags; d += 16) {
            t.store(a_diag + static_cast<isa::Addr>(d) * 16, 16,
                    Reg{}, {r_diagbase});
            t.alu({r_diagbase});
            t.branch(d + 16 < num_diags, {r_diagbase});
        }

        // ---- Stage 2: word scan + diagonal accumulation ---------
        if (m >= ktup && n >= ktup) {
            Reg r_word = t.alu(); // rolling word register
            for (int j = 0; j + ktup <= n; ++j) {
                const std::uint32_t w = index.encode(sres + j);
                const auto [begin, end] = index.positions(w);

                // Roll the next residue into the word, index the
                // heads table, test for hits.
                Reg r_res = t.load(
                    seq_base + static_cast<isa::Addr>(j), 1,
                    {r_dbptr});
                r_word = t.alu({r_word, r_res});
                Reg r_taddr = t.alu({r_word});
                Reg r_head = t.load(
                    a_heads + static_cast<isa::Addr>(w) * 4, 4,
                    {r_taddr});
                Reg r_tail = t.load(
                    a_heads + static_cast<isa::Addr>(w + 1) * 4, 4,
                    {r_taddr});
                Reg r_cnt = t.alu({r_head, r_tail});
                t.branch(begin != end, {r_cnt});

                Reg r_pptr = r_head;
                for (const std::int32_t *p = begin; p != end; ++p) {
                    const int i = *p;
                    const int d = j - i + diag_offset;
                    DiagState &ds =
                        diags[static_cast<std::size_t>(d)];
                    const int gap = i - ds.lastQueryPos - ktup;

                    // Load the query position and the diagonal
                    // state (two words of the 16-byte record).
                    Reg r_qpos = t.load(
                        a_pos + static_cast<isa::Addr>(p - begin) * 4,
                        4, {r_pptr});
                    Reg r_d = t.alu({r_qpos});
                    const isa::Addr ds_addr =
                        a_diag + static_cast<isa::Addr>(d) * 16;
                    Reg r_last = t.load(ds_addr, 4, {r_d});
                    Reg r_run = t.load(ds_addr + 8, 8, {r_d});
                    Reg r_gap = t.alu({r_qpos, r_last});

                    t.branch(gap < 0, {r_gap});
                    if (gap < 0) {
                        ds.runScore += hit_bonus + 2 * gap;
                        r_run = t.alu({r_run, r_gap});
                    } else {
                        t.branch(ds.runScore - gap > 0,
                                 {r_run, r_gap});
                        if (ds.runScore - gap > 0) {
                            ds.runScore += hit_bonus - gap;
                            r_run = t.alu({r_run, r_gap});
                        } else {
                            ds.runScore = hit_bonus;
                            ds.runStart = i;
                            r_run = t.alu({r_gap});
                        }
                    }
                    ds.lastQueryPos = i;
                    t.store(ds_addr, 4, r_qpos, {r_d});
                    t.store(ds_addr + 8, 4, r_run, {r_d});

                    t.branch(ds.runScore > ds.bestScore, {r_run});
                    if (ds.runScore > ds.bestScore) {
                        ds.bestScore = ds.runScore;
                        ds.bestStart = ds.runStart;
                        ds.bestEnd = i + ktup - 1;
                        t.store(ds_addr + 12, 4, r_run, {r_d});
                    }
                    t.branch(p + 1 != end, {r_pptr});
                }
                t.branch(j + ktup + 1 <= n, {r_dbptr}); // scan loop
            }
        }

        // ---- collect candidate regions --------------------------
        std::vector<align::FastaRegion> candidates;
        for (int d = 0; d < num_diags; ++d) {
            const DiagState &ds = diags[static_cast<std::size_t>(d)];
            // Savemax sweep: one load + test per active diagonal.
            if ((d & 15) == 0)
                t.load(a_diag + static_cast<isa::Addr>(d) * 16, 16,
                       {r_diagbase});
            if (ds.bestScore <= 0)
                continue;
            t.branch(true, {r_diagbase});
            align::FastaRegion r;
            r.diag = d - diag_offset;
            r.queryStart = ds.bestStart;
            r.queryEnd = ds.bestEnd;
            r.score = ds.bestScore;
            candidates.push_back(r);
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const align::FastaRegion &a,
                     const align::FastaRegion &b) {
                      return a.score > b.score;
                  });
        if (static_cast<int>(candidates.size()) > params.maxRegions)
            candidates.resize(
                static_cast<std::size_t>(params.maxRegions));

        // ---- Stage 3: matrix rescoring (init1) ------------------
        for (align::FastaRegion &r : candidates) {
            const int lo = std::max(0, r.queryStart);
            const int hi =
                std::min({r.queryEnd, m - 1, n - 1 - r.diag});
            align::FastaRegion res;
            res.diag = r.diag;
            int rrun = 0;
            int run_start = lo;
            Reg r_racc = t.alu();
            for (int i = lo; i <= hi; ++i) {
                const int jj = i + r.diag;
                const int s = matrix.score(
                    query[static_cast<std::size_t>(i)],
                    subject[static_cast<std::size_t>(jj)]);
                // Kadane cell: q/s residue loads, matrix lookup,
                // accumulate, two data-dependent tests.
                Reg r_q = t.load(
                    a_query + static_cast<isa::Addr>(i), 1, {});
                Reg r_s = t.load(
                    seq_base + static_cast<isa::Addr>(jj), 1, {});
                Reg r_maddr = t.alu({r_q, r_s});
                Reg r_sc = t.load(a_mat, 1, {r_maddr});
                t.branch(rrun <= 0, {r_racc});
                if (rrun <= 0) {
                    rrun = s;
                    run_start = i;
                    r_racc = t.alu({r_sc});
                } else {
                    rrun += s;
                    r_racc = t.alu({r_racc, r_sc});
                }
                t.branch(rrun > res.score, {r_racc});
                if (rrun > res.score) {
                    res.score = rrun;
                    res.queryStart = run_start;
                    res.queryEnd = i;
                }
                t.branch(i + 1 <= hi, {});
            }
            r = res;
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const align::FastaRegion &a,
                     const align::FastaRegion &b) {
                      return a.score > b.score;
                  });
        while (!candidates.empty() && candidates.back().score <= 0)
            candidates.pop_back();

        int init1 = 0;
        int initn = 0;
        int opt = 0;
        if (!candidates.empty()) {
            init1 = candidates.front().score;

            // ---- Stage 4: region chaining (initn) ---------------
            std::vector<align::FastaRegion> by_query = candidates;
            std::sort(by_query.begin(), by_query.end(),
                      [](const align::FastaRegion &a,
                         const align::FastaRegion &b) {
                          return a.queryStart < b.queryStart;
                      });
            int chain = 0;
            int chain_end = -1;
            int chain_diag_end = -1000000;
            Reg r_chain = t.alu();
            for (const align::FastaRegion &r : by_query) {
                const int subj_start = r.queryStart + r.diag;
                // Compare/join: a handful of scalar ops per region.
                Reg r_reg = t.load(a_diag, 8, {r_diagbase});
                Reg r_cmp = t.alu({r_chain, r_reg});
                t.branch(r.queryStart > chain_end
                             && subj_start > chain_diag_end,
                         {r_cmp});
                if (r.queryStart > chain_end
                    && subj_start > chain_diag_end) {
                    const int joined = chain > 0
                        ? chain + r.score - params.joinGapPenalty
                        : r.score;
                    chain = std::max(joined, r.score);
                    r_chain = t.alu({r_chain, r_reg});
                } else {
                    chain = std::max(chain, r.score);
                    r_chain = t.alu({r_chain});
                }
                chain_end = std::max(chain_end, r.queryEnd);
                chain_diag_end =
                    std::max(chain_diag_end, r.queryEnd + r.diag);
            }
            initn = std::max(chain, init1);

            // ---- Stage 5: banded opt ----------------------------
            t.branch(initn >= params.optThreshold, {r_chain});
            if (initn >= params.optThreshold) {
                Reg r_h = t.alu();
                Reg r_rowptr = t.alu();
                const align::LocalScore banded =
                    align::bandedSmithWatermanScan(
                        query, subject, matrix, gaps,
                        candidates.front().diag,
                        params.bandHalfWidth,
                        [&](int i, int jj, int h, int e, int f) {
                            // Per banded cell: profile + H/E row
                            // loads, the recurrence ALU work, the
                            // computation-avoidance test, row
                            // stores.
                            const isa::Addr cell = a_rows
                                + static_cast<isa::Addr>(i) * 8;
                            (void)jj;
                            (void)e;
                            Reg r_sc =
                                t.load(a_mat, 1, {r_rowptr});
                            Reg r_he = t.load(cell, 8, {r_rowptr});
                            Reg r_x1 = t.alu({r_h, r_sc});
                            Reg r_x2 = t.alu({r_x1, r_he});
                            Reg r_x3 = t.alu({r_x2});
                            r_h = t.alu({r_x3});
                            t.branch(h > 0, {r_h});
                            t.branch(f > 0, {r_h});
                            t.store(cell, 8, r_h, {r_rowptr});
                            r_rowptr = t.alu({r_rowptr});
                        });
                opt = banded.score;
            }
        }

        run.scores.push_back(std::max(opt, initn));
        seq_base += static_cast<isa::Addr>(n);
        t.jump();
    }

    run.trace = t.take();
    return run;
}

} // namespace bioarch::kernels
