/**
 * @file
 * Instrumented twin of the NCBI BLASTP word finder + extension
 * pipeline.
 *
 * Mirrors align::blastScan: the BlastWordFinder-style scan streams
 * database words through the large neighborhood lookup table
 * (~55 KB of CSR heads plus the position lists), updates the
 * per-diagonal two-hit state, and runs ungapped X-drop extensions;
 * the best HSP gets one banded gapped extension. The data-dependent
 * indexing of the lookup table by database content is what makes
 * BLAST's working set exceed a 32 KB L1 in the paper (Fig. 5), and
 * the pointer-chasing + if-cascades (Listing 1) give its 54% ALU /
 * 21% load / 16% control mix.
 */

#ifndef BIOARCH_KERNELS_BLAST_TRACED_HH
#define BIOARCH_KERNELS_BLAST_TRACED_HH

#include "workload.hh"

namespace bioarch::kernels
{

/**
 * Trace a full BLAST database search.
 *
 * @return trace plus per-sequence gapped scores equal to
 *         align::blastScan on the same inputs
 */
TracedRun traceBlast(const TraceInput &input);

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_BLAST_TRACED_HH
