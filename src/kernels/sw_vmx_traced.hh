/**
 * @file
 * Instrumented twin of the Altivec Smith-Waterman kernels
 * (SW_vmx128 and the futuristic SW_vmx256).
 *
 * The twin computes exact Smith-Waterman scores with a vertical
 * strip traversal (query rows in blocks of N = lanes, database
 * columns inner) while emitting the instruction pattern of the
 * Altivec kernel the paper studied:
 *
 *  - vector integer (VI) arithmetic operates on full N-lane
 *    registers, so its dynamic count halves when the register width
 *    doubles;
 *  - vector loads/stores, permutes (alignment, lane shifting,
 *    boundary insertion/extraction, the sequential-F fixup) and the
 *    scalar bookkeeping around them operate per 128-bit granule, so
 *    their counts do NOT halve — modelling the 2006-era reality
 *    (128-bit datapaths, immature 256-bit code generation) that
 *    limits the 256-bit version to an ~17% instruction reduction
 *    (Table III) instead of the naive 2x;
 *  - the loop body contains no data-dependent branches (Listing 3),
 *    only the unrolled loop back-edges, giving the ~2% control
 *    share of Fig. 1.
 */

#ifndef BIOARCH_KERNELS_SW_VMX_TRACED_HH
#define BIOARCH_KERNELS_SW_VMX_TRACED_HH

#include "workload.hh"

namespace bioarch::kernels
{

/**
 * Trace a full SIMD Smith-Waterman database scan.
 *
 * @tparam N vector lanes (8 = SW_vmx128, 16 = SW_vmx256; 4 and 32
 *         are provided for the lane-scaling ablation)
 */
template <int N>
TracedRun traceSwVmx(const TraceInput &input);

extern template TracedRun traceSwVmx<4>(const TraceInput &);
extern template TracedRun traceSwVmx<8>(const TraceInput &);
extern template TracedRun traceSwVmx<16>(const TraceInput &);
extern template TracedRun traceSwVmx<32>(const TraceInput &);

/** The paper's SW_vmx128. */
inline TracedRun
traceSwVmx128(const TraceInput &input)
{
    return traceSwVmx<8>(input);
}

/** The paper's SW_vmx256. */
inline TracedRun
traceSwVmx256(const TraceInput &input)
{
    return traceSwVmx<16>(input);
}

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_SW_VMX_TRACED_HH
