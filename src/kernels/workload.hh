/**
 * @file
 * Workload definitions shared by the traced kernels: the five
 * applications of the paper (Table I), the trace-generation working
 * set, and the result bundle each traced kernel returns.
 */

#ifndef BIOARCH_KERNELS_WORKLOAD_HH
#define BIOARCH_KERNELS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bio/database.hh"
#include "bio/sequence.hh"
#include "trace/trace.hh"

namespace bioarch::kernels
{

/** The five applications of Table I. */
enum class Workload
{
    Ssearch34,  ///< optimized scalar Smith-Waterman
    SwVmx128,   ///< Altivec SW, 128-bit registers
    SwVmx256,   ///< futuristic Altivec SW, 256-bit registers
    Fasta34,    ///< FASTA heuristic
    Blast,      ///< NCBI BLASTP heuristic
    NumWorkloads,
    /** Nucleotide BLAST. A served-only request kind: it sits after
     * NumWorkloads because it is not one of the paper's five traced
     * applications, so every simulator loop over
     * [0, numWorkloads) is untouched. */
    Blastn,
};

constexpr int numWorkloads = static_cast<int>(Workload::NumWorkloads);

/** All five workloads, in the paper's presentation order. */
inline constexpr Workload allWorkloads[] = {
    Workload::Ssearch34, Workload::SwVmx128, Workload::SwVmx256,
    Workload::Fasta34, Workload::Blast,
};

/** Display name as used in the paper's figures. */
std::string_view workloadName(Workload w);

/**
 * The working set a trace is generated from.
 *
 * The paper traces executions against full SwissProt and samples
 * representative windows (Table III: 7.7M-320M instructions). We
 * instead scale the database down so the *whole* execution is the
 * trace; `dbSequences` ~ 24 yields traces of roughly 1/100 of the
 * paper's Table III sizes with the same inter-application ratios.
 */
struct TraceSpec
{
    /** Query accession; default is the paper's reported query
     * (Glutathione S-transferase P14942, 222 residues). */
    std::string queryAccession = "P14942";
    /** Database sequences to synthesize for the traced run. */
    int dbSequences = 24;
    /** Planted homologs per identity level (exercises hit paths). */
    int homologsPerQuery = 1;
    /** RNG seed for the synthetic data. */
    std::uint64_t seed = 0xB10ACED5;

    bool operator==(const TraceSpec &other) const = default;
};

/** Materialized working set: the query and database to trace. */
struct TraceInput
{
    bio::Sequence query;
    bio::SequenceDatabase db;
};

/** Build the (query, database) pair a TraceSpec describes. */
TraceInput makeTraceInput(const TraceSpec &spec);

/**
 * What a traced kernel returns: the instruction trace plus the
 * scores it computed (tests assert these equal the untraced
 * library's results — the trace really is the algorithm).
 */
struct TracedRun
{
    trace::Trace trace;
    /** Best local score per database sequence (index-aligned). */
    std::vector<int> scores;
};

} // namespace bioarch::kernels

#endif // BIOARCH_KERNELS_WORKLOAD_HH
