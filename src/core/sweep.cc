#include "sweep.hh"

#include <chrono>

namespace bioarch::core
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - start)
        .count();
}

} // namespace

SweepRunner::SweepRunner(WorkloadSuite &suite, unsigned jobs)
    : _suite(suite), _jobs(jobs == 0 ? 1 : jobs)
{
}

SweepResult
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    // Materialize every referenced trace before fanning out: trace
    // generation happens exactly once per workload, on this thread,
    // so the workers only ever *read* the suite.
    for (const SweepPoint &p : points)
        _suite.run(p.workload);

    SweepResult result;
    result.points.resize(points.size());

    const Clock::time_point sweep_start = Clock::now();
    {
        ThreadPool pool(_jobs);
        pool.parallelFor(points.size(), [&](std::size_t i) {
            SweepPointResult &slot = result.points[i];
            slot.point = points[i];
            const Clock::time_point start = Clock::now();
            if (points[i].sample) {
                // Windows run serially inside this pool task: a
                // task waiting on a nested pool from within the
                // sweep's own pool would deadlock, and the sweep's
                // fan-out is already the parallelism.
                sim::SampleConfig cfg = *points[i].sample;
                cfg.jobs = 1;
                slot.sampled = sim::sampleTrace(
                    _suite.trace(points[i].workload),
                    points[i].config, cfg);
                slot.stats = slot.sampled->measured;
            } else {
                slot.stats =
                    simulate(_suite.trace(points[i].workload),
                             points[i].config);
            }
            slot.elapsedMs = msSince(start);
        });
    }

    SweepSummary &s = result.summary;
    s.jobs = _jobs;
    s.points = points.size();
    s.wallMs = msSince(sweep_start);
    for (const SweepPointResult &r : result.points) {
        s.cpuMs += r.elapsedMs;
        s.totalCycles += r.stats.cycles;
        s.totalInstructions += r.stats.instructions;
    }
    return result;
}

SweepResult
runSweep(WorkloadSuite &suite, const std::vector<SweepPoint> &points,
         unsigned jobs)
{
    return SweepRunner(suite, jobs).run(points);
}

} // namespace bioarch::core
