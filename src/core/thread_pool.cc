#include "thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace bioarch::core
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    _queues.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _queues.push_back(std::make_unique<WorkQueue>());
    _workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    // Drain without rethrowing: a task exception nobody waited for
    // must not escape a destructor.
    {
        std::unique_lock lock(_mutex);
        _idle.wait(lock, [this] { return _pending == 0; });
        _error = nullptr;
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    std::size_t target;
    {
        std::lock_guard lock(_mutex);
        target = _nextQueue;
        _nextQueue = (_nextQueue + 1) % _queues.size();
        ++_queued;
        _maxQueued = std::max(_maxQueued, _queued);
        ++_pending;
    }
    {
        std::lock_guard lock(_queues[target]->mutex);
        _queues[target]->tasks.push_back(std::move(task));
    }
    _wake.notify_one();
}

bool
ThreadPool::takeTask(unsigned self, Task &out)
{
    // Own queue first (front: LIFO-ish locality for the owner)...
    {
        WorkQueue &q = *_queues[self];
        std::lock_guard lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    // ...then steal from the back of the others.
    for (std::size_t i = 1; i < _queues.size(); ++i) {
        WorkQueue &q = *_queues[(self + i) % _queues.size()];
        std::lock_guard lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            _steals.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    s.tasksRun = _tasksRun.load(std::memory_order_relaxed);
    s.steals = _steals.load(std::memory_order_relaxed);
    s.workers = static_cast<unsigned>(_workers.size());
    {
        std::lock_guard lock(_mutex);
        s.queueDepth = _queued;
        s.maxQueueDepth = _maxQueued;
    }
    return s;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        {
            std::unique_lock lock(_mutex);
            _wake.wait(lock,
                       [this] { return _stop || _queued > 0; });
            if (_stop && _queued == 0)
                return;
        }
        Task task;
        if (!takeTask(self, task))
            continue; // lost the race; re-check the predicate
        {
            std::lock_guard lock(_mutex);
            --_queued;
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        _tasksRun.fetch_add(1, std::memory_order_relaxed);
        bool drained;
        {
            std::lock_guard lock(_mutex);
            if (err) {
                if (!_error)
                    _error = std::move(err);
                // Release the worker's reference inside the lock:
                // the waiter that rethrows must be the last owner,
                // or the exception object's teardown on this thread
                // races the waiter's use of it.
                err = nullptr;
            }
            drained = --_pending == 0;
        }
        if (drained)
            _idle.notify_all();
    }
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock lock(_mutex);
        _idle.wait(lock, [this] { return _pending == 0; });
        err = std::exchange(_error, nullptr);
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&body, i] { body(i); });
    wait();
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("BIOARCH_JOBS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace bioarch::core
