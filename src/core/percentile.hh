/**
 * @file
 * Quantile/percentile helpers shared by the serving engine's latency
 * accounting (src/serve/latency.hh) and the bench harnesses' JSON
 * footers (bench/bench_common.hh), so both report the same numbers
 * for the same samples instead of carrying two ad-hoc
 * implementations.
 */

#ifndef BIOARCH_CORE_PERCENTILE_HH
#define BIOARCH_CORE_PERCENTILE_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace bioarch::core
{

/**
 * Linear-interpolation quantile of @p samples (the R-7 / NumPy
 * default): q = 0 is the minimum, q = 1 the maximum, and fractional
 * ranks interpolate between the two neighboring order statistics.
 * Returns 0 for an empty sample set.
 *
 * @param samples the observations (taken by value; sorted in place)
 * @param q quantile in [0, 1] (clamped)
 */
inline double
quantile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (q <= 0.0)
        return samples.front();
    if (q >= 1.0)
        return samples.back();
    const double rank =
        q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples.size())
        return samples.back();
    return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

/** quantile() with @p pct expressed in percent (p50, p95, p99...). */
inline double
percentile(const std::vector<double> &samples, double pct)
{
    return quantile(samples, pct / 100.0);
}

} // namespace bioarch::core

#endif // BIOARCH_CORE_PERCENTILE_HH
