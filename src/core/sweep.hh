/**
 * @file
 * The design-space sweep engine: fan simulation points
 * {workload, SimConfig} out across hardware threads and return the
 * results in deterministic submission order.
 *
 * The paper's evaluation is a large cross product — five workloads
 * x core widths x memory hierarchies x branch predictors — and
 * every point is an independent replay of an immutable trace on a
 * fresh Simulator, so the sweep parallelizes embarrassingly: trace
 * once (WorkloadSuite), replay many (SweepRunner). Results are
 * bit-for-bit identical to running the same points serially; the
 * schedule only decides *when* a point runs, never *what* it
 * computes.
 */

#ifndef BIOARCH_CORE_SWEEP_HH
#define BIOARCH_CORE_SWEEP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/sample.hh"
#include "suite.hh"
#include "thread_pool.hh"

namespace bioarch::core
{

/** One point of a design-space sweep. */
struct SweepPoint
{
    kernels::Workload workload = kernels::Workload::Ssearch34;
    sim::SimConfig config;
    /** Free-form tag echoed into the result (e.g. "me2/8-way"). */
    std::string label;
    /**
     * When set, the point is sampled instead of fully simulated
     * (sim::sampleTrace). Windows run serially inside the point's
     * pool task — the sweep's own fan-out is the parallelism — so
     * the jobs field here is ignored.
     */
    std::optional<sim::SampleConfig> sample;
};

/** One simulated point, in submission order. */
struct SweepPointResult
{
    SweepPoint point;
    /** Full-run stats, or the sampled measurement (sampled->
     * measured) when the point was sampled. */
    sim::SimStats stats;
    /** Present iff the point requested sampling. */
    std::optional<sim::SampledStats> sampled;
    /** Wall-clock cost of this point's simulation. */
    double elapsedMs = 0.0;
};

/** Aggregate accounting for one sweep invocation. */
struct SweepSummary
{
    unsigned jobs = 1;
    std::size_t points = 0;
    /** End-to-end wall clock of the fan-out (excludes tracing). */
    double wallMs = 0.0;
    /** Sum of per-point simulation times (the serial-equivalent). */
    double cpuMs = 0.0;
    std::uint64_t totalCycles = 0;
    std::uint64_t totalInstructions = 0;

    double
    pointsPerSec() const
    {
        return wallMs <= 0.0
            ? 0.0
            : 1000.0 * static_cast<double>(points) / wallMs;
    }
    /** cpuMs / (wallMs * jobs): 1.0 = perfect scaling. */
    double
    parallelEfficiency() const
    {
        return wallMs <= 0.0 || jobs == 0
            ? 0.0
            : cpuMs / (wallMs * static_cast<double>(jobs));
    }
};

/** Everything a sweep returns. */
struct SweepResult
{
    /** Per-point results, index-aligned with the submitted points. */
    std::vector<SweepPointResult> points;
    SweepSummary summary;

    const sim::SimStats &
    stats(std::size_t i) const
    {
        return points[i].stats;
    }
};

/**
 * Runs sweeps over one WorkloadSuite. Traces are materialized
 * up front (serially, so trace generation itself stays
 * deterministic and is never attributed to a point's time), then
 * the points are fanned out over a work-stealing ThreadPool.
 *
 * jobs == 1 degenerates to the serial path on a single worker;
 * any jobs value produces identical SimStats.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(WorkloadSuite &suite,
                         unsigned jobs = ThreadPool::defaultJobs());

    /** Simulate every point; results come back in @p points order. */
    SweepResult run(const std::vector<SweepPoint> &points);

    unsigned jobs() const { return _jobs; }

  private:
    WorkloadSuite &_suite;
    unsigned _jobs;
};

/** Convenience: one-shot sweep over @p suite. */
SweepResult runSweep(WorkloadSuite &suite,
                     const std::vector<SweepPoint> &points,
                     unsigned jobs = ThreadPool::defaultJobs());

} // namespace bioarch::core

#endif // BIOARCH_CORE_SWEEP_HH
