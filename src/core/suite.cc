#include "suite.hh"

#include <cstdlib>

namespace bioarch::core
{

WorkloadSuite::WorkloadSuite(kernels::TraceSpec spec)
    : _spec(std::move(spec)), _input(kernels::makeTraceInput(_spec))
{
}

const kernels::TracedRun &
WorkloadSuite::run(kernels::Workload w)
{
    std::lock_guard lock(_mutex);
    auto &slot = _runs[static_cast<std::size_t>(w)];
    if (!slot)
        slot = kernels::traceWorkload(w, _input);
    // Safe to hand out past the unlock: slots are only ever filled,
    // never reset, and std::array storage is stable.
    return *slot;
}

void
WorkloadSuite::prepareAll()
{
    for (const kernels::Workload w : kernels::allWorkloads)
        run(w);
}

kernels::TraceSpec
WorkloadSuite::benchSpec()
{
    kernels::TraceSpec spec;
    spec.dbSequences = 8; // keeps every harness under ~a minute
    if (const char *env = std::getenv("BIOARCH_DB_SEQS")) {
        const int n = std::atoi(env);
        if (n > 0)
            spec.dbSequences = n;
    }
    return spec;
}

sim::SimStats
simulate(const trace::Trace &trace, const sim::SimConfig &config)
{
    sim::Simulator simulator(config);
    return simulator.run(trace);
}

const std::array<sim::CoreConfig, 3> &
coreSweep()
{
    static const std::array<sim::CoreConfig, 3> sweep = {
        sim::core4Way(), sim::core8Way(), sim::core16Way()};
    return sweep;
}

const std::array<sim::MemoryConfig, 5> &
memorySweep()
{
    static const std::array<sim::MemoryConfig, 5> sweep = {
        sim::memoryMe1(), sim::memoryMe2(), sim::memoryMe3(),
        sim::memoryMe4(), sim::memoryInf()};
    return sweep;
}

} // namespace bioarch::core
