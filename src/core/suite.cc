#include "suite.hh"

#include <algorithm>
#include <cstdlib>

#include "thread_pool.hh"

namespace bioarch::core
{

WorkloadSuite::WorkloadSuite(kernels::TraceSpec spec)
    : _spec(std::move(spec)), _input(kernels::makeTraceInput(_spec))
{
}

const kernels::TracedRun &
WorkloadSuite::run(kernels::Workload w)
{
    std::lock_guard lock(_mutex);
    auto &slot = _runs[static_cast<std::size_t>(w)];
    if (!slot)
        slot = kernels::traceWorkload(w, _input);
    // Safe to hand out past the unlock: slots are only ever filled,
    // never reset, and std::array storage is stable.
    return *slot;
}

void
WorkloadSuite::prepareAll()
{
    // Generate the five traces concurrently: generation dominates
    // suite start-up and the workloads are independent. The work
    // runs outside the cache lock (run() serializes whole
    // generations under _mutex — the right call for lazy single
    // touches, which keep that path); here the lock only guards
    // the slot fill, and a slot that raced with a concurrent lazy
    // run() keeps the first arrival.
    ThreadPool pool(std::min(
        ThreadPool::defaultJobs(),
        static_cast<unsigned>(kernels::numWorkloads)));
    for (const kernels::Workload w : kernels::allWorkloads)
        pool.submit([this, w] {
            {
                std::lock_guard lock(_mutex);
                if (_runs[static_cast<std::size_t>(w)])
                    return;
            }
            auto generated = kernels::traceWorkload(w, _input);
            std::lock_guard lock(_mutex);
            auto &slot = _runs[static_cast<std::size_t>(w)];
            if (!slot)
                slot = std::move(generated);
        });
    pool.wait();
}

kernels::TraceSpec
WorkloadSuite::benchSpec()
{
    kernels::TraceSpec spec;
    spec.dbSequences = 8; // keeps every harness under ~a minute
    if (const char *env = std::getenv("BIOARCH_DB_SEQS")) {
        const int n = std::atoi(env);
        if (n > 0)
            spec.dbSequences = n;
    }
    return spec;
}

sim::SimStats
simulate(const trace::Trace &trace, const sim::SimConfig &config)
{
    sim::Simulator simulator(config);
    return simulator.run(trace);
}

const std::array<sim::CoreConfig, 3> &
coreSweep()
{
    static const std::array<sim::CoreConfig, 3> sweep = {
        sim::core4Way(), sim::core8Way(), sim::core16Way()};
    return sweep;
}

const std::array<sim::MemoryConfig, 5> &
memorySweep()
{
    static const std::array<sim::MemoryConfig, 5> sweep = {
        sim::memoryMe1(), sim::memoryMe2(), sim::memoryMe3(),
        sim::memoryMe4(), sim::memoryInf()};
    return sweep;
}

} // namespace bioarch::core
