/**
 * @file
 * The repo's one FNV-1a 64 implementation. Three subsystems grew
 * their own copies of the same hash — the container format's
 * payload checksum (index/container.cc), the simulator's golden
 * fingerprint (sim/pipeline.cc), and the metrics registry's shard
 * choice (obs/metrics.cc) — and the serving tier's result cache
 * needs a fourth for its query digest. This header is the single
 * definition they all share.
 *
 * Two forms:
 *  - fnv1a64(data, bytes, seed): one-shot hash over a byte range;
 *  - Fnv1a: incremental hasher with update(bytes) and update64(v),
 *    where update64 mixes the eight little-endian bytes of v —
 *    byte-for-byte what hashing the value's LE memory image does,
 *    expressed with shifts so the digest is endian-independent.
 *
 * Both use the standard 64-bit FNV offset basis and prime, so every
 * digest produced before the extraction — container checksums on
 * disk, pinned golden fingerprints — is unchanged.
 */

#ifndef BIOARCH_CORE_DIGEST_HH
#define BIOARCH_CORE_DIGEST_HH

#include <cstddef>
#include <cstdint>

namespace bioarch::core
{

inline constexpr std::uint64_t fnvOffsetBasis =
    0xcbf29ce484222325ULL;
inline constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

/** Incremental FNV-1a 64. */
class Fnv1a
{
  public:
    explicit Fnv1a(std::uint64_t seed = fnvOffsetBasis) : _h(seed)
    {
    }

    void
    update(const void *data, std::size_t bytes)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < bytes; ++i) {
            _h ^= p[i];
            _h *= fnvPrime;
        }
    }

    /** Mix the eight little-endian bytes of @p v. */
    void
    update64(std::uint64_t v)
    {
        for (int byte = 0; byte < 8; ++byte) {
            _h ^= (v >> (byte * 8)) & 0xff;
            _h *= fnvPrime;
        }
    }

    std::uint64_t digest() const { return _h; }

  private:
    std::uint64_t _h;
};

/** One-shot FNV-1a 64 over @p bytes bytes of @p data. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t bytes,
        std::uint64_t seed = fnvOffsetBasis)
{
    Fnv1a h(seed);
    h.update(data, bytes);
    return h.digest();
}

} // namespace bioarch::core

#endif // BIOARCH_CORE_DIGEST_HH
