#include "report.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bioarch::core
{

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

Table &
Table::row()
{
    _rows.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    _rows.back().push_back(cell);
    return *this;
}

Table &
Table::add(const char *cell)
{
    return add(std::string(cell));
}

Table &
Table::add(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return add(os.str());
}

Table &
Table::add(std::uint64_t value)
{
    return add(std::to_string(value));
}

Table &
Table::add(int value)
{
    return add(std::to_string(value));
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            if (c == 0) {
                // First column (labels) left-aligned.
                out << cell
                    << std::string(widths[c] - cell.size(), ' ');
            } else {
                out << "  "
                    << std::string(widths[c] - cell.size(), ' ')
                    << cell;
            }
        }
        out << '\n';
    };

    print_row(_headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : _rows)
        print_row(row);
}

void
Table::printCsv(std::ostream &out) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            out << (c == 0 ? "" : ",") << cells[c];
        out << '\n';
    };
    emit(_headers);
    for (const auto &row : _rows)
        emit(row);
}

void
printHeading(std::ostream &out, const std::string &title)
{
    out << '\n' << "== " << title << " ==\n\n";
}

} // namespace bioarch::core
