/**
 * @file
 * A small work-stealing thread pool for fanning simulation points
 * out across hardware threads.
 *
 * Each worker owns a deque: it pops its own work LIFO (cache-warm)
 * and steals FIFO from the other workers when it runs dry, so a
 * sweep whose points have very different costs (a meinf point is
 * many times cheaper than an me1 point) still keeps every core
 * busy. Tasks are closures; determinism is the *submitter's*
 * responsibility — the sweep engine achieves it by writing each
 * result to a preallocated slot keyed by submission index.
 */

#ifndef BIOARCH_CORE_THREAD_POOL_HH
#define BIOARCH_CORE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bioarch::core
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads = defaultJobs());

    /** Blocks until all submitted work has finished. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /**
     * Observability snapshot of the pool (consumed by the obs
     * subsystem's gauges/counters; see serve::Engine). tasksRun
     * and steals are monotone; queueDepth is instantaneous;
     * maxQueueDepth is the high-watermark of queued-not-started
     * tasks since construction.
     */
    struct Stats
    {
        std::uint64_t tasksRun = 0;
        std::uint64_t steals = 0;
        std::size_t queueDepth = 0;
        std::size_t maxQueueDepth = 0;
        unsigned workers = 0;
    };
    Stats stats() const;

    /** Enqueue @p task; returns immediately. */
    void submit(Task task);

    /**
     * Block until every submitted task has completed. If any task
     * threw, the *first* captured exception is rethrown here (the
     * rest of the wave still runs to completion first) and the
     * pool remains usable for further submissions. With several
     * concurrent waiters, exactly one of them receives the
     * exception.
     */
    void wait();

    /**
     * Run body(0) .. body(n-1), distributing indices across the
     * workers, and block until all have completed. An exception
     * thrown by @p body is rethrown to the caller after the wave
     * drains (see wait()); the remaining indices still execute.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * The default worker count: the BIOARCH_JOBS environment
     * variable if set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (at least 1).
     */
    static unsigned defaultJobs();

  private:
    /** One worker's deque. Owner pops front; thieves take back. */
    struct WorkQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool takeTask(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkQueue>> _queues;
    std::vector<std::thread> _workers;

    // Monotone observability counters; relaxed — they order
    // nothing, they only count.
    std::atomic<std::uint64_t> _tasksRun{0};
    std::atomic<std::uint64_t> _steals{0};

    mutable std::mutex _mutex;    ///< guards the counters below
    std::condition_variable _wake; ///< work available / stopping
    std::condition_variable _idle; ///< all work drained
    std::size_t _queued = 0;      ///< submitted, not yet started
    std::size_t _maxQueued = 0;   ///< high-watermark of _queued
    std::size_t _pending = 0;     ///< submitted, not yet finished
    std::size_t _nextQueue = 0;   ///< round-robin submission cursor
    std::exception_ptr _error;    ///< first task exception, if any
    bool _stop = false;
};

} // namespace bioarch::core

#endif // BIOARCH_CORE_THREAD_POOL_HH
