/**
 * @file
 * Report formatting: aligned text tables (what the bench harnesses
 * print) and CSV (for plotting the figures externally).
 */

#ifndef BIOARCH_CORE_REPORT_HH
#define BIOARCH_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace bioarch::core
{

/**
 * A simple column-aligned table. Cells are strings; numeric
 * convenience adders format with sensible precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Start a new row; subsequent add() calls fill it. */
    Table &row();

    Table &add(const std::string &cell);
    Table &add(const char *cell);
    Table &add(double value, int precision = 2);
    Table &add(std::uint64_t value);
    Table &add(int value);

    std::size_t numRows() const { return _rows.size(); }
    const std::vector<std::string> &header() const
    {
        return _headers;
    }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return _rows;
    }

    /** Print with aligned columns. */
    void print(std::ostream &out) const;

    /** Emit as CSV. */
    void printCsv(std::ostream &out) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Print a section heading in the style of the bench harnesses. */
void printHeading(std::ostream &out, const std::string &title);

} // namespace bioarch::core

#endif // BIOARCH_CORE_REPORT_HH
