/**
 * @file
 * The characterization suite: the paper's five workloads traced
 * once and simulated across processor configurations. This is the
 * primary user-facing API of the library — everything the bench
 * harnesses and examples do goes through it.
 */

#ifndef BIOARCH_CORE_SUITE_HH
#define BIOARCH_CORE_SUITE_HH

#include <array>
#include <mutex>
#include <optional>
#include <string>

#include "kernels/factory.hh"
#include "sim/pipeline.hh"

namespace bioarch::core
{

/**
 * Generates and caches the dynamic traces of all five applications
 * over one shared working set, so a sweep over N configurations
 * pays trace generation once, not N times.
 *
 * Thread safety: run()/trace() may be called concurrently — the
 * cache is mutex-guarded, each trace is generated exactly once,
 * and the returned references stay valid for the suite's lifetime
 * (the cached runs are never moved or evicted). Historically this
 * class was single-thread only (the lazy fill of `_runs` was
 * unsynchronized); the sweep engine (`core/sweep.hh`) now replays
 * one suite from N workers, so the contract is load-bearing.
 */
class WorkloadSuite
{
  public:
    /** Build a suite over the working set described by @p spec. */
    explicit WorkloadSuite(kernels::TraceSpec spec = benchSpec());

    /** The traced run of @p w (generated on first use). */
    const kernels::TracedRun &run(kernels::Workload w);

    /** Materialize all five traces now (e.g. before a fan-out),
     * generating them in parallel on a transient ThreadPool (one
     * task per workload, BIOARCH_JOBS-many workers at most). */
    void prepareAll();

    /** The instruction trace of @p w. */
    const trace::Trace &
    trace(kernels::Workload w)
    {
        return run(w).trace;
    }

    const kernels::TraceInput &input() const { return _input; }
    const kernels::TraceSpec &spec() const { return _spec; }

    /**
     * The default working set used by the bench harnesses. The
     * database size honors the BIOARCH_DB_SEQS environment variable
     * so users can re-run the experiments at larger scales.
     */
    static kernels::TraceSpec benchSpec();

  private:
    kernels::TraceSpec _spec;
    kernels::TraceInput _input;
    /** Guards `_runs`. Generation holds the lock (concurrent first
     * touches of one workload serialize); readers of an
     * already-filled slot only pay an uncontended lock. */
    std::mutex _mutex;
    std::array<std::optional<kernels::TracedRun>,
               kernels::numWorkloads>
        _runs;
};

/** Simulate one trace on one configuration. */
sim::SimStats simulate(const trace::Trace &trace,
                       const sim::SimConfig &config);

/** The paper's three core-width presets, in order. */
const std::array<sim::CoreConfig, 3> &coreSweep();

/** The paper's five Table V memory presets, in order. */
const std::array<sim::MemoryConfig, 5> &memorySweep();

} // namespace bioarch::core

#endif // BIOARCH_CORE_SUITE_HH
