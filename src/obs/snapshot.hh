/**
 * @file
 * Snapshot exporters for the metrics registry: a one-object JSON
 * document (validated by scripts/check_metrics_schema.sh against
 * scripts/metrics_schema.json) and the Prometheus text exposition
 * format (scrape-ready; see the README's "Online serving and
 * observability" section for a scrape example).
 *
 * Both exporters render the same Registry::snapshot(), so metric
 * order is sorted by (name, labels) and two exports of one registry
 * diff cleanly.
 */

#ifndef BIOARCH_OBS_SNAPSHOT_HH
#define BIOARCH_OBS_SNAPSHOT_HH

#include <iosfwd>
#include <string>

#include "metrics.hh"

namespace bioarch::obs
{

/**
 * JSON snapshot:
 * {"version":1,"metrics":[{"name":...,"labels":...,"type":...,
 *  ...counter/gauge: "value":N,
 *  ...histogram: "count","sum","mean","p50","p95","p99","max",
 *                "buckets":[{"le":edge,"count":cumulative},...]}]}
 *
 * Histogram buckets are cumulative (Prometheus-style `le`) and
 * trailing all-sample buckets are trimmed: the last emitted bucket
 * is the first whose cumulative count equals the total.
 */
void writeJson(const Registry &registry, std::ostream &out);
std::string toJson(const Registry &registry);

/** Prometheus text exposition format (one scrape page). */
void writePrometheus(const Registry &registry, std::ostream &out);
std::string toPrometheus(const Registry &registry);

} // namespace bioarch::obs

#endif // BIOARCH_OBS_SNAPSHOT_HH
