#include "metrics.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/digest.hh"
#include "core/percentile.hh"

namespace bioarch::obs
{

const std::array<double, Histogram::numBuckets> &
Histogram::bucketBounds()
{
    // Hoisted to (one-time) construction: the exp2 table is built
    // exactly once per process, never per histogram() call.
    static const std::array<double, numBuckets> bounds = [] {
        std::array<double, numBuckets> b{};
        for (int i = 0; i < numBuckets; ++i)
            b[static_cast<std::size_t>(i)] = std::exp2(i + 1);
        return b;
    }();
    return bounds;
}

Histogram::Histogram(const Histogram &other)
{
    std::lock_guard lock(other._mutex);
    _samples = other._samples;
    _sum = other._sum;
    _max = other._max;
    _counts = other._counts;
}

Histogram &
Histogram::operator=(const Histogram &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(_mutex, other._mutex);
    _samples = other._samples;
    _sum = other._sum;
    _max = other._max;
    _counts = other._counts;
    return *this;
}

int
Histogram::bucketOf(double v)
{
    if (!(v >= 1.0)) // also catches NaN and negatives
        return 0;
    const int b = static_cast<int>(std::floor(std::log2(v)));
    return std::min(b, numBuckets - 1);
}

void
Histogram::record(double v)
{
    const int b = bucketOf(v);
    std::lock_guard lock(_mutex);
    _samples.push_back(v);
    _sum += v;
    _max = _samples.size() == 1 ? v : std::max(_max, v);
    ++_counts[static_cast<std::size_t>(b)];
}

std::size_t
Histogram::count() const
{
    std::lock_guard lock(_mutex);
    return _samples.size();
}

HistogramSummary
Histogram::summary() const
{
    std::vector<double> samples;
    HistogramSummary s;
    {
        std::lock_guard lock(_mutex);
        samples = _samples;
        s.sum = _sum;
        s.max = _max;
    }
    s.count = samples.size();
    if (samples.empty())
        return HistogramSummary{};
    s.mean = s.sum / static_cast<double>(s.count);
    s.p50 = core::percentile(samples, 50.0);
    s.p95 = core::percentile(samples, 95.0);
    s.p99 = core::percentile(samples, 99.0);
    return s;
}

std::vector<double>
Histogram::samples() const
{
    std::lock_guard lock(_mutex);
    return _samples;
}

std::array<std::uint64_t, Histogram::numBuckets>
Histogram::bucketCounts() const
{
    std::lock_guard lock(_mutex);
    return _counts;
}

std::string_view
metricTypeName(MetricType type)
{
    switch (type) {
    case MetricType::Counter:
        return "counter";
    case MetricType::Gauge:
        return "gauge";
    case MetricType::Histogram:
        return "histogram";
    }
    return "unknown";
}

namespace
{

std::string
entryKey(std::string_view name, std::string_view labels)
{
    std::string key(name);
    key.push_back('\x1f');
    key.append(labels);
    return key;
}

/** FNV-1a (core/digest.hh); cheap, stable shard choice. */
std::size_t
hashName(std::string_view name)
{
    return static_cast<std::size_t>(
        core::fnv1a64(name.data(), name.size()));
}

} // namespace

Registry::Shard &
Registry::shardFor(std::string_view name, std::string_view labels)
{
    (void)labels; // shard on the name only: cheap and sufficient
    return _shards[hashName(name) % numShards];
}

const Registry::Shard &
Registry::shardFor(std::string_view name,
                   std::string_view labels) const
{
    (void)labels;
    return _shards[hashName(name) % numShards];
}

Registry::Entry &
Registry::findOrCreate(std::string_view name,
                       std::string_view labels, MetricType type)
{
    Shard &shard = shardFor(name, labels);
    std::lock_guard lock(shard.mutex);
    auto [it, inserted] =
        shard.entries.try_emplace(entryKey(name, labels));
    Entry &entry = it->second;
    if (inserted) {
        entry.type = type;
        switch (type) {
        case MetricType::Counter:
            entry.counter = std::make_unique<Counter>();
            break;
        case MetricType::Gauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
        case MetricType::Histogram:
            entry.histogram = std::make_unique<Histogram>();
            break;
        }
    } else if (entry.type != type) {
        throw std::logic_error(
            "obs::Registry: metric '" + std::string(name)
            + "' re-registered as "
            + std::string(metricTypeName(type)) + " (is "
            + std::string(metricTypeName(entry.type)) + ")");
    }
    return entry;
}

Counter &
Registry::counter(std::string_view name, std::string_view labels)
{
    return *findOrCreate(name, labels, MetricType::Counter).counter;
}

Gauge &
Registry::gauge(std::string_view name, std::string_view labels)
{
    return *findOrCreate(name, labels, MetricType::Gauge).gauge;
}

Histogram &
Registry::histogram(std::string_view name, std::string_view labels)
{
    return *findOrCreate(name, labels, MetricType::Histogram)
                .histogram;
}

std::vector<MetricSnapshot>
Registry::snapshot() const
{
    std::vector<MetricSnapshot> out;
    for (const Shard &shard : _shards) {
        std::lock_guard lock(shard.mutex);
        for (const auto &[key, entry] : shard.entries) {
            MetricSnapshot snap;
            const std::size_t sep = key.find('\x1f');
            snap.name = key.substr(0, sep);
            snap.labels = key.substr(sep + 1);
            snap.type = entry.type;
            switch (entry.type) {
            case MetricType::Counter:
                snap.value = static_cast<double>(
                    entry.counter->value());
                break;
            case MetricType::Gauge:
                snap.value = entry.gauge->value();
                break;
            case MetricType::Histogram:
                snap.summary = entry.histogram->summary();
                snap.buckets = entry.histogram->bucketCounts();
                break;
            }
            out.push_back(std::move(snap));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name != b.name ? a.name < b.name
                                          : a.labels < b.labels;
              });
    return out;
}

std::uint64_t
Registry::counterValue(std::string_view name,
                       std::string_view labels) const
{
    const Shard &shard = shardFor(name, labels);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(entryKey(name, labels));
    if (it == shard.entries.end()
        || it->second.type != MetricType::Counter)
        return 0;
    return it->second.counter->value();
}

double
Registry::gaugeValue(std::string_view name,
                     std::string_view labels) const
{
    const Shard &shard = shardFor(name, labels);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(entryKey(name, labels));
    if (it == shard.entries.end()
        || it->second.type != MetricType::Gauge)
        return 0.0;
    return it->second.gauge->value();
}

} // namespace bioarch::obs
