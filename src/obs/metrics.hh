/**
 * @file
 * The observability subsystem's metric primitives: a lock-sharded
 * registry of named counters, gauges, and histograms, plus scoped
 * trace spans that time a region into a histogram.
 *
 * Design rules:
 *  - Registration (name -> metric) takes a shard lock once; the
 *    returned reference is stable for the registry's lifetime, so
 *    hot paths touch only their own metric (atomics for counters
 *    and gauges, a short mutex for histograms).
 *  - Counters are monotone; gauges are set-to-current; histograms
 *    keep every sample (request streams are bounded), so the
 *    percentile summary is exact (core/percentile.hh), and bucket
 *    the samples into power-of-two latency bands whose boundaries
 *    are computed once at construction — never per query.
 *  - Snapshots (snapshot.hh) read a consistent copy of every metric
 *    while writers keep running; exported order is sorted by
 *    (name, labels) so two snapshots of the same registry diff
 *    cleanly.
 *
 * Metric names use underscores (serve_latency_us), not dots, so the
 * same name is valid in the JSON snapshot, the Prometheus text
 * exposition, and the checked-in schema
 * (scripts/metrics_schema.json).
 */

#ifndef BIOARCH_OBS_METRICS_HH
#define BIOARCH_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bioarch::obs
{

/** Monotone event count. Thread-safe; relaxed atomics. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-write-wins instantaneous value. Thread-safe. */
class Gauge
{
  public:
    void
    set(double v)
    {
        _value.store(v, std::memory_order_relaxed);
    }
    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> _value{0.0};
};

/** Exact percentile summary of one histogram's samples. */
struct HistogramSummary
{
    std::size_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * Sample distribution: exact samples for percentiles plus
 * power-of-two bucket counts for the bar-chart/Prometheus views.
 *
 * Bucket i spans [2^i, 2^(i+1)); bucket 0 additionally collects
 * sub-unit samples, so its effective range is [0, 2). The bucket
 * boundaries are computed exactly once (first construction), not
 * per histogram() call — see bucketBounds().
 */
class Histogram
{
  public:
    /** Power-of-two buckets: [0,2), [2,4), ... [2^63, inf). */
    static constexpr int numBuckets = 64;

    /**
     * Upper bucket edges, hoisted to construction: bounds()[i] is
     * the exclusive upper edge 2^(i+1) of bucket i. Computed once
     * per process and shared by every histogram.
     */
    static const std::array<double, numBuckets> &bucketBounds();

    /** Index of the bucket that collects @p v. */
    static int bucketOf(double v);

    Histogram() = default;
    // Copyable so value-type holders (LatencyRecorder inside
    // StreamReport) stay movable; copies snapshot the source under
    // its lock and get a fresh mutex.
    Histogram(const Histogram &other);
    Histogram &operator=(const Histogram &other);

    void record(double v);

    std::size_t count() const;
    HistogramSummary summary() const;
    /** Copy of the raw samples (for exact external percentiles). */
    std::vector<double> samples() const;
    /** Per-bucket sample counts (not cumulative). */
    std::array<std::uint64_t, numBuckets> bucketCounts() const;

  private:
    mutable std::mutex _mutex;
    std::vector<double> _samples;
    double _sum = 0.0;
    double _max = 0.0;
    std::array<std::uint64_t, numBuckets> _counts{};
};

/** What kind of metric a registry entry is. */
enum class MetricType
{
    Counter,
    Gauge,
    Histogram,
};

std::string_view metricTypeName(MetricType type);

/** One metric's consistent point-in-time copy (see snapshot.hh). */
struct MetricSnapshot
{
    std::string name;
    /** Prometheus-style label body, e.g. `backend="avx2"` (may be
     * empty). */
    std::string labels;
    MetricType type = MetricType::Counter;
    /** Counter / gauge value (counters are integral). */
    double value = 0.0;
    /** Histogram-only fields. */
    HistogramSummary summary;
    std::array<std::uint64_t, Histogram::numBuckets> buckets{};
};

/**
 * Lock-sharded name -> metric registry. Lookup/registration hashes
 * the name to one of a fixed set of shards and locks only that
 * shard, so concurrent registration from worker threads does not
 * serialize on one mutex; after registration, updates go straight
 * to the metric and take no registry lock at all.
 *
 * Re-registering a name returns the same metric; re-registering a
 * name as a different type throws std::logic_error.
 */
class Registry
{
  public:
    Counter &counter(std::string_view name,
                     std::string_view labels = {});
    Gauge &gauge(std::string_view name,
                 std::string_view labels = {});
    Histogram &histogram(std::string_view name,
                         std::string_view labels = {});

    /**
     * Point-in-time copy of every registered metric, sorted by
     * (name, labels). Writers may keep recording while a snapshot
     * is taken; each metric is copied consistently.
     */
    std::vector<MetricSnapshot> snapshot() const;

    /**
     * Current value of a registered counter, 0 when @p name is not
     * registered (convenience for tests and report footers).
     */
    std::uint64_t counterValue(std::string_view name,
                               std::string_view labels = {}) const;

    /**
     * Current value of a registered gauge, 0.0 when @p name is not
     * registered (convenience for tests and report footers).
     */
    double gaugeValue(std::string_view name,
                      std::string_view labels = {}) const;

  private:
    struct Entry
    {
        MetricType type;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    /** Key = name + '\x1f' + labels. */
    struct Shard
    {
        mutable std::mutex mutex;
        std::map<std::string, Entry> entries;
    };

    static constexpr std::size_t numShards = 16;

    Shard &shardFor(std::string_view name, std::string_view labels);
    const Shard &shardFor(std::string_view name,
                          std::string_view labels) const;
    Entry &findOrCreate(std::string_view name,
                        std::string_view labels, MetricType type);

    std::array<Shard, numShards> _shards;
};

/**
 * RAII trace span: times the enclosing scope and records the
 * elapsed microseconds into a histogram on destruction. Feeds
 * observability only — never the deterministic result path.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(Histogram &sink)
        : _sink(&sink), _start(std::chrono::steady_clock::now())
    {
    }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    ~ScopedSpan()
    {
        if (_sink)
            _sink->record(elapsedUs());
    }

    /** Microseconds since construction. */
    double
    elapsedUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

    /** Detach: destruction records nothing. */
    void cancel() { _sink = nullptr; }

  private:
    Histogram *_sink;
    std::chrono::steady_clock::time_point _start;
};

} // namespace bioarch::obs

#endif // BIOARCH_OBS_METRICS_HH
