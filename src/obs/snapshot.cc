#include "snapshot.hh"

#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <sstream>

namespace bioarch::obs
{

namespace
{

/** Finite JSON number (JSON has no inf/nan literals). */
void
jsonNumber(std::ostream &out, double v)
{
    if (!std::isfinite(v)) {
        out << 0;
        return;
    }
    // Integral values (counters, bucket counts) print exactly.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        out << static_cast<std::int64_t>(v);
        return;
    }
    std::ostringstream s;
    s.precision(std::numeric_limits<double>::max_digits10);
    s << v;
    out << s.str();
}

void
jsonString(std::ostream &out, std::string_view v)
{
    out << '"';
    for (const char c : v) {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
    out << '"';
}

void
writeHistogramJson(std::ostream &out, const MetricSnapshot &m)
{
    const HistogramSummary &s = m.summary;
    out << "\"count\":" << s.count << ",\"sum\":";
    jsonNumber(out, s.sum);
    out << ",\"mean\":";
    jsonNumber(out, s.mean);
    out << ",\"p50\":";
    jsonNumber(out, s.p50);
    out << ",\"p95\":";
    jsonNumber(out, s.p95);
    out << ",\"p99\":";
    jsonNumber(out, s.p99);
    out << ",\"max\":";
    jsonNumber(out, s.max);
    out << ",\"buckets\":[";
    const auto &bounds = Histogram::bucketBounds();
    std::uint64_t cumulative = 0;
    const std::uint64_t total = s.count;
    bool first = true;
    for (int i = 0; i < Histogram::numBuckets; ++i) {
        cumulative += m.buckets[static_cast<std::size_t>(i)];
        if (!first)
            out << ',';
        first = false;
        out << "{\"le\":";
        jsonNumber(out, bounds[static_cast<std::size_t>(i)]);
        out << ",\"count\":" << cumulative << '}';
        if (cumulative >= total)
            break; // trailing buckets add nothing
    }
    out << ']';
}

} // namespace

void
writeJson(const Registry &registry, std::ostream &out)
{
    out << "{\"version\":1,\"metrics\":[";
    bool first = true;
    for (const MetricSnapshot &m : registry.snapshot()) {
        if (!first)
            out << ',';
        first = false;
        out << "{\"name\":";
        jsonString(out, m.name);
        out << ",\"labels\":";
        jsonString(out, m.labels);
        out << ",\"type\":\"" << metricTypeName(m.type) << "\",";
        if (m.type == MetricType::Histogram) {
            writeHistogramJson(out, m);
        } else {
            out << "\"value\":";
            jsonNumber(out, m.value);
        }
        out << '}';
    }
    out << "]}\n";
}

std::string
toJson(const Registry &registry)
{
    std::ostringstream out;
    writeJson(registry, out);
    return out.str();
}

namespace
{

/** `name{labels}` or bare `name` when there are no labels. */
void
promSeries(std::ostream &out, const std::string &name,
           const std::string &labels)
{
    out << name;
    if (!labels.empty())
        out << '{' << labels << '}';
}

/** `le="edge"` merged after any metric labels. */
void
promBucketSeries(std::ostream &out, const std::string &name,
                 const std::string &labels, double edge)
{
    out << name << "_bucket{";
    if (!labels.empty())
        out << labels << ',';
    out << "le=\"";
    if (std::isinf(edge))
        out << "+Inf";
    else
        out << edge;
    out << "\"}";
}

} // namespace

void
writePrometheus(const Registry &registry, std::ostream &out)
{
    std::string last_typed;
    for (const MetricSnapshot &m : registry.snapshot()) {
        if (m.name != last_typed) {
            out << "# TYPE " << m.name << ' '
                << metricTypeName(m.type) << '\n';
            last_typed = m.name;
        }
        if (m.type != MetricType::Histogram) {
            promSeries(out, m.name, m.labels);
            out << ' ';
            if (m.type == MetricType::Counter)
                out << static_cast<std::uint64_t>(m.value);
            else
                out << m.value;
            out << '\n';
            continue;
        }
        const auto &bounds = Histogram::bucketBounds();
        std::uint64_t cumulative = 0;
        const std::uint64_t total = m.summary.count;
        for (int i = 0; i < Histogram::numBuckets; ++i) {
            cumulative += m.buckets[static_cast<std::size_t>(i)];
            promBucketSeries(out, m.name, m.labels,
                             bounds[static_cast<std::size_t>(i)]);
            out << ' ' << cumulative << '\n';
            if (cumulative >= total)
                break;
        }
        promBucketSeries(
            out, m.name, m.labels,
            std::numeric_limits<double>::infinity());
        out << ' ' << total << '\n';
        promSeries(out, m.name + "_sum", m.labels);
        out << ' ' << m.summary.sum << '\n';
        promSeries(out, m.name + "_count", m.labels);
        out << ' ' << total << '\n';
    }
}

std::string
toPrometheus(const Registry &registry)
{
    std::ostringstream out;
    writePrometheus(registry, out);
    return out.str();
}

} // namespace bioarch::obs
