#include "reload.hh"

#include <stdexcept>
#include <utility>

namespace bioarch::serve
{

ReloadableEngine::ReloadableEngine(
    std::shared_ptr<const index::DbEpoch> epoch,
    EngineConfig config)
    : _cfg(config)
{
    if (epoch == nullptr)
        throw std::invalid_argument(
            "ReloadableEngine: null epoch");
    if (_cfg.metrics == nullptr) {
        _ownedMetrics = std::make_unique<obs::Registry>();
        _metrics = _ownedMetrics.get();
    } else {
        _metrics = _cfg.metrics;
    }
    _cfg.metrics = _metrics;
    _mEpoch = &_metrics->gauge("db_epoch");

    std::shared_ptr<const Bound> bound = bind(std::move(epoch));
    // Adopt the engine's normalized knobs (jobs/shards/batch) so
    // defaultBatch() answers without chasing the current epoch.
    _cfg = bound->engine->config();
    _mEpoch->set(static_cast<double>(bound->epoch->epoch));
    _bound = std::move(bound);
}

std::shared_ptr<const ReloadableEngine::Bound>
ReloadableEngine::bind(
    std::shared_ptr<const index::DbEpoch> epoch) const
{
    auto bound = std::make_shared<Bound>();
    EngineConfig cfg = _cfg;
    cfg.seedIndex =
        epoch->index.has_value() ? &*epoch->index : nullptr;
    bound->engine =
        std::make_unique<Engine>(epoch->db, cfg);
    bound->epoch = std::move(epoch);
    return bound;
}

void
ReloadableEngine::reload(
    std::shared_ptr<const index::DbEpoch> epoch)
{
    if (epoch == nullptr)
        throw std::invalid_argument(
            "ReloadableEngine: null epoch");
    std::shared_ptr<const Bound> bound = bind(std::move(epoch));
    std::lock_guard lock(_mutex);
    _mEpoch->set(static_cast<double>(bound->epoch->epoch));
    _bound = std::move(bound);
    // The old Bound keeps its epoch and engine alive until the
    // last in-flight serveBatch drops its reference.
}

std::shared_ptr<const ReloadableEngine::Bound>
ReloadableEngine::current() const
{
    std::lock_guard lock(_mutex);
    return _bound;
}

std::shared_ptr<const index::DbEpoch>
ReloadableEngine::epoch() const
{
    return current()->epoch;
}

std::uint64_t
ReloadableEngine::epochNumber() const
{
    return current()->epoch->epoch;
}

std::vector<Response>
ReloadableEngine::serveBatch(const std::vector<Request> &requests,
                             const BatchControl &control)
{
    return serveBatchPinned(requests, control, nullptr);
}

std::vector<Response>
ReloadableEngine::serveBatchPinned(
    const std::vector<Request> &requests,
    const BatchControl &control, std::uint64_t *epochOut)
{
    // Pin the epoch for the whole batch: a reload landing mid-batch
    // swaps the *next* batch's database, never this one's.
    const std::shared_ptr<const Bound> bound = current();
    if (epochOut != nullptr)
        *epochOut = bound->epoch->epoch;
    return bound->engine->serveBatch(requests, control);
}

std::size_t
ReloadableEngine::defaultBatch() const
{
    return _cfg.batch;
}

void
ReloadableEngine::refreshPoolMetrics()
{
    // Per-engine delta tracking starts at zero for each epoch's
    // fresh pool, so mirroring stays monotone in the shared
    // registry across reloads.
    current()->engine->refreshPoolMetrics();
}

} // namespace bioarch::serve
