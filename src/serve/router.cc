#include "router.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace bioarch::serve
{

namespace
{

double
nowSteadyUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

} // namespace

ReplicaRouter::ReplicaRouter(
    std::shared_ptr<const index::DbEpoch> epoch,
    RouterConfig config)
    : _cfg(config)
{
    if (epoch == nullptr)
        throw std::invalid_argument("ReplicaRouter: null epoch");
    if (_cfg.replicas == 0)
        _cfg.replicas = 1;
    if (_cfg.minChunk == 0)
        _cfg.minChunk = 1;
    if (_cfg.engine.metrics == nullptr) {
        _ownedMetrics = std::make_unique<obs::Registry>();
        _metrics = _ownedMetrics.get();
    } else {
        _metrics = _cfg.engine.metrics;
    }
    _cfg.engine.metrics = _metrics;
    _cache = std::make_unique<ResultCache>(_cfg.cache, *_metrics);
    _mCacheHitUs = &_metrics->histogram("serve_cache_hit_us");

    _replicas.resize(_cfg.replicas);
    for (std::size_t i = 0; i < _cfg.replicas; ++i) {
        Replica &r = _replicas[i];
        r.engine = std::make_unique<ReloadableEngine>(
            epoch, _cfg.engine);
        const std::string label =
            "replica=\"" + std::to_string(i) + "\"";
        r.mDepth =
            &_metrics->gauge("serve_replica_depth", label);
        r.mRequests = &_metrics->counter(
            "serve_replica_requests_total", label);
        r.mBatches = &_metrics->counter(
            "serve_replica_batches_total", label);
        r.mDepth->set(0.0);
    }
    // Adopt replica 0's normalized knobs so cache keys use the
    // same effective top-K/backend the engines resolve to.
    _cfg.engine = _replicas[0].engine->config();
}

void
ReplicaRouter::reload(
    std::shared_ptr<const index::DbEpoch> epoch)
{
    if (epoch == nullptr)
        throw std::invalid_argument("ReplicaRouter: null epoch");
    // Serialize reloads so every replica sees the same epoch
    // sequence; each replica's swap is individually atomic and
    // in-flight chunks finish on the epoch they pinned.
    std::lock_guard lock(_mutex);
    for (Replica &r : _replicas)
        r.engine->reload(epoch);
}

std::uint64_t
ReplicaRouter::epochNumber() const
{
    return _replicas.front().engine->epochNumber();
}

std::size_t
ReplicaRouter::defaultBatch() const
{
    return _replicas.front().engine->defaultBatch();
}

void
ReplicaRouter::refreshPoolMetrics()
{
    // pool_* counters are mirrored as deltas, so summing every
    // replica's pool into the shared registry stays monotone.
    for (const Replica &r : _replicas)
        r.engine->refreshPoolMetrics();
}

void
ReplicaRouter::serveChunk(Chunk &chunk,
                          const BatchControl &control)
{
    Replica &replica = _replicas[chunk.replica];
    BatchControl chunk_control;
    chunk_control.clock = control.clock;
    chunk_control.deadlinesUs = control.deadlinesUs != nullptr
        ? chunk.deadlinesUs.data()
        : nullptr;
    chunk.responses = replica.engine->serveBatchPinned(
        chunk.requests, chunk_control, &chunk.epoch);
}

std::vector<Response>
ReplicaRouter::serveBatch(const std::vector<Request> &requests,
                          const BatchControl &control)
{
    const std::size_t n = requests.size();
    std::vector<Response> out(n);

    // Phase 1: consult the cache under the currently published
    // epoch; hits are complete ranked answers by construction.
    const bool cached = _cache->enabled();
    const std::uint64_t epoch = epochNumber();
    std::vector<ResultCache::Key> keys(cached ? n : 0);
    std::vector<std::uint64_t> digests(cached ? n : 0);
    std::vector<std::size_t> misses;
    misses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!cached) {
            misses.push_back(i);
            continue;
        }
        const Request &req = requests[i];
        ResultCache::Key &key = keys[i];
        key.kind = static_cast<std::uint16_t>(req.kind);
        key.backend =
            static_cast<std::uint16_t>(_cfg.engine.backend);
        key.topK = static_cast<std::uint32_t>(
            req.topK != 0 ? req.topK : _cfg.engine.topK);
        key.report = req.reportAlignments ? 1 : 0;
        key.epoch = epoch;
        key.query = req.query.residues();
        digests[i] = ResultCache::digest(key);
        const double t0 = nowSteadyUs();
        const std::shared_ptr<const ResultCache::Result> hit =
            _cache->lookup(key, digests[i]);
        if (hit == nullptr) {
            misses.push_back(i);
            continue;
        }
        const double hitUs = nowSteadyUs() - t0;
        Response &resp = out[i];
        resp.id = req.id;
        resp.kind = req.kind;
        resp.hits = hit->hits;
        resp.alignments = hit->alignments;
        resp.cellsComputed = hit->cells;
        resp.tracebackCells = hit->tracebackCells;
        resp.sequencesSearched = hit->sequences;
        resp.residuesScanned = hit->residues;
        resp.serviceUs = hitUs;
        resp.fromCache = true;
        _mCacheHitUs->record(hitUs);
    }
    if (misses.empty())
        return out;

    // Phase 2: split the misses into contiguous chunks and bind
    // each to the least-loaded replica.
    const std::size_t nmiss = misses.size();
    const std::size_t nchunks = std::clamp<std::size_t>(
        (nmiss + _cfg.minChunk - 1) / _cfg.minChunk, 1,
        _replicas.size());
    std::vector<Chunk> chunks(nchunks);
    {
        const std::size_t base = nmiss / nchunks;
        const std::size_t rem = nmiss % nchunks;
        std::size_t next = 0;
        for (std::size_t c = 0; c < nchunks; ++c) {
            Chunk &chunk = chunks[c];
            const std::size_t size = base + (c < rem ? 1 : 0);
            for (std::size_t j = 0; j < size; ++j, ++next) {
                const std::size_t slot = misses[next];
                chunk.slots.push_back(slot);
                chunk.requests.push_back(requests[slot]);
                chunk.deadlinesUs.push_back(
                    control.deadlinesUs != nullptr
                        ? control.deadlinesUs[slot]
                        : 0.0);
            }
        }
    }
    {
        std::lock_guard lock(_mutex);
        std::vector<std::size_t> order(_replicas.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(
            order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
                const Replica &ra = _replicas[a];
                const Replica &rb = _replicas[b];
                if (ra.inFlight != rb.inFlight)
                    return ra.inFlight < rb.inFlight;
                return ra.assigned < rb.assigned;
            });
        for (std::size_t c = 0; c < nchunks; ++c) {
            Chunk &chunk = chunks[c];
            chunk.replica = order[c];
            Replica &r = _replicas[chunk.replica];
            r.inFlight += chunk.requests.size();
            r.assigned += chunk.requests.size();
            r.mDepth->set(static_cast<double>(r.inFlight));
            r.mRequests->inc(chunk.requests.size());
            r.mBatches->inc();
        }
    }

    // Phase 3: scatter. Extra chunks run on gather threads, the
    // first on the calling thread; exceptions are rethrown after
    // every chunk has been joined and accounted.
    std::vector<std::exception_ptr> errors(nchunks);
    const auto runChunk = [this, &control, &chunks,
                           &errors](std::size_t c) {
        try {
            serveChunk(chunks[c], control);
        } catch (...) {
            errors[c] = std::current_exception();
        }
        std::lock_guard lock(_mutex);
        Replica &r = _replicas[chunks[c].replica];
        r.inFlight -= chunks[c].requests.size();
        r.mDepth->set(static_cast<double>(r.inFlight));
    };
    {
        std::vector<std::thread> gatherers;
        gatherers.reserve(nchunks - 1);
        for (std::size_t c = 1; c < nchunks; ++c)
            gatherers.emplace_back(runChunk, c);
        runChunk(0);
        for (std::thread &t : gatherers)
            t.join();
    }
    for (std::exception_ptr &e : errors)
        if (e != nullptr)
            std::rethrow_exception(e);

    // Phase 4: gather in request order and populate the cache
    // under the epoch each chunk actually ran against. Partial
    // (deadline-truncated) answers are never cached.
    for (Chunk &chunk : chunks) {
        for (std::size_t j = 0; j < chunk.slots.size(); ++j) {
            const std::size_t slot = chunk.slots[j];
            Response &resp = chunk.responses[j];
            // Deadline-truncated answers — including a partial
            // traceback phase — are never cached.
            if (cached && !resp.deadlineExpired()) {
                ResultCache::Key key = keys[slot];
                std::uint64_t dig = digests[slot];
                if (key.epoch != chunk.epoch) {
                    key.epoch = chunk.epoch;
                    dig = ResultCache::digest(key);
                }
                auto result =
                    std::make_shared<ResultCache::Result>();
                result->hits = resp.hits;
                result->alignments = resp.alignments;
                result->cells = resp.cellsComputed;
                result->tracebackCells = resp.tracebackCells;
                result->sequences = resp.sequencesSearched;
                result->residues = resp.residuesScanned;
                _cache->insert(std::move(key), dig,
                               std::move(result));
            }
            out[slot] = std::move(resp);
        }
    }
    return out;
}

} // namespace bioarch::serve
