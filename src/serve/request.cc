#include "request.hh"

#include <algorithm>
#include <stdexcept>

#include "align/traceback/hirschberg.hh"
#include "bio/dna_workload.hh"
#include "bio/random.hh"

namespace bioarch::serve
{

PreparedQuery::PreparedQuery(const Request &request,
                             const bio::ScoringMatrix &matrix,
                             const bio::GapPenalties &gaps,
                             const align::FastaParams &fasta,
                             const align::BlastParams &blast,
                             align::SimdBackend backend,
                             const align::BlastnParams &blastn)
    : _kind(request.kind),
      _query(&request.query),
      _matrix(&matrix),
      _gaps(gaps),
      _fasta(fasta),
      _blast(blast),
      _blastn(blastn)
{
    // All three Smith-Waterman kinds rank by the exact SW score, so
    // any of them can be served by the native striped kernel; the
    // per-kind model profiles only exist for the Model backend.
    const bool native_sw = backend != align::SimdBackend::Model
        && (_kind == kernels::Workload::Ssearch34
            || _kind == kernels::Workload::SwVmx128
            || _kind == kernels::Workload::SwVmx256);
    if (native_sw) {
        _native = std::make_unique<align::NativeQueryProfile>(
            *_query, matrix, backend);
        return;
    }
    switch (_kind) {
    case kernels::Workload::Ssearch34:
        _profile =
            std::make_unique<align::QueryProfile>(*_query, matrix);
        break;
    case kernels::Workload::SwVmx128:
        _vmx128 = std::make_unique<align::VectorProfile<8>>(*_query,
                                                            matrix);
        break;
    case kernels::Workload::SwVmx256:
        _vmx256 = std::make_unique<align::VectorProfile<16>>(
            *_query, matrix);
        break;
    case kernels::Workload::Fasta34:
        _ktup = std::make_unique<align::KtupIndex>(*_query,
                                                   _fasta.ktup);
        break;
    case kernels::Workload::Blast:
        _neighborhood = std::make_unique<align::NeighborhoodIndex>(
            *_query, matrix, _blast);
        break;
    case kernels::Workload::Blastn:
        // The query rides in as a residue Sequence (bases 0..3);
        // blastn's word machinery wants the 2-bit packing.
        _dnaQuery = std::make_unique<bio::PackedDna>(
            bio::packDnaSequence(*_query));
        _dnaIndex = std::make_unique<align::DnaWordIndex>(
            *_dnaQuery, _blastn.wordSize);
        break;
    default:
        throw std::invalid_argument("unknown workload kind");
    }
}

align::LocalScore
PreparedQuery::scan(const bio::Sequence &subject,
                    std::uint64_t *cells,
                    align::NativeScanStats *stats) const
{
    align::LocalScore ls;
    if (_native)
        return align::swStripedNativeScan(*_native, subject, _gaps,
                                          cells, stats);
    switch (_kind) {
    case kernels::Workload::Ssearch34:
        return align::ssearchScan(*_profile, subject, _gaps, cells);
    case kernels::Workload::SwVmx128:
        return align::swSimdScan<8>(*_vmx128, subject, _gaps, cells);
    case kernels::Workload::SwVmx256:
        return align::swSimdScan<16>(*_vmx256, subject, _gaps,
                                     cells);
    case kernels::Workload::Fasta34: {
        const align::FastaScores fs = align::fastaScan(
            *_ktup, *_query, subject, *_matrix, _gaps, _fasta,
            cells);
        ls.score = std::max(fs.opt, fs.initn);
        return ls;
    }
    case kernels::Workload::Blast: {
        const align::BlastScores bs = align::blastScan(
            *_neighborhood, *_query, subject, *_matrix, _gaps,
            _blast, cells);
        ls.score = std::max(bs.score, 0);
        return ls;
    }
    case kernels::Workload::Blastn: {
        const align::BlastnScores bs = align::blastnScan(
            *_dnaIndex, *_dnaQuery, subject.residues().data(),
            subject.length(), _blastn, cells);
        ls.score = std::max(bs.score, 0);
        return ls;
    }
    default:
        return ls;
    }
}

align::CigarAlignment
PreparedQuery::traceback(const bio::Sequence &subject,
                         const align::SearchHit &hit,
                         align::TracebackStats *stats) const
{
    switch (_kind) {
    case kernels::Workload::Blast:
        return align::blastAlign(*_neighborhood, *_query, subject,
                                 *_matrix, _gaps, _blast, nullptr,
                                 -1, stats);
    case kernels::Workload::Blastn:
        return align::blastnAlign(*_dnaIndex, *_dnaQuery,
                                  subject.residues().data(),
                                  subject.length(), _blastn,
                                  nullptr, -1, stats);
    case kernels::Workload::Ssearch34:
    case kernels::Workload::SwVmx128:
    case kernels::Workload::SwVmx256:
        // The scan already found the optimal end cell; anchor
        // there and skip the forward end-pass.
        return align::hirschbergAlignAnchored(
            _query->residues().data(), _query->length(),
            subject.residues().data(), subject.length(),
            hit.queryEnd, hit.subjectEnd, *_matrix, _gaps, stats);
    default:
        // FASTA: the ranked endpoint belongs to the heuristic
        // band scan, not an exact SW argmax — run the full
        // three-pass optimal local alignment.
        return align::hirschbergAlign(*_query, subject, *_matrix,
                                      _gaps, stats);
    }
}

align::LocalScore
PreparedQuery::scanPacked(const bio::Residue *subject,
                          std::size_t n, std::uint64_t *cells,
                          align::NativeScanStats *stats) const
{
    return align::swStripedNativeScan(*_native, subject, n, _gaps,
                                      cells, stats);
}

void
PreparedQuery::scanPackedBatch(const align::SubjectSpan *subjects,
                               std::size_t count,
                               align::LocalScore *out,
                               std::uint64_t *cells,
                               align::NativeScanStats *stats) const
{
    align::swInterSequenceScan(*_native, subjects, count, _gaps,
                               out, cells, stats);
}

std::vector<Request>
makeRequestStream(const StreamSpec &spec,
                  const std::vector<bio::Sequence> &query_pool)
{
    if (query_pool.empty())
        throw std::invalid_argument(
            "makeRequestStream: empty query pool");
    if (spec.kinds.empty())
        throw std::invalid_argument(
            "makeRequestStream: empty workload mix");

    bio::Rng rng(spec.seed);
    std::vector<Request> stream;
    stream.reserve(spec.requests);
    for (std::size_t i = 0; i < spec.requests; ++i) {
        Request r;
        r.id = i;
        r.kind = spec.kinds[rng.below(spec.kinds.size())];
        r.query = query_pool[rng.below(query_pool.size())];
        r.topK = spec.topK;
        r.reportAlignments = spec.reportAlignments;
        stream.push_back(std::move(r));
    }
    return stream;
}

} // namespace bioarch::serve
