/**
 * @file
 * Query-serving request/response types, the per-request prepared
 * query state, and the deterministic synthetic request stream the
 * load generator replays.
 *
 * A request names one of the paper's five database-search
 * applications (Table I) and carries the query sequence to search;
 * the response is the ranked top-K hit list plus the work and
 * latency accounting for that request.
 */

#ifndef BIOARCH_SERVE_REQUEST_HH
#define BIOARCH_SERVE_REQUEST_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "align/blast.hh"
#include "align/blastn.hh"
#include "align/fasta.hh"
#include "align/ssearch.hh"
#include "align/sw_intersequence_native.hh"
#include "align/sw_simd.hh"
#include "align/sw_striped_native.hh"
#include "align/types.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "kernels/workload.hh"

namespace bioarch::serve
{

/** One alignment query submitted to the serving engine. */
struct Request
{
    std::uint64_t id = 0;
    /** Which application scans the database for this request. */
    kernels::Workload kind = kernels::Workload::Ssearch34;
    bio::Sequence query;
    /** Hits wanted; 0 falls back to the engine's configured top-K. */
    std::size_t topK = 0;
    /**
     * Tenant the request is billed to. Admission charges this
     * tenant's token bucket and dequeue is weighted-fair across
     * tenants (serve/loop.hh); tenants absent from the loop's
     * quota table get the default (unlimited) quota, so
     * single-tenant callers can ignore the field entirely.
     */
    std::uint32_t tenant = 0;
    /**
     * Two-phase serving switch: when set, the engine follows the
     * ranked score scan (phase 1, untouched) with a traceback pass
     * (phase 2) that emits a CIGAR alignment for each surviving
     * top-K hit. Ranked hits are bit-identical either way —
     * reporting only adds Response::alignments.
     */
    bool reportAlignments = false;
};

/** Ranked answer to one Request. */
struct Response
{
    std::uint64_t id = 0;
    kernels::Workload kind = kernels::Workload::Ssearch34;
    /** Top-K hits, ranked by (score desc, db index asc). */
    std::vector<align::SearchHit> hits;
    std::uint64_t cellsComputed = 0;
    std::uint64_t sequencesSearched = 0;
    /**
     * Residues aligned against across all shards: the whole
     * database on a full scan, only the index candidates on the
     * indexed route (how the serving tier proves its <= 20%
     * scanned-residue budget).
     */
    std::uint64_t residuesScanned = 0;
    /** Time the request spent queued behind earlier batches (us). */
    double queueUs = 0.0;
    /** Wall time of the batch that served the request (us). */
    double serviceUs = 0.0;
    /** Serial-equivalent scan work of this request's shards (us). */
    double scanUs = 0.0;
    /**
     * Shard scans cancelled because the request's deadline had
     * expired (see Engine::BatchControl). Non-zero means the hit
     * list is partial: the serving loop reports such responses
     * with a Deadline status.
     */
    std::uint64_t shardsSkipped = 0;
    /**
     * True when the ranked hits came out of the ReplicaRouter's
     * result cache instead of a database scan. The hits are
     * bit-identical either way (the cache stores full scan
     * results, keyed by epoch); the flag only explains the
     * microsecond-scale serviceUs.
     */
    bool fromCache = false;
    /**
     * Phase-2 alignments, index-aligned with hits. Empty unless
     * the request set reportAlignments; an element may itself be
     * empty when its traceback was deadline-skipped (counted in
     * tracebacksSkipped).
     */
    std::vector<align::CigarAlignment> alignments;
    /** DP cells evaluated by the traceback phase. */
    std::uint64_t tracebackCells = 0;
    /** Serial-equivalent traceback work of this request (us). */
    double tracebackUs = 0.0;
    /** Tracebacks cancelled because the deadline had expired. */
    std::uint64_t tracebacksSkipped = 0;

    /** True when any shard scan or traceback was
     * deadline-cancelled (the response is partial). */
    bool
    deadlineExpired() const
    {
        return shardsSkipped > 0 || tracebacksSkipped > 0;
    }

    /** End-to-end latency: arrival to ranked hit list (us). */
    double latencyUs() const { return queueUs + serviceUs; }
};

/**
 * The query state an application builds once per request and then
 * shares, read-only, across every shard scan: SSEARCH's query
 * profile, the SIMD vector profiles, FASTA's k-tuple index, or
 * BLAST's neighborhood word index.
 *
 * References the request's query sequence (and the scoring matrix);
 * both must outlive the prepared query.
 */
class PreparedQuery
{
  public:
    /**
     * @param backend kernel backend for the Smith-Waterman kinds
     *        (ssearch34 / sw_vmx*): any native backend routes their
     *        scans through the striped native kernel; Model keeps
     *        the instruction-accurate model kernels. The heuristics
     *        (FASTA, BLAST) are unaffected.
     */
    PreparedQuery(const Request &request,
                  const bio::ScoringMatrix &matrix,
                  const bio::GapPenalties &gaps,
                  const align::FastaParams &fasta,
                  const align::BlastParams &blast,
                  align::SimdBackend backend =
                      align::defaultScanBackend(),
                  const align::BlastnParams &blastn = {});

    kernels::Workload kind() const { return _kind; }
    const bio::Sequence &query() const { return *_query; }

    /** True when scans go through the native striped kernel. */
    bool usesNativeScan() const { return _native != nullptr; }

    /**
     * BLAST's query-side neighborhood word index (nullptr for
     * every other kind) — the query half the seed-index probe
     * joins against (index/seed_index.hh).
     */
    const align::NeighborhoodIndex *neighborhoodIndex() const
    {
        return _neighborhood.get();
    }

    /** The BLAST parameters this query was prepared with. */
    const align::BlastParams &blastParams() const
    {
        return _blast;
    }

    /**
     * Scan one subject sequence. The reported score matches what
     * the corresponding *Search driver ranks by (SW score for the
     * Smith-Waterman kinds, max(opt, initn) for FASTA, the gapped
     * score for BLAST); the heuristics leave the end coordinates
     * at -1, as their drivers do.
     *
     * @param[out] stats optional native overflow-ladder accounting
     *        (u8 scans / i16 / scalar rescans); untouched on the
     *        model and heuristic paths
     */
    align::LocalScore
    scan(const bio::Sequence &subject, std::uint64_t *cells,
         align::NativeScanStats *stats = nullptr) const;

    /**
     * Scan @p n residues in contiguous storage (the database's
     * packed arena). Only valid when usesNativeScan().
     */
    align::LocalScore
    scanPacked(const bio::Residue *subject, std::size_t n,
               std::uint64_t *cells,
               align::NativeScanStats *stats = nullptr) const;

    /**
     * Scan a whole batch of packed-arena subjects with the
     * inter-sequence kernel (one subject per SIMD lane), writing
     * one LocalScore per subject in the caller's order. Results are
     * bit-identical to scanPacked per subject — the shard scan
     * routes short subjects here and long ones through scanPacked
     * purely as a throughput decision. Only valid when
     * usesNativeScan().
     */
    void
    scanPackedBatch(const align::SubjectSpan *subjects,
                    std::size_t count, align::LocalScore *out,
                    std::uint64_t *cells,
                    align::NativeScanStats *stats = nullptr) const;

    /**
     * Phase-2 traceback of one ranked subject: the CIGAR alignment
     * behind @p hit. The Smith-Waterman kinds run the linear-space
     * Hirschberg traceback anchored at the endpoint the score scan
     * already reported — the forward end-pass is skipped and the
     * score stays bit-identical to the ranked SW score (the anchor
     * is an argmax cell of the same matrix). BLAST and BLASTN
     * rerun their word scan and trace the banded gapped extension
     * with the X-drop disabled (score bit-identical to their
     * ranked gapped score). FASTA ranks by the heuristic
     * max(opt, initn) but reports the optimal local alignment, so
     * its alignment score may exceed the ranked score; the CIGAR
     * still replays to exactly the alignment's own score. Never
     * allocates a full DP matrix.
     */
    align::CigarAlignment
    traceback(const bio::Sequence &subject,
              const align::SearchHit &hit,
              align::TracebackStats *stats = nullptr) const;

  private:
    kernels::Workload _kind;
    const bio::Sequence *_query;
    const bio::ScoringMatrix *_matrix;
    bio::GapPenalties _gaps;
    align::FastaParams _fasta;
    align::BlastParams _blast;
    align::BlastnParams _blastn;

    // Exactly one of these is built, depending on _kind (and, for
    // the Smith-Waterman kinds, on the backend).
    std::unique_ptr<align::NativeQueryProfile> _native;
    std::unique_ptr<align::QueryProfile> _profile;
    std::unique_ptr<align::VectorProfile<8>> _vmx128;
    std::unique_ptr<align::VectorProfile<16>> _vmx256;
    std::unique_ptr<align::KtupIndex> _ktup;
    std::unique_ptr<align::NeighborhoodIndex> _neighborhood;
    // Blastn: the query re-packed to 2 bits plus its word index.
    std::unique_ptr<bio::PackedDna> _dnaQuery;
    std::unique_ptr<align::DnaWordIndex> _dnaIndex;
};

/** Knobs of the deterministic synthetic request stream. */
struct StreamSpec
{
    std::size_t requests = 64;
    /** Per-request top-K (0 = engine default). */
    std::size_t topK = 0;
    /** Ask for phase-2 CIGAR reporting on every request. Does not
     * consume RNG draws, so the (kind, query) stream is identical
     * with reporting on or off. */
    bool reportAlignments = false;
    /** RNG seed; fixed default for reproducible replays. */
    std::uint64_t seed = 0x5EedF00d;
    /** Application mix; each request draws uniformly from these. */
    std::vector<kernels::Workload> kinds = {
        kernels::Workload::Ssearch34, kernels::Workload::SwVmx128,
        kernels::Workload::SwVmx256, kernels::Workload::Fasta34,
        kernels::Workload::Blast};
};

/**
 * Build a deterministic request stream: request i draws its query
 * from @p query_pool and its application from spec.kinds, both via
 * a bio::Rng seeded with spec.seed (same spec + pool => identical
 * stream on every platform).
 */
std::vector<Request>
makeRequestStream(const StreamSpec &spec,
                  const std::vector<bio::Sequence> &query_pool);

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_REQUEST_HH
