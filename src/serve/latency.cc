#include "latency.hh"

namespace bioarch::serve
{

LatencySummary
LatencyRecorder::summary() const
{
    const obs::HistogramSummary s = _histogram.summary();
    LatencySummary out;
    out.count = s.count;
    out.meanUs = s.mean;
    out.p50Us = s.p50;
    out.p95Us = s.p95;
    out.p99Us = s.p99;
    out.maxUs = s.max;
    return out;
}

std::vector<LatencyBucket>
LatencyRecorder::histogram() const
{
    const auto counts = _histogram.bucketCounts();
    int lo = -1;
    int hi = -1;
    for (int i = 0; i < obs::Histogram::numBuckets; ++i) {
        if (counts[static_cast<std::size_t>(i)] == 0)
            continue;
        if (lo < 0)
            lo = i;
        hi = i;
    }
    if (lo < 0)
        return {};

    // Bucket edges are read from the precomputed bounds table:
    // bucket i spans [bounds[i-1], bounds[i]), with bucket 0
    // starting at 0 (it also collects sub-microsecond samples).
    const auto &bounds = obs::Histogram::bucketBounds();
    std::vector<LatencyBucket> buckets(
        static_cast<std::size_t>(hi - lo + 1));
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const int b = lo + static_cast<int>(i);
        buckets[i].loUs =
            b == 0 ? 0.0 : bounds[static_cast<std::size_t>(b - 1)];
        buckets[i].hiUs = bounds[static_cast<std::size_t>(b)];
        buckets[i].count = counts[static_cast<std::size_t>(b)];
    }
    return buckets;
}

} // namespace bioarch::serve
