#include "latency.hh"

#include <algorithm>
#include <cmath>

#include "core/percentile.hh"

namespace bioarch::serve
{

LatencySummary
LatencyRecorder::summary() const
{
    LatencySummary s;
    s.count = _samplesUs.size();
    if (_samplesUs.empty())
        return s;
    double sum = 0.0;
    double max = _samplesUs.front();
    for (const double v : _samplesUs) {
        sum += v;
        max = std::max(max, v);
    }
    s.meanUs = sum / static_cast<double>(s.count);
    s.maxUs = max;
    s.p50Us = core::percentile(_samplesUs, 50.0);
    s.p95Us = core::percentile(_samplesUs, 95.0);
    s.p99Us = core::percentile(_samplesUs, 99.0);
    return s;
}

std::vector<LatencyBucket>
LatencyRecorder::histogram() const
{
    if (_samplesUs.empty())
        return {};

    auto bucketOf = [](double us) {
        if (us < 1.0)
            return 0;
        return static_cast<int>(std::floor(std::log2(us)));
    };

    int lo = bucketOf(_samplesUs.front());
    int hi = lo;
    for (const double v : _samplesUs) {
        lo = std::min(lo, bucketOf(v));
        hi = std::max(hi, bucketOf(v));
    }

    std::vector<LatencyBucket> buckets(
        static_cast<std::size_t>(hi - lo + 1));
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const int b = lo + static_cast<int>(i);
        buckets[i].loUs = std::exp2(b);
        buckets[i].hiUs = std::exp2(b + 1);
        buckets[i].count = 0;
    }
    // The first bucket also collects sub-microsecond samples.
    buckets.front().loUs = lo == 0 ? 0.0 : buckets.front().loUs;
    for (const double v : _samplesUs)
        buckets[static_cast<std::size_t>(bucketOf(v) - lo)].count++;
    return buckets;
}

} // namespace bioarch::serve
