/**
 * @file
 * Bounded top-K hit ranking with a total, deterministic order.
 *
 * The library's *Search drivers sort with an unstable comparator on
 * the score alone; the serving engine needs a *total* order so the
 * ranked list is bit-for-bit identical regardless of shard count,
 * batch size, or worker count. Ties are broken on the database
 * index: (score desc, dbIndex asc).
 */

#ifndef BIOARCH_SERVE_HIT_LIST_HH
#define BIOARCH_SERVE_HIT_LIST_HH

#include <cstddef>
#include <vector>

#include "align/types.hh"

namespace bioarch::serve
{

/** Strict total ranking order: a ranks before (above) b. */
inline bool
hitRanksBefore(const align::SearchHit &a, const align::SearchHit &b)
{
    if (a.score != b.score)
        return a.score > b.score;
    return a.dbIndex < b.dbIndex;
}

/**
 * A bounded min-heap keeping the K best hits seen so far under
 * hitRanksBefore(). Each shard scan feeds one heap, so a scan over
 * an N-sequence shard costs O(N log K) and O(K) memory however many
 * hits score above zero.
 */
class TopKHeap
{
  public:
    explicit TopKHeap(std::size_t k) : _k(k) {}

    std::size_t k() const { return _k; }
    std::size_t size() const { return _heap.size(); }

    /** Offer one hit; kept only if it ranks in the current top K. */
    void consider(const align::SearchHit &hit);

    /** The kept hits, best first. */
    std::vector<align::SearchHit> ranked() const;

  private:
    std::size_t _k;
    /** Max-heap under hitRanksBefore: the *worst* kept hit on top. */
    std::vector<align::SearchHit> _heap;
};

/**
 * Merge per-shard ranked lists into the global top @p k. Because
 * every global top-K hit is necessarily in its own shard's top K,
 * merging the per-shard lists loses nothing; the result is exactly
 * the top K of a serial scan of the whole database.
 */
std::vector<align::SearchHit>
mergeRanked(const std::vector<std::vector<align::SearchHit>> &lists,
            std::size_t k);

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_HIT_LIST_HH
