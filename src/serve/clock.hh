/**
 * @file
 * Time source for the online serving loop. The loop never reads
 * the wall clock directly: everything — arrival stamps, queue
 * waits, deadline checks down to shard-scan granularity — goes
 * through a Clock, so the deterministic tests can drive a
 * ManualClock while production uses SteadyClock. This is what
 * keeps the loop's admission/deadline decisions bit-for-bit
 * reproducible: with a ManualClock, time only moves when the test
 * says so.
 */

#ifndef BIOARCH_SERVE_CLOCK_HH
#define BIOARCH_SERVE_CLOCK_HH

#include <atomic>
#include <chrono>

namespace bioarch::serve
{

/** Abstract monotone microsecond clock. */
class Clock
{
  public:
    virtual ~Clock() = default;
    /** Microseconds since an arbitrary fixed epoch. */
    virtual double nowUs() const = 0;
};

/** Wall time: std::chrono::steady_clock since construction. */
class SteadyClock final : public Clock
{
  public:
    SteadyClock() : _epoch(std::chrono::steady_clock::now()) {}

    double
    nowUs() const override
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - _epoch)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _epoch;
};

/**
 * Test clock: time is whatever the driver last set, and advances
 * only on request. Thread-safe; never consults the wall clock.
 */
class ManualClock final : public Clock
{
  public:
    double
    nowUs() const override
    {
        return _nowUs.load(std::memory_order_relaxed);
    }
    void
    set(double us)
    {
        _nowUs.store(us, std::memory_order_relaxed);
    }
    void
    advance(double us)
    {
        // fetch_add on atomic<double> (C++20).
        _nowUs.fetch_add(us, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> _nowUs{0.0};
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_CLOCK_HH
