/**
 * @file
 * Database sharding for the serving engine: a SequenceDatabase cut
 * into contiguous, residue-balanced shards, and the per-shard scan
 * that produces a ranked top-K hit list.
 *
 * Sharding follows the SWAPHI/mpiBLAST shape — partition the
 * database, dispatch chunks to workers, merge ranked results — but
 * the cut points are chosen on the residue *prefix sums*, so the
 * layout depends only on (database, shard count), never on worker
 * timing. Hit scores and E-values are computed against the *whole*
 * database's residue total, so a hit's statistics are identical
 * whichever shard it lands in.
 */

#ifndef BIOARCH_SERVE_SHARD_HH
#define BIOARCH_SERVE_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/karlin.hh"
#include "bio/database.hh"
#include "hit_list.hh"
#include "index/seed_index.hh"
#include "request.hh"

namespace bioarch::serve
{

/** One contiguous slice [begin, end) of the database. */
struct Shard
{
    std::size_t index = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t residues = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return end == begin; }
};

/**
 * A SequenceDatabase partitioned into contiguous shards whose
 * boundaries balance residue counts (DP cost is proportional to
 * residues, not sequence count). Shards may be empty when the
 * database has fewer sequences than shards. The database must
 * outlive the partition.
 */
class ShardedDatabase
{
  public:
    /** Partition @p db into @p num_shards slices (clamped >= 1). */
    ShardedDatabase(const bio::SequenceDatabase &db,
                    std::size_t num_shards);

    const bio::SequenceDatabase &db() const { return *_db; }
    std::size_t numShards() const { return _shards.size(); }
    const Shard &shard(std::size_t i) const { return _shards[i]; }
    const std::vector<Shard> &shards() const { return _shards; }

  private:
    const bio::SequenceDatabase *_db;
    std::vector<Shard> _shards;
};

/**
 * How scanShard routes its work: the kernel cutover knob plus the
 * optional indexed BLAST route. Everything here is a throughput
 * decision — every route produces bit-identical ranked hits (the
 * index probe's candidate set provably contains every sequence
 * whose score could exceed 0; see index/seed_index.hh).
 */
struct ScanRoute
{
    /** Inter-sequence/striped kernel cutover (native SW kinds). */
    std::size_t interseqCutover = align::interSequenceCutover();
    /**
     * This request's whole-database seed-index candidate list
     * (ascending db index), or nullptr for a full scan. The engine
     * probes once per distinct request — the probe cost is
     * independent of the shard count — and every shard task
     * rescans only the candidates inside its [begin, end) slice.
     * Only ever set for Blast-kind requests that passed the
     * selectivity gate (EngineConfig::indexMaxSelectivity).
     */
    const std::vector<std::uint32_t> *indexCandidates = nullptr;
};

/** What one (request, shard) scan task produces. */
struct ShardScan
{
    /** The shard's top-K hits, ranked by (score desc, index asc). */
    std::vector<align::SearchHit> hits;
    std::uint64_t cells = 0;
    std::uint64_t sequences = 0;
    /**
     * Residues actually aligned against: the shard's residue total
     * on a full scan, the candidates' total on the indexed route
     * (the measured numerator of the <= 20% acceptance gate).
     */
    std::uint64_t residues = 0;
    /**
     * True when the index probe found no candidates, so the shard
     * contributed nothing without any alignment work. Reported
     * into serve_shards_skipped_total but NOT into
     * Response::shardsSkipped — the response is complete, unlike a
     * deadline skip.
     */
    bool prefilterSkipped = false;
    /**
     * Hits whose Karlin statistics (bit score / E-value) were
     * filled lazily — i.e. heap survivors; everything below the
     * top-K never pays for them.
     */
    std::uint64_t karlinFills = 0;
    /** Native overflow-ladder accounting (zero on model paths). */
    align::NativeScanStats native;
    /** Wall time of the scan (filled in by the engine). */
    double elapsedUs = 0.0;
    /**
     * True when the request's deadline had already expired when
     * this task ran, so the shard was never scanned (cancellation
     * at shard-scan granularity; see Engine::BatchControl).
     */
    bool skipped = false;
};

/**
 * Scan one shard for one prepared query, keeping the shard's top
 * @p top_k hits. Bit scores and E-values use @p karlin with the
 * query length and @p total_residues (the whole database), matching
 * the library's *Search drivers.
 *
 * On the native (packed-arena) path, subjects shorter than
 * route.interseqCutover are scanned in batch by the inter-sequence
 * kernel and the rest by the striped kernel; batches too small to
 * keep the lanes busy fall back to striped (occupancy floor).
 * When route.indexCandidates is set, only the candidates inside
 * the shard are rescored. All routes produce bit-identical hits,
 * so the route is purely a throughput knob.
 */
ShardScan scanShard(const PreparedQuery &query,
                    const bio::SequenceDatabase &db,
                    const Shard &shard, std::size_t top_k,
                    const align::KarlinParams &karlin,
                    double total_residues,
                    const ScanRoute &route = {});

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_SHARD_HH
