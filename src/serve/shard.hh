/**
 * @file
 * Database sharding for the serving engine: a SequenceDatabase cut
 * into contiguous, residue-balanced shards, and the per-shard scan
 * that produces a ranked top-K hit list.
 *
 * Sharding follows the SWAPHI/mpiBLAST shape — partition the
 * database, dispatch chunks to workers, merge ranked results — but
 * the cut points are chosen on the residue *prefix sums*, so the
 * layout depends only on (database, shard count), never on worker
 * timing. Hit scores and E-values are computed against the *whole*
 * database's residue total, so a hit's statistics are identical
 * whichever shard it lands in.
 */

#ifndef BIOARCH_SERVE_SHARD_HH
#define BIOARCH_SERVE_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/karlin.hh"
#include "bio/database.hh"
#include "hit_list.hh"
#include "request.hh"

namespace bioarch::serve
{

/** One contiguous slice [begin, end) of the database. */
struct Shard
{
    std::size_t index = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t residues = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return end == begin; }
};

/**
 * A SequenceDatabase partitioned into contiguous shards whose
 * boundaries balance residue counts (DP cost is proportional to
 * residues, not sequence count). Shards may be empty when the
 * database has fewer sequences than shards. The database must
 * outlive the partition.
 */
class ShardedDatabase
{
  public:
    /** Partition @p db into @p num_shards slices (clamped >= 1). */
    ShardedDatabase(const bio::SequenceDatabase &db,
                    std::size_t num_shards);

    const bio::SequenceDatabase &db() const { return *_db; }
    std::size_t numShards() const { return _shards.size(); }
    const Shard &shard(std::size_t i) const { return _shards[i]; }
    const std::vector<Shard> &shards() const { return _shards; }

  private:
    const bio::SequenceDatabase *_db;
    std::vector<Shard> _shards;
};

/** What one (request, shard) scan task produces. */
struct ShardScan
{
    /** The shard's top-K hits, ranked by (score desc, index asc). */
    std::vector<align::SearchHit> hits;
    std::uint64_t cells = 0;
    std::uint64_t sequences = 0;
    /**
     * Hits whose Karlin statistics (bit score / E-value) were
     * filled lazily — i.e. heap survivors; everything below the
     * top-K never pays for them.
     */
    std::uint64_t karlinFills = 0;
    /** Native overflow-ladder accounting (zero on model paths). */
    align::NativeScanStats native;
    /** Wall time of the scan (filled in by the engine). */
    double elapsedUs = 0.0;
    /**
     * True when the request's deadline had already expired when
     * this task ran, so the shard was never scanned (cancellation
     * at shard-scan granularity; see Engine::BatchControl).
     */
    bool skipped = false;
};

/**
 * Scan one shard for one prepared query, keeping the shard's top
 * @p top_k hits. Bit scores and E-values use @p karlin with the
 * query length and @p total_residues (the whole database), matching
 * the library's *Search drivers.
 *
 * On the native (packed-arena) path, subjects shorter than
 * @p interseq_cutover are scanned in batch by the inter-sequence
 * kernel and the rest by the striped kernel; batches too small to
 * keep the lanes busy fall back to striped (occupancy floor). All
 * routes produce bit-identical hits, so the cutover is purely a
 * throughput knob (EngineConfig::interseqCutover; 0 keeps
 * everything striped).
 */
ShardScan scanShard(const PreparedQuery &query,
                    const bio::SequenceDatabase &db,
                    const Shard &shard, std::size_t top_k,
                    const align::KarlinParams &karlin,
                    double total_residues,
                    std::size_t interseq_cutover =
                        align::interSequenceCutover());

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_SHARD_HH
