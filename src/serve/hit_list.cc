#include "hit_list.hh"

#include <algorithm>

namespace bioarch::serve
{

namespace
{

/**
 * Heap comparator: with std::push_heap's "less-than" semantics,
 * ordering by rank puts the element that ranks *last* on top, which
 * is exactly the eviction candidate.
 */
bool
heapLess(const align::SearchHit &a, const align::SearchHit &b)
{
    return hitRanksBefore(a, b);
}

} // namespace

void
TopKHeap::consider(const align::SearchHit &hit)
{
    if (_k == 0)
        return;
    if (_heap.size() < _k) {
        _heap.push_back(hit);
        std::push_heap(_heap.begin(), _heap.end(), heapLess);
        return;
    }
    if (!hitRanksBefore(hit, _heap.front()))
        return;
    std::pop_heap(_heap.begin(), _heap.end(), heapLess);
    _heap.back() = hit;
    std::push_heap(_heap.begin(), _heap.end(), heapLess);
}

std::vector<align::SearchHit>
TopKHeap::ranked() const
{
    std::vector<align::SearchHit> out = _heap;
    std::sort(out.begin(), out.end(), hitRanksBefore);
    return out;
}

std::vector<align::SearchHit>
mergeRanked(const std::vector<std::vector<align::SearchHit>> &lists,
            std::size_t k)
{
    std::vector<align::SearchHit> merged;
    std::size_t total = 0;
    for (const std::vector<align::SearchHit> &list : lists)
        total += list.size();
    merged.reserve(total);
    for (const std::vector<align::SearchHit> &list : lists)
        merged.insert(merged.end(), list.begin(), list.end());
    std::sort(merged.begin(), merged.end(), hitRanksBefore);
    if (merged.size() > k)
        merged.resize(k);
    return merged;
}

} // namespace bioarch::serve
