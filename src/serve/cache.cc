#include "cache.hh"

#include <utility>

#include "core/digest.hh"

namespace bioarch::serve
{

namespace
{

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

std::uint64_t
ResultCache::digest(const Key &key)
{
    core::Fnv1a fnv;
    fnv.update64(key.kind);
    fnv.update64(key.backend);
    fnv.update64(key.topK);
    fnv.update64(key.report);
    fnv.update64(key.epoch);
    fnv.update64(key.query.size());
    if (!key.query.empty())
        fnv.update(key.query.data(), key.query.size());
    return fnv.digest();
}

std::size_t
ResultCache::entryBytes(const Key &key, const Result &result)
{
    std::size_t bytes = sizeof(Entry)
        + key.query.size() * sizeof(bio::Residue) + sizeof(Result)
        + result.hits.size() * sizeof(align::SearchHit)
        + result.alignments.size()
            * sizeof(align::CigarAlignment);
    for (const align::CigarAlignment &aln : result.alignments)
        bytes += aln.cigar.size() * sizeof(align::CigarOp);
    return bytes;
}

ResultCache::ResultCache(const CacheConfig &config,
                         obs::Registry &metrics)
    : _capacityBytes(config.capacityBytes),
      _mHits(&metrics.counter("serve_cache_hits_total")),
      _mMisses(&metrics.counter("serve_cache_misses_total")),
      _mEvictions(&metrics.counter("serve_cache_evictions_total")),
      _mInserts(&metrics.counter("serve_cache_inserts_total")),
      _mBytes(&metrics.gauge("serve_cache_bytes")),
      _mEntries(&metrics.gauge("serve_cache_entries"))
{
    const std::size_t n =
        roundUpPow2(config.shards == 0 ? 1 : config.shards);
    _shards.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        _shards.push_back(std::make_unique<Shard>());
    _shardMask = n - 1;
    // Per-shard budget; ceil so the sum covers capacityBytes.
    _shardCapacity = (_capacityBytes + n - 1) / n;
}

ResultCache::Shard &
ResultCache::shardFor(std::uint64_t key_digest)
{
    return *_shards[static_cast<std::size_t>(key_digest)
                    & _shardMask];
}

std::shared_ptr<const ResultCache::Result>
ResultCache::lookup(const Key &key, std::uint64_t key_digest)
{
    if (!enabled())
        return nullptr;
    Shard &shard = shardFor(key_digest);
    {
        std::lock_guard lock(shard.mutex);
        auto [it, end] = shard.index.equal_range(key_digest);
        for (; it != end; ++it) {
            if (!(it->second->key == key))
                continue; // digest collision: keep scanning
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second);
            _mHits->inc();
            return it->second->result;
        }
    }
    _mMisses->inc();
    return nullptr;
}

void
ResultCache::evictLocked(Shard &shard, std::size_t needed)
{
    while (!shard.lru.empty()
           && shard.bytes + needed > _shardCapacity) {
        const Entry &victim = shard.lru.back();
        auto [it, end] = shard.index.equal_range(victim.digest);
        for (; it != end; ++it) {
            if (it->second == std::prev(shard.lru.end())) {
                shard.index.erase(it);
                break;
            }
        }
        shard.bytes -= victim.bytes;
        _bytes.fetch_sub(victim.bytes, std::memory_order_relaxed);
        _entries.fetch_sub(1, std::memory_order_relaxed);
        shard.lru.pop_back();
        _mEvictions->inc();
    }
}

void
ResultCache::insert(Key key, std::uint64_t key_digest,
                    std::shared_ptr<const Result> result)
{
    if (!enabled() || !result)
        return;
    const std::size_t size = entryBytes(key, *result);
    if (size > _shardCapacity)
        return; // would evict the whole shard and still not fit
    Shard &shard = shardFor(key_digest);
    {
        std::lock_guard lock(shard.mutex);
        // Replace in place if present (last write wins).
        auto [it, end] = shard.index.equal_range(key_digest);
        for (; it != end; ++it) {
            if (!(it->second->key == key))
                continue;
            Entry &entry = *it->second;
            shard.bytes -= entry.bytes;
            _bytes.fetch_sub(entry.bytes,
                             std::memory_order_relaxed);
            entry.result = std::move(result);
            entry.bytes = size;
            shard.bytes += size;
            _bytes.fetch_add(size, std::memory_order_relaxed);
            // Front position first so eviction (from the tail)
            // can never free the entry we are replacing.
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             it->second);
            evictLocked(shard, 0);
            _mInserts->inc();
            publishGauges();
            return;
        }
        evictLocked(shard, size);
        shard.lru.push_front(Entry{std::move(key), key_digest,
                                   std::move(result), size});
        shard.index.emplace(key_digest, shard.lru.begin());
        shard.bytes += size;
        _bytes.fetch_add(size, std::memory_order_relaxed);
        _entries.fetch_add(1, std::memory_order_relaxed);
        _mInserts->inc();
    }
    publishGauges();
}

void
ResultCache::publishGauges()
{
    _mBytes->set(static_cast<double>(
        _bytes.load(std::memory_order_relaxed)));
    _mEntries->set(static_cast<double>(
        _entries.load(std::memory_order_relaxed)));
}

} // namespace bioarch::serve
