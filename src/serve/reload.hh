/**
 * @file
 * Epoch-based hot reload for the serving tier: a BatchServer that
 * delegates to the Engine of the *current* database epoch and can
 * swap epochs while a ServeLoop keeps dispatching.
 *
 * How the swap stays safe and invisible:
 *  - Each epoch is bound to its own Engine (engines are cheap
 *    relative to a database generation: a thread pool + shard
 *    layout). The binding is published as a shared_ptr; serveBatch
 *    grabs a reference under a short lock, so an in-flight batch
 *    keeps its epoch — database, index, and engine — alive until
 *    it finishes, no matter how many reloads land meanwhile.
 *  - Every per-epoch engine reports into ONE shared registry, so
 *    counters stay monotone across reloads and the loop's
 *    served+shed+deadline_expired+dropped == offered identity
 *    holds through a swap (asserted by tests/index_test.cc and
 *    bench_serve_throughput's hot-reload segment).
 *  - The db_epoch gauge tracks the published epoch number.
 */

#ifndef BIOARCH_SERVE_RELOAD_HH
#define BIOARCH_SERVE_RELOAD_HH

#include <cstdint>
#include <memory>
#include <mutex>

#include "batch_server.hh"
#include "engine.hh"
#include "index/epoch.hh"

namespace bioarch::serve
{

/**
 * BatchServer over a reloadable database epoch. reload() may be
 * called from any thread while another thread is serving;
 * serveBatch itself follows the one-dispatcher-at-a-time contract.
 */
class ReloadableEngine final : public BatchServer
{
  public:
    /**
     * Serve @p epoch with @p config. config.metrics (when null, an
     * internally owned registry) is shared by the engines of every
     * later epoch; config.seedIndex is overridden per epoch by the
     * epoch's own index.
     */
    explicit ReloadableEngine(
        std::shared_ptr<const index::DbEpoch> epoch,
        EngineConfig config = {});

    /** Publish @p epoch; in-flight batches finish on their own. */
    void reload(std::shared_ptr<const index::DbEpoch> epoch);

    /** The currently published epoch. */
    std::shared_ptr<const index::DbEpoch> epoch() const;
    std::uint64_t epochNumber() const;

    /** Normalized engine knobs (jobs/shards/batch) of epoch 0. */
    const EngineConfig &config() const { return _cfg; }

    std::vector<Response>
    serveBatch(const std::vector<Request> &requests,
               const BatchControl &control) override;

    /**
     * serveBatch that additionally reports, via @p epochOut (may
     * be null), the epoch number the batch actually ran against.
     * The ReplicaRouter needs this so result-cache inserts are
     * keyed by the epoch that produced the hits, not the epoch
     * that happened to be published when the insert ran.
     */
    std::vector<Response>
    serveBatchPinned(const std::vector<Request> &requests,
                     const BatchControl &control,
                     std::uint64_t *epochOut);

    obs::Registry &metrics() override { return *_metrics; }
    std::size_t defaultBatch() const override;
    void refreshPoolMetrics() override;

  private:
    /** One epoch bound to its engine; published atomically. */
    struct Bound
    {
        std::shared_ptr<const index::DbEpoch> epoch;
        std::unique_ptr<Engine> engine;
    };

    std::shared_ptr<const Bound>
    bind(std::shared_ptr<const index::DbEpoch> epoch) const;
    std::shared_ptr<const Bound> current() const;

    EngineConfig _cfg;
    std::unique_ptr<obs::Registry> _ownedMetrics;
    obs::Registry *_metrics;
    obs::Gauge *_mEpoch;

    mutable std::mutex _mutex;
    std::shared_ptr<const Bound> _bound;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_RELOAD_HH
