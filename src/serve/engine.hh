/**
 * @file
 * The batched query-serving engine: accepts a stream of alignment
 * requests, groups them into batches, fans (request x shard) scan
 * tasks across a core::ThreadPool, merges per-shard top-K heaps
 * into one ranked hit list per request, and records per-request
 * latency plus engine-level throughput.
 *
 * Determinism contract (asserted by tests/serve_test.cc): the
 * ranked hit list of a request — ids, scores, bit scores, E-values
 * — is bit-for-bit identical regardless of shard count, batch
 * size, or worker count, and equal to a serial scan of the whole
 * database under the (score desc, db index asc) order. The
 * schedule only decides *when* a scan runs, never *what* it
 * computes: every task writes to a preallocated (request, shard)
 * slot and the merge walks those slots in submission order.
 */

#ifndef BIOARCH_SERVE_ENGINE_HH
#define BIOARCH_SERVE_ENGINE_HH

#include <cstddef>
#include <vector>

#include <memory>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/karlin.hh"
#include "batch_server.hh"
#include "bio/database.hh"
#include "bio/scoring.hh"
#include "clock.hh"
#include "core/thread_pool.hh"
#include "index/seed_index.hh"
#include "latency.hh"
#include "obs/metrics.hh"
#include "request.hh"
#include "shard.hh"

namespace bioarch::serve
{

/** Engine tunables. */
struct EngineConfig
{
    /** Worker threads (BIOARCH_JOBS / hardware default). */
    unsigned jobs = core::ThreadPool::defaultJobs();
    /** Database shards scanned as independent tasks. */
    std::size_t shards = 4;
    /** Requests grouped per batch by serveStream(). */
    std::size_t batch = 8;
    /** Default hits per response (requests may override). */
    std::size_t topK = 10;
    /**
     * Kernel backend for the Smith-Waterman request kinds: a native
     * SIMD backend (the default; see align::defaultScanBackend and
     * the BIOARCH_SIMD_BACKEND environment variable) or
     * SimdBackend::Model for the instruction-accurate model
     * kernels.
     */
    align::SimdBackend backend = align::defaultScanBackend();
    /**
     * Native-path kernel heuristic: subjects strictly shorter than
     * this go to the inter-sequence kernel (one subject per SIMD
     * lane), the rest to the striped kernel. Hit lists are
     * bit-identical either way; 0 keeps everything striped. The
     * default follows BIOARCH_INTERSEQ_CUTOVER when set.
     */
    std::size_t interseqCutover = align::interSequenceCutover();
    bio::GapPenalties gaps;
    align::FastaParams fasta;
    align::BlastParams blast;
    /**
     * Parameters of the served nucleotide kind
     * (Workload::Blastn). Blastn requests rank by the raw gapped
     * score; the Karlin bit scores / E-values attached to their
     * hits use the engine's protein statistics and are nominal
     * (deterministic, but not blastn's own lambda/K).
     */
    align::BlastnParams blastn;
    /**
     * Database-side seed index for the indexed BLAST serving
     * route (nullptr = every scan is a full scan). Must outlive
     * the engine and must have been built over exactly the served
     * database; word size must match blast.wordSize or the index
     * is ignored. See ScanRoute (shard.hh) for the route itself.
     */
    const index::SeedIndex *seedIndex = nullptr;
    /**
     * Selectivity gate of the indexed route: when a request's
     * probe marks more than this fraction of the database's
     * sequences as candidates, the request falls back to the full
     * scan (the index would not pay for itself). The probe runs
     * once per distinct request, before the shard fan-out. See
     * ScanRoute.
     */
    double indexMaxSelectivity = 0.2;
    /**
     * Metrics registry the engine reports into. nullptr (default)
     * makes the engine own a private registry; the serving loop
     * passes the engine's registry around so loop + engine + pool
     * metrics land in one snapshot. Must outlive the engine when
     * non-null.
     */
    obs::Registry *metrics = nullptr;
};

/** Engine-level accounting for one served stream. */
struct StreamReport
{
    std::vector<Response> responses; ///< in request order
    unsigned jobs = 1;
    std::size_t shards = 1;
    std::size_t batchSize = 1;
    std::size_t batches = 0;
    /** End-to-end wall clock of the stream (ms). */
    double wallMs = 0.0;
    /** Serial-equivalent scan work: sum of shard-scan times (ms). */
    double cpuMs = 0.0;
    std::uint64_t totalCells = 0;
    /** Per-request end-to-end latencies. */
    LatencyRecorder latency;

    double
    requestsPerSec() const
    {
        return wallMs <= 0.0
            ? 0.0
            : 1000.0 * static_cast<double>(responses.size())
                / wallMs;
    }
    /** cpuMs / (wallMs * jobs): 1.0 = perfect scan scaling. */
    double
    parallelEfficiency() const
    {
        return wallMs <= 0.0 || jobs == 0
            ? 0.0
            : cpuMs / (wallMs * static_cast<double>(jobs));
    }
};

/**
 * Serves alignment requests against one sharded database. The
 * database must outlive the engine; the engine owns its thread
 * pool and shard layout. serve()/serveBatch()/serveStream() are
 * intended to be called from one thread (the pool parallelizes
 * inside a batch).
 */
class Engine : public BatchServer
{
  public:
    explicit Engine(const bio::SequenceDatabase &db,
                    EngineConfig config = {});

    const EngineConfig &config() const { return _cfg; }
    const ShardedDatabase &sharded() const { return _sharded; }
    const bio::SequenceDatabase &db() const { return *_db; }

    /** Serve one request (a batch of one). */
    Response serve(const Request &request);

    /** Deadline plumbing, now shared with every BatchServer
     * implementation (batch_server.hh); the nested name stays for
     * source compatibility. */
    using BatchControl = serve::BatchControl;

    /**
     * Serve @p requests as a single batch: all (request, shard)
     * scans are in flight together. Responses come back in request
     * order with serviceUs = the batch's wall time (queueUs = 0).
     */
    std::vector<Response>
    serveBatch(const std::vector<Request> &requests);

    /** serveBatch with per-request deadline cancellation. */
    std::vector<Response>
    serveBatch(const std::vector<Request> &requests,
               const BatchControl &control) override;

    /** ServeLoop's batch size when LoopConfig::batch is 0. */
    std::size_t defaultBatch() const override
    {
        return _cfg.batch;
    }

    /**
     * Replay a whole stream: cut it into config().batch-sized
     * batches, serve them in order, and account per-request
     * latency as if every request arrived when the stream started
     * (closed-loop replay: queueUs is the time spent behind
     * earlier batches).
     */
    StreamReport
    serveStream(const std::vector<Request> &requests);

    /**
     * The registry this engine reports into (its own, or the one
     * injected via EngineConfig::metrics). Counters: batch-level
     * dedup savings (serve_dedup_saved_total / batch_unique),
     * lazy Karlin statistic fills, shard scans and
     * deadline-skips, cells; the native overflow ladder per
     * backend (native_scans_total{backend=...} and friends);
     * mirrored thread-pool tasks/steals. Histograms:
     * serve_scan_us, serve_batch_us, serve_latency_us.
     */
    obs::Registry &metrics() override { return *_metrics; }
    const obs::Registry &metrics() const { return *_metrics; }

    /**
     * Mirror the thread pool's counters/gauges into the registry
     * (pool_tasks_total, pool_steals_total, pool_queue_depth,
     * pool_queue_depth_max, pool_workers). Call right before
     * exporting a snapshot; single-threaded with respect to other
     * refresh calls.
     */
    void refreshPoolMetrics() override;

    /** The engine's worker pool (for loop/bench introspection). */
    const core::ThreadPool &pool() const { return _pool; }

  private:
    std::vector<Response> runBatch(const Request *requests,
                                   std::size_t count,
                                   const BatchControl *control);

    const bio::SequenceDatabase *_db;
    EngineConfig _cfg;
    ShardedDatabase _sharded;
    const bio::ScoringMatrix *_matrix;
    align::KarlinParams _karlin;
    core::ThreadPool _pool;

    std::unique_ptr<obs::Registry> _ownedMetrics;
    obs::Registry *_metrics;
    // Hot-path metric handles, registered once at construction.
    obs::Counter *_mRequests;
    obs::Counter *_mBatches;
    obs::Counter *_mBatchUnique;
    obs::Counter *_mDedupSaved;
    obs::Counter *_mKarlinFills;
    obs::Counter *_mCells;
    obs::Counter *_mShardsScanned;
    obs::Counter *_mShardsSkipped;
    obs::Counter *_mIndexProbes;
    obs::Counter *_mIndexCandidates;
    obs::Counter *_mIndexFallbacks;
    obs::Counter *_mNativeScans;
    obs::Counter *_mNativeRescans16;
    obs::Counter *_mNativeRescansScalar;
    obs::Counter *_mNativeInterseq;
    obs::Counter *_mNativeStriped;
    obs::Counter *_mTracebackCells;
    obs::Counter *_mAlignments;
    obs::Counter *_mTracebacksSkipped;
    obs::Histogram *_mTracebackUs;
    obs::Histogram *_mScanUs;
    obs::Histogram *_mBatchUs;
    obs::Histogram *_mLatencyUs;
    // Pool counters already seen by refreshPoolMetrics() (obs
    // counters are monotone, so mirroring applies deltas).
    std::uint64_t _poolTasksSeen = 0;
    std::uint64_t _poolStealsSeen = 0;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_ENGINE_HH
