/**
 * @file
 * The batched query-serving engine: accepts a stream of alignment
 * requests, groups them into batches, fans (request x shard) scan
 * tasks across a core::ThreadPool, merges per-shard top-K heaps
 * into one ranked hit list per request, and records per-request
 * latency plus engine-level throughput.
 *
 * Determinism contract (asserted by tests/serve_test.cc): the
 * ranked hit list of a request — ids, scores, bit scores, E-values
 * — is bit-for-bit identical regardless of shard count, batch
 * size, or worker count, and equal to a serial scan of the whole
 * database under the (score desc, db index asc) order. The
 * schedule only decides *when* a scan runs, never *what* it
 * computes: every task writes to a preallocated (request, shard)
 * slot and the merge walks those slots in submission order.
 */

#ifndef BIOARCH_SERVE_ENGINE_HH
#define BIOARCH_SERVE_ENGINE_HH

#include <cstddef>
#include <vector>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/karlin.hh"
#include "bio/database.hh"
#include "bio/scoring.hh"
#include "core/thread_pool.hh"
#include "latency.hh"
#include "request.hh"
#include "shard.hh"

namespace bioarch::serve
{

/** Engine tunables. */
struct EngineConfig
{
    /** Worker threads (BIOARCH_JOBS / hardware default). */
    unsigned jobs = core::ThreadPool::defaultJobs();
    /** Database shards scanned as independent tasks. */
    std::size_t shards = 4;
    /** Requests grouped per batch by serveStream(). */
    std::size_t batch = 8;
    /** Default hits per response (requests may override). */
    std::size_t topK = 10;
    /**
     * Kernel backend for the Smith-Waterman request kinds: a native
     * SIMD backend (the default; see align::defaultScanBackend and
     * the BIOARCH_SIMD_BACKEND environment variable) or
     * SimdBackend::Model for the instruction-accurate model
     * kernels.
     */
    align::SimdBackend backend = align::defaultScanBackend();
    bio::GapPenalties gaps;
    align::FastaParams fasta;
    align::BlastParams blast;
};

/** Engine-level accounting for one served stream. */
struct StreamReport
{
    std::vector<Response> responses; ///< in request order
    unsigned jobs = 1;
    std::size_t shards = 1;
    std::size_t batchSize = 1;
    std::size_t batches = 0;
    /** End-to-end wall clock of the stream (ms). */
    double wallMs = 0.0;
    /** Serial-equivalent scan work: sum of shard-scan times (ms). */
    double cpuMs = 0.0;
    std::uint64_t totalCells = 0;
    /** Per-request end-to-end latencies. */
    LatencyRecorder latency;

    double
    requestsPerSec() const
    {
        return wallMs <= 0.0
            ? 0.0
            : 1000.0 * static_cast<double>(responses.size())
                / wallMs;
    }
    /** cpuMs / (wallMs * jobs): 1.0 = perfect scan scaling. */
    double
    parallelEfficiency() const
    {
        return wallMs <= 0.0 || jobs == 0
            ? 0.0
            : cpuMs / (wallMs * static_cast<double>(jobs));
    }
};

/**
 * Serves alignment requests against one sharded database. The
 * database must outlive the engine; the engine owns its thread
 * pool and shard layout. serve()/serveBatch()/serveStream() are
 * intended to be called from one thread (the pool parallelizes
 * inside a batch).
 */
class Engine
{
  public:
    explicit Engine(const bio::SequenceDatabase &db,
                    EngineConfig config = {});

    const EngineConfig &config() const { return _cfg; }
    const ShardedDatabase &sharded() const { return _sharded; }
    const bio::SequenceDatabase &db() const { return *_db; }

    /** Serve one request (a batch of one). */
    Response serve(const Request &request);

    /**
     * Distinct (kind, query) groups in the most recent batch —
     * i.e. how many PreparedQuery builds batch-level dedup left
     * after sharing identical requests.
     */
    std::size_t lastBatchUnique() const { return _lastBatchUnique; }

    /**
     * Serve @p requests as a single batch: all (request, shard)
     * scans are in flight together. Responses come back in request
     * order with serviceUs = the batch's wall time (queueUs = 0).
     */
    std::vector<Response>
    serveBatch(const std::vector<Request> &requests);

    /**
     * Replay a whole stream: cut it into config().batch-sized
     * batches, serve them in order, and account per-request
     * latency as if every request arrived when the stream started
     * (closed-loop replay: queueUs is the time spent behind
     * earlier batches).
     */
    StreamReport
    serveStream(const std::vector<Request> &requests);

  private:
    std::vector<Response> runBatch(const Request *requests,
                                   std::size_t count);

    const bio::SequenceDatabase *_db;
    EngineConfig _cfg;
    ShardedDatabase _sharded;
    const bio::ScoringMatrix *_matrix;
    align::KarlinParams _karlin;
    core::ThreadPool _pool;
    std::size_t _lastBatchUnique = 0;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_ENGINE_HH
