#include "shard.hh"

namespace bioarch::serve
{

ShardedDatabase::ShardedDatabase(const bio::SequenceDatabase &db,
                                 std::size_t num_shards)
    : _db(&db)
{
    if (num_shards == 0)
        num_shards = 1;
    const std::uint64_t total = db.totalResidues();
    const std::size_t n = db.size();

    _shards.reserve(num_shards);
    std::size_t next = 0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < num_shards; ++i) {
        Shard s;
        s.index = i;
        s.begin = next;
        // Advance to the residue-prefix target of this shard's
        // right edge; the last shard always absorbs the remainder.
        const std::uint64_t target =
            total * static_cast<std::uint64_t>(i + 1)
            / static_cast<std::uint64_t>(num_shards);
        while (next < n
               && (acc < target || i + 1 == num_shards)) {
            acc += db[next].length();
            s.residues += db[next].length();
            ++next;
        }
        s.end = next;
        _shards.push_back(s);
    }
}

ShardScan
scanShard(const PreparedQuery &query,
          const bio::SequenceDatabase &db, const Shard &shard,
          std::size_t top_k, const align::KarlinParams &karlin,
          double total_residues)
{
    ShardScan out;
    TopKHeap heap(top_k);
    const double m = static_cast<double>(query.query().length());

    // Native Smith-Waterman scans walk the database's packed
    // residue arena (one contiguous stream per shard); the model
    // kernels and the heuristics keep taking the Sequence path.
    const bool packed = query.usesNativeScan();
    const bio::Residue *arena =
        packed ? db.packedResidues() : nullptr;
    const std::vector<std::uint64_t> &offsets = db.packedOffsets();

    for (std::size_t idx = shard.begin; idx < shard.end; ++idx) {
        const align::LocalScore ls = packed
            ? query.scanPacked(
                  arena + offsets[idx],
                  static_cast<std::size_t>(offsets[idx + 1]
                                           - offsets[idx]),
                  &out.cells, &out.native)
            : query.scan(db[idx], &out.cells, &out.native);
        ++out.sequences;
        if (ls.score <= 0)
            continue;
        align::SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        heap.consider(hit);
    }
    // Hit statistics are pure functions of the score, so they can
    // wait until the heap has discarded everything below the top K
    // (ranking never looks at them: (score desc, dbIndex asc)).
    out.hits = heap.ranked();
    out.karlinFills =
        static_cast<std::uint64_t>(out.hits.size());
    for (align::SearchHit &hit : out.hits) {
        hit.bitScore = karlin.bitScore(hit.score);
        hit.evalue = karlin.evalue(hit.score, m, total_residues);
    }
    return out;
}

} // namespace bioarch::serve
