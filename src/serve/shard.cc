#include "shard.hh"

#include <algorithm>

namespace bioarch::serve
{

ShardedDatabase::ShardedDatabase(const bio::SequenceDatabase &db,
                                 std::size_t num_shards)
    : _db(&db)
{
    if (num_shards == 0)
        num_shards = 1;
    const std::uint64_t total = db.totalResidues();
    const std::size_t n = db.size();

    _shards.reserve(num_shards);
    std::size_t next = 0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < num_shards; ++i) {
        Shard s;
        s.index = i;
        s.begin = next;
        // Advance to the residue-prefix target of this shard's
        // right edge; the last shard always absorbs the remainder.
        const std::uint64_t target =
            total * static_cast<std::uint64_t>(i + 1)
            / static_cast<std::uint64_t>(num_shards);
        while (next < n
               && (acc < target || i + 1 == num_shards)) {
            acc += db[next].length();
            s.residues += db[next].length();
            ++next;
        }
        s.end = next;
        _shards.push_back(s);
    }
}

ShardScan
scanShard(const PreparedQuery &query,
          const bio::SequenceDatabase &db, const Shard &shard,
          std::size_t top_k, const align::KarlinParams &karlin,
          double total_residues, const ScanRoute &route)
{
    ShardScan out;
    TopKHeap heap(top_k);
    const double m = static_cast<double>(query.query().length());
    const std::vector<std::uint64_t> &offsets = db.packedOffsets();

    // Indexed BLAST route: the engine probed the seed index once
    // for this request; align only the candidates that fall in
    // this shard. The candidate set provably contains every
    // sequence blastScan would score above 0 (see
    // index/seed_index.hh), so the heap sees exactly the hits a
    // full scan would feed it and the ranked list is bit-identical.
    const bool indexed = route.indexCandidates != nullptr;
    if (indexed) {
        const std::vector<std::uint32_t> &cand =
            *route.indexCandidates;
        const auto lo = std::lower_bound(
            cand.begin(), cand.end(),
            static_cast<std::uint32_t>(shard.begin));
        const auto hi = std::lower_bound(
            lo, cand.end(),
            static_cast<std::uint32_t>(shard.end));
        out.prefilterSkipped = lo == hi;
        for (auto it = lo; it != hi; ++it) {
            const std::size_t idx = *it;
            const align::LocalScore ls =
                query.scan(db[idx], &out.cells, &out.native);
            ++out.sequences;
            out.residues += offsets[idx + 1] - offsets[idx];
            if (ls.score <= 0)
                continue;
            align::SearchHit hit;
            hit.dbIndex = idx;
            hit.score = ls.score;
            hit.queryEnd = ls.queryEnd;
            hit.subjectEnd = ls.subjectEnd;
            heap.consider(hit);
        }
    }

    // Native Smith-Waterman scans walk the database's packed
    // residue arena (one contiguous stream per shard); the model
    // kernels and the heuristics keep taking the Sequence path.
    const bool packed = !indexed && query.usesNativeScan();
    if (!indexed)
        out.residues = shard.residues;

    if (packed) {
        // Kernel choice per subject: lengths under the cutover go
        // to the inter-sequence kernel (one subject per lane), the
        // rest through the striped kernel. Whatever the batching
        // does internally, scores land in a per-subject slot and
        // the heap is fed in ascending db index afterwards, so the
        // hit list's total order is a pure function of (query,
        // shard) — never of the lane schedule.
        const bio::Residue *arena = db.packedResidues();
        const std::size_t n_subjects = shard.end - shard.begin;
        std::vector<align::LocalScore> scores(n_subjects);
        std::vector<align::SubjectSpan> batch;
        std::vector<std::uint32_t> batch_slot;
        batch.reserve(n_subjects);
        batch_slot.reserve(n_subjects);
        for (std::size_t idx = shard.begin; idx < shard.end;
             ++idx) {
            const std::size_t slot = idx - shard.begin;
            const std::size_t len = static_cast<std::size_t>(
                offsets[idx + 1] - offsets[idx]);
            if (len > 0 && len < route.interseqCutover) {
                batch.push_back(align::SubjectSpan{
                    arena + offsets[idx], len});
                batch_slot.push_back(
                    static_cast<std::uint32_t>(slot));
            } else {
                scores[slot] = query.scanPacked(
                    arena + offsets[idx], len, &out.cells,
                    &out.native);
            }
        }
        // Batch-occupancy floor: the inter-sequence kernel's edge
        // comes from keeping all lanes busy, and a near-empty batch
        // leaves most of them idling on the pad row. Too few
        // subjects to fill even a quarter of the widest lane set
        // scan striped instead — scores are bit-identical either
        // way, this is purely a throughput choice.
        constexpr std::size_t min_batch_occupancy = 8;
        if (batch.size() > 0
            && batch.size() < min_batch_occupancy) {
            for (std::size_t k = 0; k < batch.size(); ++k)
                scores[batch_slot[k]] = query.scanPacked(
                    batch[k].data, batch[k].length, &out.cells,
                    &out.native);
        } else if (!batch.empty()) {
            std::vector<align::LocalScore> batch_scores(
                batch.size());
            query.scanPackedBatch(batch.data(), batch.size(),
                                  batch_scores.data(), &out.cells,
                                  &out.native);
            for (std::size_t k = 0; k < batch.size(); ++k)
                scores[batch_slot[k]] = batch_scores[k];
        }
        out.sequences += n_subjects;
        for (std::size_t slot = 0; slot < n_subjects; ++slot) {
            const align::LocalScore &ls = scores[slot];
            if (ls.score <= 0)
                continue;
            align::SearchHit hit;
            hit.dbIndex = shard.begin + slot;
            hit.score = ls.score;
            hit.queryEnd = ls.queryEnd;
            hit.subjectEnd = ls.subjectEnd;
            heap.consider(hit);
        }
    }

    for (std::size_t idx = shard.begin;
         !packed && !indexed && idx < shard.end; ++idx) {
        const align::LocalScore ls =
            query.scan(db[idx], &out.cells, &out.native);
        ++out.sequences;
        if (ls.score <= 0)
            continue;
        align::SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        heap.consider(hit);
    }
    // Hit statistics are pure functions of the score, so they can
    // wait until the heap has discarded everything below the top K
    // (ranking never looks at them: (score desc, dbIndex asc)).
    out.hits = heap.ranked();
    out.karlinFills =
        static_cast<std::uint64_t>(out.hits.size());
    for (align::SearchHit &hit : out.hits) {
        hit.bitScore = karlin.bitScore(hit.score);
        hit.evalue = karlin.evalue(hit.score, m, total_residues);
    }
    return out;
}

} // namespace bioarch::serve
