#include "loop.hh"

#include <algorithm>
#include <string>

namespace bioarch::serve
{

std::string_view
priorityName(Priority p)
{
    switch (p) {
    case Priority::Interactive:
        return "interactive";
    case Priority::Normal:
        return "normal";
    case Priority::Bulk:
        return "bulk";
    }
    return "unknown";
}

std::string_view
loopStatusName(LoopStatus s)
{
    switch (s) {
    case LoopStatus::Pending:
        return "pending";
    case LoopStatus::Served:
        return "served";
    case LoopStatus::RetryAfter:
        return "retry_after";
    case LoopStatus::Deadline:
        return "deadline";
    case LoopStatus::Dropped:
        return "dropped";
    }
    return "unknown";
}

ServeLoop::ServeLoop(BatchServer &engine, LoopConfig config,
                     const Clock *clock)
    : _engine(&engine),
      _cfg(config),
      _clock(clock != nullptr ? clock : &_ownedClock)
{
    if (_cfg.queueCapacity == 0)
        _cfg.queueCapacity = 1;
    if (_cfg.batch == 0)
        _cfg.batch = _engine->defaultBatch();
    if (_cfg.batch == 0)
        _cfg.batch = 1;

    obs::Registry &m = _engine->metrics();
    _mOffered = &m.counter("loop_offered_total");
    _mAdmitted = &m.counter("loop_admitted_total");
    _mServed = &m.counter("loop_served_total");
    _mShedQueueFull = &m.counter("loop_shed_queue_full_total");
    _mShedDeadline = &m.counter("loop_shed_deadline_total");
    _mShedQuota = &m.counter("loop_shed_quota_total");
    _mShedShutdown = &m.counter("loop_shed_shutdown_total");
    _mDeadlineExpired = &m.counter("loop_deadline_expired_total");
    _mDropped = &m.counter("loop_dropped_total");
    _mQueueDepth = &m.gauge("loop_queue_depth");
    _mQueueWaitUs = &m.histogram("serve_queue_wait_us");
    _mLatencyUs = &m.histogram("serve_latency_us");
}

ServeLoop::~ServeLoop()
{
    stop();
}

double
ServeLoop::estimatedWaitUsLocked(Priority priority) const
{
    // Work that completes before a fresh arrival of this class:
    // the in-flight batch plus everything queued at the same or a
    // better class.
    std::size_t ahead = _inFlight;
    for (std::size_t c = 0;
         c <= static_cast<std::size_t>(priority); ++c)
        ahead += _classDepth[c];
    return _ewmaServiceUs * static_cast<double>(ahead);
}

ServeLoop::TenantState &
ServeLoop::tenantLocked(std::uint32_t tenant, double now)
{
    const auto found = _tenants.find(tenant);
    if (found != _tenants.end())
        return found->second;
    TenantState &t = _tenants[tenant];
    for (const TenantQuota &quota : _cfg.tenants) {
        if (quota.tenant != tenant)
            continue;
        t.rateQps = quota.rateQps;
        t.burst = std::max(quota.burst, 1.0);
        t.weight = std::max(quota.weight, 0.01);
        break;
    }
    t.tokens = t.burst; // a fresh tenant may burst immediately
    t.lastRefillUs = now;
    obs::Registry &m = _engine->metrics();
    const std::string label =
        "tenant=\"" + std::to_string(tenant) + "\"";
    t.mOffered = &m.counter("serve_tenant_offered_total", label);
    t.mAdmitted = &m.counter("serve_tenant_admitted_total", label);
    t.mServed = &m.counter("serve_tenant_served_total", label);
    t.mShed = &m.counter("serve_tenant_shed_total", label);
    t.mDeadlineExpired =
        &m.counter("serve_tenant_deadline_expired_total", label);
    t.mDropped = &m.counter("serve_tenant_dropped_total", label);
    return t;
}

Submission
ServeLoop::submit(Request request, Priority priority,
                  double deadlineUs)
{
    Submission out;
    std::lock_guard lock(_mutex);
    _mOffered->inc();
    const double now = _clock->nowUs();
    const std::uint32_t tenantId = request.tenant;
    TenantState &tenant = tenantLocked(tenantId, now);
    tenant.mOffered->inc();
    const double deadline = deadlineUs >= 0.0
        ? deadlineUs
        : (_cfg.defaultDeadlineUs > 0.0
               ? now + _cfg.defaultDeadlineUs
               : 0.0);

    out.ticket = static_cast<std::uint64_t>(_results.size());
    LoopResult result;
    result.id = request.id;
    result.priority = priority;
    result.tenant = tenantId;
    result.arrivalUs = now;

    const auto shed = [&](obs::Counter *reason,
                          double retry_after) {
        reason->inc();
        tenant.mShed->inc();
        out.admitted = false;
        out.retryAfterUs =
            std::max(retry_after, _cfg.minRetryAfterUs);
        result.status = LoopStatus::RetryAfter;
        result.doneUs = now;
        _results.push_back(std::move(result));
    };

    if (!_admitting) {
        shed(_mShedShutdown, _cfg.minRetryAfterUs);
        return out;
    }
    if (tenant.rateQps > 0.0) {
        // Lazy bucket refill on the loop clock (deterministic
        // under a ManualClock).
        tenant.tokens = std::min(
            tenant.burst,
            tenant.tokens
                + (now - tenant.lastRefillUs) * tenant.rateQps
                    / 1e6);
        tenant.lastRefillUs = now;
        if (tenant.tokens < 1.0) {
            // The hint must cover the *bucket's* recovery, not
            // the engine's service time: retrying any sooner is
            // guaranteed another quota shed.
            shed(_mShedQuota,
                 (1.0 - tenant.tokens) / tenant.rateQps * 1e6);
            return out;
        }
    }
    if (_depth >= _cfg.queueCapacity) {
        // Hint: roughly the time for the backlog to drain.
        shed(_mShedQueueFull,
             _ewmaServiceUs
                 * static_cast<double>(_depth + _inFlight));
        return out;
    }
    if (deadline > 0.0
        && now + estimatedWaitUsLocked(priority) >= deadline) {
        // Unmeetable: already expired, or the queue ahead is
        // (by the service-time EWMA) longer than the slack.
        shed(_mShedDeadline, _cfg.minRetryAfterUs);
        return out;
    }

    out.admitted = true;
    if (tenant.rateQps > 0.0)
        tenant.tokens -= 1.0; // charge only on admission
    _results.push_back(std::move(result));
    const std::size_t c = static_cast<std::size_t>(priority);
    Queued q;
    q.request = std::move(request);
    q.priority = priority;
    q.ticket = out.ticket;
    q.deadlineUs = deadline;
    tenant.queues[c].push_back(std::move(q));
    if (!tenant.inRing[c]) {
        _ring[c].push_back(tenantId);
        tenant.inRing[c] = true;
    }
    ++_depth;
    ++_classDepth[c];
    _mAdmitted->inc();
    tenant.mAdmitted->inc();
    _mQueueDepth->set(static_cast<double>(_depth));
    _work.notify_one();
    return out;
}

std::vector<ServeLoop::Queued>
ServeLoop::popBatchLocked()
{
    std::vector<Queued> batch;
    const double now = _clock->nowUs();
    for (std::size_t c = 0;
         c < numPriorities && batch.size() < _cfg.batch; ++c) {
        // Weighted deficit round-robin over the class's active
        // tenants: the head tenant spends 1 deficit per popped
        // request; when broke, it earns `weight` and rotates to
        // the back. Over a backlogged window each tenant gets
        // dispatch slots in proportion to its weight; a lone
        // tenant degenerates to plain FIFO.
        std::deque<std::uint32_t> &ring = _ring[c];
        while (!ring.empty() && batch.size() < _cfg.batch) {
            TenantState &t = _tenants.at(ring.front());
            std::deque<Queued> &q = t.queues[c];
            if (t.deficit[c] < 1.0) {
                t.deficit[c] += t.weight;
                ring.push_back(ring.front());
                ring.pop_front();
                continue;
            }
            t.deficit[c] -= 1.0;
            Queued item = std::move(q.front());
            q.pop_front();
            --_depth;
            --_classDepth[c];
            LoopResult &r = _results[item.ticket];
            r.dispatchUs = now;
            r.dispatchOrder = _dispatchSeq++;
            batch.push_back(std::move(item));
            if (q.empty()) {
                t.inRing[c] = false;
                t.deficit[c] = 0.0; // no credit hoarding while idle
                ring.pop_front();
            }
        }
    }
    _inFlight += batch.size();
    _mQueueDepth->set(static_cast<double>(_depth));
    return batch;
}

std::size_t
ServeLoop::processBatch(std::vector<Queued> batch)
{
    if (batch.empty())
        return 0;
    const double dispatched = _clock->nowUs();

    // Dispatch-time deadline check: an already-expired request
    // never reaches the engine at all.
    std::vector<Queued> run;
    run.reserve(batch.size());
    {
        std::lock_guard lock(_mutex);
        for (Queued &q : batch) {
            LoopResult &r = _results[q.ticket];
            _mQueueWaitUs->record(r.queueWaitUs());
            if (q.deadlineUs > 0.0
                && dispatched >= q.deadlineUs) {
                r.status = LoopStatus::Deadline;
                r.doneUs = dispatched;
                _mDeadlineExpired->inc();
                _tenants.at(q.request.tenant)
                    .mDeadlineExpired->inc();
                --_inFlight;
                continue;
            }
            run.push_back(std::move(q));
        }
    }
    if (run.empty())
        return batch.size();

    std::vector<Request> requests;
    std::vector<double> deadlines;
    requests.reserve(run.size());
    deadlines.reserve(run.size());
    for (const Queued &q : run) {
        requests.push_back(q.request);
        deadlines.push_back(q.deadlineUs);
    }
    BatchControl control;
    control.deadlinesUs = deadlines.data();
    control.clock = _clock;
    std::vector<Response> responses =
        _engine->serveBatch(requests, control);

    const double done = _clock->nowUs();
    const double per_request = (done - dispatched)
        / static_cast<double>(run.size());
    {
        std::lock_guard lock(_mutex);
        _inFlight -= run.size();
        _ewmaServiceUs = _ewmaServiceUs <= 0.0
            ? per_request
            : 0.75 * _ewmaServiceUs + 0.25 * per_request;
        for (std::size_t i = 0; i < run.size(); ++i) {
            LoopResult &r = _results[run[i].ticket];
            TenantState &t =
                _tenants.at(run[i].request.tenant);
            r.doneUs = done;
            r.response = std::move(responses[i]);
            // A miss is a miss whether the engine cancelled shard
            // scans or the batch simply finished too late: Served
            // means delivered within the deadline.
            if (r.response.deadlineExpired()
                || (run[i].deadlineUs > 0.0
                    && done >= run[i].deadlineUs)) {
                r.status = LoopStatus::Deadline;
                _mDeadlineExpired->inc();
                t.mDeadlineExpired->inc();
            } else {
                r.status = LoopStatus::Served;
                _mServed->inc();
                t.mServed->inc();
                _mLatencyUs->record(r.latencyUs());
            }
        }
    }
    return batch.size();
}

std::size_t
ServeLoop::pumpOne()
{
    std::vector<Queued> batch;
    {
        std::lock_guard lock(_mutex);
        if (_depth == 0)
            return 0;
        batch = popBatchLocked();
    }
    return processBatch(std::move(batch));
}

std::size_t
ServeLoop::pumpAll()
{
    std::size_t total = 0;
    for (;;) {
        const std::size_t n = pumpOne();
        if (n == 0)
            return total;
        total += n;
    }
}

void
ServeLoop::dispatcherLoop()
{
    for (;;) {
        std::vector<Queued> batch;
        {
            std::unique_lock lock(_mutex);
            _work.wait(lock, [this] {
                return _stopRequested || _depth > 0;
            });
            if (_stopRequested) {
                if (_dropQueued) {
                    dropQueuedLocked();
                    return;
                }
                if (_depth == 0)
                    return;
            }
            batch = popBatchLocked();
        }
        processBatch(std::move(batch));
    }
}

void
ServeLoop::dropQueuedLocked()
{
    const double now = _clock->nowUs();
    for (auto &[id, t] : _tenants) {
        for (std::size_t c = 0; c < numPriorities; ++c) {
            for (Queued &item : t.queues[c]) {
                LoopResult &r = _results[item.ticket];
                r.status = LoopStatus::Dropped;
                r.doneUs = now;
                _mDropped->inc();
                t.mDropped->inc();
            }
            t.queues[c].clear();
            t.deficit[c] = 0.0;
            t.inRing[c] = false;
        }
    }
    for (std::deque<std::uint32_t> &ring : _ring)
        ring.clear();
    _classDepth.fill(0);
    _depth = 0;
    _mQueueDepth->set(0.0);
}

void
ServeLoop::start()
{
    std::lock_guard lock(_mutex);
    if (_started)
        return;
    _started = true;
    _stopRequested = false;
    _dispatcher = std::thread([this] { dispatcherLoop(); });
}

void
ServeLoop::drain()
{
    {
        std::lock_guard lock(_mutex);
        _admitting = false;
        _stopRequested = true;
        _dropQueued = false;
    }
    _work.notify_all();
    if (_dispatcher.joinable()) {
        _dispatcher.join();
        std::lock_guard lock(_mutex);
        _started = false;
        _stopRequested = false;
    } else {
        pumpAll();
        std::lock_guard lock(_mutex);
        _stopRequested = false;
    }
}

void
ServeLoop::stop()
{
    {
        std::lock_guard lock(_mutex);
        _admitting = false;
        _stopRequested = true;
        _dropQueued = true;
    }
    _work.notify_all();
    if (_dispatcher.joinable()) {
        _dispatcher.join();
        std::lock_guard lock(_mutex);
        _started = false;
        _stopRequested = false;
        _dropQueued = false;
    } else {
        std::lock_guard lock(_mutex);
        dropQueuedLocked();
        _stopRequested = false;
        _dropQueued = false;
    }
}

bool
ServeLoop::running() const
{
    std::lock_guard lock(_mutex);
    return _started;
}

std::size_t
ServeLoop::queueDepth() const
{
    std::lock_guard lock(_mutex);
    return _depth;
}

std::vector<LoopResult>
ServeLoop::results() const
{
    std::lock_guard lock(_mutex);
    return _results;
}

} // namespace bioarch::serve
