#include "engine.hh"

#include <algorithm>
#include <chrono>
#include <memory>

namespace bioarch::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from)
        .count();
}

} // namespace

Engine::Engine(const bio::SequenceDatabase &db, EngineConfig config)
    : _db(&db),
      _cfg(config),
      _sharded(db, config.shards == 0 ? 1 : config.shards),
      _matrix(&bio::blosum62()),
      _karlin(align::blosum62Karlin()),
      _pool(config.jobs)
{
    _cfg.shards = _sharded.numShards();
    if (_cfg.batch == 0)
        _cfg.batch = 1;
    _cfg.jobs = _pool.size();
}

std::vector<Response>
Engine::runBatch(const Request *requests, std::size_t count)
{
    const std::size_t shards = _sharded.numShards();
    const double total =
        static_cast<double>(_db->totalResidues());

    // Phase 1: build each *distinct* request's query state
    // (profile / word index) once, in parallel. Identical
    // (kind, query-residues) requests in the batch share one
    // PreparedQuery — profiles are read-only during scans, so
    // sharing is free. Batches are small, so the quadratic group
    // scan is cheaper than hashing the residues.
    std::vector<std::size_t> rep(count);
    for (std::size_t r = 0; r < count; ++r) {
        rep[r] = r;
        for (std::size_t p = 0; p < r; ++p) {
            if (requests[p].kind == requests[r].kind
                && requests[p].query.residues()
                    == requests[r].query.residues()) {
                rep[r] = p;
                break;
            }
        }
    }
    std::vector<std::size_t> unique;
    for (std::size_t r = 0; r < count; ++r)
        if (rep[r] == r)
            unique.push_back(r);
    _lastBatchUnique = unique.size();

    std::vector<std::unique_ptr<PreparedQuery>> prepared(count);
    _pool.parallelFor(unique.size(), [&](std::size_t i) {
        const std::size_t r = unique[i];
        prepared[r] = std::make_unique<PreparedQuery>(
            requests[r], *_matrix, _cfg.gaps, _cfg.fasta,
            _cfg.blast, _cfg.backend);
    });

    // Phase 2: fan (request x shard) scans out; each task writes
    // its preallocated slot, so the schedule cannot reorder
    // results.
    std::vector<ShardScan> scans(count * shards);
    _pool.parallelFor(count * shards, [&](std::size_t u) {
        const std::size_t r = u / shards;
        const std::size_t s = u % shards;
        const std::size_t top_k = requests[r].topK
            ? requests[r].topK
            : _cfg.topK;
        const Clock::time_point t0 = Clock::now();
        scans[u] = scanShard(*prepared[rep[r]], *_db,
                             _sharded.shard(s), top_k, _karlin,
                             total);
        scans[u].elapsedUs = elapsedUs(t0, Clock::now());
    });

    // Phase 3: merge per-shard top-K lists, in request order.
    std::vector<Response> out(count);
    for (std::size_t r = 0; r < count; ++r) {
        Response &resp = out[r];
        resp.id = requests[r].id;
        resp.kind = requests[r].kind;
        const std::size_t top_k = requests[r].topK
            ? requests[r].topK
            : _cfg.topK;
        std::vector<std::vector<align::SearchHit>> lists;
        lists.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s) {
            ShardScan &scan = scans[r * shards + s];
            resp.cellsComputed += scan.cells;
            resp.sequencesSearched += scan.sequences;
            resp.scanUs += scan.elapsedUs;
            lists.push_back(std::move(scan.hits));
        }
        resp.hits = mergeRanked(lists, top_k);
    }
    return out;
}

Response
Engine::serve(const Request &request)
{
    const Clock::time_point t0 = Clock::now();
    std::vector<Response> batch = runBatch(&request, 1);
    batch.front().serviceUs = elapsedUs(t0, Clock::now());
    return std::move(batch.front());
}

std::vector<Response>
Engine::serveBatch(const std::vector<Request> &requests)
{
    const Clock::time_point t0 = Clock::now();
    std::vector<Response> out =
        runBatch(requests.data(), requests.size());
    const double service = elapsedUs(t0, Clock::now());
    for (Response &r : out)
        r.serviceUs = service;
    return out;
}

StreamReport
Engine::serveStream(const std::vector<Request> &requests)
{
    StreamReport report;
    report.jobs = _pool.size();
    report.shards = _sharded.numShards();
    report.batchSize = _cfg.batch;
    report.responses.reserve(requests.size());

    const Clock::time_point arrival = Clock::now();
    for (std::size_t begin = 0; begin < requests.size();
         begin += _cfg.batch) {
        const std::size_t count =
            std::min(_cfg.batch, requests.size() - begin);
        const Clock::time_point dispatch = Clock::now();
        std::vector<Response> batch =
            runBatch(requests.data() + begin, count);
        const Clock::time_point done = Clock::now();

        const double queue = elapsedUs(arrival, dispatch);
        const double service = elapsedUs(dispatch, done);
        for (Response &r : batch) {
            r.queueUs = queue;
            r.serviceUs = service;
            report.latency.record(r.latencyUs());
            report.totalCells += r.cellsComputed;
            report.cpuMs += r.scanUs / 1000.0;
            report.responses.push_back(std::move(r));
        }
        ++report.batches;
    }
    report.wallMs =
        elapsedUs(arrival, Clock::now()) / 1000.0;
    return report;
}

} // namespace bioarch::serve
