#include "engine.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>

namespace bioarch::serve
{

namespace
{

using WallClock = std::chrono::steady_clock;

double
elapsedUs(WallClock::time_point from, WallClock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from)
        .count();
}

} // namespace

Engine::Engine(const bio::SequenceDatabase &db, EngineConfig config)
    : _db(&db),
      _cfg(config),
      _sharded(db, config.shards == 0 ? 1 : config.shards),
      _matrix(&bio::blosum62()),
      _karlin(align::blosum62Karlin()),
      _pool(config.jobs)
{
    _cfg.shards = _sharded.numShards();
    if (_cfg.batch == 0)
        _cfg.batch = 1;
    _cfg.jobs = _pool.size();

    if (_cfg.metrics == nullptr) {
        _ownedMetrics = std::make_unique<obs::Registry>();
        _metrics = _ownedMetrics.get();
    } else {
        _metrics = _cfg.metrics;
    }
    obs::Registry &m = *_metrics;
    _mRequests = &m.counter("serve_requests_total");
    _mBatches = &m.counter("serve_batches_total");
    _mBatchUnique = &m.counter("serve_batch_unique_total");
    _mDedupSaved = &m.counter("serve_dedup_saved_total");
    _mKarlinFills = &m.counter("serve_karlin_lazy_fills_total");
    _mCells = &m.counter("serve_cells_total");
    _mShardsScanned = &m.counter("serve_shards_scanned_total");
    _mShardsSkipped = &m.counter("serve_shards_skipped_total");
    _mIndexProbes = &m.counter("index_probe_total");
    _mIndexCandidates = &m.counter("index_candidates_total");
    _mIndexFallbacks = &m.counter("index_fallback_scan_total");
    const std::string backend_label = "backend=\""
        + std::string(align::backendName(_cfg.backend)) + "\"";
    _mNativeScans =
        &m.counter("native_scans_total", backend_label);
    _mNativeRescans16 =
        &m.counter("native_rescans16_total", backend_label);
    _mNativeRescansScalar =
        &m.counter("native_rescans_scalar_total", backend_label);
    _mNativeInterseq =
        &m.counter("native_intersequence_total", backend_label);
    _mNativeStriped =
        &m.counter("native_striped_total", backend_label);
    _mTracebackCells = &m.counter("traceback_cells_total");
    _mAlignments = &m.counter("serve_alignments_total");
    _mTracebacksSkipped =
        &m.counter("serve_tracebacks_skipped_total");
    _mTracebackUs = &m.histogram("serve_traceback_us");
    _mScanUs = &m.histogram("serve_scan_us");
    _mBatchUs = &m.histogram("serve_batch_us");
    _mLatencyUs = &m.histogram("serve_latency_us");
    refreshPoolMetrics();
}

void
Engine::refreshPoolMetrics()
{
    const core::ThreadPool::Stats s = _pool.stats();
    obs::Registry &m = *_metrics;
    m.counter("pool_tasks_total").inc(s.tasksRun - _poolTasksSeen);
    _poolTasksSeen = s.tasksRun;
    m.counter("pool_steals_total").inc(s.steals - _poolStealsSeen);
    _poolStealsSeen = s.steals;
    m.gauge("pool_queue_depth")
        .set(static_cast<double>(s.queueDepth));
    m.gauge("pool_queue_depth_max")
        .set(static_cast<double>(s.maxQueueDepth));
    m.gauge("pool_workers").set(static_cast<double>(s.workers));
}

std::vector<Response>
Engine::runBatch(const Request *requests, std::size_t count,
                 const BatchControl *control)
{
    const obs::ScopedSpan batch_span(*_mBatchUs);
    const std::size_t shards = _sharded.numShards();
    const double total =
        static_cast<double>(_db->totalResidues());

    _mRequests->inc(count);
    _mBatches->inc();

    // Phase 1: build each *distinct* request's query state
    // (profile / word index) once, in parallel. Identical
    // (kind, query-residues) requests in the batch share one
    // PreparedQuery — profiles are read-only during scans, so
    // sharing is free. Batches are small, so the quadratic group
    // scan is cheaper than hashing the residues.
    std::vector<std::size_t> rep(count);
    for (std::size_t r = 0; r < count; ++r) {
        rep[r] = r;
        for (std::size_t p = 0; p < r; ++p) {
            if (requests[p].kind == requests[r].kind
                && requests[p].query.residues()
                    == requests[r].query.residues()) {
                rep[r] = p;
                break;
            }
        }
    }
    std::vector<std::size_t> unique;
    for (std::size_t r = 0; r < count; ++r)
        if (rep[r] == r)
            unique.push_back(r);
    _mBatchUnique->inc(unique.size());
    _mDedupSaved->inc(count - unique.size());

    // A representative whose every sharer is already past its
    // deadline is not worth preparing: all of its scans would be
    // skipped anyway. (Time is monotone, so "expired now" stays
    // expired at scan time.)
    std::vector<char> skip_prepare(count, 0);
    if (control != nullptr && control->deadlinesUs != nullptr) {
        for (const std::size_t u : unique) {
            bool all_expired = true;
            for (std::size_t r = u; r < count && all_expired; ++r)
                if (rep[r] == u && !control->expired(r))
                    all_expired = false;
            skip_prepare[u] = all_expired ? 1 : 0;
        }
    }

    std::vector<std::unique_ptr<PreparedQuery>> prepared(count);
    _pool.parallelFor(unique.size(), [&](std::size_t i) {
        const std::size_t r = unique[i];
        if (skip_prepare[r])
            return;
        prepared[r] = std::make_unique<PreparedQuery>(
            requests[r], *_matrix, _cfg.gaps, _cfg.fasta,
            _cfg.blast, _cfg.backend, _cfg.blastn);
    });

    // Phase 1.5: probe the seed index once per distinct eligible
    // request, in parallel. The probe never touches subject
    // residues and its cost is independent of the shard count, so
    // it runs at request granularity; shard tasks then slice the
    // candidate list. A probe that marks too much of the database
    // falls back to the full scan (the index would not pay for
    // itself at that density).
    struct ProbeOutcome
    {
        std::vector<std::uint32_t> candidates;
        bool fallback = false;
    };
    std::vector<std::unique_ptr<ProbeOutcome>> probes(count);
    std::uint64_t index_probes = 0;
    std::uint64_t index_candidates = 0;
    std::uint64_t index_fallbacks = 0;
    if (_cfg.seedIndex != nullptr) {
        _pool.parallelFor(unique.size(), [&](std::size_t i) {
            const std::size_t r = unique[i];
            const PreparedQuery *q = prepared[r].get();
            if (q == nullptr
                || q->kind() != kernels::Workload::Blast
                || q->neighborhoodIndex() == nullptr
                || _cfg.seedIndex->wordSize()
                    != q->blastParams().wordSize)
                return;
            auto probe = std::make_unique<ProbeOutcome>();
            probe->candidates = index::probeCandidates(
                *_cfg.seedIndex, *q->neighborhoodIndex(),
                q->blastParams(), 0, _db->size());
            probe->fallback =
                static_cast<double>(probe->candidates.size())
                > _cfg.indexMaxSelectivity
                    * static_cast<double>(_db->size());
            probes[r] = std::move(probe);
        });
        for (const std::size_t u : unique)
            if (probes[u] != nullptr) {
                ++index_probes;
                index_candidates += probes[u]->candidates.size();
                if (probes[u]->fallback)
                    ++index_fallbacks;
            }
    }

    // Phase 2: fan (request x shard) scans out; each task writes
    // its preallocated slot, so the schedule cannot reorder
    // results. The deadline check sits immediately before the
    // scan: an expired request stops consuming scan time at shard
    // granularity.
    ScanRoute route;
    route.interseqCutover = _cfg.interseqCutover;

    std::vector<ShardScan> scans(count * shards);
    _pool.parallelFor(count * shards, [&](std::size_t u) {
        const std::size_t r = u / shards;
        const std::size_t s = u % shards;
        if ((control != nullptr && control->expired(r))
            || prepared[rep[r]] == nullptr) {
            scans[u].skipped = true;
            return;
        }
        const std::size_t top_k = requests[r].topK
            ? requests[r].topK
            : _cfg.topK;
        ScanRoute task_route = route;
        const ProbeOutcome *probe = probes[rep[r]].get();
        if (probe != nullptr && !probe->fallback)
            task_route.indexCandidates = &probe->candidates;
        const WallClock::time_point t0 = WallClock::now();
        scans[u] = scanShard(*prepared[rep[r]], *_db,
                             _sharded.shard(s), top_k, _karlin,
                             total, task_route);
        scans[u].elapsedUs = elapsedUs(t0, WallClock::now());
        _mScanUs->record(scans[u].elapsedUs);
    });

    // Phase 3: merge per-shard top-K lists, in request order, and
    // fold the scan accounting into the batch-level counters.
    std::uint64_t cells = 0;
    std::uint64_t karlin_fills = 0;
    std::uint64_t shards_scanned = 0;
    std::uint64_t shards_skipped = 0;
    align::NativeScanStats native;
    std::vector<Response> out(count);
    for (std::size_t r = 0; r < count; ++r) {
        Response &resp = out[r];
        resp.id = requests[r].id;
        resp.kind = requests[r].kind;
        const std::size_t top_k = requests[r].topK
            ? requests[r].topK
            : _cfg.topK;
        std::vector<std::vector<align::SearchHit>> lists;
        lists.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s) {
            ShardScan &scan = scans[r * shards + s];
            if (scan.skipped) {
                ++resp.shardsSkipped;
                ++shards_skipped;
                continue;
            }
            // A prefilter skip (probe found no candidates) is a
            // *complete* answer reached without alignment work, so
            // it counts as a skipped shard in the metrics but never
            // as a deadline skip on the response.
            if (scan.prefilterSkipped)
                ++shards_skipped;
            else
                ++shards_scanned;
            resp.cellsComputed += scan.cells;
            resp.sequencesSearched += scan.sequences;
            resp.residuesScanned += scan.residues;
            resp.scanUs += scan.elapsedUs;
            cells += scan.cells;
            karlin_fills += scan.karlinFills;
            native += scan.native;
            lists.push_back(std::move(scan.hits));
        }
        resp.hits = mergeRanked(lists, top_k);
    }

    // Phase 4: traceback reporting. Strictly after the merge, so
    // the ranked hit list (ids, scores, order) is already final —
    // reporting can only attach alignments, never perturb phase 1.
    // One task per (reporting request, surviving hit); each writes
    // its preallocated alignments[h] slot, so the schedule cannot
    // reorder anything. The deadline check sits before each
    // traceback, mirroring the per-shard checks of phase 2.
    struct TraceTask
    {
        std::size_t r;
        std::size_t h;
    };
    std::vector<TraceTask> trace_tasks;
    for (std::size_t r = 0; r < count; ++r) {
        if (!requests[r].reportAlignments
            || prepared[rep[r]] == nullptr)
            continue;
        out[r].alignments.resize(out[r].hits.size());
        for (std::size_t h = 0; h < out[r].hits.size(); ++h)
            trace_tasks.push_back(TraceTask{r, h});
    }
    std::uint64_t traceback_cells = 0;
    std::uint64_t alignments_traced = 0;
    std::uint64_t tracebacks_skipped = 0;
    if (!trace_tasks.empty()) {
        std::vector<align::TracebackStats> task_stats(
            trace_tasks.size());
        std::vector<double> task_us(trace_tasks.size(), 0.0);
        std::vector<char> task_skipped(trace_tasks.size(), 0);
        _pool.parallelFor(trace_tasks.size(), [&](std::size_t i) {
            const TraceTask &task = trace_tasks[i];
            if (control != nullptr && control->expired(task.r)) {
                task_skipped[i] = 1;
                return;
            }
            const align::SearchHit &hit =
                out[task.r].hits[task.h];
            const WallClock::time_point t0 = WallClock::now();
            out[task.r].alignments[task.h] =
                prepared[rep[task.r]]->traceback(
                    (*_db)[hit.dbIndex], hit, &task_stats[i]);
            task_us[i] = elapsedUs(t0, WallClock::now());
            _mTracebackUs->record(task_us[i]);
        });
        for (std::size_t i = 0; i < trace_tasks.size(); ++i) {
            Response &resp = out[trace_tasks[i].r];
            if (task_skipped[i]) {
                ++resp.tracebacksSkipped;
                ++tracebacks_skipped;
                continue;
            }
            ++alignments_traced;
            resp.tracebackCells += task_stats[i].totalCells;
            resp.tracebackUs += task_us[i];
            traceback_cells += task_stats[i].totalCells;
        }
    }

    _mCells->inc(cells);
    _mKarlinFills->inc(karlin_fills);
    _mShardsScanned->inc(shards_scanned);
    _mShardsSkipped->inc(shards_skipped);
    _mIndexProbes->inc(index_probes);
    _mIndexCandidates->inc(index_candidates);
    _mIndexFallbacks->inc(index_fallbacks);
    _mNativeScans->inc(native.scans);
    _mNativeRescans16->inc(native.rescans16);
    _mNativeRescansScalar->inc(native.rescansScalar);
    _mNativeInterseq->inc(native.interSequence);
    _mNativeStriped->inc(native.striped);
    _mTracebackCells->inc(traceback_cells);
    _mAlignments->inc(alignments_traced);
    _mTracebacksSkipped->inc(tracebacks_skipped);
    return out;
}

Response
Engine::serve(const Request &request)
{
    const WallClock::time_point t0 = WallClock::now();
    std::vector<Response> batch = runBatch(&request, 1, nullptr);
    batch.front().serviceUs = elapsedUs(t0, WallClock::now());
    return std::move(batch.front());
}

std::vector<Response>
Engine::serveBatch(const std::vector<Request> &requests)
{
    const WallClock::time_point t0 = WallClock::now();
    std::vector<Response> out =
        runBatch(requests.data(), requests.size(), nullptr);
    const double service = elapsedUs(t0, WallClock::now());
    for (Response &r : out)
        r.serviceUs = service;
    return out;
}

std::vector<Response>
Engine::serveBatch(const std::vector<Request> &requests,
                   const BatchControl &control)
{
    const WallClock::time_point t0 = WallClock::now();
    std::vector<Response> out =
        runBatch(requests.data(), requests.size(), &control);
    const double service = elapsedUs(t0, WallClock::now());
    for (Response &r : out)
        r.serviceUs = service;
    return out;
}

StreamReport
Engine::serveStream(const std::vector<Request> &requests)
{
    StreamReport report;
    report.jobs = _pool.size();
    report.shards = _sharded.numShards();
    report.batchSize = _cfg.batch;
    report.responses.reserve(requests.size());

    const WallClock::time_point arrival = WallClock::now();
    for (std::size_t begin = 0; begin < requests.size();
         begin += _cfg.batch) {
        const std::size_t count =
            std::min(_cfg.batch, requests.size() - begin);
        const WallClock::time_point dispatch = WallClock::now();
        std::vector<Response> batch =
            runBatch(requests.data() + begin, count, nullptr);
        const WallClock::time_point done = WallClock::now();

        const double queue = elapsedUs(arrival, dispatch);
        const double service = elapsedUs(dispatch, done);
        for (Response &r : batch) {
            r.queueUs = queue;
            r.serviceUs = service;
            report.latency.record(r.latencyUs());
            _mLatencyUs->record(r.latencyUs());
            report.totalCells += r.cellsComputed;
            report.cpuMs += (r.scanUs + r.tracebackUs) / 1000.0;
            report.responses.push_back(std::move(r));
        }
        ++report.batches;
    }
    report.wallMs =
        elapsedUs(arrival, WallClock::now()) / 1000.0;
    return report;
}

} // namespace bioarch::serve
