/**
 * @file
 * Latency accounting for the serving engine. One implementation
 * now backs serve latency, queue-wait, and scan-time alike: the
 * observability subsystem's obs::Histogram (exact percentiles via
 * core/percentile.hh, power-of-two buckets whose boundaries are
 * computed once at construction). LatencyRecorder remains as a
 * thin wrapper keeping the original summary()/histogram() API for
 * the CLI report and the bench footers.
 */

#ifndef BIOARCH_SERVE_LATENCY_HH
#define BIOARCH_SERVE_LATENCY_HH

#include <cstddef>
#include <vector>

#include "obs/metrics.hh"

namespace bioarch::serve
{

/** Percentile summary of a set of latency samples. */
struct LatencySummary
{
    std::size_t count = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
};

/** One bar of the latency histogram: [loUs, hiUs) microseconds. */
struct LatencyBucket
{
    double loUs = 0.0;
    double hiUs = 0.0;
    std::size_t count = 0;
};

/**
 * Records one latency sample per request into an obs::Histogram.
 * Samples are kept (a request stream is bounded), so percentiles
 * are exact, not sketched. Thread-safe, like the histogram it
 * wraps.
 */
class LatencyRecorder
{
  public:
    void record(double us) { _histogram.record(us); }

    std::size_t count() const { return _histogram.count(); }
    /** Copy of the raw samples, in recording order. */
    std::vector<double> samplesUs() const
    {
        return _histogram.samples();
    }

    /** The shared histogram (e.g. to snapshot or merge). */
    const obs::Histogram &histogram_metric() const
    {
        return _histogram;
    }

    LatencySummary summary() const;

    /**
     * Power-of-two bucketed histogram: bucket i spans
     * [2^i, 2^(i+1)) us, with leading/trailing empty buckets
     * trimmed; the first bucket also collects sub-microsecond
     * samples (lo = 0 when it is bucket zero). Empty recorder =>
     * empty histogram. Bucket boundaries come precomputed from
     * obs::Histogram::bucketBounds() — they are never rebuilt per
     * call.
     */
    std::vector<LatencyBucket> histogram() const;

  private:
    obs::Histogram _histogram;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_LATENCY_HH
