/**
 * @file
 * Latency accounting for the serving engine: per-request samples,
 * percentile summaries (p50/p95/p99 via core/percentile.hh), and a
 * power-of-two bucketed histogram for the CLI report.
 */

#ifndef BIOARCH_SERVE_LATENCY_HH
#define BIOARCH_SERVE_LATENCY_HH

#include <cstddef>
#include <vector>

namespace bioarch::serve
{

/** Percentile summary of a set of latency samples. */
struct LatencySummary
{
    std::size_t count = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
};

/** One bar of the latency histogram: [loUs, hiUs) microseconds. */
struct LatencyBucket
{
    double loUs = 0.0;
    double hiUs = 0.0;
    std::size_t count = 0;
};

/**
 * Records one latency sample per request. Samples are kept (a
 * request stream is bounded), so percentiles are exact, not
 * sketched.
 */
class LatencyRecorder
{
  public:
    void record(double us) { _samplesUs.push_back(us); }

    std::size_t count() const { return _samplesUs.size(); }
    const std::vector<double> &samplesUs() const
    {
        return _samplesUs;
    }

    LatencySummary summary() const;

    /**
     * Power-of-two bucketed histogram: bucket i spans
     * [2^i, 2^(i+1)) us, with leading/trailing empty buckets
     * trimmed. Empty recorder => empty histogram.
     */
    std::vector<LatencyBucket> histogram() const;

  private:
    std::vector<double> _samplesUs;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_LATENCY_HH
