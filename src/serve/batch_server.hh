/**
 * @file
 * The batch-serving interface ServeLoop dispatches into. Engine
 * implements it directly (one fixed database); ReloadableEngine
 * (reload.hh) implements it by delegating to the engine of the
 * current database epoch, which is how hot reload slides a new
 * database under a running loop without the loop noticing.
 */

#ifndef BIOARCH_SERVE_BATCH_SERVER_HH
#define BIOARCH_SERVE_BATCH_SERVER_HH

#include <cstddef>
#include <vector>

#include "clock.hh"
#include "obs/metrics.hh"
#include "request.hh"

namespace bioarch::serve
{

/**
 * Per-request cancellation plumbed into a batch: request r's
 * shard-scan tasks check deadlinesUs[r] (absolute, in @p clock's
 * time base; <= 0 means no deadline) immediately before scanning
 * and skip the scan once the deadline has passed — cancellation at
 * shard-scan granularity. Skipped shards are reported in
 * Response::shardsSkipped.
 */
struct BatchControl
{
    /** Per-request absolute deadlines (may be nullptr). */
    const double *deadlinesUs = nullptr;
    /** Clock the deadlines are expressed in. */
    const Clock *clock = nullptr;

    bool
    expired(std::size_t r) const
    {
        return deadlinesUs != nullptr && clock != nullptr
            && deadlinesUs[r] > 0.0
            && clock->nowUs() >= deadlinesUs[r];
    }
};

/**
 * Anything that can serve a batch of requests and report metrics.
 * Implementations must tolerate serveBatch() from one dispatcher
 * thread at a time (ServeLoop's contract).
 */
class BatchServer
{
  public:
    virtual ~BatchServer() = default;

    /** Serve one batch with per-request deadline cancellation. */
    virtual std::vector<Response>
    serveBatch(const std::vector<Request> &requests,
               const BatchControl &control) = 0;

    /** Registry the server reports into (stable reference). */
    virtual obs::Registry &metrics() = 0;

    /** Batch size ServeLoop uses when LoopConfig::batch is 0. */
    virtual std::size_t defaultBatch() const = 0;

    /** Mirror worker-pool counters into the registry. */
    virtual void refreshPoolMetrics() = 0;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_BATCH_SERVER_HH
