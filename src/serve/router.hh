/**
 * @file
 * The scatter-gather replica router: a BatchServer that owns N
 * engine replicas — each a ReloadableEngine with its own
 * core::ThreadPool and its own pinned database epoch — and fans
 * each batch's cache misses out across them.
 *
 * Why replicas instead of more shards: one engine's (request x
 * shard) fan-out already saturates its pool for a single large
 * batch, but a pool is a single queue-depth domain — a slow batch
 * monopolizes it. Replicas give the serving tier independent
 * queue-depth domains with independent epoch pins, the unit a
 * fleet scales by (one replica ~ one NUMA node or one host).
 *
 * Dispatch is least-loaded: the router splits the batch's cache
 * misses into contiguous chunks (at least minChunk requests each,
 * never more chunks than replicas) and assigns chunks to replicas
 * in ascending (in-flight requests, lifetime requests, id) order.
 * Chunks run concurrently — the first on the calling thread, the
 * rest on gather threads — and responses are stitched back in
 * request order.
 *
 * Determinism: a replica serves its chunk exactly as a lone engine
 * would serve those requests (same shard layout, same merge
 * order), so the ranked hit lists are bit-identical to a serial
 * single-engine scan regardless of the replica count or which
 * replica served which chunk (tests/router_test.cc asserts the
 * full replicas x cache x jobs matrix).
 *
 * The result cache (cache.hh) fronts the replicas: lookups are
 * keyed by the epoch published at batch start, and inserts are
 * keyed by the epoch the serving replica actually pinned
 * (serveBatchPinned), so a hot reload landing mid-batch can never
 * poison the cache with stale hits under a fresh epoch key.
 * Deadline-truncated responses (shardsSkipped > 0) are never
 * cached.
 *
 * Observability: per-replica serve_replica_depth gauges and
 * serve_replica_{requests,batches}_total counters (labelled
 * replica="k"), serve_cache_hit_us for cache-served requests, and
 * the cache's own hit/miss/eviction/bytes series.
 */

#ifndef BIOARCH_SERVE_ROUTER_HH
#define BIOARCH_SERVE_ROUTER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "batch_server.hh"
#include "cache.hh"
#include "engine.hh"
#include "index/epoch.hh"
#include "reload.hh"

namespace bioarch::serve
{

/** Router tunables. */
struct RouterConfig
{
    /** Engine replicas (min 1), each with its own thread pool. */
    std::size_t replicas = 1;
    /** Per-replica engine knobs; metrics is shared fleet-wide. */
    EngineConfig engine;
    /** Result cache; capacityBytes 0 serves every request live. */
    CacheConfig cache;
    /**
     * Smallest chunk worth scattering: a batch of fewer than
     * 2 * minChunk misses stays on one replica rather than paying
     * two pool handoffs for a handful of requests.
     */
    std::size_t minChunk = 4;
};

/**
 * BatchServer over N engine replicas + a shared result cache.
 * serveBatch follows the one-dispatcher-at-a-time contract;
 * reload() may be called from any thread while serving.
 */
class ReplicaRouter final : public BatchServer
{
  public:
    ReplicaRouter(std::shared_ptr<const index::DbEpoch> epoch,
                  RouterConfig config = {});

    /** Publish @p epoch to every replica (atomic per replica;
     * in-flight chunks finish on the epoch they pinned). */
    void reload(std::shared_ptr<const index::DbEpoch> epoch);

    std::size_t replicas() const { return _replicas.size(); }
    std::uint64_t epochNumber() const;
    const RouterConfig &config() const { return _cfg; }
    const ResultCache &cache() const { return *_cache; }

    std::vector<Response>
    serveBatch(const std::vector<Request> &requests,
               const BatchControl &control) override;

    obs::Registry &metrics() override { return *_metrics; }
    std::size_t defaultBatch() const override;
    void refreshPoolMetrics() override;

  private:
    struct Replica
    {
        std::unique_ptr<ReloadableEngine> engine;
        /** Requests currently being served by this replica. */
        std::size_t inFlight = 0;
        /** Lifetime requests routed here (dispatch tie-break). */
        std::uint64_t assigned = 0;
        obs::Gauge *mDepth = nullptr;
        obs::Counter *mRequests = nullptr;
        obs::Counter *mBatches = nullptr;
    };
    /** One contiguous run of cache misses bound to a replica. */
    struct Chunk
    {
        std::size_t replica = 0;
        std::vector<Request> requests;
        std::vector<double> deadlinesUs;
        /** Indices into the caller's batch, in chunk order. */
        std::vector<std::size_t> slots;
        std::vector<Response> responses;
        std::uint64_t epoch = 0;
    };

    void serveChunk(Chunk &chunk, const BatchControl &control);

    RouterConfig _cfg;
    std::unique_ptr<obs::Registry> _ownedMetrics;
    obs::Registry *_metrics;
    std::unique_ptr<ResultCache> _cache;
    obs::Histogram *_mCacheHitUs;

    /** Guards inFlight/assigned across dispatch and gather. */
    std::mutex _mutex;
    std::vector<Replica> _replicas;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_ROUTER_HH
