/**
 * @file
 * The online serving loop in front of serve::Engine: the request
 * lifecycle layer that turns the closed-loop batch runner into a
 * service with admission control, deadlines, load shedding, and
 * graceful shutdown.
 *
 * Lifecycle of one request:
 *
 *   submit() ── admission ──> queued ── dispatch ──> engine batch
 *      │            │                        │
 *      │            ├─ queue full ─────────> RetryAfter (shed)
 *      │            └─ deadline unmeetable ─> RetryAfter (shed)
 *      │                                     │
 *      │              deadline passed before/while scanning
 *      │                                     └──> Deadline
 *      └─ after stop()/drain() began ──────────> RetryAfter
 *
 * Admission is a bounded multi-producer queue with three priority
 * classes (Interactive > Normal > Bulk); dispatch pops strictly by
 * class and groups up to the engine batch size per engine call.
 * Deadlines are absolute timestamps on the loop's Clock and are
 * enforced twice: at dispatch (an expired request never reaches
 * the engine) and at shard-scan granularity inside the engine
 * (Engine::BatchControl), so a request that expires mid-batch
 * stops consuming scan time at the next shard boundary.
 *
 * Multi-tenancy. Every request is billed to Request::tenant:
 *  - Admission charges the tenant's token bucket (TenantQuota:
 *    rateQps tokens/s up to burst). An empty bucket sheds with
 *    loop_shed_quota_total and a retry-after hint equal to the
 *    bucket's actual refill time — not the EWMA service time,
 *    which says nothing about when the quota recovers.
 *  - Within each priority class, dequeue is weighted deficit
 *    round-robin across the tenants with queued work: a tenant
 *    earns `weight` deficit per round and spends 1 per dispatched
 *    request, so over any backlogged window tenants split the
 *    class's dispatch slots in weight ratio and no tenant is
 *    starved by another's offered load. FIFO within a tenant.
 *  - Tenants not named in LoopConfig::tenants get the default
 *    quota (unlimited rate, weight 1); with a single tenant the
 *    schedule degenerates to exactly the old strict-priority FIFO.
 *  - Per-tenant serve_tenant_* counters satisfy the same identity
 *    as the global loop_* family, per tenant.
 *
 * Determinism: the loop itself never reads the wall clock — all
 * timing goes through the Clock — so under a ManualClock every
 * admission, shed, deadline, and drop decision is a pure function
 * of (submission order, clock values), bit-for-bit reproducible
 * across engine worker counts. Tests drive the loop synchronously
 * with pumpOne()/pumpAll(); production runs start() and lets the
 * dispatcher thread drain the queue.
 *
 * Counter identity (asserted by tests and the CI smoke step):
 *   loop_served_total + loop_shed_* + loop_deadline_expired_total
 *     + loop_dropped_total == loop_offered_total
 * once the loop has drained or stopped.
 */

#ifndef BIOARCH_SERVE_LOOP_HH
#define BIOARCH_SERVE_LOOP_HH

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "batch_server.hh"
#include "clock.hh"
#include "obs/metrics.hh"
#include "request.hh"

namespace bioarch::serve
{

/** Admission classes, dispatched strictly in this order. */
enum class Priority : std::uint8_t
{
    Interactive = 0,
    Normal = 1,
    Bulk = 2,
};
inline constexpr std::size_t numPriorities = 3;

std::string_view priorityName(Priority p);

/** Terminal state of one submitted request. */
enum class LoopStatus : std::uint8_t
{
    Pending,    ///< admitted, not yet dispatched/completed
    Served,     ///< full ranked hit list delivered in time
    RetryAfter, ///< shed at admission; retry after the hint
    Deadline,   ///< deadline expired before/while scanning
    Dropped,    ///< queued at shutdown and dropped
};

std::string_view loopStatusName(LoopStatus s);

/**
 * Admission quota and fair-share weight of one tenant. Tenants
 * without an entry get the defaults below: unlimited rate,
 * weight 1 — i.e. multi-tenancy is opt-in per tenant.
 */
struct TenantQuota
{
    std::uint32_t tenant = 0;
    /** Sustained admissions/s; <= 0 = unlimited (no bucket). */
    double rateQps = 0.0;
    /** Bucket capacity: admissions that may burst at once. */
    double burst = 1.0;
    /** Relative WDRR share within each priority class (> 0). */
    double weight = 1.0;
};

/** Loop tunables. */
struct LoopConfig
{
    /** Queued-request bound across all priority classes. */
    std::size_t queueCapacity = 64;
    /** Requests per engine call; 0 = the engine's batch size. */
    std::size_t batch = 0;
    /**
     * Deadline applied by submit() when the caller passes a
     * negative deadline: now + defaultDeadlineUs (0 = none).
     */
    double defaultDeadlineUs = 0.0;
    /** Floor of the retry-after hint returned with a shed. */
    double minRetryAfterUs = 1000.0;
    /** Per-tenant quotas/weights (absent tenants: defaults). */
    std::vector<TenantQuota> tenants;
};

/** Outcome of submit(): admitted with a ticket, or shed. */
struct Submission
{
    bool admitted = false;
    /** Index into results(); valid for shed submissions too. */
    std::uint64_t ticket = 0;
    /** When not admitted: suggested client back-off (us). */
    double retryAfterUs = 0.0;
};

/** Terminal record of one submission (indexed by ticket). */
struct LoopResult
{
    std::uint64_t id = 0; ///< Request::id
    LoopStatus status = LoopStatus::Pending;
    Priority priority = Priority::Normal;
    std::uint32_t tenant = 0; ///< Request::tenant
    double arrivalUs = 0.0;  ///< loop-clock submit time
    double dispatchUs = 0.0; ///< loop-clock dispatch time
    double doneUs = 0.0;     ///< loop-clock completion time
    /** Dispatch sequence number (0-based; shed/dropped get none). */
    std::uint64_t dispatchOrder = 0;
    /** The engine's answer (Served; partial under Deadline). */
    Response response;

    double queueWaitUs() const { return dispatchUs - arrivalUs; }
    double latencyUs() const { return doneUs - arrivalUs; }
};

/**
 * The loop. One ServeLoop fronts one BatchServer — a plain Engine,
 * or a ReloadableEngine whose database epoch can be hot-swapped
 * mid-run; submissions may come from any number of threads,
 * dispatch happens either on the caller's thread (pumpOne/pumpAll
 * — deterministic mode) or on the loop's own dispatcher thread
 * (start/drain/stop). Do not mix pump calls with a started
 * dispatcher.
 */
class ServeLoop
{
  public:
    /**
     * @param clock time source for arrivals/deadlines; nullptr =
     *        an internal SteadyClock. Must outlive the loop.
     */
    explicit ServeLoop(BatchServer &engine, LoopConfig config = {},
                       const Clock *clock = nullptr);
    /** Stops as stop() does when the dispatcher is running. */
    ~ServeLoop();

    ServeLoop(const ServeLoop &) = delete;
    ServeLoop &operator=(const ServeLoop &) = delete;

    const LoopConfig &config() const { return _cfg; }
    const Clock &clock() const { return *_clock; }
    obs::Registry &metrics() { return _engine->metrics(); }

    /**
     * Admission control. Sheds (status RetryAfter, with a
     * retry-after hint) when the queue is at capacity, when the
     * deadline is unmeetable — already expired, or closer than
     * the EWMA of recent per-request service time while work is
     * queued ahead — or after shutdown began.
     *
     * @param deadlineUs absolute loop-clock deadline; negative =
     *        config default; 0 = no deadline
     */
    Submission submit(Request request,
                      Priority priority = Priority::Normal,
                      double deadlineUs = -1.0);

    /**
     * Synchronously dispatch one batch on the calling thread.
     * Returns the number of requests taken off the queue (served
     * or deadline-expired); 0 when the queue is empty.
     */
    std::size_t pumpOne();
    /** pumpOne() until the queue is empty; returns total taken. */
    std::size_t pumpAll();

    /** Start the background dispatcher thread. */
    void start();
    /**
     * Graceful drain: stop admitting, serve everything already
     * queued, then stop the dispatcher. Callable with or without
     * a running dispatcher (without one, pumps on this thread).
     */
    void drain();
    /**
     * Graceful shutdown: stop admitting, let the in-flight batch
     * finish (its requests are served, never cancelled), drop
     * every still-queued request with status Dropped — in ticket
     * order, deterministically — and stop the dispatcher.
     */
    void stop();

    bool running() const;
    std::size_t queueDepth() const;

    /**
     * Terminal per-ticket records. Stable to read after drain(),
     * stop(), or — in pump mode — whenever no pump is executing.
     */
    std::vector<LoopResult> results() const;

  private:
    struct Queued
    {
        Request request;
        Priority priority = Priority::Normal;
        std::uint64_t ticket = 0;
        double deadlineUs = 0.0;
    };
    /** One tenant's bucket, per-class queues, and counters. */
    struct TenantState
    {
        double rateQps = 0.0; ///< <= 0: no bucket
        double burst = 1.0;
        double weight = 1.0;
        double tokens = 0.0;
        double lastRefillUs = 0.0;
        std::array<std::deque<Queued>, numPriorities> queues;
        /** WDRR credit per class: earn weight, spend 1/request. */
        std::array<double, numPriorities> deficit{};
        /** Whether the tenant sits in _ring[c]. */
        std::array<bool, numPriorities> inRing{};
        obs::Counter *mOffered = nullptr;
        obs::Counter *mAdmitted = nullptr;
        obs::Counter *mServed = nullptr;
        obs::Counter *mShed = nullptr;
        obs::Counter *mDeadlineExpired = nullptr;
        obs::Counter *mDropped = nullptr;
    };

    void dispatcherLoop();
    /** Pop up to one batch: strict priority across classes, WDRR
     * across tenants within a class. Lock must be held. */
    std::vector<Queued> popBatchLocked();
    std::size_t processBatch(std::vector<Queued> batch);
    void dropQueuedLocked();
    double estimatedWaitUsLocked(Priority priority) const;
    /** Find-or-create the tenant's state (registers counters and
     * fills the bucket on first sight). Lock must be held. */
    TenantState &tenantLocked(std::uint32_t tenant, double now);

    BatchServer *_engine;
    LoopConfig _cfg;
    SteadyClock _ownedClock;
    const Clock *_clock;

    mutable std::mutex _mutex;
    std::condition_variable _work;
    /** Tenant states; ordered so drops walk a stable order. */
    std::map<std::uint32_t, TenantState> _tenants;
    /** Per class: tenants with queued work, activation order. */
    std::array<std::deque<std::uint32_t>, numPriorities> _ring;
    std::array<std::size_t, numPriorities> _classDepth{};
    std::size_t _depth = 0;
    /** Requests dispatched but not yet completed. */
    std::size_t _inFlight = 0;
    bool _admitting = true;
    bool _stopRequested = false;
    bool _dropQueued = false;
    std::thread _dispatcher;
    bool _started = false;
    std::vector<LoopResult> _results;
    std::uint64_t _dispatchSeq = 0;
    /** EWMA of per-request engine service time (loop-clock us). */
    double _ewmaServiceUs = 0.0;

    // Counter handles (registered in the engine's registry).
    obs::Counter *_mOffered;
    obs::Counter *_mAdmitted;
    obs::Counter *_mServed;
    obs::Counter *_mShedQueueFull;
    obs::Counter *_mShedDeadline;
    obs::Counter *_mShedQuota;
    obs::Counter *_mShedShutdown;
    obs::Counter *_mDeadlineExpired;
    obs::Counter *_mDropped;
    obs::Gauge *_mQueueDepth;
    obs::Histogram *_mQueueWaitUs;
    obs::Histogram *_mLatencyUs;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_LOOP_HH
