/**
 * @file
 * The epoch-keyed result cache of the serving fleet: a bounded,
 * sharded LRU mapping (kind, query digest, db epoch, top-K,
 * backend) to the ranked hit list that a full scan would produce.
 *
 * The batch-level dedup in Engine::runBatch is the degenerate
 * single-batch case of this cache: identical requests inside one
 * batch share one PreparedQuery and one scan. The cache promotes
 * that across batches, tenants, and replicas — a repeated query
 * returns its ranked hits in microseconds without touching the
 * scan path at all.
 *
 * Correctness rules:
 *  - The key includes the database epoch, so a hot reload
 *    invalidates naturally: post-swap lookups use the new epoch
 *    number, never match pre-swap entries, and the stale entries
 *    age out of the LRU. A cache can never serve hits from a
 *    database that is no longer published.
 *  - The 64-bit FNV-1a digest (core/digest.hh) is only the hash;
 *    equality compares the full key, query residues included, so a
 *    digest collision is a miss, never a wrong answer. Hits are
 *    therefore bit-for-bit the stored scan results.
 *  - Only complete responses are inserted (the router refuses
 *    deadline-truncated partials), so a hit is always the full
 *    ranked answer.
 *
 * Concurrency: lookups and inserts hash to one of a power-of-two
 * set of shards and lock only that shard, so replica gather
 * threads and the dispatcher can hit the cache concurrently
 * (exercised under TSAN by tests/router_test.cc). Results are
 * handed out as shared_ptr<const Result>; eviction never
 * invalidates a handed-out result.
 *
 * Observability: serve_cache_hits/misses/evictions/inserts_total
 * counters and serve_cache_bytes / serve_cache_entries gauges; the
 * router records hit latency into serve_cache_hit_us.
 */

#ifndef BIOARCH_SERVE_CACHE_HH
#define BIOARCH_SERVE_CACHE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "align/traceback/cigar.hh"
#include "align/types.hh"
#include "bio/alphabet.hh"
#include "obs/metrics.hh"

namespace bioarch::serve
{

/** Result-cache tunables. */
struct CacheConfig
{
    /**
     * Total capacity in bytes across all cache shards (keys +
     * results + bookkeeping, via ResultCache::entryBytes). 0
     * disables the cache entirely.
     */
    std::size_t capacityBytes = 0;
    /** Lock shards; rounded up to a power of two, min 1. */
    std::size_t shards = 8;
};

/**
 * Bounded sharded-LRU cache of ranked scan results. Thread-safe;
 * every method may be called concurrently.
 */
class ResultCache
{
  public:
    /** Full identity of a cacheable answer. */
    struct Key
    {
        std::uint16_t kind = 0;    ///< kernels::Workload
        std::uint16_t backend = 0; ///< align::SimdBackend
        std::uint32_t topK = 0;    ///< effective (engine-resolved)
        /** 1 when the answer carries phase-2 alignments. A
         * score-only answer never satisfies a reporting request
         * (and vice versa), exactly like a different top-K. */
        std::uint8_t report = 0;
        std::uint64_t epoch = 0;   ///< database epoch number
        std::vector<bio::Residue> query;

        bool
        operator==(const Key &o) const
        {
            return kind == o.kind && backend == o.backend
                && topK == o.topK && report == o.report
                && epoch == o.epoch && query == o.query;
        }
    };

    /** The cached answer: ranked hits + logical scan accounting. */
    struct Result
    {
        std::vector<align::SearchHit> hits;
        /** Phase-2 alignments, index-aligned with hits (empty for
         * score-only answers). Cached with the hits under the same
         * epoch key, so a hit returns both phases at once. */
        std::vector<align::CigarAlignment> alignments;
        std::uint64_t cells = 0;
        std::uint64_t tracebackCells = 0;
        std::uint64_t sequences = 0;
        std::uint64_t residues = 0;
    };

    /** FNV-1a 64 digest of @p key (the shard/bucket hash). */
    static std::uint64_t digest(const Key &key);

    /** Approximate footprint charged against capacityBytes. */
    static std::size_t entryBytes(const Key &key,
                                  const Result &result);

    /**
     * @param metrics registry the hit/miss/eviction counters and
     *        the bytes/entries gauges are registered in; must
     *        outlive the cache.
     */
    ResultCache(const CacheConfig &config, obs::Registry &metrics);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    bool enabled() const { return _capacityBytes > 0; }
    std::size_t capacityBytes() const { return _capacityBytes; }
    std::size_t numShards() const { return _shards.size(); }

    /**
     * Look @p key up under @p key_digest (from digest()). A hit
     * refreshes the entry's LRU position and returns the stored
     * result; a miss (including a digest collision with a
     * different key) returns nullptr.
     */
    std::shared_ptr<const Result> lookup(const Key &key,
                                         std::uint64_t key_digest);

    /**
     * Insert @p result for @p key, evicting least-recently-used
     * entries from the key's shard until it fits. Re-inserting a
     * present key replaces the stored result (last write wins). An
     * entry larger than a whole shard's capacity is not inserted.
     */
    void insert(Key key, std::uint64_t key_digest,
                std::shared_ptr<const Result> result);

    /** Current totals (also exported as gauges). */
    std::size_t bytes() const
    {
        return _bytes.load(std::memory_order_relaxed);
    }
    std::size_t entries() const
    {
        return _entries.load(std::memory_order_relaxed);
    }

  private:
    struct Entry
    {
        Key key;
        std::uint64_t digest = 0;
        std::shared_ptr<const Result> result;
        std::size_t bytes = 0;
    };
    /** One lock shard: LRU list (front = most recent) + index. */
    struct Shard
    {
        std::mutex mutex;
        std::list<Entry> lru;
        /** digest -> entry; multimap tolerates digest collisions. */
        std::unordered_multimap<std::uint64_t,
                                std::list<Entry>::iterator>
            index;
        std::size_t bytes = 0;
    };

    Shard &shardFor(std::uint64_t key_digest);
    /** Evict the shard's LRU tail until @p needed bytes fit. */
    void evictLocked(Shard &shard, std::size_t needed);
    void publishGauges();

    std::size_t _capacityBytes;
    std::size_t _shardCapacity;
    std::vector<std::unique_ptr<Shard>> _shards;
    std::size_t _shardMask;

    std::atomic<std::size_t> _bytes{0};
    std::atomic<std::size_t> _entries{0};

    obs::Counter *_mHits;
    obs::Counter *_mMisses;
    obs::Counter *_mEvictions;
    obs::Counter *_mInserts;
    obs::Gauge *_mBytes;
    obs::Gauge *_mEntries;
};

} // namespace bioarch::serve

#endif // BIOARCH_SERVE_CACHE_HH
