#include "bpred.hh"

#include <bit>

namespace bioarch::sim
{

namespace
{

/** Round up to a power of two, minimum 2. */
std::uint64_t
ceilPow2(int v)
{
    std::uint64_t p = 2;
    while (p < static_cast<std::uint64_t>(v))
        p <<= 1;
    return p;
}

/** 2-bit saturating counter helpers. */
inline bool counterTaken(std::uint8_t c) { return c >= 2; }

inline std::uint8_t
counterUpdate(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(int entries)
    : _table(ceilPow2(entries), 1), _mask(ceilPow2(entries) - 1)
{
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return counterTaken(_table[pc & _mask]);
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = _table[pc & _mask];
    c = counterUpdate(c, taken);
}

GsharePredictor::GsharePredictor(int entries)
    : _table(ceilPow2(entries), 1), _mask(ceilPow2(entries) - 1),
      _historyBits(std::countr_zero(ceilPow2(entries)))
{
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return (pc ^ _history) & _mask;
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return counterTaken(_table[index(pc)]);
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = _table[index(pc)];
    c = counterUpdate(c, taken);
    _history = ((_history << 1) | (taken ? 1 : 0))
        & ((std::uint64_t{1} << _historyBits) - 1);
}

CombinedPredictor::CombinedPredictor(int entries)
    : _bimodal(entries), _gshare(entries),
      _selector(ceilPow2(entries), 1), _mask(ceilPow2(entries) - 1)
{
}

bool
CombinedPredictor::predict(std::uint64_t pc)
{
    _lastBimodal = _bimodal.predict(pc);
    _lastGshare = _gshare.predict(pc);
    const bool use_gshare = counterTaken(_selector[pc & _mask]);
    return use_gshare ? _lastGshare : _lastBimodal;
}

void
CombinedPredictor::update(std::uint64_t pc, bool taken)
{
    // Train the selector toward the component that was right.
    if (_lastBimodal != _lastGshare) {
        std::uint8_t &s = _selector[pc & _mask];
        s = counterUpdate(s, _lastGshare == taken);
    }
    _bimodal.update(pc, taken);
    _gshare.update(pc, taken);
}

std::unique_ptr<DirectionPredictor>
makePredictor(const BranchPredictorConfig &config)
{
    switch (config.kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(
            config.tableEntries);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(
            config.tableEntries);
      case PredictorKind::Combined:
        return std::make_unique<CombinedPredictor>(
            config.tableEntries);
      case PredictorKind::Perfect:
        return std::make_unique<PerfectPredictor>();
    }
    return std::make_unique<CombinedPredictor>(config.tableEntries);
}

Btb::Btb(int entries, int associativity)
    : _assoc(std::max(1, associativity))
{
    _sets = static_cast<int>(
        ceilPow2(std::max(1, entries / _assoc)));
    _setShift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<unsigned>(_sets)));
    _tags.assign(static_cast<std::size_t>(_sets) * _assoc, 0);
    _stamps.assign(_tags.size(), 0);
}

bool
Btb::lookup(std::uint64_t pc)
{
    const std::uint64_t tag = (pc >> _setShift) + 1;
    const int set =
        static_cast<int>(pc & static_cast<unsigned>(_sets - 1));
    const std::size_t base = static_cast<std::size_t>(set) * _assoc;
    ++_clock;
    int victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int way = 0; way < _assoc; ++way) {
        if (_tags[base + way] == tag) {
            _stamps[base + way] = _clock;
            ++_hits;
            return true;
        }
        if (_stamps[base + way] < oldest) {
            oldest = _stamps[base + way];
            victim = way;
        }
    }
    ++_misses;
    _tags[base + victim] = tag;
    _stamps[base + victim] = _clock;
    return false;
}

} // namespace bioarch::sim
