#include "bpred.hh"

#include <bit>

#include "core/digest.hh"

namespace bioarch::sim
{

namespace
{

/** Digest of a byte table plus this predictor's base counters. */
std::uint64_t
tableDigest(const DirectionPredictor &p,
            const std::vector<std::uint8_t> &table,
            std::uint64_t extra = 0)
{
    core::Fnv1a fnv;
    fnv.update64(table.size());
    fnv.update(table.data(), table.size());
    fnv.update64(extra);
    fnv.update64(p.predictions());
    fnv.update64(p.mispredictions());
    return fnv.digest();
}

/** Round up to a power of two, minimum 2. */
std::uint64_t
ceilPow2(int v)
{
    std::uint64_t p = 2;
    while (p < static_cast<std::uint64_t>(v))
        p <<= 1;
    return p;
}

/** 2-bit saturating counter helpers. */
inline bool counterTaken(std::uint8_t c) { return c >= 2; }

inline std::uint8_t
counterUpdate(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(int entries)
    : _table(ceilPow2(entries), 1), _mask(ceilPow2(entries) - 1)
{
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return counterTaken(_table[pc & _mask]);
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = _table[pc & _mask];
    c = counterUpdate(c, taken);
}

std::uint64_t
BimodalPredictor::stateDigest() const
{
    return tableDigest(*this, _table);
}

GsharePredictor::GsharePredictor(int entries)
    : _table(ceilPow2(entries), 1), _mask(ceilPow2(entries) - 1),
      _historyBits(std::countr_zero(ceilPow2(entries)))
{
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return (pc ^ _history) & _mask;
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return counterTaken(_table[index(pc)]);
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = _table[index(pc)];
    c = counterUpdate(c, taken);
    _history = ((_history << 1) | (taken ? 1 : 0))
        & ((std::uint64_t{1} << _historyBits) - 1);
}

std::uint64_t
GsharePredictor::stateDigest() const
{
    return tableDigest(*this, _table, _history);
}

CombinedPredictor::CombinedPredictor(int entries)
    : _bimodal(entries), _gshare(entries),
      _selector(ceilPow2(entries), 1), _mask(ceilPow2(entries) - 1)
{
}

bool
CombinedPredictor::predict(std::uint64_t pc)
{
    _lastBimodal = _bimodal.predict(pc);
    _lastGshare = _gshare.predict(pc);
    const bool use_gshare = counterTaken(_selector[pc & _mask]);
    return use_gshare ? _lastGshare : _lastBimodal;
}

void
CombinedPredictor::update(std::uint64_t pc, bool taken)
{
    // Train the selector toward the component that was right.
    if (_lastBimodal != _lastGshare) {
        std::uint8_t &s = _selector[pc & _mask];
        s = counterUpdate(s, _lastGshare == taken);
    }
    _bimodal.update(pc, taken);
    _gshare.update(pc, taken);
}

std::uint64_t
CombinedPredictor::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_bimodal.stateDigest());
    fnv.update64(_gshare.stateDigest());
    fnv.update64(tableDigest(*this, _selector,
                             (_lastBimodal ? 1u : 0u)
                                 | (_lastGshare ? 2u : 0u)));
    return fnv.digest();
}

std::uint64_t
PerfectPredictor::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_next ? 1 : 0);
    return fnv.digest();
}

std::unique_ptr<DirectionPredictor>
makePredictor(const BranchPredictorConfig &config)
{
    switch (config.kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(
            config.tableEntries);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(
            config.tableEntries);
      case PredictorKind::Combined:
        return std::make_unique<CombinedPredictor>(
            config.tableEntries);
      case PredictorKind::Perfect:
        return std::make_unique<PerfectPredictor>();
    }
    return std::make_unique<CombinedPredictor>(config.tableEntries);
}

Btb::Btb(int entries, int associativity)
    : _assoc(std::max(1, associativity))
{
    _sets = static_cast<int>(
        ceilPow2(std::max(1, entries / _assoc)));
    _setShift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<unsigned>(_sets)));
    _tags.assign(static_cast<std::size_t>(_sets) * _assoc, 0);
    _stamps.assign(_tags.size(), 0);
}

bool
Btb::lookup(std::uint64_t pc)
{
    const std::uint64_t tag = (pc >> _setShift) + 1;
    const int set =
        static_cast<int>(pc & static_cast<unsigned>(_sets - 1));
    const std::size_t base = static_cast<std::size_t>(set) * _assoc;
    ++_clock;
    int victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int way = 0; way < _assoc; ++way) {
        if (_tags[base + way] == tag) {
            _stamps[base + way] = _clock;
            ++_hits;
            return true;
        }
        if (_stamps[base + way] < oldest) {
            oldest = _stamps[base + way];
            victim = way;
        }
    }
    ++_misses;
    _tags[base + victim] = tag;
    _stamps[base + victim] = _clock;
    return false;
}

std::uint64_t
Btb::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_tags.size());
    for (const std::uint64_t t : _tags)
        fnv.update64(t);
    for (const std::uint64_t s : _stamps)
        fnv.update64(s);
    fnv.update64(_clock);
    fnv.update64(_hits);
    fnv.update64(_misses);
    return fnv.digest();
}

} // namespace bioarch::sim
