#include "trauma.hh"

namespace bioarch::sim
{

std::string_view
traumaName(Trauma t)
{
    switch (t) {
      case Trauma::StData: return "st_data";
      case Trauma::RgVfpu: return "rg_vfpu";
      case Trauma::RgVcmplx: return "rg_vcmplx";
      case Trauma::RgVper: return "rg_vper";
      case Trauma::RgVi: return "rg_vi";
      case Trauma::RgCmplx: return "rg_cmplx";
      case Trauma::RgLog: return "rg_log";
      case Trauma::RgBr: return "rg_br";
      case Trauma::RgMem: return "rg_mem";
      case Trauma::RgFpu: return "rg_fpu";
      case Trauma::RgFix: return "rg_fix";
      case Trauma::MmDl1: return "mm_dl1";
      case Trauma::MmDl2: return "mm_dl2";
      case Trauma::MmTlb2: return "mm_tlb2";
      case Trauma::MmTlb1: return "mm_tlb1";
      case Trauma::MmStnd: return "mm_stnd";
      case Trauma::MmDcqf: return "mm_dcqf";
      case Trauma::MmDmqf: return "mm_dmqf";
      case Trauma::MmRoqf: return "mm_roqf";
      case Trauma::MmStqc: return "mm_stqc";
      case Trauma::MmStqf: return "mm_stqf";
      case Trauma::FulVfpu: return "ful_vfpu";
      case Trauma::FulVcmplx: return "ful_vcmplx";
      case Trauma::FulVper: return "ful_vper";
      case Trauma::FulVi: return "ful_vi";
      case Trauma::FulCmplx: return "ful_cmplx";
      case Trauma::FulLog: return "ful_log";
      case Trauma::FulBr: return "ful_br";
      case Trauma::FulMem: return "ful_mem";
      case Trauma::FulFpu: return "ful_fpu";
      case Trauma::FulFix: return "ful_fix";
      case Trauma::DiqVfpu: return "diq_vfpu";
      case Trauma::DiqVcmplx: return "diq_vcmplx";
      case Trauma::DiqVper: return "diq_vper";
      case Trauma::DiqVi: return "diq_vi";
      case Trauma::DiqCmplx: return "diq_cmplx";
      case Trauma::DiqLog: return "diq_log";
      case Trauma::DiqBr: return "diq_br";
      case Trauma::DiqMem: return "diq_mem";
      case Trauma::DiqFpu: return "diq_fpu";
      case Trauma::DiqFix: return "diq_fix";
      case Trauma::Rename: return "rename";
      case Trauma::Decode: return "decode";
      case Trauma::IfLdst: return "if_ldst";
      case Trauma::IfBrch: return "if_brch";
      case Trauma::IfFlit: return "if_flit";
      case Trauma::IfFull: return "if_full";
      case Trauma::IfPred: return "if_pred";
      case Trauma::IfPref: return "if_pref";
      case Trauma::IfL1: return "if_l1";
      case Trauma::IfL15: return "if_l15";
      case Trauma::IfL2: return "if_l2";
      case Trauma::IfTlb2: return "if_tlb2";
      case Trauma::IfTlb1: return "if_tlb1";
      case Trauma::IfNfa: return "if_nfa";
      case Trauma::Other: return "other";
      case Trauma::NumTraumas: break;
    }
    return "?";
}

} // namespace bioarch::sim
