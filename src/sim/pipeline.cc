#include "pipeline.hh"

#include <algorithm>
#include <bit>
#include <type_traits>

#include "core/digest.hh"
#include "ring_buffer.hh"

namespace bioarch::sim
{

double
SimStats::meanOccupancy(const std::vector<std::uint64_t> &h)
{
    std::uint64_t cycles = 0;
    double weighted = 0.0;
    for (std::size_t n = 0; n < h.size(); ++n) {
        cycles += h[n];
        weighted += static_cast<double>(n) * static_cast<double>(h[n]);
    }
    return cycles == 0 ? 0.0 : weighted / static_cast<double>(cycles);
}

std::uint64_t
SimStats::fingerprint() const
{
    // Shared FNV-1a (core/digest.hh); same offset basis, prime,
    // and little-endian u64 mixing as the hand-rolled original, so
    // every pinned golden fingerprint is unchanged.
    core::Fnv1a fnv;
    const auto mix = [&fnv](std::uint64_t v) { fnv.update64(v); };
    const auto mixHist = [&mix](const std::vector<std::uint64_t> &v) {
        mix(v.size());
        for (std::uint64_t x : v)
            mix(x);
    };

    mix(cycles);
    mix(instructions);
    for (std::uint64_t c : traumas.cycles)
        mix(c);
    mix(dl1Accesses);
    mix(dl1Misses);
    mix(l2Accesses);
    mix(l2Misses);
    mix(il1Misses);
    mix(dtlb1Misses);
    mix(dtlb2Misses);
    mix(branchPredictions);
    mix(branchMispredictions);
    mix(btbMisses);
    for (const std::vector<std::uint64_t> &q : queueOccupancy)
        mixHist(q);
    mixHist(inflightOccupancy);
    mixHist(retireQueueOccupancy);
    return fnv.digest();
}

void
SimStats::accumulate(const SimStats &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    for (int t = 0; t < numTraumas; ++t)
        traumas.cycles[static_cast<std::size_t>(t)] +=
            other.traumas.cycles[static_cast<std::size_t>(t)];
    dl1Accesses += other.dl1Accesses;
    dl1Misses += other.dl1Misses;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;
    il1Misses += other.il1Misses;
    dtlb1Misses += other.dtlb1Misses;
    dtlb2Misses += other.dtlb2Misses;
    branchPredictions += other.branchPredictions;
    branchMispredictions += other.branchMispredictions;
    btbMisses += other.btbMisses;

    const auto add_hist = [](std::vector<std::uint64_t> &into,
                             const std::vector<std::uint64_t> &from) {
        if (into.size() < from.size())
            into.resize(from.size(), 0);
        for (std::size_t n = 0; n < from.size(); ++n)
            into[n] += from[n];
    };
    for (int c = 0; c < numFuClasses; ++c)
        add_hist(queueOccupancy[static_cast<std::size_t>(c)],
                 other.queueOccupancy[static_cast<std::size_t>(c)]);
    add_hist(inflightOccupancy, other.inflightOccupancy);
    add_hist(retireQueueOccupancy, other.retireQueueOccupancy);
}

MachineState::MachineState(const SimConfig &config)
    : _dmem(config.memory), _imem(config.memory),
      _btb(config.bpred.btbEntries, config.bpred.btbAssociativity),
      _predictor([&config]()
                     -> std::variant<BimodalPredictor,
                                     GsharePredictor,
                                     CombinedPredictor,
                                     PerfectPredictor> {
          const BranchPredictorConfig &bp = config.bpred;
          switch (bp.kind) {
            case PredictorKind::Bimodal:
              return BimodalPredictor(bp.tableEntries);
            case PredictorKind::Gshare:
              return GsharePredictor(bp.tableEntries);
            case PredictorKind::Combined:
              return CombinedPredictor(bp.tableEntries);
            case PredictorKind::Perfect:
              return PerfectPredictor();
          }
          return CombinedPredictor(bp.tableEntries);
      }()),
      _il1LineShift(std::countr_zero(static_cast<unsigned>(
          std::max(1, config.memory.il1.lineBytes))))
{
}

void
MachineState::warm(const trace::TraceView &window)
{
    // The same structural touches the detailed loop makes, minus
    // all timing: one I-side fetch per new line, predict+train per
    // conditional branch, a BTB probe per taken branch, and a
    // D-side hierarchy access per memory op. Warmup accesses land
    // on the state's own statistics counters; runWindow() measures
    // against a baseline, so they never leak into window stats.
    std::uint64_t last_line = ~std::uint64_t{0};
    std::visit(
        [&](auto &predictor) {
            using P = std::decay_t<decltype(predictor)>;
            for (const isa::Inst &inst : window) {
                // Line bytes are a power of two (the cache model
                // indexes by shift), so this stays off the
                // integer divider — warm() runs this per
                // instruction and it is the sampler's speed limit.
                const std::uint64_t line =
                    inst.byteAddress() >> _il1LineShift;
                if (line != last_line) {
                    _imem.fetch(inst.byteAddress());
                    last_line = line;
                }
                if (inst.isBranch()) {
                    if (inst.conditional) {
                        if constexpr (std::is_same_v<
                                          P, PerfectPredictor>)
                            predictor.setOutcome(inst.taken);
                        predictor.predict(inst.pc);
                        predictor.update(inst.pc, inst.taken);
                    }
                    if (inst.taken)
                        _btb.lookup(inst.pc);
                } else if (inst.isMemory()) {
                    _dmem.access(inst.addr, inst.isStore());
                }
            }
        },
        _predictor);
}

std::uint64_t
MachineState::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_dmem.stateDigest());
    fnv.update64(_imem.stateDigest());
    fnv.update64(_btb.stateDigest());
    fnv.update64(static_cast<std::uint64_t>(_predictor.index()));
    fnv.update64(std::visit(
        [](const auto &p) { return p.stateDigest(); }, _predictor));
    return fnv.digest();
}

namespace
{

constexpr std::uint64_t notReady = ~std::uint64_t{0};
/** Null link for the 32-bit intrusive waiter/wheel lists (trace
 * indices; a trace can never reach 2^32 instructions). */
constexpr std::uint32_t noLink = ~std::uint32_t{0};

/** Route an op class to its functional-unit class. */
constexpr FuClass
fuClassOf(isa::OpClass cls)
{
    switch (cls) {
      case isa::OpClass::IntAlu: return FuClass::Fix;
      case isa::OpClass::IntLoad:
      case isa::OpClass::IntStore:
      case isa::OpClass::VecLoad:
      case isa::OpClass::VecStore: return FuClass::LdSt;
      case isa::OpClass::Branch: return FuClass::Br;
      case isa::OpClass::VecSimple: return FuClass::Vi;
      case isa::OpClass::VecPerm: return FuClass::VPer;
      case isa::OpClass::VecComplex: return FuClass::VCmplx;
      case isa::OpClass::VecFloat: return FuClass::VFp;
      case isa::OpClass::FloatOp: return FuClass::Fp;
      case isa::OpClass::Other: return FuClass::Fix;
      case isa::OpClass::NumClasses: break;
    }
    return FuClass::Fix;
}

/** Physical register file a destination lives in. */
enum class RegFile : std::uint8_t { Gpr, Vpr, Fpr, None };

constexpr RegFile
regFileOf(isa::OpClass cls)
{
    switch (cls) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntLoad:
      case isa::OpClass::Other: return RegFile::Gpr;
      case isa::OpClass::VecLoad:
      case isa::OpClass::VecSimple:
      case isa::OpClass::VecPerm:
      case isa::OpClass::VecComplex:
      case isa::OpClass::VecFloat: return RegFile::Vpr;
      case isa::OpClass::FloatOp: return RegFile::Fpr;
      default: return RegFile::None;
    }
}

constexpr Trauma
rgTrauma(FuClass cls, bool producer_is_load)
{
    if (producer_is_load)
        return Trauma::RgMem;
    switch (cls) {
      case FuClass::LdSt: return Trauma::RgMem;
      case FuClass::Fix: return Trauma::RgFix;
      case FuClass::Fp: return Trauma::RgFpu;
      case FuClass::Br: return Trauma::RgBr;
      case FuClass::Vi: return Trauma::RgVi;
      case FuClass::VPer: return Trauma::RgVper;
      case FuClass::VCmplx: return Trauma::RgVcmplx;
      case FuClass::VFp: return Trauma::RgVfpu;
      case FuClass::NumClasses: break;
    }
    return Trauma::Other;
}

constexpr Trauma
fulTrauma(FuClass cls)
{
    switch (cls) {
      case FuClass::LdSt: return Trauma::FulMem;
      case FuClass::Fix: return Trauma::FulFix;
      case FuClass::Fp: return Trauma::FulFpu;
      case FuClass::Br: return Trauma::FulBr;
      case FuClass::Vi: return Trauma::FulVi;
      case FuClass::VPer: return Trauma::FulVper;
      case FuClass::VCmplx: return Trauma::FulVcmplx;
      case FuClass::VFp: return Trauma::FulVfpu;
      case FuClass::NumClasses: break;
    }
    return Trauma::Other;
}

constexpr Trauma
diqTrauma(FuClass cls)
{
    switch (cls) {
      case FuClass::LdSt: return Trauma::DiqMem;
      case FuClass::Fix: return Trauma::DiqFix;
      case FuClass::Fp: return Trauma::DiqFpu;
      case FuClass::Br: return Trauma::DiqBr;
      case FuClass::Vi: return Trauma::DiqVi;
      case FuClass::VPer: return Trauma::DiqVper;
      case FuClass::VCmplx: return Trauma::DiqVcmplx;
      case FuClass::VFp: return Trauma::DiqVfpu;
      case FuClass::NumClasses: break;
    }
    return Trauma::Other;
}

/**
 * The routing functions above are the source of truth, but as
 * switches they are data-dependent branches on every instruction;
 * the hot loop reads these precomputed byte tables instead.
 */
constexpr auto fuClassTable = [] {
    std::array<FuClass, isa::numOpClasses> t{};
    for (int i = 0; i < isa::numOpClasses; ++i)
        t[static_cast<std::size_t>(i)] =
            fuClassOf(static_cast<isa::OpClass>(i));
    return t;
}();
constexpr auto regFileTable = [] {
    std::array<std::uint8_t, isa::numOpClasses> t{};
    for (int i = 0; i < isa::numOpClasses; ++i)
        t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
            regFileOf(static_cast<isa::OpClass>(i)));
    return t;
}();
constexpr auto rgTraumaTable = [] {
    std::array<Trauma, numFuClasses> t{};
    for (int i = 0; i < numFuClasses; ++i)
        t[static_cast<std::size_t>(i)] =
            rgTrauma(static_cast<FuClass>(i), false);
    return t;
}();
constexpr auto fulTraumaTable = [] {
    std::array<Trauma, numFuClasses> t{};
    for (int i = 0; i < numFuClasses; ++i)
        t[static_cast<std::size_t>(i)] =
            fulTrauma(static_cast<FuClass>(i));
    return t;
}();
constexpr auto diqTraumaTable = [] {
    std::array<Trauma, numFuClasses> t{};
    for (int i = 0; i < numFuClasses; ++i)
        t[static_cast<std::size_t>(i)] =
            diqTrauma(static_cast<FuClass>(i));
    return t;
}();

/** Producer record for SSA register lookups. */
struct RegEntry
{
    std::uint64_t ready = 0;
    isa::RegId tag = 0;
    /**
     * Head of the intrusive list (trace indices, linked through
     * Entry::waiterNext) of queued consumers parked on this not-yet-
     * issued producer. The producer's issue — the one moment its
     * completion time becomes known — pays each waiter one O(1)
     * wakeup instead of every waiter re-scanning its operands every
     * cycle. noLink means no waiters.
     */
    std::uint32_t waiterHead = noLink;
    FuClass producer = FuClass::Fix;
    bool producerIsLoad = false;
};

/**
 * Direct-mapped SSA producer table. The tag is the full register
 * id, so a hit is always the true producer; the only question is
 * whether an entry survives long enough. Ids are allocated
 * monotonically (at most one per rename), so two ids collide only
 * when they are >= 2^12 renames apart — and in-order rename stalls
 * once the <= 180-entry ROB fills, so a producer always leaves the
 * ROB (issued, waiters drained, ready time final) long before the
 * 4096th younger rename could overwrite its slot (runImpl asserts
 * the >= 8x margin against the configured ROB). Sources old enough
 * to have been evicted retired — hence completed — before their
 * consumer renamed, so a tag miss treated as "ready long ago" is
 * exact and can never carry the max ready time that issue
 * attribution wants. Keeping the table this small matters for
 * speed: destination writes sweep the table cyclically, and at
 * 2^12 x 24 B the whole sweep stays cache-resident instead of
 * evicting itself each revolution.
 */
constexpr int regTableBits = 12;
constexpr std::size_t regTableSize = std::size_t{1} << regTableBits;
constexpr std::size_t regTableMask = regTableSize - 1;

/** One in-flight instruction, packed to one cache line (the ROB
 * ring and the issue scans touch these constantly). */
struct alignas(64) Entry
{
    const isa::Inst *inst = nullptr;
    std::uint64_t traceIdx = 0;
    std::uint64_t completeCycle = notReady;
    std::uint64_t enqueueCycle = 0;
    /**
     * Earliest cycle this entry could possibly issue, when that is
     * provable: once a blocking producer has issued, its completion
     * time is fixed (SSA register ids are unique, and a pinned
     * RegEntry is never overwritten while a consumer waits — see
     * the table-size comment above). The issue stage skips the
     * per-cycle operand re-scan until then; re-checks while a
     * producer is still un-issued (unknown timing) keep nextTry in
     * the past.
     */
    std::uint64_t nextTry = 0;
    /** Next consumer in the producer's waiter list (RegEntry::
     * waiterHead); noLink when not linked. */
    std::uint32_t waiterNext = noLink;
    /** Next entry in this entry's timer-wheel bucket; noLink when
     * not parked on the wheel. */
    std::uint32_t wheelNext = noLink;
    /** Latest source-ready cycle and its producer, captured by the
     * operand scan that set opsReady (the values are final by
     * then); issue-time trauma attribution reads these instead of
     * re-walking the register table. */
    std::uint64_t srcReady = 0;
    enum class St : std::uint8_t { Renamed, Queued, Issued } st =
        St::Renamed;
    FuClass cls = FuClass::Fix;
    FuClass srcProducer = FuClass::Fix;
    bool srcProducerIsLoad = false;
    /**
     * Immutable per-instruction facts cached at rename, while the
     * trace line is hot: bits 0-1 the destination's register file,
     * bit 2 "has a destination", bit 3 "conditional branch", bit 4
     * "LdSt-class load" (the packed-queue low bit). Retire and the
     * timer-wheel drain read these instead of chasing `inst` into
     * the (by then long-evicted) trace array.
     */
    std::uint8_t retireInfo = 0;
    bool mispredicted = false;
    bool storeBlocked = false; ///< was held back by an older store
    /**
     * All sources passed the readiness check once — they stay
     * ready forever (completion times are fixed, and a RegEntry
     * overwrite flips the tag, which also reads as ready), so the
     * scan of a port- or unit-contended entry never repeats the
     * register lookups.
     */
    bool opsReady = false;

    bool
    completed(std::uint64_t now) const
    {
        return st == St::Issued && completeCycle <= now;
    }
};
static_assert(sizeof(Entry) == 64);

/** One fetched-but-not-renamed instruction (the ibuffer plus the
 * decode-pipe latches in front of rename). */
struct IbufEntry
{
    std::uint64_t readyAt = 0; ///< exits the decode pipe then
    std::uint32_t traceIdx = 0;
    bool mispred = false;
};

} // namespace

Simulator::Simulator(const SimConfig &config) : _config(config)
{
}

SimStats
Simulator::run(const trace::Trace &tr)
{
    // A full run is the degenerate sampled case: one window over
    // the whole trace, from cold state. Bit-for-bit identical to
    // the historical all-in-one loop (the golden tests pin this).
    MachineState state(_config);
    return runWindow(tr.view(), state);
}

SimStats
Simulator::runWindow(const trace::TraceView &window,
                     MachineState &state)
{
    // Hoist the predictor dispatch out of the simulation loop: one
    // visit here instead of a virtual call per fetched branch. The
    // concrete predictor types are final, so the instantiated loop
    // calls (and typically inlines) predict/update directly.
    return std::visit(
        [&](auto &predictor) {
            return runImpl(window, predictor, state);
        },
        state._predictor);
}

template <class Predictor>
SimStats
Simulator::runImpl(const trace::TraceView &tr, Predictor &predictor,
                   MachineState &state)
{
    SimStats stats;
    const CoreConfig &core = _config.core;
    const BranchPredictorConfig &bp = _config.bpred;

    // Per-class constants hoisted out of the loop: opLatency() is
    // an out-of-line call and the queue capacities sit behind two
    // pointer hops; both are read on every issue/dispatch.
    std::array<std::uint64_t, numFuClasses> op_latency;
    std::array<int, numFuClasses> queue_cap;
    for (int c = 0; c < numFuClasses; ++c) {
        op_latency[static_cast<std::size_t>(c)] =
            static_cast<std::uint64_t>(
                _config.opLatency(static_cast<FuClass>(c)));
        queue_cap[static_cast<std::size_t>(c)] =
            core.queueSize(static_cast<FuClass>(c));
    }

    for (int c = 0; c < numFuClasses; ++c)
        stats.queueOccupancy[static_cast<std::size_t>(c)].assign(
            static_cast<std::size_t>(
                core.issueQueue[static_cast<std::size_t>(c)]) + 1,
            0);
    stats.inflightOccupancy.assign(
        static_cast<std::size_t>(core.inflightLimit) + 1, 0);
    stats.retireQueueOccupancy.assign(
        static_cast<std::size_t>(core.retireQueue) + 1, 0);

    if (tr.empty())
        return stats;
    // The intrusive waiter/wheel links store window-relative trace
    // indices in 32 bits (31 in the packed scan queues); a window
    // that large is far beyond physical memory.
    assert(tr.size() < (std::uint64_t{noLink} >> 1));

    // The machine state is warm when a sampling driver calls in
    // (cold from run()); statistics are measured against these
    // baselines so a window reports only its own events.
    DataHierarchy &dmem = state._dmem;
    InstrHierarchy &imem = state._imem;
    Btb &btb = state._btb;
    const std::uint64_t base_dl1_accesses = dmem.dl1().accesses();
    const std::uint64_t base_dl1_misses = dmem.dl1().misses();
    const std::uint64_t base_l2_accesses = dmem.l2().accesses();
    const std::uint64_t base_l2_misses = dmem.l2().misses();
    const std::uint64_t base_dtlb1_misses =
        dmem.tlb().tlb1().misses();
    const std::uint64_t base_dtlb2_misses =
        dmem.tlb().tlb2().misses();
    const std::uint64_t base_btb_misses = btb.misses();
    std::uint64_t branch_predictions = 0;
    std::uint64_t branch_mispredictions = 0;

    std::vector<RegEntry> regs(regTableSize);
    auto reg_lookup = [&regs](isa::RegId id) -> RegEntry & {
        return regs[id & regTableMask];
    };

    const int rob_cap = core.retireQueue;
    // Register-table pinning safety margin (see RegEntry comment).
    assert(static_cast<std::size_t>(rob_cap) * 8 <= regTableSize);
    // The decode pipe's stage latches hold instructions in
    // addition to the ibuffer proper.
    const int fe_capacity =
        core.ibuffer + core.frontEndDepth * core.fetchWidth;

    // The ROB, with the ibuffer in front of it. Both have hard
    // capacities from CoreConfig, so fixed-size rings replace the
    // deques: no allocator traffic in the loop.
    RingBuffer<Entry> rob(static_cast<std::size_t>(rob_cap));
    RingBuffer<IbufEntry> ibuffer(
        static_cast<std::size_t>(fe_capacity));

    // Issue queues hold indices into `rob` — but rob shifts on
    // retire, so we store (traceIdx) and locate entries by an
    // offset: rob[i].traceIdx == robBaseIdx + i is NOT invariant
    // (ibuffer gap), so queues store traceIdx and we map through
    // robFront (the traceIdx of rob.front()). All rob entries are
    // contiguous in trace order, so index = traceIdx - robFront.
    //
    // Each `queues[c]` is only the *scannable* part of the model's
    // issue queue c, kept sorted by traceIdx: entries that are
    // provably blocked until a known cycle wait in `timers` (a
    // min-heap on wake cycle), and entries blocked on an un-issued
    // producer wait on that producer's RegEntry waiter list. Both
    // re-enter the scan queue at their trace-order position when
    // they wake, so the scan issues exactly the entries the full
    // per-cycle walk would — without touching blocked entries at
    // all. `queue_count[c]` is the *logical* occupancy (scannable +
    // parked), which dispatch backpressure and the occupancy
    // histograms are defined over.
    //
    // Queue values pack (traceIdx << 1) | isLoad. The low bit lets
    // the LdSt scan reject port- or MSHR-starved memory ops from
    // the packed value alone — no Entry or instruction line touched
    // — and since every traceIdx is distinct, ordering by packed
    // value is ordering by trace index.
    std::array<std::vector<std::uint32_t>, numFuClasses> queues;
    std::array<int, numFuClasses> queue_count{};

    // Timer wheel for parked entries: bucket (wake & wheelMask)
    // heads an intrusive list (linked through Entry::wheelNext) of
    // the trace indices to re-examine at cycle `wake`. Every wake
    // is at most the worst-case operation latency ahead — far
    // below wheelSize — so a slot is always drained before it
    // could be reused; a wake beyond the horizon (impossible with
    // the shipped configs, but clamped anyway) just fires early
    // and re-parks, which costs a redundant scan, never
    // correctness.
    constexpr std::uint64_t wheelSize = 2048; // > max latency sum
    constexpr std::uint64_t wheelMask = wheelSize - 1;
    std::vector<std::uint32_t> wheel(wheelSize, noLink);
    std::uint64_t wheel_pos = 0; // wakes <= wheel_pos are drained
    std::uint64_t wheel_pending = 0;

    // Completion calendar for the idle-cycle fast-forward:
    // comp_wheel[c & wheelMask] counts issued-but-uncompleted
    // entries whose results arrive at cycle c (every latency is
    // far below wheelSize, so slots cannot alias). Finding the
    // next completion is then a forward probe over a 4 KB array
    // instead of a full ROB walk on every stalled cycle — the walk
    // was the dominant cost of exactly the long-latency
    // configurations the fast-forward exists for.
    std::vector<std::uint16_t> comp_wheel(wheelSize, 0);
    std::uint64_t comp_pos = 0; // counts <= comp_pos are drained
    std::uint64_t comp_pending = 0;

    // MSHR occupancy as a calendar sharing comp_wheel's drain
    // position: mshr_pending counts L1-missing loads still in
    // flight, and expired slots are dropped in the same pass that
    // drains comp_wheel — O(1) amortized, where the former vector
    // of completion times was rescanned linearly every cycle.
    std::vector<std::uint16_t> mshr_wheel(wheelSize, 0);
    int mshr_pending = 0;

    auto rob_entry = [&rob](std::uint64_t trace_idx) -> Entry & {
        return rob[static_cast<std::size_t>(
            trace_idx - rob.front().traceIdx)];
    };

    std::uint64_t now = 0;
    const auto park_timer = [&wheel, &wheel_pending, &rob_entry,
                             &now](std::uint64_t wake,
                                   std::uint64_t ti) {
        if (wake - now >= wheelSize)
            wake = now + wheelSize - 1; // early wake, re-parks
        std::uint32_t &head = wheel[wake & wheelMask];
        rob_entry(ti).wheelNext = head;
        head = static_cast<std::uint32_t>(ti);
        ++wheel_pending;
    };
    std::uint64_t next_fetch = 0;     // next trace index to fetch
    std::uint64_t dispatch_next = 0;  // next trace index to dispatch
    std::uint64_t fetch_stall_until = 0;
    Trauma fetch_stall_reason = Trauma::IfFlit;
    bool fetch_blocked_mispred = false;
    std::uint64_t mispred_resolve_idx = 0;

    // Free physical registers, indexed by RegFile; the None slot
    // is a sink that can never run out (minus architected state).
    std::array<int, 4> free_regs{core.gprRegs - 36,
                                 core.vprRegs - 34,
                                 core.fprRegs - 34, 1 << 30};
    int unresolved_branches = 0;

    std::uint64_t last_fetch_line = ~std::uint64_t{0};

    // In-flight (unretired) stores, for memory-dependence checks: a
    // load may not issue while an older overlapping store is still
    // completing — there is no store-to-load forwarding, as in the
    // modeled machine; the load reads the cache after the store
    // drains (this is what puts the SIMD kernels' row-buffer
    // reload on the L1-latency path, Fig. 7).
    //
    // [store_lo, store_hi) is a conservative watermark over the
    // queue's live address range: it grows as stores enter and only
    // resets when the queue drains, so a load whose bytes fall
    // outside it provably overlaps no store and skips the exact
    // walk (the common case — the kernels' loads and stores stream
    // through disjoint rows). Staleness after removals can only
    // widen the range, i.e. force a redundant exact walk, never an
    // incorrect skip.
    struct StoreRec
    {
        std::uint64_t traceIdx;
        std::uint64_t addr;
        std::uint64_t end;
    };
    // Entered at dispatch; every member is in the ROB, so the ROB
    // capacity bounds it.
    RingBuffer<StoreRec> store_queue(
        static_cast<std::size_t>(rob_cap));
    std::uint64_t store_lo = ~std::uint64_t{0};
    std::uint64_t store_hi = 0;

    const int il1_line = _config.memory.il1.lineBytes;
    // Fetch groups instructions by I-cache line every cycle; keep
    // that a shift when the configured line size allows (it always
    // does in practice), not a division.
    const int il1_line_shift =
        std::has_single_bit(static_cast<unsigned>(il1_line))
        ? std::countr_zero(static_cast<unsigned>(il1_line))
        : -1;

    const std::uint64_t total = tr.size();
    std::uint64_t retired_total = 0;

    while (retired_total < total) {
        bool issued_any = false;
        bool dispatched_any = false;
        bool renamed_any = false;
        bool imem_accessed = false;
        int fetched = 0;

        // Completions at cycles the clock has now passed are no
        // longer fast-forward targets; drop their counts.
        if (comp_pending != 0 || mshr_pending != 0) {
            for (std::uint64_t t = comp_pos + 1;
                 t <= now && (comp_pending != 0 || mshr_pending != 0);
                 ++t) {
                std::uint16_t &pending = comp_wheel[t & wheelMask];
                comp_pending -= pending;
                pending = 0;
                std::uint16_t &misses = mshr_wheel[t & wheelMask];
                mshr_pending -= misses;
                misses = 0;
            }
        }
        comp_pos = now;

        // ---------------- retire ---------------------------------
        int retired = 0;
        while (retired < core.retireWidth && !rob.empty()
               && rob.front().completed(now)) {
            const std::uint8_t info = rob.front().retireInfo;
            if (info & 0x4u)
                ++free_regs[info & 0x3u];
            if (info & 0x8u)
                --unresolved_branches;
            rob.pop_front();
            ++retired;
            ++retired_total;
        }
        stats.instructions += static_cast<std::uint64_t>(retired);

        // Drop retired stores from the dependence queue. (MSHRs
        // whose fills completed were reclaimed by the calendar
        // drain above.)
        if (rob.empty()) {
            store_queue.clear();
        } else {
            const std::uint64_t oldest = rob.front().traceIdx;
            while (!store_queue.empty()
                   && store_queue.front().traceIdx < oldest)
                store_queue.pop_front();
        }
        if (store_queue.empty()) {
            store_lo = ~std::uint64_t{0};
            store_hi = 0;
        }

        // ---------------- issue ----------------------------------
        // Wake parked entries whose earliest-issue cycle arrived:
        // back into their scan queue at trace-order position, so
        // the scan below sees exactly what a full walk would. No
        // parks happen between stage runs, so every pending wake
        // is within wheelSize of the previously drained position.
        if (wheel_pending != 0) {
            const std::uint64_t hi =
                std::min(now, wheel_pos + wheelSize);
            for (std::uint64_t t = wheel_pos + 1;
                 t <= hi && wheel_pending != 0; ++t) {
                std::uint32_t &head = wheel[t & wheelMask];
                if (head == noLink)
                    continue;
                // Detach the whole bucket before walking it, so a
                // clamped (over-horizon) park that fires early and
                // re-parks into this same slot waits for the
                // slot's next revolution instead of being walked
                // again now.
                std::uint32_t ti = head;
                head = noLink;
                while (ti != noLink) {
                    --wheel_pending;
                    Entry &e = rob_entry(ti);
                    const std::uint32_t next = e.wheelNext;
                    e.wheelNext = noLink;
                    if (e.nextTry > now) {
                        park_timer(e.nextTry, ti);
                    } else {
                        auto &q =
                            queues[static_cast<std::size_t>(e.cls)];
                        const std::uint32_t packed =
                            (static_cast<std::uint32_t>(ti) << 1)
                            | ((e.retireInfo >> 4) & 1u);
                        q.insert(
                            std::lower_bound(q.begin(), q.end(),
                                             packed),
                            packed);
                    }
                    ti = next;
                }
            }
        }
        wheel_pos = now;
        int load_ports = core.dcachePorts;
        int store_ports = core.dcacheWritePorts;
        std::array<int, numFuClasses> avail = core.units;
        // The scan body is instantiated twice: the LdSt queue needs
        // the port, MSHR, and store-dependence logic, and every
        // other class is pure compute that compiles without any of
        // it (one fewer unpredictable branch per scanned entry).
        const auto scan_queue = [&](const int c, auto is_mem) {
            auto &queue = queues[static_cast<std::size_t>(c)];
            int &units = avail[static_cast<std::size_t>(c)];
            std::size_t out = 0;
            for (std::size_t qi = 0;
                 qi < queue.size(); ++qi) {
                const std::uint32_t packed = queue[qi];
                if (units == 0) {
                    // No units left: nothing further in this queue
                    // can issue, and a unit-blocked entry is never
                    // touched (the operand and memory checks are
                    // all behind issue_now), so the tail keeps its
                    // order wholesale instead of entry-by-entry.
                    if (out != qi)
                        std::copy(queue.begin()
                                      + static_cast<std::ptrdiff_t>(
                                          qi),
                                  queue.end(),
                                  queue.begin()
                                      + static_cast<std::ptrdiff_t>(
                                          out));
                    out += queue.size() - qi;
                    break;
                }
                if constexpr (is_mem.value) {
                    // A port- or MSHR-starved memory op cannot
                    // issue this cycle whatever its operands, and
                    // deciding that needs only the packed low bit —
                    // the stalled vmx scans reject several blocked
                    // loads per cycle without touching an Entry or
                    // instruction line. Deferring the operand check
                    // is exact: a later pass reads the same pinned
                    // RegEntries (see the register-table comment),
                    // and the op still issues at the first cycle
                    // where units, ports, and operands all allow.
                    if (packed & 1u) {
                        if (load_ports == 0
                            || mshr_pending
                                >= core.maxOutstandingMisses) {
                            queue[out++] = packed;
                            continue;
                        }
                    } else if (store_ports == 0) {
                        queue[out++] = packed;
                        continue;
                    }
                }
                const std::uint64_t ti = packed >> 1;
                // Every queued entry is scannable (nextTry <=
                // now): provably blocked entries are parked off
                // the queue and only drained back in when their
                // wake cycle arrives.
                Entry &e = rob_entry(ti);
                bool issue_now = true;
                // 0 = stay scannable (unit/port/MSHR contention:
                // state-dependent, re-check each cycle), 1 = park
                // until e.nextTry (timer wheel), 2 = park on a
                // producer's waiter list.
                int park = 0;
                if (!e.opsReady) {
                    // Operand readiness, with a wakeup so a blocked
                    // entry is not re-scanned every cycle. The
                    // first blocking source is a lower bound on the
                    // issue cycle either way: an issued producer
                    // completes at a fixed time (nextTry jumps
                    // there), and an un-issued one parks this entry
                    // on its waiter list — its own issue sets
                    // nextTry then. Both skips are exact: a blocked
                    // entry's re-scan has no side effects, and a
                    // pinned RegEntry is never overwritten while a
                    // consumer waits (see the register-table
                    // comment). A pass that finds every source
                    // ready has seen all their final ready times,
                    // so it records the attribution max as it goes.
                    std::uint64_t max_ready = 0;
                    FuClass prod = FuClass::Fix;
                    bool prod_load = false;
                    for (const isa::RegId src : e.inst->src) {
                        if (src == 0)
                            continue;
                        RegEntry &re = reg_lookup(src);
                        if (re.tag != src)
                            continue;
                        if (re.ready > now) {
                            issue_now = false;
                            if (re.ready != notReady) {
                                e.nextTry = re.ready;
                                park = 1;
                            } else {
                                e.waiterNext = re.waiterHead;
                                re.waiterHead =
                                    static_cast<std::uint32_t>(
                                        e.traceIdx);
                                e.nextTry = notReady;
                                park = 2;
                            }
                            break;
                        }
                        if (re.ready > max_ready) {
                            max_ready = re.ready;
                            prod = re.producer;
                            prod_load = re.producerIsLoad;
                        }
                    }
                    if (issue_now) {
                        e.opsReady = true;
                        e.srcReady = max_ready;
                        e.srcProducer = prod;
                        e.srcProducerIsLoad = prod_load;
                    }
                }
                if constexpr (is_mem.value) {
                    const bool is_load = (packed & 1u) != 0;
                    if (issue_now && is_load) {
                        const std::uint64_t lo = e.inst->addr;
                        const std::uint64_t hi = lo + e.inst->size;
                        // Exact walk only when the load intersects
                        // the conservative live-store range.
                        if (lo < store_hi && hi > store_lo) {
                            for (std::size_t si = 0;
                                 si < store_queue.size(); ++si) {
                                const StoreRec &st =
                                    store_queue[si];
                                if (st.traceIdx >= e.traceIdx)
                                    continue;
                                if (st.addr < hi && st.end > lo) {
                                    const Entry &se =
                                        rob_entry(st.traceIdx);
                                    if (se.completed(now))
                                        continue;
                                    issue_now = false;
                                    e.storeBlocked = true;
                                    // An issued store completes at
                                    // a fixed cycle; the load stays
                                    // blocked (by this store) until
                                    // then, so skip the re-walks.
                                    if (se.st
                                        == Entry::St::Issued) {
                                        e.nextTry =
                                            se.completeCycle;
                                        park = 1;
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    // A penalized (double-pumped) wide vector load
                    // also occupies the permute network for its
                    // merge, like Altivec's load-alignment path.
                    if (issue_now
                        && e.inst->cls == isa::OpClass::VecLoad
                        && _config.memory.wideVectorLoadPenalty > 0
                        && avail[static_cast<std::size_t>(
                               FuClass::VPer)] == 0)
                        issue_now = false;
                }
                if (!issue_now) {
                    if (park == 0)
                        queue[out++] = packed; // re-check next cycle
                    else if (park == 1)
                        park_timer(e.nextTry, ti);
                    // park == 2: reachable via the waiter list.
                    continue;
                }

                // Issue the instruction. Attribute its waiting
                // time the way Turandot records operation flow:
                // cycles spent waiting on a source register go to
                // rg_<producer class>, unit/port contention beyond
                // that goes to ful_<class>, and memory service time
                // goes to mm_dl1/mm_dl2 below. The adds are
                // unconditional (of zero when there was no wait) so
                // the two updates carry no data-dependent branches.
                {
                    const std::uint64_t enq = e.enqueueCycle;
                    const std::uint64_t rg_delta =
                        e.srcReady > enq ? e.srcReady - enq : 0;
                    stats.traumas.add(
                        e.srcProducerIsLoad
                            ? Trauma::RgMem
                            : rgTraumaTable[static_cast<std::size_t>(
                                  e.srcProducer)],
                        rg_delta);
                    const std::uint64_t ready_at =
                        std::max(e.srcReady, enq);
                    const std::uint64_t ful_delta =
                        now > ready_at ? now - ready_at : 0;
                    stats.traumas.add(
                        e.storeBlocked
                            ? Trauma::StData
                            : fulTraumaTable[static_cast<std::size_t>(
                                  e.cls)],
                        ful_delta);
                }
                --units;
                --queue_count[static_cast<std::size_t>(c)];
                issued_any = true;
                e.st = Entry::St::Issued;
                std::uint64_t latency =
                    op_latency[static_cast<std::size_t>(c)];
                if constexpr (is_mem.value) {
                    if (e.inst->cls == isa::OpClass::VecLoad
                        && _config.memory.wideVectorLoadPenalty > 0)
                        --avail[static_cast<std::size_t>(
                            FuClass::VPer)];
                    const MemAccess acc = dmem.access(
                        e.inst->addr, e.inst->isStore());
                    if ((packed & 1u) != 0) {
                        --load_ports;
                        latency = static_cast<std::uint64_t>(
                            acc.latency);
                        if (e.inst->cls == isa::OpClass::VecLoad)
                            latency += static_cast<std::uint64_t>(
                                _config.memory
                                    .wideVectorLoadPenalty);
                        if (acc.tlbLevel != TlbLevel::Tlb1) {
                            const auto &dt =
                                _config.memory.dataTranslation;
                            stats.traumas.add(
                                acc.tlbLevel == TlbLevel::Walk
                                    ? Trauma::MmTlb2
                                    : Trauma::MmTlb1,
                                static_cast<std::uint64_t>(
                                    acc.tlbLevel == TlbLevel::Walk
                                        ? dt.tlb2Latency
                                              + dt.walkLatency
                                        : dt.tlb2Latency));
                        }
                        if (acc.level != MemLevel::L1) {
                            ++mshr_wheel[(now + latency)
                                         & wheelMask];
                            ++mshr_pending;
                            stats.traumas.add(
                                acc.level == MemLevel::Memory
                                    ? Trauma::MmDl2
                                    : Trauma::MmDl1,
                                latency
                                    - static_cast<std::uint64_t>(
                                        _config.memory.dl1
                                            .latency));
                        }
                    } else {
                        --store_ports;
                        latency = 1; // store buffer absorbs it
                    }
                }
                e.completeCycle = now + latency;
                assert(latency < wheelSize);
                ++comp_wheel[e.completeCycle & wheelMask];
                ++comp_pending;
                if (e.inst->dst != 0) {
                    RegEntry &re = reg_lookup(e.inst->dst);
                    re.tag = e.inst->dst;
                    re.ready = e.completeCycle;
                    re.producer = e.cls;
                    re.producerIsLoad = e.inst->isLoad();
                    // Wake the consumers parked on this producer:
                    // they could not issue before now, and from now
                    // on this completion time bounds them.
                    std::uint32_t w = re.waiterHead;
                    re.waiterHead = noLink;
                    while (w != noLink) {
                        Entry &we = rob_entry(w);
                        w = we.waiterNext;
                        we.waiterNext = noLink;
                        we.nextTry = e.completeCycle;
                        park_timer(we.nextTry, we.traceIdx);
                    }
                }
                if (e.mispredicted
                    && e.traceIdx == mispred_resolve_idx) {
                    // Fetch resumes after resolution + recovery.
                    fetch_blocked_mispred = false;
                    fetch_stall_until = std::max(
                        fetch_stall_until,
                        e.completeCycle
                            + static_cast<std::uint64_t>(
                                bp.recoveryCycles));
                    fetch_stall_reason = Trauma::IfPred;
                }
            }
            queue.resize(out);
        };
        for (int c = 0; c < numFuClasses; ++c) {
            if (queues[static_cast<std::size_t>(c)].empty())
                continue;
            if (c == static_cast<int>(FuClass::LdSt))
                scan_queue(c, std::true_type{});
            else
                scan_queue(c, std::false_type{});
        }

        // ---------------- dispatch -------------------------------
        for (int d = 0; d < core.dispatchWidth; ++d) {
            if (rob.empty() || dispatch_next > rob.back().traceIdx)
                break;
            if (dispatch_next < rob.front().traceIdx)
                dispatch_next = rob.front().traceIdx;
            Entry &e = rob_entry(dispatch_next);
            if (e.st != Entry::St::Renamed)
                break;
            auto &queue =
                queues[static_cast<std::size_t>(e.cls)];
            if (queue_count[static_cast<std::size_t>(e.cls)]
                >= queue_cap[static_cast<std::size_t>(e.cls)])
                break; // in-order dispatch: younger ops wait too
            queue.push_back(
                (static_cast<std::uint32_t>(e.traceIdx) << 1)
                | ((e.retireInfo >> 4) & 1u));
            ++queue_count[static_cast<std::size_t>(e.cls)];
            e.st = Entry::St::Queued;
            e.enqueueCycle = now;
            dispatched_any = true;
            // The issue scan walks the sources against the
            // register table no earlier than next cycle; start
            // those (L2-resident) lines toward L1 now, while the
            // instruction's trace line is still warm from rename.
            for (const isa::RegId src : e.inst->src)
                if (src != 0)
                    __builtin_prefetch(&regs[src & regTableMask]);
            if (e.inst->isStore()) {
                const std::uint64_t lo = e.inst->addr;
                const std::uint64_t hi =
                    static_cast<std::uint64_t>(e.inst->addr)
                    + e.inst->size;
                store_queue.push_back(StoreRec{e.traceIdx, lo, hi});
                store_lo = std::min(store_lo, lo);
                store_hi = std::max(store_hi, hi);
            }
            ++dispatch_next;
        }

        // ---------------- rename ---------------------------------
        for (int r = 0; r < core.renameWidth; ++r) {
            if (ibuffer.empty()
                || static_cast<int>(rob.size()) >= rob_cap)
                break;
            if (ibuffer.front().readyAt > now)
                break; // still in the decode pipe
            const std::uint64_t ti = ibuffer.front().traceIdx;
            const isa::Inst &inst = tr[ti];
            if (inst.dst != 0) {
                int &avail_regs = free_regs[regFileTable[
                    static_cast<std::size_t>(inst.cls)]];
                if (avail_regs <= 0)
                    break; // physical registers exhausted
                --avail_regs;
            }

            Entry &e = rob.emplace_back();
            e.inst = &inst;
            e.traceIdx = ti;
            e.cls = fuClassTable[static_cast<std::size_t>(
                inst.cls)];
            e.mispredicted = ibuffer.front().mispred;
            e.retireInfo = static_cast<std::uint8_t>(
                (inst.dst != 0
                     ? 0x4u
                         | regFileTable[static_cast<std::size_t>(
                             inst.cls)]
                     : 0u)
                | (inst.isBranch() && inst.conditional ? 0x8u : 0u)
                | (e.cls == FuClass::LdSt && inst.isLoad() ? 0x10u
                                                           : 0u));
            if (inst.dst != 0) {
                // Mark the destination pending so consumers wait
                // until the producer actually issues. Any previous
                // tenant of this slot drained its waiters when it
                // issued, so the list starts empty.
                RegEntry &re = reg_lookup(inst.dst);
                re.tag = inst.dst;
                re.ready = notReady;
                re.waiterHead = noLink;
                re.producer = e.cls;
                re.producerIsLoad = inst.isLoad();
            }
            ibuffer.pop_front();
            renamed_any = true;
        }

        // ---------------- fetch ----------------------------------
        Trauma front_end_reason = fetch_stall_reason;
        if (now >= fetch_stall_until && !fetch_blocked_mispred) {
            front_end_reason = Trauma::IfFlit;
            while (fetched < core.fetchWidth
                   && static_cast<int>(ibuffer.size()) < fe_capacity
                   && next_fetch < total) {
                const isa::Inst &inst = tr[next_fetch];

                // I-cache: access once per new line.
                const std::uint64_t line = il1_line_shift >= 0
                    ? inst.byteAddress() >> il1_line_shift
                    : inst.byteAddress()
                        / static_cast<unsigned>(il1_line);
                if (line != last_fetch_line) {
                    const MemAccess acc =
                        imem.fetch(inst.byteAddress());
                    last_fetch_line = line;
                    imem_accessed = true;
                    if (acc.level != MemLevel::L1
                        || acc.tlbLevel != TlbLevel::Tlb1) {
                        stats.il1Misses +=
                            acc.level != MemLevel::L1;
                        fetch_stall_until = now
                            + static_cast<std::uint64_t>(
                                acc.latency);
                        if (acc.tlbLevel != TlbLevel::Tlb1) {
                            fetch_stall_reason =
                                acc.tlbLevel == TlbLevel::Walk
                                    ? Trauma::IfTlb2
                                    : Trauma::IfTlb1;
                        } else {
                            fetch_stall_reason =
                                acc.level == MemLevel::L2
                                    ? Trauma::IfL1
                                    : Trauma::IfL2;
                        }
                        front_end_reason = fetch_stall_reason;
                        break;
                    }
                }

                bool mispred = false;
                if (inst.isBranch()) {
                    if (unresolved_branches
                        >= bp.maxPredictedBranches) {
                        front_end_reason = Trauma::IfBrch;
                        break;
                    }
                    if (inst.conditional) {
                        // Direct (devirtualized) calls: Predictor
                        // is a concrete final type.
                        if constexpr (std::is_same_v<
                                          Predictor,
                                          PerfectPredictor>)
                            predictor.setOutcome(inst.taken);
                        const bool pred =
                            predictor.predict(inst.pc);
                        predictor.update(inst.pc, inst.taken);
                        ++branch_predictions;
                        mispred = pred != inst.taken;
                        branch_mispredictions += mispred;
                        ++unresolved_branches;
                    }
                    if (inst.taken && !btb.lookup(inst.pc)) {
                        fetch_stall_until = now
                            + static_cast<std::uint64_t>(
                                bp.nfaMissPenalty);
                        fetch_stall_reason = Trauma::IfNfa;
                    }
                }

                ibuffer.push_back(IbufEntry{
                    now
                        + static_cast<std::uint64_t>(
                            core.frontEndDepth),
                    static_cast<std::uint32_t>(next_fetch),
                    mispred});
                ++next_fetch;
                ++fetched;

                if (mispred) {
                    fetch_blocked_mispred = true;
                    mispred_resolve_idx = next_fetch - 1;
                    front_end_reason = Trauma::IfPred;
                    break;
                }
                if (inst.isBranch() && inst.taken)
                    break; // fetch group ends at a taken branch
            }
        } else if (fetch_blocked_mispred) {
            front_end_reason = Trauma::IfPred;
        }

        // ---------------- idle-cycle fast-forward ----------------
        // If this cycle changed nothing (no retire, issue,
        // dispatch, rename, fetch, or I-cache touch), the machine
        // replays it verbatim until the next timed event: every
        // gate above compares `now` against a known future time.
        // Jump there in one step and multiply this cycle's
        // occupancy/trauma accounting by the span instead of
        // re-discovering the same stall cycle by cycle.
        std::uint64_t span = 1;
        const bool progress = retired != 0 || issued_any
            || dispatched_any || renamed_any || fetched != 0
            || imem_accessed;
        if (!progress) {
            // Issued-but-uncompleted entries all live in the ROB,
            // so the completion calendar's first occupied slot is
            // exactly the min completeCycle a ROB walk would find.
            std::uint64_t next_event = notReady;
            if (comp_pending != 0) {
                for (std::uint64_t t = now + 1;; ++t) {
                    if (comp_wheel[t & wheelMask] != 0) {
                        next_event = t;
                        break;
                    }
                }
            }
            // In-flight misses need no separate scan: an MSHR's
            // fill time is its load's completeCycle, which the
            // completion calendar above already covers.
            if (fetch_stall_until > now
                && fetch_stall_until < next_event)
                next_event = fetch_stall_until;
            if (!ibuffer.empty() && ibuffer.front().readyAt > now
                && ibuffer.front().readyAt < next_event)
                next_event = ibuffer.front().readyAt;
            // No timed event would mean a wedged machine; keep the
            // single-step behavior in that (impossible) case.
            if (next_event != notReady)
                span = next_event - now;
        }

        // ---------------- occupancy + trauma accounting ----------
        // Empty queues (the common case for most classes) are not
        // counted here; h[0] is reconstructed after the loop as
        // total cycles minus the occupied ones.
        for (int c = 0; c < numFuClasses; ++c) {
            const auto occ = static_cast<std::size_t>(
                queue_count[static_cast<std::size_t>(c)]);
            if (occ == 0)
                continue;
            auto &h =
                stats.queueOccupancy[static_cast<std::size_t>(c)];
            h[std::min(occ, h.size() - 1)] += span;
        }
        stats.inflightOccupancy[std::min(
            rob.size() + ibuffer.size(),
            stats.inflightOccupancy.size() - 1)] += span;
        stats.retireQueueOccupancy[std::min(
            rob.size(), stats.retireQueueOccupancy.size() - 1)] +=
            span;

        // Fetch-side traumas are cycle-based: every cycle the
        // fetch stage makes no progress for a front-end reason is
        // charged to that reason (back-end rg_/mm_/ful_ waiting is
        // operation-weighted at issue time instead). A fast-forward
        // span charges every skipped cycle to the same reason —
        // the skipped cycles are literal replays.
        if (next_fetch < total) {
            if (fetch_blocked_mispred) {
                stats.traumas.add(Trauma::IfPred, span);
            } else if (now < fetch_stall_until) {
                stats.traumas.add(fetch_stall_reason, span);
            } else if (front_end_reason == Trauma::IfBrch) {
                stats.traumas.add(Trauma::IfBrch, span);
            }
        }
        if (retired == 0 && retired_total < total) {
            if (!rob.empty()) {
                Entry &oldest = rob.front();
                if (oldest.st == Entry::St::Renamed)
                    stats.traumas.add(
                        diqTraumaTable[static_cast<std::size_t>(
                            oldest.cls)],
                        span);
            } else if (!ibuffer.empty()
                       && ibuffer.front().readyAt > now
                       && now >= fetch_stall_until
                       && !fetch_blocked_mispred) {
                // Decode-pipe refill with an idle machine: part of
                // the preceding flush's cost.
                stats.traumas.add(fetch_stall_reason, span);
            }
        }

        now += span;
    }




    stats.cycles = now;
    for (int c = 0; c < numFuClasses; ++c) {
        auto &h = stats.queueOccupancy[static_cast<std::size_t>(c)];
        std::uint64_t occupied = 0;
        for (std::size_t n = 1; n < h.size(); ++n)
            occupied += h[n];
        h[0] = now - occupied;
    }
    stats.dl1Accesses = dmem.dl1().accesses() - base_dl1_accesses;
    stats.dl1Misses = dmem.dl1().misses() - base_dl1_misses;
    stats.l2Accesses = dmem.l2().accesses() - base_l2_accesses;
    stats.l2Misses = dmem.l2().misses() - base_l2_misses;
    stats.dtlb1Misses =
        dmem.tlb().tlb1().misses() - base_dtlb1_misses;
    stats.dtlb2Misses =
        dmem.tlb().tlb2().misses() - base_dtlb2_misses;
    stats.branchPredictions = branch_predictions;
    stats.branchMispredictions = branch_mispredictions;
    stats.btbMisses = btb.misses() - base_btb_misses;
    return stats;
}

} // namespace bioarch::sim
