#include "pipeline.hh"

#include <algorithm>
#include <deque>

namespace bioarch::sim
{

double
SimStats::meanOccupancy(const std::vector<std::uint64_t> &h)
{
    std::uint64_t cycles = 0;
    double weighted = 0.0;
    for (std::size_t n = 0; n < h.size(); ++n) {
        cycles += h[n];
        weighted += static_cast<double>(n) * static_cast<double>(h[n]);
    }
    return cycles == 0 ? 0.0 : weighted / static_cast<double>(cycles);
}

namespace
{

constexpr std::uint64_t notReady = ~std::uint64_t{0};

/** Route an op class to its functional-unit class. */
FuClass
fuClassOf(isa::OpClass cls)
{
    switch (cls) {
      case isa::OpClass::IntAlu: return FuClass::Fix;
      case isa::OpClass::IntLoad:
      case isa::OpClass::IntStore:
      case isa::OpClass::VecLoad:
      case isa::OpClass::VecStore: return FuClass::LdSt;
      case isa::OpClass::Branch: return FuClass::Br;
      case isa::OpClass::VecSimple: return FuClass::Vi;
      case isa::OpClass::VecPerm: return FuClass::VPer;
      case isa::OpClass::VecComplex: return FuClass::VCmplx;
      case isa::OpClass::VecFloat: return FuClass::VFp;
      case isa::OpClass::FloatOp: return FuClass::Fp;
      case isa::OpClass::Other: return FuClass::Fix;
      case isa::OpClass::NumClasses: break;
    }
    return FuClass::Fix;
}

/** Physical register file a destination lives in. */
enum class RegFile : std::uint8_t { Gpr, Vpr, Fpr, None };

RegFile
regFileOf(isa::OpClass cls)
{
    switch (cls) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntLoad:
      case isa::OpClass::Other: return RegFile::Gpr;
      case isa::OpClass::VecLoad:
      case isa::OpClass::VecSimple:
      case isa::OpClass::VecPerm:
      case isa::OpClass::VecComplex:
      case isa::OpClass::VecFloat: return RegFile::Vpr;
      case isa::OpClass::FloatOp: return RegFile::Fpr;
      default: return RegFile::None;
    }
}

Trauma
rgTrauma(FuClass cls, bool producer_is_load)
{
    if (producer_is_load)
        return Trauma::RgMem;
    switch (cls) {
      case FuClass::LdSt: return Trauma::RgMem;
      case FuClass::Fix: return Trauma::RgFix;
      case FuClass::Fp: return Trauma::RgFpu;
      case FuClass::Br: return Trauma::RgBr;
      case FuClass::Vi: return Trauma::RgVi;
      case FuClass::VPer: return Trauma::RgVper;
      case FuClass::VCmplx: return Trauma::RgVcmplx;
      case FuClass::VFp: return Trauma::RgVfpu;
      case FuClass::NumClasses: break;
    }
    return Trauma::Other;
}

Trauma
fulTrauma(FuClass cls)
{
    switch (cls) {
      case FuClass::LdSt: return Trauma::FulMem;
      case FuClass::Fix: return Trauma::FulFix;
      case FuClass::Fp: return Trauma::FulFpu;
      case FuClass::Br: return Trauma::FulBr;
      case FuClass::Vi: return Trauma::FulVi;
      case FuClass::VPer: return Trauma::FulVper;
      case FuClass::VCmplx: return Trauma::FulVcmplx;
      case FuClass::VFp: return Trauma::FulVfpu;
      case FuClass::NumClasses: break;
    }
    return Trauma::Other;
}

Trauma
diqTrauma(FuClass cls)
{
    switch (cls) {
      case FuClass::LdSt: return Trauma::DiqMem;
      case FuClass::Fix: return Trauma::DiqFix;
      case FuClass::Fp: return Trauma::DiqFpu;
      case FuClass::Br: return Trauma::DiqBr;
      case FuClass::Vi: return Trauma::DiqVi;
      case FuClass::VPer: return Trauma::DiqVper;
      case FuClass::VCmplx: return Trauma::DiqVcmplx;
      case FuClass::VFp: return Trauma::DiqVfpu;
      case FuClass::NumClasses: break;
    }
    return Trauma::Other;
}

/** Producer record for SSA register lookups. */
struct RegEntry
{
    isa::RegId tag = 0;
    std::uint64_t ready = 0;
    FuClass producer = FuClass::Fix;
    bool producerIsLoad = false;
};

constexpr int regTableBits = 20;
constexpr std::size_t regTableSize = std::size_t{1} << regTableBits;
constexpr std::size_t regTableMask = regTableSize - 1;

/** One in-flight instruction. */
struct Entry
{
    const isa::Inst *inst = nullptr;
    std::uint64_t traceIdx = 0;
    enum class St : std::uint8_t { Renamed, Queued, Issued } st =
        St::Renamed;
    FuClass cls = FuClass::Fix;
    std::uint64_t completeCycle = notReady;
    std::uint64_t enqueueCycle = 0;
    MemLevel level = MemLevel::L1;
    bool mispredicted = false;
    bool storeBlocked = false; ///< was held back by an older store

    bool
    completed(std::uint64_t now) const
    {
        return st == St::Issued && completeCycle <= now;
    }
};

} // namespace

Simulator::Simulator(const SimConfig &config) : _config(config)
{
}

SimStats
Simulator::run(const trace::Trace &tr)
{
    SimStats stats;
    const CoreConfig &core = _config.core;
    const BranchPredictorConfig &bp = _config.bpred;

    for (int c = 0; c < numFuClasses; ++c)
        stats.queueOccupancy[static_cast<std::size_t>(c)].assign(
            static_cast<std::size_t>(
                core.issueQueue[static_cast<std::size_t>(c)]) + 1,
            0);
    stats.inflightOccupancy.assign(
        static_cast<std::size_t>(core.inflightLimit) + 1, 0);
    stats.retireQueueOccupancy.assign(
        static_cast<std::size_t>(core.retireQueue) + 1, 0);

    if (tr.empty())
        return stats;

    DataHierarchy dmem(_config.memory);
    InstrHierarchy imem(_config.memory);
    auto predictor = makePredictor(bp);
    auto *perfect = bp.kind == PredictorKind::Perfect
        ? static_cast<PerfectPredictor *>(predictor.get())
        : nullptr;
    Btb btb(bp.btbEntries, bp.btbAssociativity);

    std::vector<RegEntry> regs(regTableSize);
    auto reg_lookup = [&regs](isa::RegId id) -> RegEntry & {
        return regs[id & regTableMask];
    };

    // The ROB, with the ibuffer in front of it.
    std::deque<Entry> rob;
    std::deque<std::uint64_t> ibuffer; // trace indices + flags
    std::deque<bool> ibufferMispred;
    std::deque<std::uint64_t> ibufferReadyAt; // fetch + decode depth
    const int rob_cap = core.retireQueue;

    // Issue queues hold indices into `rob` — but rob shifts on
    // retire, so we store (traceIdx) and locate entries by an
    // offset: rob[i].traceIdx == robBaseIdx + i is NOT invariant
    // (ibuffer gap), so queues store traceIdx and we map through
    // robFront (the traceIdx of rob.front()). All rob entries are
    // contiguous in trace order, so index = traceIdx - robFront.
    std::array<std::vector<std::uint64_t>, numFuClasses> queues;

    auto rob_entry = [&rob](std::uint64_t trace_idx) -> Entry & {
        return rob[static_cast<std::size_t>(
            trace_idx - rob.front().traceIdx)];
    };

    std::uint64_t now = 0;
    std::uint64_t next_fetch = 0;     // next trace index to fetch
    std::uint64_t dispatch_next = 0;  // next trace index to dispatch
    std::uint64_t fetch_stall_until = 0;
    Trauma fetch_stall_reason = Trauma::IfFlit;
    bool fetch_blocked_mispred = false;
    std::uint64_t mispred_resolve_idx = 0;

    int gpr_free = core.gprRegs - 36; // minus architected state
    int vpr_free = core.vprRegs - 34;
    int fpr_free = core.fprRegs - 34;
    int unresolved_branches = 0;

    std::vector<std::uint64_t> outstanding; // miss completion times
    std::uint64_t last_fetch_line = ~std::uint64_t{0};

    // In-flight (unretired) stores, for memory-dependence checks: a
    // load may not issue while an older overlapping store is still
    // completing — there is no store-to-load forwarding, as in the
    // modeled machine; the load reads the cache after the store
    // drains (this is what puts the SIMD kernels' row-buffer
    // reload on the L1-latency path, Fig. 7).
    struct StoreRec
    {
        std::uint64_t traceIdx;
        std::uint64_t addr;
        std::uint64_t end;
    };
    std::deque<StoreRec> store_queue; // entered at dispatch

    const int il1_line = _config.memory.il1.lineBytes;

    const std::uint64_t total = tr.size();
    std::uint64_t retired_total = 0;

    while (retired_total < total) {
        // ---------------- retire ---------------------------------
        int retired = 0;
        while (retired < core.retireWidth && !rob.empty()
               && rob.front().completed(now)) {
            const Entry &e = rob.front();
            if (e.inst->dst != 0) {
                switch (regFileOf(e.inst->cls)) {
                  case RegFile::Gpr: ++gpr_free; break;
                  case RegFile::Vpr: ++vpr_free; break;
                  case RegFile::Fpr: ++fpr_free; break;
                  case RegFile::None: break;
                }
            }
            if (e.inst->isBranch() && e.inst->conditional)
                --unresolved_branches;
            rob.pop_front();
            ++retired;
            ++retired_total;
        }
        stats.instructions += static_cast<std::uint64_t>(retired);

        // Reclaim MSHRs whose fills completed, and drop retired
        // stores from the dependence queue.
        std::erase_if(outstanding,
                      [now](std::uint64_t t) { return t <= now; });
        if (rob.empty()) {
            store_queue.clear();
        } else {
            const std::uint64_t oldest = rob.front().traceIdx;
            std::erase_if(store_queue,
                          [oldest](const StoreRec &st) {
                              return st.traceIdx < oldest;
                          });
        }

        // ---------------- issue ----------------------------------
        int load_ports = core.dcachePorts;
        int store_ports = core.dcacheWritePorts;
        std::array<int, numFuClasses> avail = core.units;
        for (int c = 0; c < numFuClasses; ++c) {
            auto &queue = queues[static_cast<std::size_t>(c)];
            if (queue.empty())
                continue;
            int &units = avail[static_cast<std::size_t>(c)];
            std::size_t out = 0;
            for (std::size_t qi = 0;
                 qi < queue.size(); ++qi) {
                const std::uint64_t ti = queue[qi];
                Entry &e = rob_entry(ti);
                bool issue_now = units > 0;
                if (issue_now) {
                    // Operand readiness.
                    for (const isa::RegId src : e.inst->src) {
                        if (src == 0)
                            continue;
                        const RegEntry &re = reg_lookup(src);
                        if (re.tag == src && re.ready > now) {
                            issue_now = false;
                            break;
                        }
                    }
                }
                if (issue_now && e.inst->isMemory()) {
                    const bool is_load = e.inst->isLoad();
                    if (is_load
                        && (load_ports == 0
                            || static_cast<int>(outstanding.size())
                                >= core.maxOutstandingMisses))
                        issue_now = false;
                    if (issue_now && is_load) {
                        const std::uint64_t lo = e.inst->addr;
                        const std::uint64_t hi = lo + e.inst->size;
                        for (const StoreRec &st : store_queue) {
                            if (st.traceIdx >= e.traceIdx)
                                continue;
                            if (st.addr < hi && st.end > lo
                                && !rob_entry(st.traceIdx)
                                        .completed(now)) {
                                issue_now = false;
                                e.storeBlocked = true;
                                break;
                            }
                        }
                    }
                    if (!is_load && store_ports == 0)
                        issue_now = false;
                    // A penalized (double-pumped) wide vector load
                    // also occupies the permute network for its
                    // merge, like Altivec's load-alignment path.
                    if (e.inst->cls == isa::OpClass::VecLoad
                        && _config.memory.wideVectorLoadPenalty > 0
                        && avail[static_cast<std::size_t>(
                               FuClass::VPer)] == 0)
                        issue_now = false;
                }
                if (!issue_now) {
                    queue[out++] = ti; // keep in queue
                    continue;
                }

                // Issue the instruction. Attribute its waiting
                // time the way Turandot records operation flow:
                // cycles spent waiting on a source register go to
                // rg_<producer class>, unit/port contention beyond
                // that goes to ful_<class>, and memory service time
                // goes to mm_dl1/mm_dl2 below.
                {
                    std::uint64_t max_ready = 0;
                    FuClass prod = FuClass::Fix;
                    bool prod_load = false;
                    for (const isa::RegId src : e.inst->src) {
                        if (src == 0)
                            continue;
                        const RegEntry &re = reg_lookup(src);
                        if (re.tag == src && re.ready > max_ready) {
                            max_ready = re.ready;
                            prod = re.producer;
                            prod_load = re.producerIsLoad;
                        }
                    }
                    if (max_ready > e.enqueueCycle) {
                        stats.traumas.add(
                            rgTrauma(prod, prod_load),
                            max_ready - e.enqueueCycle);
                    }
                    const std::uint64_t ready_at =
                        std::max(max_ready, e.enqueueCycle);
                    if (now > ready_at) {
                        stats.traumas.add(e.storeBlocked
                                              ? Trauma::StData
                                              : fulTrauma(e.cls),
                                          now - ready_at);
                    }
                }
                --units;
                e.st = Entry::St::Issued;
                std::uint64_t latency = static_cast<std::uint64_t>(
                    _config.opLatency(static_cast<FuClass>(c)));
                if (e.inst->isMemory()) {
                    if (e.inst->cls == isa::OpClass::VecLoad
                        && _config.memory.wideVectorLoadPenalty > 0)
                        --avail[static_cast<std::size_t>(
                            FuClass::VPer)];
                    const MemAccess acc = dmem.access(
                        e.inst->addr, e.inst->isStore());
                    e.level = acc.level;
                    if (e.inst->isLoad()) {
                        --load_ports;
                        latency = static_cast<std::uint64_t>(
                            acc.latency);
                        if (e.inst->cls == isa::OpClass::VecLoad)
                            latency += static_cast<std::uint64_t>(
                                _config.memory
                                    .wideVectorLoadPenalty);
                        if (acc.tlbLevel != TlbLevel::Tlb1) {
                            const auto &dt =
                                _config.memory.dataTranslation;
                            stats.traumas.add(
                                acc.tlbLevel == TlbLevel::Walk
                                    ? Trauma::MmTlb2
                                    : Trauma::MmTlb1,
                                static_cast<std::uint64_t>(
                                    acc.tlbLevel == TlbLevel::Walk
                                        ? dt.tlb2Latency
                                              + dt.walkLatency
                                        : dt.tlb2Latency));
                        }
                        if (acc.level != MemLevel::L1) {
                            outstanding.push_back(now + latency);
                            stats.traumas.add(
                                acc.level == MemLevel::Memory
                                    ? Trauma::MmDl2
                                    : Trauma::MmDl1,
                                latency
                                    - static_cast<std::uint64_t>(
                                        _config.memory.dl1
                                            .latency));
                        }
                    } else {
                        --store_ports;
                        latency = 1; // store buffer absorbs it
                    }
                }
                e.completeCycle = now + latency;
                if (e.inst->dst != 0) {
                    RegEntry &re = reg_lookup(e.inst->dst);
                    re.tag = e.inst->dst;
                    re.ready = e.completeCycle;
                    re.producer = e.cls;
                    re.producerIsLoad = e.inst->isLoad();
                }
                if (e.mispredicted
                    && e.traceIdx == mispred_resolve_idx) {
                    // Fetch resumes after resolution + recovery.
                    fetch_blocked_mispred = false;
                    fetch_stall_until = std::max(
                        fetch_stall_until,
                        e.completeCycle
                            + static_cast<std::uint64_t>(
                                bp.recoveryCycles));
                    fetch_stall_reason = Trauma::IfPred;
                }
            }
            queue.resize(out);
        }

        // ---------------- dispatch -------------------------------
        for (int d = 0; d < core.dispatchWidth; ++d) {
            if (rob.empty() || dispatch_next > rob.back().traceIdx)
                break;
            if (dispatch_next < rob.front().traceIdx)
                dispatch_next = rob.front().traceIdx;
            Entry &e = rob_entry(dispatch_next);
            if (e.st != Entry::St::Renamed)
                break;
            auto &queue =
                queues[static_cast<std::size_t>(e.cls)];
            if (static_cast<int>(queue.size())
                >= core.queueSize(e.cls))
                break; // in-order dispatch: younger ops wait too
            queue.push_back(e.traceIdx);
            e.st = Entry::St::Queued;
            e.enqueueCycle = now;
            if (e.inst->isStore()) {
                store_queue.push_back(StoreRec{
                    e.traceIdx, e.inst->addr,
                    static_cast<std::uint64_t>(e.inst->addr)
                        + e.inst->size});
            }
            ++dispatch_next;
        }

        // ---------------- rename ---------------------------------
        for (int r = 0; r < core.renameWidth; ++r) {
            if (ibuffer.empty()
                || static_cast<int>(rob.size()) >= rob_cap)
                break;
            if (ibufferReadyAt.front() > now)
                break; // still in the decode pipe
            const std::uint64_t ti = ibuffer.front();
            const isa::Inst &inst = tr[ti];
            int *free_regs = nullptr;
            switch (regFileOf(inst.cls)) {
              case RegFile::Gpr: free_regs = &gpr_free; break;
              case RegFile::Vpr: free_regs = &vpr_free; break;
              case RegFile::Fpr: free_regs = &fpr_free; break;
              case RegFile::None: break;
            }
            if (inst.dst != 0 && free_regs && *free_regs <= 0)
                break; // physical registers exhausted
            if (inst.dst != 0 && free_regs)
                --*free_regs;

            Entry e;
            e.inst = &inst;
            e.traceIdx = ti;
            e.cls = fuClassOf(inst.cls);
            e.mispredicted = ibufferMispred.front();
            if (inst.dst != 0) {
                // Mark the destination pending so consumers wait
                // until the producer actually issues.
                RegEntry &re = reg_lookup(inst.dst);
                re.tag = inst.dst;
                re.ready = notReady;
                re.producer = e.cls;
                re.producerIsLoad = inst.isLoad();
            }
            rob.push_back(e);
            ibuffer.pop_front();
            ibufferMispred.pop_front();
            ibufferReadyAt.pop_front();
        }

        // ---------------- fetch ----------------------------------
        Trauma front_end_reason = fetch_stall_reason;
        if (now >= fetch_stall_until && !fetch_blocked_mispred) {
            front_end_reason = Trauma::IfFlit;
            int fetched = 0;
            // The decode pipe's stage latches hold instructions in
            // addition to the ibuffer proper.
            const int fe_capacity = core.ibuffer
                + core.frontEndDepth * core.fetchWidth;
            while (fetched < core.fetchWidth
                   && static_cast<int>(ibuffer.size()) < fe_capacity
                   && next_fetch < total) {
                const isa::Inst &inst = tr[next_fetch];

                // I-cache: access once per new line.
                const std::uint64_t line = inst.byteAddress()
                    / static_cast<unsigned>(il1_line);
                if (line != last_fetch_line) {
                    const MemAccess acc =
                        imem.fetch(inst.byteAddress());
                    last_fetch_line = line;
                    if (acc.level != MemLevel::L1
                        || acc.tlbLevel != TlbLevel::Tlb1) {
                        stats.il1Misses +=
                            acc.level != MemLevel::L1;
                        fetch_stall_until = now
                            + static_cast<std::uint64_t>(
                                acc.latency);
                        if (acc.tlbLevel != TlbLevel::Tlb1) {
                            fetch_stall_reason =
                                acc.tlbLevel == TlbLevel::Walk
                                    ? Trauma::IfTlb2
                                    : Trauma::IfTlb1;
                        } else {
                            fetch_stall_reason =
                                acc.level == MemLevel::L2
                                    ? Trauma::IfL1
                                    : Trauma::IfL2;
                        }
                        front_end_reason = fetch_stall_reason;
                        break;
                    }
                }

                bool mispred = false;
                if (inst.isBranch()) {
                    if (unresolved_branches
                        >= bp.maxPredictedBranches) {
                        front_end_reason = Trauma::IfBrch;
                        break;
                    }
                    if (inst.conditional) {
                        if (perfect)
                            perfect->setOutcome(inst.taken);
                        const bool pred =
                            predictor->predictAndUpdate(
                                inst.pc, inst.taken);
                        mispred = pred != inst.taken;
                        ++unresolved_branches;
                    }
                    if (inst.taken && !btb.lookup(inst.pc)) {
                        fetch_stall_until = now
                            + static_cast<std::uint64_t>(
                                bp.nfaMissPenalty);
                        fetch_stall_reason = Trauma::IfNfa;
                    }
                }

                ibuffer.push_back(next_fetch);
                ibufferMispred.push_back(mispred);
                ibufferReadyAt.push_back(
                    now
                    + static_cast<std::uint64_t>(
                        core.frontEndDepth));
                ++next_fetch;
                ++fetched;

                if (mispred) {
                    fetch_blocked_mispred = true;
                    mispred_resolve_idx = next_fetch - 1;
                    front_end_reason = Trauma::IfPred;
                    break;
                }
                if (inst.isBranch() && inst.taken)
                    break; // fetch group ends at a taken branch
            }
        } else if (fetch_blocked_mispred) {
            front_end_reason = Trauma::IfPred;
        }

        // ---------------- occupancy + trauma accounting ----------
        for (int c = 0; c < numFuClasses; ++c) {
            auto &h =
                stats.queueOccupancy[static_cast<std::size_t>(c)];
            const std::size_t occ = std::min(
                queues[static_cast<std::size_t>(c)].size(),
                h.size() - 1);
            ++h[occ];
        }
        ++stats.inflightOccupancy[std::min(
            rob.size() + ibuffer.size(),
            stats.inflightOccupancy.size() - 1)];
        ++stats.retireQueueOccupancy[std::min(
            rob.size(), stats.retireQueueOccupancy.size() - 1)];

        // Fetch-side traumas are cycle-based: every cycle the
        // fetch stage makes no progress for a front-end reason is
        // charged to that reason (back-end rg_/mm_/ful_ waiting is
        // operation-weighted at issue time instead).
        if (next_fetch < total) {
            if (fetch_blocked_mispred) {
                stats.traumas.add(Trauma::IfPred);
            } else if (now < fetch_stall_until) {
                stats.traumas.add(fetch_stall_reason);
            } else if (front_end_reason == Trauma::IfBrch) {
                stats.traumas.add(Trauma::IfBrch);
            }
        }
        if (retired == 0 && retired_total < total) {
            if (!rob.empty()) {
                Entry &oldest = rob.front();
                if (oldest.st == Entry::St::Renamed)
                    stats.traumas.add(diqTrauma(oldest.cls));
            } else if (!ibuffer.empty()
                       && ibufferReadyAt.front() > now
                       && now >= fetch_stall_until
                       && !fetch_blocked_mispred) {
                // Decode-pipe refill with an idle machine: part of
                // the preceding flush's cost.
                stats.traumas.add(fetch_stall_reason);
            }
        }

        ++now;
    }

    stats.cycles = now;
    stats.dl1Accesses = dmem.dl1().accesses();
    stats.dl1Misses = dmem.dl1().misses();
    stats.l2Accesses = dmem.l2().accesses();
    stats.l2Misses = dmem.l2().misses();
    stats.dtlb1Misses = dmem.tlb().tlb1().misses();
    stats.dtlb2Misses = dmem.tlb().tlb2().misses();
    stats.branchPredictions = predictor->predictions();
    stats.branchMispredictions = predictor->mispredictions();
    stats.btbMisses = btb.misses();
    return stats;
}

} // namespace bioarch::sim
