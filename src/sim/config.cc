#include "config.hh"

namespace bioarch::sim
{

std::string_view
fuClassName(FuClass cls)
{
    switch (cls) {
      case FuClass::LdSt: return "mem";
      case FuClass::Fix: return "fix";
      case FuClass::Fp: return "fpu";
      case FuClass::Br: return "br";
      case FuClass::Vi: return "vi";
      case FuClass::VPer: return "vper";
      case FuClass::VCmplx: return "vcmplx";
      case FuClass::VFp: return "vfpu";
      case FuClass::NumClasses: break;
    }
    return "?";
}

CoreConfig
core4Way()
{
    CoreConfig c;
    c.name = "4-way";
    c.fetchWidth = 4;
    c.renameWidth = 4;
    c.dispatchWidth = 4;
    c.retireWidth = 6;
    c.inflightLimit = 160;
    c.retireQueue = 128;
    c.ibuffer = 18;
    c.gprRegs = 96;
    c.vprRegs = 96;
    c.fprRegs = 96;
    //         LdSt FX  FP  BR  VI VPER VCX VFP
    c.units = {2,   3,  2,  2,  1,  1,  1,  1};
    c.issueQueue = {20, 20, 20, 20, 20, 20, 20, 20};
    c.maxOutstandingMisses = 4;
    c.dcachePorts = 2;
    c.dcacheWritePorts = 1;
    return c;
}

CoreConfig
core8Way()
{
    CoreConfig c;
    c.name = "8-way";
    c.fetchWidth = 8;
    c.renameWidth = 8;
    c.dispatchWidth = 8;
    c.retireWidth = 12;
    c.inflightLimit = 255;
    c.retireQueue = 180;
    c.ibuffer = 36;
    c.gprRegs = 128;
    c.vprRegs = 128;
    c.fprRegs = 128;
    c.units = {4, 6, 4, 3, 2, 2, 2, 2};
    c.issueQueue = {40, 40, 40, 40, 40, 40, 40, 40};
    c.maxOutstandingMisses = 8;
    c.dcachePorts = 3;
    c.dcacheWritePorts = 2;
    return c;
}

CoreConfig
core16Way()
{
    CoreConfig c;
    c.name = "16-way";
    c.fetchWidth = 16;
    c.renameWidth = 16;
    c.dispatchWidth = 16;
    c.retireWidth = 20;
    c.inflightLimit = 255;
    c.retireQueue = 180;
    c.ibuffer = 72;
    c.gprRegs = 128;
    c.vprRegs = 128;
    c.fprRegs = 128;
    c.units = {8, 10, 8, 7, 6, 4, 4, 4};
    c.issueQueue = {80, 80, 80, 80, 80, 80, 80, 80};
    c.maxOutstandingMisses = 16;
    c.dcachePorts = 7;
    c.dcacheWritePorts = 4;
    return c;
}

namespace
{

MemoryConfig
makeMemory(std::string name, std::int64_t l1_kb, std::int64_t l2_mb)
{
    MemoryConfig m;
    m.name = std::move(name);
    m.il1 = CacheConfig{l1_kb < 0 ? -1 : l1_kb * 1024, 1, 128, 1};
    m.dl1 = CacheConfig{l1_kb < 0 ? -1 : l1_kb * 1024, 2, 128, 1};
    m.l2 = CacheConfig{l2_mb < 0 ? -1 : l2_mb * 1024 * 1024, 8, 128,
                       12};
    m.memLatency = 300;
    return m;
}

} // namespace

MemoryConfig memoryMe1() { return makeMemory("me1", 32, 1); }
MemoryConfig memoryMe2() { return makeMemory("me2", 64, 2); }
MemoryConfig memoryMe3() { return makeMemory("me3", 128, 4); }
MemoryConfig memoryMe4() { return makeMemory("me4", 128, -1); }
MemoryConfig memoryInf() { return makeMemory("meinf", -1, -1); }

std::string_view
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::Combined: return "gp";
      case PredictorKind::Perfect: return "perfect";
    }
    return "?";
}

int
SimConfig::opLatency(FuClass cls) const
{
    switch (cls) {
      case FuClass::LdSt: return 1;  // address generation; cache adds
      case FuClass::Fix: return 1;
      case FuClass::Fp: return 4;
      case FuClass::Br: return 1;
      case FuClass::Vi: return 2;
      case FuClass::VPer: return 2;
      case FuClass::VCmplx: return 4;
      case FuClass::VFp: return 4;
      case FuClass::NumClasses: break;
    }
    return 1;
}

} // namespace bioarch::sim
