#include "tlb.hh"

#include <bit>

#include "core/digest.hh"

namespace bioarch::sim
{

namespace
{

int
ceilPow2(int v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Tlb::Tlb(const TlbConfig &config) : _config(config)
{
    if (_config.infinite())
        return;
    _assoc = std::max(1, _config.associativity);
    _sets = ceilPow2(std::max(1, _config.entries / _assoc));
    _setShift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<unsigned>(_sets)));
    _tags.assign(static_cast<std::size_t>(_sets) * _assoc, 0);
    _stamps.assign(_tags.size(), 0);
}

bool
Tlb::access(std::uint64_t page)
{
    ++_accesses;
    if (_config.infinite())
        return true;
    const std::uint64_t tag = (page >> _setShift) + 1;
    const int set =
        static_cast<int>(page & static_cast<unsigned>(_sets - 1));
    const int assoc = _assoc;
    const std::size_t base = static_cast<std::size_t>(set) * assoc;
    ++_clock;
    int victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int way = 0; way < assoc; ++way) {
        if (_tags[base + way] == tag) {
            _stamps[base + way] = _clock;
            return true;
        }
        if (_stamps[base + way] < oldest) {
            oldest = _stamps[base + way];
            victim = way;
        }
    }
    ++_misses;
    _tags[base + victim] = tag;
    _stamps[base + victim] = _clock;
    return false;
}

std::uint64_t
Tlb::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_tags.size());
    for (const std::uint64_t t : _tags)
        fnv.update64(t);
    for (const std::uint64_t s : _stamps)
        fnv.update64(s);
    fnv.update64(_clock);
    fnv.update64(_accesses);
    fnv.update64(_misses);
    return fnv.digest();
}

TranslationUnit::TranslationUnit(const TranslationConfig &config)
    : _config(config), _tlb1(config.tlb1), _tlb2(config.tlb2)
{
    const auto page_bytes =
        static_cast<unsigned>(std::max(1, _config.pageBytes));
    if (std::has_single_bit(page_bytes))
        _pageShift = std::countr_zero(page_bytes);
}

Translation
TranslationUnit::translate(std::uint64_t addr)
{
    Translation out;
    const std::uint64_t page = _pageShift >= 0
        ? addr >> _pageShift
        : addr / static_cast<unsigned>(_config.pageBytes);
    if (_tlb1.access(page))
        return out;
    if (_tlb2.access(page)) {
        out.latency = _config.tlb2Latency;
        out.level = TlbLevel::Tlb2;
        return out;
    }
    out.latency = _config.tlb2Latency + _config.walkLatency;
    out.level = TlbLevel::Walk;
    return out;
}

std::uint64_t
TranslationUnit::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_tlb1.stateDigest());
    fnv.update64(_tlb2.stateDigest());
    return fnv.digest();
}

} // namespace bioarch::sim
