/**
 * @file
 * Sampled simulation: SimPoint/SMARTS-style windowed sampling over
 * the detailed pipeline model.
 *
 * Full-trace detailed simulation costs O(every instruction); the
 * paper's methodology tops out around 14 Minst/s, which makes
 * full-database-scale traces (and characterizing the serving
 * engine's own instruction stream) intractable. The sampler splits
 * a trace into measurement windows spaced periodInsts apart: each
 * window gets functional warmup (caches, TLBs, BTB and direction
 * predictor trained over the warmupInsts preceding instructions —
 * structural updates only, no timing) and then detailed simulation
 * of windowInsts instructions from that warm MachineState, with
 * the pipeline starting empty and draining at the window's end.
 *
 * Windows are grouped into fixed-size *chunks* (SampleConfig::
 * chunkWindows): a chunk's windows run serially on one worker with
 * the machine state functionally warmed through the gaps between
 * them (SMARTS-style continuous warming — long-period state like a
 * big predictor table keeps its history instead of retraining from
 * a bounded prefix at every window). Chunks are independent, so
 * they fan out across a work-stealing ThreadPool and merge in
 * window order — the chunk partition is fixed by the config, never
 * the jobs count, so the merged SampledStats is bit-for-bit
 * identical for any jobs value, the same contract the design-space
 * sweep enforces.
 *
 * Timing (cycles, IPC, stall traumas) is extrapolated per window —
 * each window stands for its surrounding period. Cache miss
 * *rates* are not extrapolated at all: the sampler always streams
 * the complete trace through the functional model (a single chunk
 * walks prefix + gaps + tail as it goes, as does the last chunk of
 * a full-prefix-warmup run; a bounded-warmup multi-chunk run adds
 * a dedicated coverage pass as one more parallel task), and the
 * whole-trace dl1/l2 counters are harvested from that stream.
 * These traces miss mostly on compulsory fills — a few hundred
 * events in millions of accesses — so any windowed estimate of a
 * miss rate is statistically hopeless, while the functional stream
 * reproduces the detailed loop's access sequence and makes the
 * rates exact. Error bounds are pinned against golden full runs in
 * tests/sim_sample_test.cc.
 */

#ifndef BIOARCH_SIM_SAMPLE_HH
#define BIOARCH_SIM_SAMPLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline.hh"

namespace bioarch::sim
{

/** Sampling parameters. Every count is in instructions. */
struct SampleConfig
{
    /** Detailed-measured instructions per window. */
    std::uint64_t windowInsts = 20'000;
    /** Distance between window starts; each window extrapolates to
     * the period it sits in. Must be >= windowInsts. */
    std::uint64_t periodInsts = 250'000;
    /** Functional-warmup instructions ahead of each *chunk*'s
     * first window (clamped to the trace's start). Only bounds the
     * warmup of chunks after the first in a multi-chunk run; a
     * chunk starting at the trace's head — in particular the lone
     * chunk of a default single-chunk run — warms its complete
     * prefix instead, which costs nothing extra since the
     * functional stream must cover the trace anyway. */
    std::uint64_t warmupInsts = 50'000;
    /**
     * Windows per chunk. A chunk is the parallel unit: its windows
     * run serially on one worker with the machine state warmed
     * *continuously* through the gaps between them (SMARTS-style
     * functional warming), so only the chunk's first window pays
     * the bounded-warmup state error. The chunk partition is fixed
     * by this config — never by the jobs count — which is what
     * keeps the merged result bit-identical across jobs.
     *
     * The default is large enough that any realistic trace runs as
     * one chunk: warmupInsts is then moot (the lone chunk warms the
     * whole prefix while streaming the trace) and the run is exact
     * apart from window-placement error. Set it smaller to fan
     * chunks across jobs on a multi-core host.
     */
    std::uint64_t chunkWindows = 1'000'000;
    /** Worker threads for the chunk fan-out. */
    unsigned jobs = 1;

    /**
     * Empty string when the configuration is usable; otherwise a
     * one-line description of the first problem (zero counts,
     * window larger than period) for CLI-grade error reporting.
     */
    std::string validate() const;
};

/** One planned measurement window. */
struct SampleWindow
{
    /** First instruction of the functional-warmup prefix (only
     * consumed when this window opens a chunk; later windows of a
     * chunk inherit continuously warmed state instead). */
    std::uint64_t warmupBegin = 0;
    /** First detailed-measured instruction. */
    std::uint64_t begin = 0;
    /** Detailed-measured instruction count (tail windows clamp). */
    std::uint64_t count = 0;
    /** Instructions this window stands for when extrapolating
     * (its period, clamped to the trace's end). */
    std::uint64_t represents = 0;
};

/** Window layout for a trace of @p traceInsts instructions. */
std::vector<SampleWindow> planWindows(std::uint64_t traceInsts,
                                      const SampleConfig &config);

/** Everything a sampled run reports. */
struct SampledStats
{
    /** Per-window detailed stats summed in window order (cycles /
     * instructions / misses cover only measured windows). */
    SimStats measured;
    std::uint64_t windows = 0;
    /** Length of the full trace the sample stands for. */
    std::uint64_t traceInstructions = 0;
    std::uint64_t measuredInstructions = 0;
    /** Instructions streamed through the functional model only
     * (prefix, gaps, tail, bounded chunk warmups, coverage pass). */
    std::uint64_t warmupInstructions = 0;
    /**
     * Whole-trace cache counters from the functional stream (warm
     * plus detailed windows cover every instruction). Exact, not
     * extrapolated: the functional model reproduces the detailed
     * loop's access sequence.
     */
    std::uint64_t dl1Accesses = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /**
     * Whole-trace cycle estimate: each window's cycles scaled by
     * the instructions it represents (sum_k cycles_k *
     * represents_k / count_k), accumulated in window order so the
     * value is schedule-independent.
     */
    double estimatedCycles = 0.0;

    /** Fraction of the trace that was detailed-simulated. */
    double
    sampledFraction() const
    {
        return traceInstructions == 0
            ? 0.0
            : static_cast<double>(measuredInstructions)
                / static_cast<double>(traceInstructions);
    }

    /** Whole-trace IPC estimate. */
    double
    ipc() const
    {
        return estimatedCycles <= 0.0
            ? 0.0
            : static_cast<double>(traceInstructions)
                / estimatedCycles;
    }

    /** Whole-trace DL1 miss rate (from the functional stream). */
    double
    dl1MissRate() const
    {
        return dl1Accesses == 0
            ? 0.0
            : static_cast<double>(dl1Misses)
                / static_cast<double>(dl1Accesses);
    }

    /** Whole-trace L2 miss rate (from the functional stream). */
    double
    l2MissRate() const
    {
        return l2Accesses == 0
            ? 0.0
            : static_cast<double>(l2Misses)
                / static_cast<double>(l2Accesses);
    }

    /** Share of @p t in the measured stall cycles (0 when none). */
    double traumaShare(Trauma t) const;

    /** FNV-1a digest over every field (the determinism pin: equal
     * digests across jobs counts mean bit-identical results). */
    std::uint64_t fingerprint() const;

    bool operator==(const SampledStats &) const = default;
};

/**
 * Error of a sampled run against the full detailed run of the same
 * trace and configuration (the acceptance gates: IPC within 2%,
 * miss rates within 5%, trauma shares within 5 points).
 */
struct SampleError
{
    /** Relative IPC error, percent. */
    double ipcPct = 0.0;
    /** Relative DL1 miss-rate error, percent (absolute when the
     * full run's rate is ~0). */
    double dl1MissRatePct = 0.0;
    /** Relative L2 miss-rate error, percent (same guard). */
    double l2MissRatePct = 0.0;
    /** Largest absolute trauma-share difference, in percentage
     * points of total stall cycles. */
    double traumaSharePts = 0.0;
};

SampleError compareSampled(const SampledStats &sampled,
                           const SimStats &full);

/**
 * Sample @p trace on @p machine: plan windows, measure them chunk
 * by chunk (chunks fanned across config.jobs workers, windows
 * within a chunk serial with continuously warmed state), merge in
 * window order. Throws std::invalid_argument when
 * config.validate() rejects.
 */
SampledStats sampleTrace(const trace::Trace &trace,
                         const SimConfig &machine,
                         const SampleConfig &config);

} // namespace bioarch::sim

#endif // BIOARCH_SIM_SAMPLE_HH
