/**
 * @file
 * Fixed-capacity power-of-two ring buffer for the pipeline
 * simulator's in-flight structures (ROB, ibuffer, store queue).
 *
 * The simulator's queues have hard capacities known at construction
 * (CoreConfig), so a preallocated ring replaces std::deque: no
 * allocator traffic after construction, contiguous storage, and
 * index-from-front access in two instructions (add + mask). Head
 * and tail are monotone counters, so size() == tail - head never
 * needs a full/empty disambiguation bit.
 */

#ifndef BIOARCH_SIM_RING_BUFFER_HH
#define BIOARCH_SIM_RING_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bioarch::sim
{

template <typename T>
class RingBuffer
{
  public:
    /** Preallocate room for at least @p capacity elements. */
    explicit RingBuffer(std::size_t capacity)
    {
        std::size_t pow2 = 1;
        while (pow2 < capacity)
            pow2 <<= 1;
        _slots.resize(pow2);
        _mask = pow2 - 1;
    }

    bool empty() const { return _head == _tail; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(_tail - _head);
    }
    std::size_t capacity() const { return _slots.size(); }

    T &front() { return _slots[_head & _mask]; }
    const T &front() const { return _slots[_head & _mask]; }
    T &back() { return _slots[(_tail - 1) & _mask]; }
    const T &back() const { return _slots[(_tail - 1) & _mask]; }

    /** @p i counts from the front (oldest) element. */
    T &operator[](std::size_t i)
    {
        return _slots[(_head + i) & _mask];
    }
    const T &operator[](std::size_t i) const
    {
        return _slots[(_head + i) & _mask];
    }

    void
    push_back(const T &value)
    {
        assert(size() < capacity());
        _slots[_tail & _mask] = value;
        ++_tail;
    }

    /** Append a value-initialized element and return it, for
     * callers that fill the fields in place rather than copying a
     * whole staged object in. */
    T &
    emplace_back()
    {
        assert(size() < capacity());
        T &slot = _slots[_tail & _mask];
        slot = T{};
        ++_tail;
        return slot;
    }

    void
    pop_front()
    {
        assert(!empty());
        ++_head;
    }

    void clear() { _head = _tail; }

  private:
    std::vector<T> _slots;
    std::uint64_t _mask = 0;
    std::uint64_t _head = 0;
    std::uint64_t _tail = 0;
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_RING_BUFFER_HH
