/**
 * @file
 * Two-level TLB model. The trauma taxonomy (Table VII) includes
 * TLB misses on both the data and instruction sides (mm_tlb1/2,
 * if_tlb1/2); this model makes those events real. With the default
 * sizing they are rare for these workloads (whose hot data fits a
 * few hundred pages), exactly as in the paper's histograms — but
 * the levels are fully configurable for exploration.
 */

#ifndef BIOARCH_SIM_TLB_HH
#define BIOARCH_SIM_TLB_HH

#include <cstdint>
#include <vector>

namespace bioarch::sim
{

/** One TLB level's parameters. */
struct TlbConfig
{
    int entries = 64;
    int associativity = 4;
    /** Negative entries = infinite (never misses). */
    bool infinite() const { return entries < 0; }
};

/** Translation parameters for one side (data or instruction). */
struct TranslationConfig
{
    int pageBytes = 4096;
    TlbConfig tlb1{64, 4};
    TlbConfig tlb2{1024, 8};
    int tlb2Latency = 5;    ///< extra cycles on a TLB1 miss
    int walkLatency = 100;  ///< extra cycles on a TLB2 miss
};

/** Where a translation was served. */
enum class TlbLevel : std::uint8_t
{
    Tlb1, ///< first-level hit
    Tlb2, ///< TLB1 miss, TLB2 hit
    Walk, ///< missed both: page-table walk
};

/** One set-associative TLB level (LRU over page numbers). */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Look up (and fill on miss) @p page. @return true on hit. */
    bool access(std::uint64_t page);

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t misses() const { return _misses; }

    /** FNV-1a digest over tags, stamps, clock and statistics (the
     * snapshot/restore equality check, as in Cache). */
    std::uint64_t stateDigest() const;

  private:
    TlbConfig _config;
    int _sets = 1;
    int _assoc = 1;
    /** log2(_sets): pow-2 set count makes the tag a shift. */
    std::uint64_t _setShift = 0;
    std::vector<std::uint64_t> _tags;
    std::vector<std::uint64_t> _stamps;
    std::uint64_t _clock = 0;
    std::uint64_t _accesses = 0;
    std::uint64_t _misses = 0;
};

/** Result of translating one address. */
struct Translation
{
    int latency = 0; ///< extra cycles beyond a TLB1 hit
    TlbLevel level = TlbLevel::Tlb1;
};

/** A two-level translation unit for one side. */
class TranslationUnit
{
  public:
    explicit TranslationUnit(const TranslationConfig &config);

    /** Translate the address @p addr. */
    Translation translate(std::uint64_t addr);

    const Tlb &tlb1() const { return _tlb1; }
    const Tlb &tlb2() const { return _tlb2; }

    /** Digest over both levels (see Tlb::stateDigest). */
    std::uint64_t stateDigest() const;

  private:
    TranslationConfig _config;
    /** log2(pageBytes) when it is a power of two, else -1 and the
     * page number falls back to division. */
    int _pageShift = -1;
    Tlb _tlb1;
    Tlb _tlb2;
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_TLB_HH
