/**
 * @file
 * Branch direction predictors (bimodal, gshare, combined "GP",
 * perfect) and the NFA/BTB next-fetch-address table of Table VI.
 */

#ifndef BIOARCH_SIM_BPRED_HH
#define BIOARCH_SIM_BPRED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config.hh"

namespace bioarch::sim
{

/**
 * Direction predictor interface. Predict-then-update per branch,
 * in trace order (the model updates non-speculatively, which for
 * trace-driven simulation is the standard approximation).
 *
 * The concrete predictors are `final`: the simulator's fetch loop
 * is instantiated per predictor kind (Simulator::run switches once,
 * outside the loop), so predict/train calls on the concrete type
 * compile to direct — usually inlined — calls instead of per-branch
 * virtual dispatch. The virtual interface remains for callers that
 * genuinely need runtime polymorphism (makePredictor()).
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Train with the actual @p taken outcome. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Predict + update + bookkeeping; returns prediction. */
    bool
    predictAndUpdate(std::uint64_t pc, bool taken)
    {
        const bool pred = predict(pc);
        update(pc, taken);
        ++_predictions;
        _mispredictions += pred != taken;
        return pred;
    }

    std::uint64_t predictions() const { return _predictions; }
    std::uint64_t mispredictions() const { return _mispredictions; }

    /**
     * FNV-1a digest over the predictor's complete training state
     * (tables, history, selector) plus the prediction counters —
     * the snapshot/restore equality check, as in Cache/Tlb.
     */
    virtual std::uint64_t stateDigest() const = 0;
    /** Fraction of correct predictions (1.0 when no branches). */
    double
    accuracy() const
    {
        return _predictions == 0
            ? 1.0
            : 1.0
                - static_cast<double>(_mispredictions)
                    / static_cast<double>(_predictions);
    }

  private:
    std::uint64_t _predictions = 0;
    std::uint64_t _mispredictions = 0;
};

/** Per-PC table of 2-bit saturating counters. */
class BimodalPredictor final : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(int entries);
    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t stateDigest() const override;

  private:
    std::vector<std::uint8_t> _table;
    std::uint64_t _mask;
};

/** Global-history-xor-PC indexed 2-bit counters. */
class GsharePredictor final : public DirectionPredictor
{
  public:
    explicit GsharePredictor(int entries);
    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t stateDigest() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    std::vector<std::uint8_t> _table;
    std::uint64_t _mask;
    std::uint64_t _history = 0;
    int _historyBits;
};

/**
 * The paper's "GP" combined predictor: a selector table of 2-bit
 * counters chooses between a gshare and a bimodal component per
 * branch (McFarling-style tournament).
 */
class CombinedPredictor final : public DirectionPredictor
{
  public:
    explicit CombinedPredictor(int entries);
    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t stateDigest() const override;

  private:
    BimodalPredictor _bimodal;
    GsharePredictor _gshare;
    std::vector<std::uint8_t> _selector;
    std::uint64_t _mask;
    bool _lastBimodal = false;
    bool _lastGshare = false;
};

/** Oracle predictor: always right (Fig. 9's Perfect-BP). */
class PerfectPredictor final : public DirectionPredictor
{
  public:
    bool
    predict(std::uint64_t pc) override
    {
        (void)pc;
        return _next;
    }
    void
    update(std::uint64_t pc, bool taken) override
    {
        (void)pc;
        (void)taken;
    }
    /** The oracle peeks at the outcome before predicting. */
    void setOutcome(bool taken) { _next = taken; }
    std::uint64_t stateDigest() const override;

  private:
    bool _next = false;
};

/** Build the configured direction predictor. */
std::unique_ptr<DirectionPredictor>
makePredictor(const BranchPredictorConfig &config);

/**
 * NFA / branch target buffer: a set-associative table of branch
 * PCs. A taken branch whose PC misses costs the NFA penalty while
 * the fetch redirects (Table VI: 2 cycles).
 */
class Btb
{
  public:
    Btb(int entries, int associativity);

    /** Look up (and insert on miss) the branch at @p pc. */
    bool lookup(std::uint64_t pc);

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    /** FNV-1a digest over tags, stamps, clock and statistics. */
    std::uint64_t stateDigest() const;

  private:
    int _sets;
    int _assoc;
    /** log2(_sets): pow-2 set count makes the tag a shift. */
    std::uint64_t _setShift = 0;
    std::vector<std::uint64_t> _tags;
    std::vector<std::uint64_t> _stamps;
    std::uint64_t _clock = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_BPRED_HH
