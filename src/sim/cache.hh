/**
 * @file
 * Set-associative cache model with LRU replacement, plus the
 * two-level data/instruction hierarchy of Table V.
 */

#ifndef BIOARCH_SIM_CACHE_HH
#define BIOARCH_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "config.hh"
#include "tlb.hh"

namespace bioarch::sim
{

/**
 * One cache level. Tag-only (no data) with true-LRU replacement.
 * An infinite cache (sizeBytes < 0) never misses — the paper's
 * "Inf" columns model an ideal level, not merely a huge one.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up (and on miss, fill) the line containing @p addr.
     *
     * @return true on hit
     */
    bool access(std::uint64_t addr);

    /** Look up without filling (for occupancy probes in tests). */
    bool probe(std::uint64_t addr) const;

    /**
     * Install the line containing @p addr without touching the
     * demand-access statistics (prefetch fills).
     */
    void fill(std::uint64_t addr);

    const CacheConfig &config() const { return _config; }

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t misses() const { return _misses; }
    double
    missRate() const
    {
        return _accesses == 0
            ? 0.0
            : static_cast<double>(_misses)
                / static_cast<double>(_accesses);
    }

    /** Drop all contents and statistics. */
    void reset();

    /**
     * Order-sensitive FNV-1a digest over the complete replacement
     * state (tags, LRU stamps, clock) and statistics. Snapshot /
     * restore round-trips are verified by digest equality: a copy
     * digests equal, and stays equal under the same access stream.
     */
    std::uint64_t stateDigest() const;

  private:
    CacheConfig _config;
    int _numSets = 0;
    int _assoc = 1;
    std::uint64_t _lineShift = 0;
    /** log2(_numSets): the set count is a power of two, so the
     * tag extraction is a shift, not a (20-cycle) division. */
    std::uint64_t _setShift = 0;
    /** tags[set * assoc + way]; 0 = empty. */
    std::vector<std::uint64_t> _tags;
    /** LRU stamps parallel to tags. */
    std::vector<std::uint64_t> _stamps;
    std::uint64_t _clock = 0;
    std::uint64_t _accesses = 0;
    std::uint64_t _misses = 0;
};

/** Where an access was finally served. */
enum class MemLevel : std::uint8_t
{
    L1,     ///< hit in the first level
    L2,     ///< L1 miss, L2 hit
    Memory, ///< missed both caches
};

/** Outcome of a hierarchy access. */
struct MemAccess
{
    int latency = 1;
    MemLevel level = MemLevel::L1;
    TlbLevel tlbLevel = TlbLevel::Tlb1;
    bool l1Miss() const { return level != MemLevel::L1; }
    bool tlbMiss() const { return tlbLevel != TlbLevel::Tlb1; }
};

/**
 * The data-side hierarchy: DL1 -> shared L2 -> main memory.
 */
class DataHierarchy
{
  public:
    explicit DataHierarchy(const MemoryConfig &config);

    /** Access @p addr; @p write selects the (shared) port stats. */
    MemAccess access(std::uint64_t addr, bool write);

    const Cache &dl1() const { return _dl1; }
    const Cache &l2() const { return _l2; }
    const TranslationUnit &tlb() const { return _tlb; }
    std::uint64_t prefetches() const { return _prefetches; }

    /** Digest over every level's state (see Cache::stateDigest). */
    std::uint64_t stateDigest() const;

  private:
    MemoryConfig _config;
    Cache _dl1;
    Cache _l2;
    TranslationUnit _tlb;
    std::uint64_t _prefetches = 0;
};

/**
 * The instruction-side hierarchy: IL1 -> shared L2 -> memory.
 * (The L2 is modeled per-side for simplicity; the traced kernels'
 * code footprints are tiny, so cross-side interference is nil.)
 */
class InstrHierarchy
{
  public:
    explicit InstrHierarchy(const MemoryConfig &config);

    MemAccess fetch(std::uint64_t pc_byte_addr);

    const Cache &il1() const { return _il1; }
    const TranslationUnit &tlb() const { return _tlb; }

    /** Digest over every level's state (see Cache::stateDigest). */
    std::uint64_t stateDigest() const;

  private:
    MemoryConfig _config;
    Cache _il1;
    Cache _l2;
    TranslationUnit _tlb;
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_CACHE_HH
