/**
 * @file
 * Trauma (stall-reason) taxonomy — the 56 classes of Moreno et al.
 * that the paper's Fig. 2 histograms enumerate, with the names used
 * on its x-axis. Each simulated stall cycle is attributed to
 * exactly one trauma.
 */

#ifndef BIOARCH_SIM_TRAUMA_HH
#define BIOARCH_SIM_TRAUMA_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace bioarch::sim
{

/**
 * Stall reasons, in the paper's Fig. 2 x-axis order. Families:
 *
 *  st_*   store-side hazards
 *  rg_*   waiting on a register produced by the named unit class
 *  mm_*   memory-system events (cache/TLB misses, queue-full)
 *  ful_*  issue stalled because all units of a class are busy
 *  diq_*  dispatch stalled because a class's issue queue is full
 *  rename/decode  front-end width limits
 *  if_*   instruction-fetch stalls (branch predictor, I-cache, NFA)
 */
enum class Trauma : std::uint8_t
{
    StData,
    RgVfpu, RgVcmplx, RgVper, RgVi,
    RgCmplx, RgLog, RgBr, RgMem, RgFpu, RgFix,
    MmDl1, MmDl2, MmTlb2, MmTlb1, MmStnd,
    MmDcqf, MmDmqf, MmRoqf, MmStqc, MmStqf,
    FulVfpu, FulVcmplx, FulVper, FulVi,
    FulCmplx, FulLog, FulBr, FulMem, FulFpu, FulFix,
    DiqVfpu, DiqVcmplx, DiqVper, DiqVi,
    DiqCmplx, DiqLog, DiqBr, DiqMem, DiqFpu, DiqFix,
    Rename, Decode,
    IfLdst, IfBrch, IfFlit, IfFull, IfPred, IfPref,
    IfL1, IfL15, IfL2, IfTlb2, IfTlb1, IfNfa,
    Other,
    NumTraumas
};

constexpr int numTraumas = static_cast<int>(Trauma::NumTraumas);

/** x-axis label, e.g. "rg_vi", "mm_dl2", "if_pred". */
std::string_view traumaName(Trauma t);

/** Per-trauma stall-cycle accounting. */
struct TraumaCounts
{
    std::array<std::uint64_t, numTraumas> cycles{};

    bool operator==(const TraumaCounts &) const = default;

    void add(Trauma t, std::uint64_t n = 1)
    {
        cycles[static_cast<int>(t)] += n;
    }
    std::uint64_t
    get(Trauma t) const
    {
        return cycles[static_cast<int>(t)];
    }
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t c : cycles)
            sum += c;
        return sum;
    }
    /** Trauma with the most cycles. */
    Trauma
    dominant() const
    {
        int best = 0;
        for (int t = 1; t < numTraumas; ++t)
            if (cycles[static_cast<std::size_t>(t)]
                > cycles[static_cast<std::size_t>(best)])
                best = t;
        return static_cast<Trauma>(best);
    }
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_TRAUMA_HH
