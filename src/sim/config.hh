/**
 * @file
 * Simulated processor configuration: the parameter space of the
 * paper's Tables IV (core widths / functional units / queues),
 * V (memory hierarchy) and VI (branch predictor), with the exact
 * presets used in its evaluation.
 */

#ifndef BIOARCH_SIM_CONFIG_HH
#define BIOARCH_SIM_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "tlb.hh"

namespace bioarch::sim
{

/** Functional-unit / issue-queue classes of the modeled core. */
enum class FuClass : std::uint8_t
{
    LdSt,    ///< scalar + vector loads/stores
    Fix,     ///< scalar integer (FX)
    Fp,      ///< scalar float
    Br,      ///< branches
    Vi,      ///< vector simple integer
    VPer,    ///< vector permute
    VCmplx,  ///< vector complex
    VFp,     ///< vector float
    NumClasses
};

constexpr int numFuClasses = static_cast<int>(FuClass::NumClasses);

/** Lower-case unit name as used in the paper's figures. */
std::string_view fuClassName(FuClass cls);

/** Core (width/unit/queue) configuration — one column of Table IV. */
struct CoreConfig
{
    std::string name = "4-way";

    int fetchWidth = 4;
    int renameWidth = 4;
    int dispatchWidth = 4;
    int retireWidth = 6;

    int inflightLimit = 160;   ///< max instructions in flight
    int retireQueue = 128;     ///< reorder/retire queue entries
    int ibuffer = 18;          ///< fetch buffer entries
    /** Pipe stages between fetch and rename (decode depth). This is
     * the front-end refill latency paid after every flush, on top
     * of the predictor's recovery cycles. */
    int frontEndDepth = 8;

    int gprRegs = 96;          ///< physical integer registers
    int vprRegs = 96;          ///< physical vector registers
    int fprRegs = 96;          ///< physical float registers

    /** Functional units per class (Table IV "Units"). */
    std::array<int, numFuClasses> units{2, 3, 2, 2, 1, 1, 1, 1};
    /** Issue-queue entries per class (Table IV "Queues"). */
    std::array<int, numFuClasses> issueQueue{20, 20, 20, 20,
                                             20, 20, 20, 20};

    int maxOutstandingMisses = 4; ///< MSHRs
    int dcachePorts = 2;          ///< read ports (loads per cycle)
    int dcacheWritePorts = 1;     ///< write ports (stores per cycle)

    int fuUnits(FuClass cls) const
    {
        return units[static_cast<int>(cls)];
    }
    int queueSize(FuClass cls) const
    {
        return issueQueue[static_cast<int>(cls)];
    }
};

/** The paper's 4-way configuration (PowerPC 970 / Alpha 21264). */
CoreConfig core4Way();
/** The paper's 8-way configuration (Power 6 / Alpha 21464 class). */
CoreConfig core8Way();
/** The paper's 16-way limit configuration. */
CoreConfig core16Way();

/** One cache of Table V. Size 0 means disabled; negative = infinite. */
struct CacheConfig
{
    std::int64_t sizeBytes = 32 * 1024;
    int associativity = 2;
    int lineBytes = 128;
    int latency = 1;

    bool infinite() const { return sizeBytes < 0; }
};

/** Memory hierarchy configuration — one column of Table V. */
struct MemoryConfig
{
    std::string name = "me1";
    CacheConfig il1{32 * 1024, 1, 128, 1};
    CacheConfig dl1{32 * 1024, 2, 128, 1};
    CacheConfig l2{1 * 1024 * 1024, 8, 128, 12};
    int memLatency = 300;
    /** Extra cycles on every vector load (Fig. 8 experiment). */
    int wideVectorLoadPenalty = 0;
    /** Next-line prefetch into DL1 on demand misses. */
    bool dataPrefetch = false;
    /** Data-side address translation (TLBs). */
    TranslationConfig dataTranslation{};
    /** Instruction-side address translation. */
    TranslationConfig instrTranslation{};
};

/** Table V presets me1..me4 and meinf. */
MemoryConfig memoryMe1(); ///< 32K/32K/1M
MemoryConfig memoryMe2(); ///< 64K/64K/2M
MemoryConfig memoryMe3(); ///< 128K/128K/4M
MemoryConfig memoryMe4(); ///< 128K/128K/inf
MemoryConfig memoryInf(); ///< inf/inf/inf

/** Direction-prediction strategy. */
enum class PredictorKind
{
    Bimodal, ///< per-PC 2-bit counters
    Gshare,  ///< global history xor PC
    Combined,///< "GP": selector between gshare and bimodal
    Perfect, ///< oracle (Fig. 9's Perfect-BP)
};

std::string_view predictorKindName(PredictorKind kind);

/** Branch predictor configuration — Table VI. */
struct BranchPredictorConfig
{
    PredictorKind kind = PredictorKind::Combined;
    int tableEntries = 16 * 1024; ///< direction table entries
    int btbEntries = 4 * 1024;    ///< NFA/BTB entries
    int btbAssociativity = 4;
    int nfaMissPenalty = 2;       ///< cycles on NFA/BTB miss
    int maxPredictedBranches = 12;///< in-flight predicted branches
    int recoveryCycles = 3;       ///< flush recovery after mispredict
};

/** A full simulated machine configuration. */
struct SimConfig
{
    CoreConfig core = core4Way();
    MemoryConfig memory = memoryMe1();
    BranchPredictorConfig bpred{};

    /** Execution latency of each op class (cycles in the FU). */
    int opLatency(FuClass cls) const;
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_CONFIG_HH
