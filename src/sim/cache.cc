#include "cache.hh"

#include <bit>

#include "core/digest.hh"

namespace bioarch::sim
{

namespace
{

/** Round @p v up to a power of two (minimum 1). */
int
ceilPow2(std::int64_t v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Cache::Cache(const CacheConfig &config) : _config(config)
{
    if (_config.infinite())
        return;
    const int lines = std::max<int>(
        1,
        static_cast<int>(_config.sizeBytes / _config.lineBytes));
    const int assoc = std::max(1, _config.associativity);
    _numSets = ceilPow2(std::max(1, lines / assoc));
    _assoc = assoc;
    _lineShift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<unsigned>(
            ceilPow2(_config.lineBytes))));
    _setShift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<unsigned>(_numSets)));
    _tags.assign(static_cast<std::size_t>(_numSets) * assoc, 0);
    _stamps.assign(_tags.size(), 0);
}

bool
Cache::access(std::uint64_t addr)
{
    ++_accesses;
    if (_config.infinite())
        return true;

    const std::uint64_t line = addr >> _lineShift;
    const std::uint64_t tag =
        (line >> _setShift) + 1; // +1 so tag 0 means empty
    const int set =
        static_cast<int>(line & static_cast<unsigned>(_numSets - 1));
    const int assoc = _assoc;
    const std::size_t base =
        static_cast<std::size_t>(set) * assoc;

    ++_clock;
    int victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int way = 0; way < assoc; ++way) {
        if (_tags[base + way] == tag) {
            _stamps[base + way] = _clock;
            return true;
        }
        if (_stamps[base + way] < oldest) {
            oldest = _stamps[base + way];
            victim = way;
        }
    }
    ++_misses;
    _tags[base + victim] = tag;
    _stamps[base + victim] = _clock;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    if (_config.infinite())
        return true;
    const std::uint64_t line = addr >> _lineShift;
    const std::uint64_t tag = (line >> _setShift) + 1;
    const int set =
        static_cast<int>(line & static_cast<unsigned>(_numSets - 1));
    const int assoc = _assoc;
    const std::size_t base = static_cast<std::size_t>(set) * assoc;
    for (int way = 0; way < assoc; ++way)
        if (_tags[base + way] == tag)
            return true;
    return false;
}

void
Cache::fill(std::uint64_t addr)
{
    if (_config.infinite())
        return;
    // Same indexing as access(), but statistics untouched.
    const std::uint64_t saved_accesses = _accesses;
    const std::uint64_t saved_misses = _misses;
    access(addr);
    _accesses = saved_accesses;
    _misses = saved_misses;
}

std::uint64_t
Cache::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_tags.size());
    for (const std::uint64_t t : _tags)
        fnv.update64(t);
    for (const std::uint64_t s : _stamps)
        fnv.update64(s);
    fnv.update64(_clock);
    fnv.update64(_accesses);
    fnv.update64(_misses);
    return fnv.digest();
}

void
Cache::reset()
{
    std::fill(_tags.begin(), _tags.end(), 0);
    std::fill(_stamps.begin(), _stamps.end(), 0);
    _clock = 0;
    _accesses = 0;
    _misses = 0;
}

DataHierarchy::DataHierarchy(const MemoryConfig &config)
    : _config(config), _dl1(config.dl1), _l2(config.l2),
      _tlb(config.dataTranslation)
{
}

MemAccess
DataHierarchy::access(std::uint64_t addr, bool write)
{
    (void)write; // write-allocate: same path as reads
    MemAccess out;
    const Translation tr = _tlb.translate(addr);
    out.tlbLevel = tr.level;
    if (_dl1.access(addr)) {
        out.latency = _config.dl1.latency + tr.latency;
        out.level = MemLevel::L1;
        return out;
    }
    // Next-line prefetch on demand misses (idealized: zero-cycle
    // fill; its benefit is the avoided future demand miss).
    if (_config.dataPrefetch) {
        const std::uint64_t next =
            addr + static_cast<unsigned>(_config.dl1.lineBytes);
        _dl1.fill(next);
        _l2.fill(next);
        ++_prefetches;
    }
    if (_l2.access(addr)) {
        out.latency =
            _config.dl1.latency + _config.l2.latency + tr.latency;
        out.level = MemLevel::L2;
        return out;
    }
    out.latency = _config.dl1.latency + _config.l2.latency
        + _config.memLatency + tr.latency;
    out.level = MemLevel::Memory;
    return out;
}

std::uint64_t
DataHierarchy::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_dl1.stateDigest());
    fnv.update64(_l2.stateDigest());
    fnv.update64(_tlb.stateDigest());
    fnv.update64(_prefetches);
    return fnv.digest();
}

InstrHierarchy::InstrHierarchy(const MemoryConfig &config)
    : _config(config), _il1(config.il1), _l2(config.l2),
      _tlb(config.instrTranslation)
{
}

MemAccess
InstrHierarchy::fetch(std::uint64_t pc_byte_addr)
{
    MemAccess out;
    const Translation tr = _tlb.translate(pc_byte_addr);
    out.tlbLevel = tr.level;
    if (_il1.access(pc_byte_addr)) {
        out.latency = _config.il1.latency + tr.latency;
        out.level = MemLevel::L1;
        return out;
    }
    if (_l2.access(pc_byte_addr)) {
        out.latency =
            _config.il1.latency + _config.l2.latency + tr.latency;
        out.level = MemLevel::L2;
        return out;
    }
    out.latency = _config.il1.latency + _config.l2.latency
        + _config.memLatency + tr.latency;
    out.level = MemLevel::Memory;
    return out;
}

std::uint64_t
InstrHierarchy::stateDigest() const
{
    core::Fnv1a fnv;
    fnv.update64(_il1.stateDigest());
    fnv.update64(_l2.stateDigest());
    fnv.update64(_tlb.stateDigest());
    return fnv.digest();
}

} // namespace bioarch::sim
