/**
 * @file
 * Trace-driven out-of-order superscalar processor model (our
 * Turandot substitute).
 *
 * The model follows the paper's simulated machine: a parameterized
 * fetch/rename/dispatch/retire pipeline with per-class issue queues
 * and functional units (Table IV), a two-level cache hierarchy
 * (Table V), a combined branch predictor with an NFA/BTB (Table VI),
 * and per-cycle stall ("trauma") attribution (Table VII / Fig. 2).
 *
 * Modeling decisions (standard for trace-driven simulation):
 *  - wrong-path instructions are not simulated; a mispredicted
 *    branch instead blocks fetch until it resolves, plus the
 *    configured recovery cycles;
 *  - the direction predictor trains non-speculatively in trace
 *    order;
 *  - stores retire through a store buffer (complete one cycle after
 *    issue) but do access and fill the cache hierarchy.
 */

#ifndef BIOARCH_SIM_PIPELINE_HH
#define BIOARCH_SIM_PIPELINE_HH

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "bpred.hh"
#include "cache.hh"
#include "config.hh"
#include "trace/trace.hh"
#include "trauma.hh"

namespace bioarch::sim
{

/** Everything a simulation run reports. */
struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions)
                / static_cast<double>(cycles);
    }

    /** Stall attribution (Fig. 2). */
    TraumaCounts traumas;

    /** Cache statistics (Figs. 3-7). */
    std::uint64_t dl1Accesses = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t il1Misses = 0;
    std::uint64_t dtlb1Misses = 0;
    std::uint64_t dtlb2Misses = 0;
    double
    dl1MissRate() const
    {
        return dl1Accesses == 0
            ? 0.0
            : static_cast<double>(dl1Misses)
                / static_cast<double>(dl1Accesses);
    }

    /** Branch statistics (Figs. 9, 11). */
    std::uint64_t branchPredictions = 0;
    std::uint64_t branchMispredictions = 0;
    std::uint64_t btbMisses = 0;
    double
    predictionAccuracy() const
    {
        return branchPredictions == 0
            ? 1.0
            : 1.0
                - static_cast<double>(branchMispredictions)
                    / static_cast<double>(branchPredictions);
    }

    /**
     * Issue-queue occupancy histograms (Fig. 10a/b):
     * queueOccupancy[class][n] = cycles the queue held n entries.
     */
    std::array<std::vector<std::uint64_t>, numFuClasses>
        queueOccupancy;
    /** In-flight instruction histogram (Fig. 10c/d). */
    std::vector<std::uint64_t> inflightOccupancy;
    /** Retire-queue (ROB) occupancy histogram (Fig. 10d). */
    std::vector<std::uint64_t> retireQueueOccupancy;

    /** Mean of an occupancy histogram. */
    static double meanOccupancy(const std::vector<std::uint64_t> &h);

    /**
     * Order-sensitive 64-bit FNV-1a digest over every counter and
     * histogram (including histogram lengths). Two stats compare
     * equal iff they fingerprint equal, so golden tests can pin a
     * full SimStats in one value (tests/sim_golden_test.cc).
     */
    std::uint64_t fingerprint() const;

    /** Every counter and histogram equal — the bit-for-bit
     * determinism contract the parallel sweep is tested against. */
    bool operator==(const SimStats &) const = default;

    /**
     * Add @p other's counters and histograms into this one (the
     * sampled-simulation merge: per-window stats summed in window
     * order are one deterministic aggregate whatever the execution
     * schedule was). Histograms grow to the larger length.
     */
    void accumulate(const SimStats &other);
};

/**
 * The checkpointable micro-architectural state that survives
 * between simulation windows: the cache and TLB tag arrays on both
 * sides, the BTB, and the direction predictor's tables. This is
 * exactly the state functional warmup trains and a measurement
 * window consumes; the pipeline's transient state (ROB, issue
 * queues, in-flight instructions) is drained at window boundaries
 * and never checkpointed.
 *
 * The class is copyable, and a copy IS a snapshot: restoring means
 * copying back (or running from the copy). Equality of two states
 * is checked through stateDigest().
 */
class MachineState
{
  public:
    /** Cold state for @p config (what a full run starts from). */
    explicit MachineState(const SimConfig &config);

    /** An independent snapshot of the complete state. */
    MachineState snapshot() const { return *this; }

    /** Restore this state from a snapshot. */
    void restore(const MachineState &snap) { *this = snap; }

    /**
     * Functional warmup: stream @p window through the caches,
     * TLBs, BTB and direction predictor — the same structural
     * updates the detailed loop performs, with no timing model.
     * This is what makes measurement windows independent: a
     * window's state is trained by a bounded warmup prefix instead
     * of by detailed-simulating everything before it.
     */
    void warm(const trace::TraceView &window);

    /** Order-sensitive FNV-1a digest over the complete state. */
    std::uint64_t stateDigest() const;

    DataHierarchy &dataHierarchy() { return _dmem; }
    InstrHierarchy &instrHierarchy() { return _imem; }
    Btb &btb() { return _btb; }
    const DataHierarchy &dataHierarchy() const { return _dmem; }
    const InstrHierarchy &instrHierarchy() const { return _imem; }
    const Btb &btb() const { return _btb; }

  private:
    friend class Simulator;

    DataHierarchy _dmem;
    InstrHierarchy _imem;
    Btb _btb;
    /** Concrete predictor (selected once from the config), so the
     * detailed loop keeps its devirtualized instantiation. */
    std::variant<BimodalPredictor, GsharePredictor,
                 CombinedPredictor, PerfectPredictor>
        _predictor;
    /** log2 of the IL1 line size (power of two), so the per-
     * instruction line check in warm() is a shift. */
    int _il1LineShift = 7;
};

/**
 * The simulator. Construct with a configuration, then run() a
 * trace; each run uses fresh machine state.
 */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /** Simulate @p trace to completion and return the statistics. */
    SimStats run(const trace::Trace &trace);

    /**
     * Detailed-simulate one window of a trace, starting from (and
     * updating in place) the warm machine state @p state. The
     * pipeline starts empty and drains at the window's end — the
     * contract a sampling driver needs: windows are independent
     * given their warm state, and statistics cover only this
     * window's instructions (warmup accesses to @p state before
     * the call are excluded).
     *
     * run(trace) is exactly runWindow(trace.view(), cold state).
     */
    SimStats runWindow(const trace::TraceView &window,
                       MachineState &state);

    const SimConfig &config() const { return _config; }

  private:
    /**
     * The simulation loop, instantiated per concrete predictor
     * type (runWindow() visits the state's variant once, hoisting
     * the dispatch out of the per-branch hot path).
     */
    template <class Predictor>
    SimStats runImpl(const trace::TraceView &window,
                     Predictor &predictor, MachineState &state);

    SimConfig _config;
};

} // namespace bioarch::sim

#endif // BIOARCH_SIM_PIPELINE_HH
