#include "sample.hh"

#include <bit>
#include <stdexcept>
#include <utility>

#include "core/digest.hh"
#include "core/thread_pool.hh"

namespace bioarch::sim
{

std::string
SampleConfig::validate() const
{
    if (windowInsts == 0)
        return "sample window must be a positive instruction count";
    if (periodInsts == 0)
        return "sample period must be a positive instruction count";
    if (windowInsts > periodInsts)
        return "sample window (" + std::to_string(windowInsts)
            + ") must not exceed the sample period ("
            + std::to_string(periodInsts) + ")";
    if (chunkWindows == 0)
        return "sample chunk must hold at least one window";
    if (jobs == 0)
        return "sample jobs must be at least 1";
    return "";
}

namespace
{

/** splitmix64: the offset scrambler for window placement. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::vector<SampleWindow>
planWindows(std::uint64_t traceInsts, const SampleConfig &config)
{
    std::vector<SampleWindow> windows;
    if (traceInsts == 0)
        return windows;

    // One window per period. The window sits at a *pseudo-random
    // offset* within its period (deterministic — a fixed hash of
    // the period index — so plans never depend on anything but the
    // config): strict period-start placement resonates with loopy
    // programs whose phase structure divides the period, and the
    // aliased estimate can be off by 10x the jittered one. Each
    // window stands for exactly its period's instructions, so the
    // represents counts partition the trace.
    std::uint64_t index = 0;
    for (std::uint64_t periodBegin = 0; periodBegin < traceInsts;
         periodBegin += config.periodInsts, ++index) {
        const std::uint64_t span =
            std::min(config.periodInsts, traceInsts - periodBegin);
        SampleWindow w;
        w.count = std::min(config.windowInsts, span);
        const std::uint64_t slack = span - w.count;
        w.begin = periodBegin
            + (slack == 0 ? 0 : mix64(index) % (slack + 1));
        w.represents = span;
        w.warmupBegin = w.begin >= config.warmupInsts
            ? w.begin - config.warmupInsts
            : 0;
        windows.push_back(w);
    }
    return windows;
}

double
SampledStats::traumaShare(Trauma t) const
{
    const std::uint64_t total = measured.traumas.total();
    return total == 0
        ? 0.0
        : static_cast<double>(measured.traumas.get(t))
            / static_cast<double>(total);
}

std::uint64_t
SampledStats::fingerprint() const
{
    core::Fnv1a fnv;
    fnv.update64(measured.fingerprint());
    fnv.update64(windows);
    fnv.update64(traceInstructions);
    fnv.update64(measuredInstructions);
    fnv.update64(warmupInstructions);
    fnv.update64(dl1Accesses);
    fnv.update64(dl1Misses);
    fnv.update64(l2Accesses);
    fnv.update64(l2Misses);
    fnv.update64(std::bit_cast<std::uint64_t>(estimatedCycles));
    return fnv.digest();
}

namespace
{

/** Relative error in percent; absolute (scaled) when the reference
 * is effectively zero, so empty counters do not divide by zero. */
double
relErrorPct(double sampled, double full)
{
    const double diff =
        sampled >= full ? sampled - full : full - sampled;
    if (full > 1e-9 || full < -1e-9)
        return 100.0 * diff / (full < 0 ? -full : full);
    return 100.0 * diff;
}

} // namespace

SampleError
compareSampled(const SampledStats &sampled, const SimStats &full)
{
    SampleError err;
    err.ipcPct = relErrorPct(sampled.ipc(), full.ipc());
    err.dl1MissRatePct =
        relErrorPct(sampled.dl1MissRate(), full.dl1MissRate());
    const double fullL2 = full.l2Accesses == 0
        ? 0.0
        : static_cast<double>(full.l2Misses)
            / static_cast<double>(full.l2Accesses);
    err.l2MissRatePct = relErrorPct(sampled.l2MissRate(), fullL2);

    const std::uint64_t fullTotal = full.traumas.total();
    for (int t = 0; t < numTraumas; ++t) {
        const Trauma trauma = static_cast<Trauma>(t);
        const double fullShare = fullTotal == 0
            ? 0.0
            : static_cast<double>(full.traumas.get(trauma))
                / static_cast<double>(fullTotal);
        const double diff =
            100.0 * (sampled.traumaShare(trauma) - fullShare);
        const double pts = diff < 0 ? -diff : diff;
        if (pts > err.traumaSharePts)
            err.traumaSharePts = pts;
    }
    return err;
}

SampledStats
sampleTrace(const trace::Trace &trace, const SimConfig &machine,
            const SampleConfig &config)
{
    const std::string problem = config.validate();
    if (!problem.empty())
        throw std::invalid_argument(problem);

    const std::vector<SampleWindow> windows =
        planWindows(trace.size(), config);

    // Chunks are the parallel unit. Each chunk trains a cold
    // MachineState over its first window's warmup prefix, then
    // alternates detailed measurement (runWindow) with functional
    // warming of the inter-window gaps, so every window after a
    // chunk's first carries *continuous* state history — the
    // bounded-warmup error is paid once per chunk, not once per
    // window. The chunk partition depends only on the config, and
    // results land in index-ordered slots merged after the pool
    // drains, so the aggregate is bit-identical whatever the
    // execution schedule was.
    //
    // Cache miss rates are never extrapolated from windows: the
    // functional stream covers the complete trace and the
    // whole-trace dl1/l2 counters are read off the machine state.
    // Whenever the last chunk's warmup reaches back to the trace's
    // head (always true for a lone chunk, whose first window warms
    // the full prefix regardless of warmupInsts; true for any
    // chunk when warmupInsts exceeds the trace) that chunk's own
    // walk [0, lastWindowEnd) plus a warmed tail IS the coverage
    // stream, for free. Only a multi-chunk run with bounded
    // warmups needs a dedicated coverage pass as one extra
    // parallel task.
    std::vector<SimStats> results(windows.size());
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            config.chunkWindows, windows.size()));
    const std::size_t chunks =
        chunk == 0 ? 0 : (windows.size() + chunk - 1) / chunk;
    const bool lastCovers = chunks == 1
        || (chunks > 1
            && windows[(chunks - 1) * chunk].warmupBegin == 0);
    std::uint64_t dl1_accesses = 0;
    std::uint64_t dl1_misses = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_misses = 0;
    const auto harvest = [&](const MachineState &state) {
        dl1_accesses = state.dataHierarchy().dl1().accesses();
        dl1_misses = state.dataHierarchy().dl1().misses();
        l2_accesses = state.dataHierarchy().l2().accesses();
        l2_misses = state.dataHierarchy().l2().misses();
    };
    const auto runChunk = [&](std::size_t c) {
        if (c == chunks) {
            // Dedicated coverage pass (bounded-warmup multi-chunk
            // runs only): one pure functional walk of the whole
            // trace for the exact miss-rate counters.
            MachineState state(machine);
            state.warm(trace.view());
            harvest(state);
            return;
        }
        const std::size_t first = c * chunk;
        const std::size_t last =
            std::min(first + chunk, windows.size());
        const std::uint64_t warm_begin = chunks == 1
            ? 0
            : windows[first].warmupBegin;
        MachineState state(machine);
        Simulator sim(machine);
        if (windows[first].begin > warm_begin)
            state.warm(trace.subspan(
                warm_begin, windows[first].begin - warm_begin));
        for (std::size_t i = first; i < last; ++i) {
            const SampleWindow &w = windows[i];
            results[i] = sim.runWindow(
                trace.subspan(w.begin, w.count), state);
            if (i + 1 < last) {
                const std::uint64_t gap_begin = w.begin + w.count;
                state.warm(trace.subspan(
                    gap_begin, windows[i + 1].begin - gap_begin));
            }
        }
        if (lastCovers && c == chunks - 1) {
            const SampleWindow &w = windows.back();
            const std::uint64_t end = w.begin + w.count;
            if (end < trace.size())
                state.warm(
                    trace.subspan(end, trace.size() - end));
            harvest(state);
        }
    };

    // One extra task when the coverage pass is separate.
    const std::size_t tasks =
        chunks == 0 ? 0 : (lastCovers ? chunks : chunks + 1);
    if (config.jobs <= 1 || tasks <= 1) {
        // Serial path doubles as the nested-pool escape hatch: a
        // sweep point already running inside a ThreadPool task must
        // not wait() on a pool from within it.
        for (std::size_t t = 0; t < tasks; ++t)
            runChunk(t);
    } else {
        core::ThreadPool pool(config.jobs);
        pool.parallelFor(tasks, runChunk);
    }

    SampledStats out;
    out.windows = windows.size();
    out.traceInstructions = trace.size();
    out.dl1Accesses = dl1_accesses;
    out.dl1Misses = dl1_misses;
    out.l2Accesses = l2_accesses;
    out.l2Misses = l2_misses;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const SampleWindow &w = windows[i];
        out.measured.accumulate(results[i]);
        out.measuredInstructions += w.count;
        // Fixed accumulation order keeps the double deterministic.
        out.estimatedCycles +=
            static_cast<double>(results[i].cycles)
            * (static_cast<double>(w.represents)
               / static_cast<double>(w.count));
    }
    // Functionally-warmed instructions: each chunk's prefix and
    // gaps, plus the tail or the dedicated coverage pass.
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const SampleWindow &w = windows[i];
        if (i % chunk == 0)
            out.warmupInstructions += chunks == 1
                ? w.begin
                : w.begin - w.warmupBegin;
        else
            out.warmupInstructions += w.begin
                - (windows[i - 1].begin + windows[i - 1].count);
    }
    if (chunks > 0) {
        const SampleWindow &w = windows.back();
        out.warmupInstructions += lastCovers
            ? trace.size() - (w.begin + w.count)
            : trace.size();
    }
    return out;
}

} // namespace bioarch::sim
