/**
 * @file
 * Tests for the binary trace file format: round-trips, error
 * handling, and compatibility with generated workload traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "kernels/factory.hh"
#include "trace/trace_io.hh"
#include "trace/tracer.hh"

namespace
{

using namespace bioarch;
using trace::Reg;
using trace::Tracer;

trace::Trace
makeSample()
{
    Tracer t("sample");
    const isa::Addr buf = t.alloc(256, "buf");
    Reg a = t.alu();
    for (int i = 0; i < 100; ++i) {
        a = t.load(buf + (i % 8) * 16u, 4, {a});
        t.store(buf + 128, 8, a);
        t.branch(i % 3 == 0, {a});
        t.vsimple({a});
    }
    return t.take();
}

TEST(TraceIo, RoundTripsThroughStream)
{
    const trace::Trace original = makeSample();
    std::stringstream buffer;
    trace::writeTrace(buffer, original);
    const trace::Trace back = trace::readTrace(buffer);

    EXPECT_EQ(back.name(), original.name());
    ASSERT_EQ(back.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(back[i].pc, original[i].pc);
        EXPECT_EQ(back[i].cls, original[i].cls);
        EXPECT_EQ(back[i].dst, original[i].dst);
        EXPECT_EQ(back[i].src[0], original[i].src[0]);
        EXPECT_EQ(back[i].src[1], original[i].src[1]);
        EXPECT_EQ(back[i].addr, original[i].addr);
        EXPECT_EQ(back[i].size, original[i].size);
        EXPECT_EQ(back[i].taken, original[i].taken);
        EXPECT_EQ(back[i].conditional, original[i].conditional);
    }
}

TEST(TraceIo, RoundTripsThroughFile)
{
    const trace::Trace original = makeSample();
    const std::string path = "/tmp/bioarch_trace_io_test.trc";
    trace::writeTraceFile(path, original);
    const trace::Trace back = trace::readTraceFile(path);
    EXPECT_EQ(back.size(), original.size());
    EXPECT_EQ(back.mix().counts, original.mix().counts);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "this is not a trace file at all, not even close";
    EXPECT_THROW(trace::readTrace(buffer), trace::TraceIoError);
}

TEST(TraceIo, RejectsTruncatedFile)
{
    const trace::Trace original = makeSample();
    std::stringstream buffer;
    trace::writeTrace(buffer, original);
    const std::string full = buffer.str();
    std::stringstream truncated(
        full.substr(0, full.size() / 2));
    EXPECT_THROW(trace::readTrace(truncated), trace::TraceIoError);
}

TEST(TraceIo, RejectsMissingFile)
{
    EXPECT_THROW(
        trace::readTraceFile("/nonexistent/dir/trace.trc"),
        trace::TraceIoError);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const trace::Trace empty("nothing");
    std::stringstream buffer;
    trace::writeTrace(buffer, empty);
    const trace::Trace back = trace::readTrace(buffer);
    EXPECT_EQ(back.name(), "nothing");
    EXPECT_TRUE(back.empty());
}

TEST(TraceIo, WorkloadTraceRoundTripsExactly)
{
    kernels::TraceSpec spec;
    spec.dbSequences = 2;
    const kernels::TracedRun run =
        kernels::traceWorkload(kernels::Workload::Fasta34, spec);
    std::stringstream buffer;
    trace::writeTrace(buffer, run.trace);
    const trace::Trace back = trace::readTrace(buffer);
    ASSERT_EQ(back.size(), run.trace.size());
    EXPECT_EQ(back.mix().counts, run.trace.mix().counts);
    EXPECT_EQ(back.conditionalBranches(),
              run.trace.conditionalBranches());
    EXPECT_EQ(back.staticFootprint(),
              run.trace.staticFootprint());
}

} // namespace
