/**
 * @file
 * Tests for the Karlin-Altschul statistics solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "align/karlin.hh"
#include "bio/scoring.hh"

namespace
{

using namespace bioarch;

TEST(Karlin, Blosum62LambdaMatchesPublishedValue)
{
    // The published ungapped lambda for BLOSUM62 with standard
    // composition is ~0.318 (half-bit matrix: ln(2)/2 = 0.3466 is
    // the infinite-data limit; real compositions give 0.31-0.32).
    const align::KarlinParams &ka = align::blosum62Karlin();
    EXPECT_GT(ka.lambda, 0.25);
    EXPECT_LT(ka.lambda, 0.40);
    EXPECT_GT(ka.h, 0.0);
    EXPECT_GT(ka.k, 0.0);
    EXPECT_LT(ka.k, 1.0);
}

TEST(Karlin, LambdaSatisfiesDefiningEquation)
{
    const align::KarlinParams ka = align::solveKarlin(
        bio::blosum62(), bio::Alphabet::backgroundFrequencies());
    // Recompute sum p_i p_j exp(lambda s_ij); must be ~1.
    const auto &freqs = bio::Alphabet::backgroundFrequencies();
    double sum = 0.0;
    for (int a = 0; a < bio::Alphabet::numRealResidues; ++a)
        for (int b = 0; b < bio::Alphabet::numRealResidues; ++b)
            sum += freqs[static_cast<std::size_t>(a)]
                * freqs[static_cast<std::size_t>(b)]
                * std::exp(ka.lambda
                           * bio::blosum62().score(
                               static_cast<bio::Residue>(a),
                               static_cast<bio::Residue>(b)));
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Karlin, EvalueDecreasesWithScore)
{
    const align::KarlinParams &ka = align::blosum62Karlin();
    const double e50 = ka.evalue(50, 222, 300000);
    const double e100 = ka.evalue(100, 222, 300000);
    EXPECT_GT(e50, e100);
    EXPECT_GT(e100, 0.0);
}

TEST(Karlin, EvalueScalesLinearlyWithSearchSpace)
{
    const align::KarlinParams &ka = align::blosum62Karlin();
    const double e1 = ka.evalue(80, 200, 1e5);
    const double e2 = ka.evalue(80, 200, 2e5);
    EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST(Karlin, BitScoreIsMonotonic)
{
    const align::KarlinParams &ka = align::blosum62Karlin();
    EXPECT_LT(ka.bitScore(40), ka.bitScore(41));
    EXPECT_GT(ka.bitScore(100), 0.0);
}

TEST(Karlin, MatchMismatchMatrixSolves)
{
    // +1/-1 match/mismatch over uniform-ish composition has negative
    // expectation and a positive score: the solver must converge.
    const bio::ScoringMatrix mm = bio::makeMatchMismatch(1, -1);
    const align::KarlinParams ka = align::solveKarlin(
        mm, bio::Alphabet::backgroundFrequencies());
    EXPECT_GT(ka.lambda, 0.0);
}

TEST(Karlin, AllPositiveMatrixIsRejected)
{
    // A matrix with positive expected score has no positive lambda;
    // the solver must return zeros rather than diverge.
    const bio::ScoringMatrix good = bio::makeMatchMismatch(2, 1);
    const align::KarlinParams ka = align::solveKarlin(
        good, bio::Alphabet::backgroundFrequencies());
    EXPECT_EQ(ka.lambda, 0.0);
    EXPECT_EQ(ka.k, 0.0);
}

} // namespace
