/**
 * @file
 * Tests of the reference aligners: Needleman-Wunsch, Smith-Waterman
 * (score and traceback), and banded SW, including property tests
 * against each other on random sequences.
 */

#include <gtest/gtest.h>

#include "align/banded.hh"
#include "align/needleman_wunsch.hh"
#include "align/smith_waterman.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using bio::Sequence;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

Sequence
seq(const std::string &letters)
{
    return Sequence("S", "", letters);
}

TEST(SmithWaterman, IdenticalSequencesScoreSelfSimilarity)
{
    const Sequence s = seq("ACDEFGHIKLMNPQRSTVWY");
    const align::LocalScore ls =
        align::smithWatermanScore(s, s, kMat, kGaps);
    int self = 0;
    for (std::size_t i = 0; i < s.length(); ++i)
        self += kMat.score(s[i], s[i]);
    EXPECT_EQ(ls.score, self);
    EXPECT_EQ(ls.queryEnd, 19);
    EXPECT_EQ(ls.subjectEnd, 19);
}

TEST(SmithWaterman, EmptySequencesScoreZero)
{
    const Sequence e("E", "", "");
    const Sequence s = seq("ACDEF");
    EXPECT_EQ(align::smithWatermanScore(e, s, kMat, kGaps).score, 0);
    EXPECT_EQ(align::smithWatermanScore(s, e, kMat, kGaps).score, 0);
    EXPECT_EQ(align::smithWatermanScore(e, e, kMat, kGaps).score, 0);
}

TEST(SmithWaterman, UnrelatedShortSequencesCanScoreZero)
{
    // With match/mismatch scoring and no matching residues, the best
    // local score is 0 (the empty alignment).
    const bio::ScoringMatrix mm = bio::makeMatchMismatch(1, -1);
    const align::LocalScore ls = align::smithWatermanScore(
        seq("AAAA"), seq("WWWW"), mm, kGaps);
    EXPECT_EQ(ls.score, 0);
    EXPECT_EQ(ls.queryEnd, -1);
}

TEST(SmithWaterman, FindsEmbeddedMotif)
{
    // Motif embedded in unrelated context must be found exactly.
    const std::string motif = "WWCHHWWC";
    const Sequence q = seq(motif);
    const Sequence s = seq("AAAAAAA" + motif + "GGGGGGG");
    const align::LocalScore ls =
        align::smithWatermanScore(q, s, kMat, kGaps);
    int self = 0;
    for (std::size_t i = 0; i < q.length(); ++i)
        self += kMat.score(q[i], q[i]);
    EXPECT_EQ(ls.score, self);
    EXPECT_EQ(ls.subjectEnd, 7 + 7);
}

TEST(SmithWaterman, GapCostReducesScoreAsExpected)
{
    // Query = two identical halves of subject with a 3-residue
    // insertion in the subject: best alignment bridges with one gap.
    const std::string half1 = "WWCHHWWCYY";
    const std::string half2 = "MMFFWWYYCC";
    const Sequence q = seq(half1 + half2);
    const Sequence s = seq(half1 + "AAA" + half2);
    const align::LocalScore ls =
        align::smithWatermanScore(q, s, kMat, kGaps);
    int self = 0;
    for (std::size_t i = 0; i < q.length(); ++i)
        self += kMat.score(q[i], q[i]);
    EXPECT_EQ(ls.score, self - kGaps.cost(3));
}

TEST(SmithWatermanAlign, TracebackMatchesScore)
{
    const Sequence q = seq("WWCHHWWCYYMMFFWWYYCC");
    const Sequence s = seq("WWCHHWWCYYAAAMMFFWWYYCC");
    const align::Alignment a =
        align::smithWatermanAlign(q, s, kMat, kGaps);
    const align::LocalScore ls =
        align::smithWatermanScore(q, s, kMat, kGaps);
    EXPECT_EQ(a.score, ls.score);

    // Recompute the score from the aligned strings.
    int recomputed = 0;
    int gap_run = 0;
    for (std::size_t c = 0; c < a.alignedQuery.size(); ++c) {
        const char qc = a.alignedQuery[c];
        const char sc = a.alignedSubject[c];
        ASSERT_FALSE(qc == '-' && sc == '-');
        if (qc == '-' || sc == '-') {
            ++gap_run;
        } else {
            if (gap_run > 0) {
                recomputed -= kGaps.cost(gap_run);
                gap_run = 0;
            }
            recomputed += kMat.score(bio::Alphabet::encode(qc),
                                     bio::Alphabet::encode(sc));
        }
    }
    if (gap_run > 0)
        recomputed -= kGaps.cost(gap_run);
    EXPECT_EQ(recomputed, a.score);
    EXPECT_EQ(a.alignedQuery.size(), a.alignedSubject.size());
}

TEST(SmithWatermanAlign, IdentityAlignmentHasNoGaps)
{
    const Sequence s = seq("ACDEFGHIKLMNPQRSTVWY");
    const align::Alignment a =
        align::smithWatermanAlign(s, s, kMat, kGaps);
    EXPECT_EQ(a.alignedQuery, a.alignedSubject);
    EXPECT_EQ(a.identities, 20);
    EXPECT_DOUBLE_EQ(a.identityFraction(), 1.0);
    EXPECT_EQ(a.queryStart, 0);
    EXPECT_EQ(a.queryEnd, 19);
}

TEST(NeedlemanWunsch, GlobalChargesEndGaps)
{
    // Global alignment of "AA" against "AAAA" pays for the 2-gap.
    const bio::ScoringMatrix mm = bio::makeMatchMismatch(2, -1);
    const int score = align::needlemanWunschScore(
        seq("AA"), seq("AAAA"), mm, kGaps);
    EXPECT_EQ(score, 2 * 2 - kGaps.cost(2));
}

TEST(NeedlemanWunsch, EqualSequencesScoreFullMatch)
{
    const Sequence s = seq("ACDEFGHIKL");
    int self = 0;
    for (std::size_t i = 0; i < s.length(); ++i)
        self += kMat.score(s[i], s[i]);
    EXPECT_EQ(align::needlemanWunschScore(s, s, kMat, kGaps), self);
}

TEST(NeedlemanWunsch, GlobalNeverExceedsLocal)
{
    bio::Rng rng(77);
    for (int t = 0; t < 50; ++t) {
        const Sequence a = bio::makeRandomSequence(
            rng, static_cast<int>(10 + rng.below(60)));
        const Sequence b = bio::makeRandomSequence(
            rng, static_cast<int>(10 + rng.below(60)));
        const int global =
            align::needlemanWunschScore(a, b, kMat, kGaps);
        const int local =
            align::smithWatermanScore(a, b, kMat, kGaps).score;
        EXPECT_LE(global, local);
    }
}

TEST(Banded, FullWidthBandEqualsFullSmithWaterman)
{
    bio::Rng rng(123);
    for (int t = 0; t < 30; ++t) {
        const int la = static_cast<int>(5 + rng.below(80));
        const int lb = static_cast<int>(5 + rng.below(80));
        const Sequence a = bio::makeRandomSequence(rng, la);
        const Sequence b = bio::makeRandomSequence(rng, lb);
        const align::LocalScore full =
            align::smithWatermanScore(a, b, kMat, kGaps);
        const align::LocalScore banded = align::bandedSmithWaterman(
            a, b, kMat, kGaps, 0, la + lb);
        EXPECT_EQ(banded.score, full.score)
            << "trial " << t << " len " << la << "x" << lb;
    }
}

TEST(Banded, NarrowBandNeverExceedsFull)
{
    bio::Rng rng(321);
    for (int t = 0; t < 30; ++t) {
        const Sequence a = bio::makeRandomSequence(
            rng, static_cast<int>(20 + rng.below(60)));
        const Sequence b = bio::makeRandomSequence(
            rng, static_cast<int>(20 + rng.below(60)));
        const int full =
            align::smithWatermanScore(a, b, kMat, kGaps).score;
        for (int hw : {0, 2, 8}) {
            const int banded = align::bandedSmithWaterman(
                a, b, kMat, kGaps, 0, hw).score;
            EXPECT_LE(banded, full);
        }
    }
}

TEST(Banded, CapturesOnDiagonalMotif)
{
    const std::string motif = "WWCHHWWCYY";
    const Sequence q = seq(motif);
    const Sequence s = seq(motif);
    const align::LocalScore banded = align::bandedSmithWaterman(
        q, s, kMat, kGaps, 0, 0); // main diagonal only
    int self = 0;
    for (std::size_t i = 0; i < q.length(); ++i)
        self += kMat.score(q[i], q[i]);
    EXPECT_EQ(banded.score, self);
}

TEST(Banded, EmptyBandOffMatrixScoresZero)
{
    const Sequence q = seq("ACDEF");
    const Sequence s = seq("ACDEF");
    // Band centered far off the matrix: no cells at all.
    const align::LocalScore ls = align::bandedSmithWaterman(
        q, s, kMat, kGaps, 1000, 2);
    EXPECT_EQ(ls.score, 0);
}

/**
 * Property: SW local score is symmetric in its arguments
 * (the matrix is symmetric).
 */
TEST(SmithWatermanProperty, ScoreIsSymmetric)
{
    bio::Rng rng(55);
    for (int t = 0; t < 40; ++t) {
        const Sequence a = bio::makeRandomSequence(
            rng, static_cast<int>(5 + rng.below(70)));
        const Sequence b = bio::makeRandomSequence(
            rng, static_cast<int>(5 + rng.below(70)));
        EXPECT_EQ(align::smithWatermanScore(a, b, kMat, kGaps).score,
                  align::smithWatermanScore(b, a, kMat, kGaps).score);
    }
}

/**
 * Property: appending residues to the subject never lowers the local
 * score (monotonicity of local alignment under extension).
 */
TEST(SmithWatermanProperty, ExtensionIsMonotonic)
{
    bio::Rng rng(66);
    for (int t = 0; t < 30; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(10 + rng.below(40)));
        Sequence s = bio::makeRandomSequence(
            rng, static_cast<int>(10 + rng.below(40)));
        const int base =
            align::smithWatermanScore(q, s, kMat, kGaps).score;
        // Extend the subject and rescore.
        std::vector<bio::Residue> ext = s.residues();
        for (int k = 0; k < 10; ++k)
            ext.push_back(static_cast<bio::Residue>(rng.below(20)));
        const Sequence s2("S2", "", std::move(ext));
        const int extended =
            align::smithWatermanScore(q, s2, kMat, kGaps).score;
        EXPECT_GE(extended, base);
    }
}

/**
 * Property: alignment traceback score always equals score-only scan
 * on random homologous pairs (exercises gap paths heavily).
 */
TEST(SmithWatermanProperty, TracebackEqualsScanOnHomologs)
{
    bio::Rng rng(88);
    for (int t = 0; t < 20; ++t) {
        const Sequence a = bio::makeRandomSequence(
            rng, static_cast<int>(40 + rng.below(80)));
        const Sequence b =
            bio::mutate(rng, a, 0.7, "B", "mutated copy");
        const align::Alignment full =
            align::smithWatermanAlign(a, b, kMat, kGaps);
        const align::LocalScore scan =
            align::smithWatermanScore(a, b, kMat, kGaps);
        EXPECT_EQ(full.score, scan.score);
        EXPECT_EQ(full.queryEnd, scan.queryEnd);
        EXPECT_EQ(full.subjectEnd, scan.subjectEnd);
    }
}

} // namespace
