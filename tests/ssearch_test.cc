/**
 * @file
 * Tests for the SSEARCH-style optimized scalar Smith-Waterman: exact
 * score equality with the reference implementation (including heavy
 * property testing, since the computation-avoidance branches are
 * easy to get subtly wrong) and database search behavior.
 */

#include <gtest/gtest.h>

#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using bio::Sequence;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

TEST(QueryProfile, RowsMatchMatrix)
{
    const Sequence q("Q", "", "ACDW");
    const align::QueryProfile profile(q, kMat);
    EXPECT_EQ(profile.queryLength(), 4);
    for (int r = 0; r < bio::Alphabet::numSymbols; ++r) {
        const std::int16_t *row =
            profile.row(static_cast<bio::Residue>(r));
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(row[i],
                      kMat.score(q[static_cast<std::size_t>(i)],
                                 static_cast<bio::Residue>(r)));
    }
}

TEST(Ssearch, MatchesReferenceOnIdenticalSequences)
{
    const Sequence s("S", "", "ACDEFGHIKLMNPQRSTVWY");
    const align::QueryProfile profile(s, kMat);
    const align::LocalScore ls = align::ssearchScan(profile, s, kGaps);
    const align::LocalScore ref =
        align::smithWatermanScore(s, s, kMat, kGaps);
    EXPECT_EQ(ls.score, ref.score);
    EXPECT_EQ(ls.queryEnd, ref.queryEnd);
    EXPECT_EQ(ls.subjectEnd, ref.subjectEnd);
}

TEST(Ssearch, EmptyInputsScoreZero)
{
    const Sequence q("Q", "", "ACD");
    const Sequence e("E", "", "");
    const align::QueryProfile profile(q, kMat);
    EXPECT_EQ(align::ssearchScan(profile, e, kGaps).score, 0);
    const align::QueryProfile empty_profile(e, kMat);
    EXPECT_EQ(align::ssearchScan(empty_profile, q, kGaps).score, 0);
}

TEST(Ssearch, CountsCells)
{
    const Sequence q("Q", "", "ACDEF");
    const Sequence s("S", "", "ACDEFGHIKL");
    const align::QueryProfile profile(q, kMat);
    std::uint64_t cells = 0;
    align::ssearchScan(profile, s, kGaps, &cells);
    EXPECT_EQ(cells, 50u);
}

/** The core property: exact equality with reference SW. */
class SsearchRandomPairs : public ::testing::TestWithParam<int>
{
};

TEST_P(SsearchRandomPairs, ScoreEqualsReference)
{
    bio::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    for (int t = 0; t < 25; ++t) {
        const int lq = static_cast<int>(1 + rng.below(120));
        const int ls_len = static_cast<int>(1 + rng.below(120));
        const Sequence q = bio::makeRandomSequence(rng, lq);
        // Half the trials use a mutated homolog so high-scoring
        // paths with gaps are exercised, not just noise.
        const Sequence s = (t % 2 == 0)
            ? bio::makeRandomSequence(rng, ls_len)
            : bio::mutate(rng, q, 0.5 + rng.uniform() * 0.4, "S", "");
        const align::QueryProfile profile(q, kMat);
        const align::LocalScore got =
            align::ssearchScan(profile, s, kGaps);
        const align::LocalScore ref =
            align::smithWatermanScore(q, s, kMat, kGaps);
        ASSERT_EQ(got.score, ref.score)
            << "q=" << q.toString() << " s=" << s.toString();
        ASSERT_EQ(got.queryEnd, ref.queryEnd);
        ASSERT_EQ(got.subjectEnd, ref.subjectEnd);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsearchRandomPairs,
                         ::testing::Range(0, 8));

/** Gap-penalty sweep: equality must hold for unusual penalties too. */
class SsearchGapSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SsearchGapSweep, ScoreEqualsReferenceAcrossPenalties)
{
    const bio::GapPenalties gaps{GetParam().first, GetParam().second};
    bio::Rng rng(4242);
    for (int t = 0; t < 20; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(5 + rng.below(60)));
        const Sequence s =
            bio::mutate(rng, q, 0.6, "S", "");
        const align::QueryProfile profile(q, kMat);
        ASSERT_EQ(align::ssearchScan(profile, s, gaps).score,
                  align::smithWatermanScore(q, s, kMat, gaps).score);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, SsearchGapSweep,
    ::testing::Values(std::pair{10, 1}, std::pair{4, 2},
                      std::pair{12, 3}, std::pair{0, 1},
                      std::pair{20, 1}));

TEST(SsearchSearch, RanksPlantedHomologFirst)
{
    const Sequence query = bio::makeDefaultQuery();
    bio::DatabaseSpec spec;
    spec.numSequences = 60;
    const bio::SequenceDatabase db =
        bio::makeDatabase(spec, {query});
    const align::SearchResults res =
        align::ssearchSearch(query, db, kMat, kGaps);

    ASSERT_FALSE(res.hits.empty());
    EXPECT_EQ(res.sequencesSearched, db.size());
    const Sequence &top = db[res.hits.front().dbIndex];
    EXPECT_NE(top.description().find("homolog of P14942"),
              std::string::npos)
        << "top hit: " << top.description();
    // Hits must be sorted by descending score.
    for (std::size_t i = 1; i < res.hits.size(); ++i)
        EXPECT_GE(res.hits[i - 1].score, res.hits[i].score);
    // E-value of the top (planted, high-identity) hit is tiny.
    EXPECT_LT(res.hits.front().evalue, 1e-6);
}

TEST(SsearchSearch, MaxHitsIsHonored)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(50);
    const align::SearchResults res =
        align::ssearchSearch(query, db, kMat, kGaps, 5);
    EXPECT_LE(res.hits.size(), 5u);
}

} // namespace
