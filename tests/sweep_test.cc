/**
 * @file
 * Tests for the parallel design-space sweep engine: the
 * work-stealing thread pool, the thread-safe WorkloadSuite cache,
 * and — the load-bearing contract — that a parallel sweep's
 * SimStats are bit-for-bit identical to the serial path at every
 * worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/sweep.hh"
#include "core/thread_pool.hh"

namespace
{

using namespace bioarch;

kernels::TraceSpec
smallSpec()
{
    kernels::TraceSpec spec;
    spec.dbSequences = 3;
    return spec;
}

/** Shared across tests so trace generation is paid once. */
core::WorkloadSuite &
sharedSuite()
{
    static core::WorkloadSuite s(smallSpec());
    return s;
}

/** All five workloads x three configurations (15 points). */
std::vector<core::SweepPoint>
determinismPoints()
{
    sim::SimConfig narrow; // 4-way, me1, combined predictor

    sim::SimConfig wide;
    wide.core = sim::core8Way();
    wide.memory = sim::memoryMe3();
    wide.bpred.kind = sim::PredictorKind::Gshare;

    sim::SimConfig ideal;
    ideal.core = sim::core16Way();
    ideal.memory = sim::memoryInf();
    ideal.bpred.kind = sim::PredictorKind::Perfect;

    std::vector<core::SweepPoint> points;
    for (const kernels::Workload w : kernels::allWorkloads)
        for (const sim::SimConfig &cfg : {narrow, wide, ideal})
            points.push_back({w, cfg, {}, {}});
    return points;
}

TEST(SweepDeterminism, ParallelMatchesSerialBitForBit)
{
    const std::vector<core::SweepPoint> points =
        determinismPoints();

    // The serial reference: the exact pre-sweep code path.
    std::vector<sim::SimStats> reference;
    for (const core::SweepPoint &p : points)
        reference.push_back(core::simulate(
            sharedSuite().trace(p.workload), p.config));

    for (const unsigned jobs : {1u, 2u, 8u}) {
        core::SweepRunner runner(sharedSuite(), jobs);
        const core::SweepResult result = runner.run(points);
        ASSERT_EQ(result.points.size(), points.size());
        EXPECT_EQ(result.summary.jobs, jobs);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const sim::SimStats &got = result.stats(i);
            // operator== covers every counter and histogram
            // (cycles, traumas, cache/TLB, branches, occupancy).
            EXPECT_EQ(got, reference[i])
                << "jobs=" << jobs << " point=" << i;
            // Spot-check the derived metrics the figures print.
            EXPECT_EQ(got.ipc(), reference[i].ipc());
            EXPECT_EQ(got.dl1MissRate(),
                      reference[i].dl1MissRate());
            EXPECT_EQ(got.predictionAccuracy(),
                      reference[i].predictionAccuracy());
            EXPECT_EQ(got.traumas.total(),
                      reference[i].traumas.total());
        }
    }
}

TEST(SweepDeterminism, ResultsKeepSubmissionOrder)
{
    std::vector<core::SweepPoint> points = determinismPoints();
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i].label = "point-" + std::to_string(i);

    core::SweepRunner runner(sharedSuite(), 4);
    const core::SweepResult result = runner.run(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(result.points[i].point.label, points[i].label);
        EXPECT_EQ(result.points[i].point.workload,
                  points[i].workload);
    }
}

TEST(SweepSummary, AccountsForEveryPoint)
{
    const std::vector<core::SweepPoint> points =
        determinismPoints();
    const core::SweepResult result =
        core::runSweep(sharedSuite(), points, 2);

    const core::SweepSummary &s = result.summary;
    EXPECT_EQ(s.points, points.size());
    EXPECT_EQ(s.jobs, 2u);
    EXPECT_GT(s.wallMs, 0.0);
    EXPECT_GT(s.pointsPerSec(), 0.0);

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double cpu_ms = 0.0;
    for (const core::SweepPointResult &r : result.points) {
        EXPECT_GE(r.elapsedMs, 0.0);
        cycles += r.stats.cycles;
        instructions += r.stats.instructions;
        cpu_ms += r.elapsedMs;
    }
    EXPECT_EQ(s.totalCycles, cycles);
    EXPECT_EQ(s.totalInstructions, instructions);
    EXPECT_DOUBLE_EQ(s.cpuMs, cpu_ms);
    EXPECT_GT(s.totalCycles, 0u);
}

TEST(SweepRunner, EmptySweepIsFine)
{
    core::SweepRunner runner(sharedSuite(), 4);
    const core::SweepResult result = runner.run({});
    EXPECT_TRUE(result.points.empty());
    EXPECT_EQ(result.summary.points, 0u);
    EXPECT_EQ(result.summary.totalCycles, 0u);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce)
{
    core::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const std::atomic<int> &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    core::ThreadPool pool(3);
    std::atomic<int> sum{0};
    for (int wave = 0; wave < 5; ++wave) {
        pool.parallelFor(
            17, [&](std::size_t) { sum.fetch_add(1); });
        pool.wait(); // idempotent after parallelFor
    }
    EXPECT_EQ(sum.load(), 5 * 17);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    core::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    int ran = 0;
    pool.parallelFor(4, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 4); // single worker: no data race
}

TEST(ThreadPool, TaskExceptionPropagatesToWait)
{
    core::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    try {
        pool.wait();
        FAIL() << "wait() should rethrow the task's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }

    // The error is consumed and the pool stays usable.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForPropagatesBodyException)
{
    core::ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(16,
                         [&](std::size_t i) {
                             if (i == 7)
                                 throw std::logic_error("bad index");
                             ran.fetch_add(
                                 1, std::memory_order_relaxed);
                         }),
        std::logic_error);
    // The wave still drained: every non-throwing index ran.
    EXPECT_EQ(ran.load(), 15);
    pool.wait(); // no residual error
}

TEST(ThreadPool, DestructionSwallowsUnobservedException)
{
    // A throwing task nobody waits on must not terminate the
    // process when the pool is destroyed.
    core::ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("unobserved"); });
}

TEST(ThreadPool, DefaultJobsHonorsEnvironment)
{
    ::setenv("BIOARCH_JOBS", "3", 1);
    EXPECT_EQ(core::ThreadPool::defaultJobs(), 3u);
    ::setenv("BIOARCH_JOBS", "garbage", 1);
    EXPECT_GE(core::ThreadPool::defaultJobs(), 1u);
    ::unsetenv("BIOARCH_JOBS");
    EXPECT_GE(core::ThreadPool::defaultJobs(), 1u);
}

/**
 * The regression test for the old unsynchronized lazy fill of
 * WorkloadSuite::_runs: hammer run() from many threads on a fresh
 * suite and check that every thread sees the same cached trace
 * (generated exactly once per workload).
 */
TEST(WorkloadSuiteThreads, ConcurrentRunIsSafeAndCachedOnce)
{
    core::WorkloadSuite suite(smallSpec());

    constexpr int numThreads = 8;
    std::vector<std::array<const trace::Trace *,
                           kernels::numWorkloads>>
        seen(numThreads);

    std::vector<std::thread> threads;
    for (int t = 0; t < numThreads; ++t)
        threads.emplace_back([&suite, &seen, t] {
            // Different threads start on different workloads so
            // first-touch generation really does collide.
            for (int k = 0; k < kernels::numWorkloads; ++k) {
                const int w = (t + k) % kernels::numWorkloads;
                seen[static_cast<std::size_t>(t)]
                    [static_cast<std::size_t>(w)] = &suite.trace(
                        static_cast<kernels::Workload>(w));
            }
        });
    for (std::thread &t : threads)
        t.join();

    for (int w = 0; w < kernels::numWorkloads; ++w) {
        const trace::Trace *first =
            seen[0][static_cast<std::size_t>(w)];
        ASSERT_NE(first, nullptr);
        EXPECT_GT(first->size(), 0u);
        for (int t = 1; t < numThreads; ++t)
            EXPECT_EQ(seen[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(w)],
                      first)
                << "thread " << t << " saw a different cached "
                << "trace for workload " << w;
    }
}

} // namespace
