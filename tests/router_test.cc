/**
 * @file
 * Tests for the scatter-gather serving fleet (serve/router.hh,
 * serve/cache.hh) and the multi-tenant admission layer
 * (serve/loop.hh tenants).
 *
 * The load-bearing contract extends serve_test.cc's: the ranked
 * top-K hit list of every request is bit-for-bit identical to a
 * serial single-engine scan across the full replicas {1,2,4} x
 * cache {on,off} x jobs {1,2,8} matrix — the fleet layers
 * (replica dispatch, result cache, WDRR) decide *when and where* a
 * scan runs or whether it runs at all, never *what* it computes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bio/synthetic.hh"
#include "index/epoch.hh"
#include "obs/metrics.hh"
#include "serve/cache.hh"
#include "serve/clock.hh"
#include "serve/engine.hh"
#include "serve/hit_list.hh"
#include "serve/loop.hh"
#include "serve/router.hh"

namespace
{

using namespace bioarch;

const bio::SequenceDatabase &
testDb()
{
    static const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(48);
    return db;
}

const std::vector<bio::Sequence> &
queryPool()
{
    static const std::vector<bio::Sequence> pool =
        bio::makeQuerySet();
    return pool;
}

/** Serial whole-database scan: the hit list everything must match. */
std::vector<align::SearchHit>
serialReference(const serve::Request &request,
                const bio::SequenceDatabase &db,
                const serve::EngineConfig &cfg, std::size_t top_k)
{
    const serve::PreparedQuery prepared(
        request, bio::blosum62(), cfg.gaps, cfg.fasta, cfg.blast);
    const align::KarlinParams &ka = align::blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());
    const double m =
        static_cast<double>(request.query.length());

    std::vector<align::SearchHit> hits;
    std::uint64_t cells = 0;
    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const align::LocalScore ls =
            prepared.scan(db[idx], &cells);
        if (ls.score <= 0)
            continue;
        align::SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        hit.bitScore = ka.bitScore(ls.score);
        hit.evalue = ka.evalue(ls.score, m, total);
        hits.push_back(hit);
    }
    std::sort(hits.begin(), hits.end(), serve::hitRanksBefore);
    if (hits.size() > top_k)
        hits.resize(top_k);
    return hits;
}

void
expectSameHits(const std::vector<align::SearchHit> &got,
               const std::vector<align::SearchHit> &want,
               const std::string &context)
{
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dbIndex, want[i].dbIndex)
            << context << " hit " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << context << " hit " << i;
        EXPECT_EQ(got[i].bitScore, want[i].bitScore)
            << context << " hit " << i;
        EXPECT_EQ(got[i].evalue, want[i].evalue)
            << context << " hit " << i;
        EXPECT_EQ(got[i].queryEnd, want[i].queryEnd)
            << context << " hit " << i;
        EXPECT_EQ(got[i].subjectEnd, want[i].subjectEnd)
            << context << " hit " << i;
    }
}

/**
 * A 12-request stream over three kinds with repeated queries, so
 * a second pass (and even the tail of the first) can hit the
 * cache.
 */
std::vector<serve::Request>
fleetStream()
{
    const std::array<kernels::Workload, 3> kinds = {
        kernels::Workload::Ssearch34, kernels::Workload::Fasta34,
        kernels::Workload::Blast};
    std::vector<serve::Request> stream;
    for (std::size_t i = 0; i < 12; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = kinds[i % kinds.size()];
        r.query = queryPool()[i % 4 % queryPool().size()];
        stream.push_back(std::move(r));
    }
    return stream;
}

serve::Request
cacheRequest(std::uint64_t id, std::size_t query)
{
    serve::Request r;
    r.id = id;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool()[query % queryPool().size()];
    return r;
}

TEST(RouterDeterminism, MatrixMatchesSerialReference)
{
    const std::vector<serve::Request> stream = fleetStream();
    serve::EngineConfig ref_cfg;
    std::vector<std::vector<align::SearchHit>> reference;
    for (const serve::Request &r : stream)
        reference.push_back(serialReference(
            r, testDb(), ref_cfg, ref_cfg.topK));

    for (const std::size_t replicas : {1u, 2u, 4u}) {
        for (const bool cache_on : {false, true}) {
            for (const unsigned jobs : {1u, 2u, 8u}) {
                serve::RouterConfig cfg;
                cfg.replicas = replicas;
                cfg.engine.jobs = jobs;
                cfg.engine.shards = 4;
                cfg.minChunk = 2;
                cfg.cache.capacityBytes =
                    cache_on ? 1u << 20 : 0u;
                serve::ReplicaRouter router(
                    index::makeEpoch(testDb(), false, 1), cfg);
                const std::string ctx = "replicas="
                    + std::to_string(replicas) + " cache="
                    + std::to_string(cache_on) + " jobs="
                    + std::to_string(jobs);

                // Two passes: pass 2 is served from the cache
                // when it is on, and must be bit-identical.
                for (const int pass : {1, 2}) {
                    const std::vector<serve::Response> out =
                        router.serveBatch(stream, {});
                    ASSERT_EQ(out.size(), stream.size()) << ctx;
                    for (std::size_t i = 0; i < out.size(); ++i)
                        expectSameHits(
                            out[i].hits, reference[i],
                            ctx + " pass "
                                + std::to_string(pass)
                                + " request "
                                + std::to_string(i));
                }
                if (cache_on) {
                    EXPECT_GT(router.metrics().counterValue(
                                  "serve_cache_hits_total"),
                              0u)
                        << ctx;
                }
            }
        }
    }
}

TEST(RouterCache, HitMissAccountingIsDeterministic)
{
    serve::RouterConfig cfg;
    cfg.replicas = 1;
    cfg.engine.jobs = 2;
    cfg.cache.capacityBytes = 1u << 20;
    serve::ReplicaRouter router(
        index::makeEpoch(testDb(), false, 1), cfg);
    const obs::Registry &m = router.metrics();

    // 4 distinct queries, each repeated twice within one batch.
    std::vector<serve::Request> batch;
    for (std::uint64_t i = 0; i < 8; ++i)
        batch.push_back(cacheRequest(i, i % 4));

    const std::vector<serve::Response> first =
        router.serveBatch(batch, {});
    // Pass 1: the first occurrence of each query misses; whether
    // its duplicate hits depends only on batch order (inserts
    // happen after the whole batch), so all 8 miss here.
    EXPECT_EQ(m.counterValue("serve_cache_misses_total"), 8u);
    EXPECT_EQ(m.counterValue("serve_cache_hits_total"), 0u);
    EXPECT_EQ(m.counterValue("serve_cache_inserts_total"), 8u);
    EXPECT_EQ(router.cache().entries(), 4u); // dup insert replaces
    for (const serve::Response &r : first)
        EXPECT_FALSE(r.fromCache);

    const std::vector<serve::Response> second =
        router.serveBatch(batch, {});
    EXPECT_EQ(m.counterValue("serve_cache_hits_total"), 8u);
    EXPECT_EQ(m.counterValue("serve_cache_misses_total"), 8u);
    for (std::size_t i = 0; i < second.size(); ++i) {
        EXPECT_TRUE(second[i].fromCache) << i;
        expectSameHits(second[i].hits, first[i].hits,
                       "cached pass request "
                           + std::to_string(i));
    }
}

TEST(RouterCache, EpochBumpInvalidatesStaleHits)
{
    serve::RouterConfig cfg;
    cfg.replicas = 2;
    cfg.engine.jobs = 2;
    cfg.cache.capacityBytes = 1u << 20;
    serve::ReplicaRouter router(
        index::makeEpoch(testDb(), false, 1), cfg);
    const obs::Registry &m = router.metrics();

    std::vector<serve::Request> batch;
    for (std::uint64_t i = 0; i < 4; ++i)
        batch.push_back(cacheRequest(i, i));
    (void)router.serveBatch(batch, {});
    const std::vector<serve::Response> warm =
        router.serveBatch(batch, {});
    for (const serve::Response &r : warm)
        EXPECT_TRUE(r.fromCache);

    // Hot-swap a different database. The cache still holds the
    // epoch-1 entries, but lookups now key on epoch 2 — nothing
    // may be served from the old database's results.
    const bio::SequenceDatabase db2 =
        bio::makeDefaultDatabase(48, 0xDBDBDBDC);
    router.reload(index::makeEpoch(db2, false, 2));
    EXPECT_EQ(router.epochNumber(), 2u);

    const std::uint64_t hits_before =
        m.counterValue("serve_cache_hits_total");
    const std::vector<serve::Response> fresh =
        router.serveBatch(batch, {});
    EXPECT_EQ(m.counterValue("serve_cache_hits_total"),
              hits_before);
    serve::EngineConfig ref_cfg;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_FALSE(fresh[i].fromCache) << i;
        expectSameHits(fresh[i].hits,
                       serialReference(batch[i], db2, ref_cfg,
                                       ref_cfg.topK),
                       "post-reload request "
                           + std::to_string(i));
    }

    // And the new epoch's results cache normally.
    const std::vector<serve::Response> rewarm =
        router.serveBatch(batch, {});
    for (std::size_t i = 0; i < rewarm.size(); ++i) {
        EXPECT_TRUE(rewarm[i].fromCache) << i;
        expectSameHits(rewarm[i].hits, fresh[i].hits,
                       "rewarmed request " + std::to_string(i));
    }
}

TEST(RouterCache, CapacityBoundIsNeverExceeded)
{
    obs::Registry metrics;
    serve::CacheConfig ccfg;
    ccfg.capacityBytes = 4096;
    ccfg.shards = 2;
    serve::ResultCache cache(ccfg, metrics);

    // Insert far more than fits; the byte bound must hold after
    // every insert and evictions must account for the overflow.
    for (std::uint64_t i = 0; i < 256; ++i) {
        serve::ResultCache::Key key;
        key.kind = 0;
        key.topK = 10;
        key.epoch = 1;
        key.query.assign(32 + i % 7, bio::Residue(i % 20));
        key.query.push_back(bio::Residue(i % 23));
        auto result =
            std::make_shared<serve::ResultCache::Result>();
        result->hits.resize(10);
        const std::uint64_t digest =
            serve::ResultCache::digest(key);
        cache.insert(std::move(key), digest, std::move(result));
        EXPECT_LE(cache.bytes(), ccfg.capacityBytes) << i;
    }
    EXPECT_GT(metrics.counterValue("serve_cache_evictions_total"),
              0u);
    EXPECT_EQ(metrics.counterValue("serve_cache_inserts_total"),
              256u);
    // Gauges mirror the totals.
    EXPECT_EQ(metrics.gaugeValue("serve_cache_bytes"),
              static_cast<double>(cache.bytes()));
    EXPECT_EQ(metrics.gaugeValue("serve_cache_entries"),
              static_cast<double>(cache.entries()));

    // An entry bigger than a whole shard is refused outright.
    serve::ResultCache::Key big;
    big.query.assign(8192, bio::Residue(1));
    auto huge = std::make_shared<serve::ResultCache::Result>();
    const std::uint64_t big_digest =
        serve::ResultCache::digest(big);
    const std::size_t entries_before = cache.entries();
    cache.insert(std::move(big), big_digest, std::move(huge));
    EXPECT_EQ(cache.entries(), entries_before);
    EXPECT_LE(cache.bytes(), ccfg.capacityBytes);
}

TEST(RouterCache, PartialResponsesAreNeverCached)
{
    serve::RouterConfig cfg;
    cfg.replicas = 1;
    cfg.engine.jobs = 1;
    cfg.engine.shards = 4;
    cfg.cache.capacityBytes = 1u << 20;
    serve::ReplicaRouter router(
        index::makeEpoch(testDb(), false, 1), cfg);
    const obs::Registry &m = router.metrics();

    // Serve with an already-expired deadline: every shard scan is
    // cancelled, the response is partial (shardsSkipped > 0), and
    // nothing may enter the cache.
    serve::ManualClock clock;
    clock.set(1000.0);
    const std::vector<serve::Request> batch = {
        cacheRequest(0, 0)};
    const double deadlines[] = {500.0};
    serve::BatchControl control;
    control.deadlinesUs = deadlines;
    control.clock = &clock;
    const std::vector<serve::Response> out =
        router.serveBatch(batch, control);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].deadlineExpired());
    EXPECT_EQ(m.counterValue("serve_cache_inserts_total"), 0u);
    EXPECT_EQ(router.cache().entries(), 0u);

    // The same request without a deadline is a miss (not a stale
    // partial hit) and serves the full ranked list.
    const std::vector<serve::Response> full =
        router.serveBatch(batch, {});
    EXPECT_FALSE(full[0].fromCache);
    serve::EngineConfig ref_cfg;
    expectSameHits(full[0].hits,
                   serialReference(batch[0], testDb(), ref_cfg,
                                   ref_cfg.topK),
                   "after partial");
}

TEST(RouterAccounting, PerReplicaCountersBalance)
{
    serve::RouterConfig cfg;
    cfg.replicas = 2;
    cfg.engine.jobs = 2;
    cfg.minChunk = 2;
    serve::ReplicaRouter router(
        index::makeEpoch(testDb(), false, 1), cfg);
    const obs::Registry &m = router.metrics();

    const std::vector<serve::Request> stream = fleetStream();
    (void)router.serveBatch(stream, {});

    std::uint64_t routed = 0;
    for (const std::size_t r : {0u, 1u}) {
        const std::string label =
            "replica=\"" + std::to_string(r) + "\"";
        routed += m.counterValue("serve_replica_requests_total",
                                 label);
        // All chunks finished: depth gauges are back to zero.
        EXPECT_EQ(m.gaugeValue("serve_replica_depth", label), 0.0)
            << label;
    }
    EXPECT_EQ(routed, stream.size());
    // A 12-request batch with minChunk 2 scatters to both
    // replicas.
    EXPECT_GT(m.counterValue("serve_replica_batches_total",
                             "replica=\"0\""),
              0u);
    EXPECT_GT(m.counterValue("serve_replica_batches_total",
                             "replica=\"1\""),
              0u);
}

/**
 * TSAN coverage: hammer one sharded-LRU cache from concurrent
 * threads (the fleet's gather threads and dispatcher do exactly
 * this). Run under jobs {2, 8} thread counts.
 */
void
hammerCache(unsigned threads)
{
    obs::Registry metrics;
    serve::CacheConfig ccfg;
    ccfg.capacityBytes = 1u << 14; // small: constant eviction
    ccfg.shards = 4;
    serve::ResultCache cache(ccfg, metrics);

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&cache, t] {
            for (std::uint64_t i = 0; i < 400; ++i) {
                serve::ResultCache::Key key;
                key.kind = static_cast<std::uint16_t>(i % 3);
                key.topK = 10;
                key.epoch = 1;
                // Overlapping key space across threads: the same
                // keys are looked up, inserted, replaced, and
                // evicted concurrently.
                key.query.assign(16 + (i + t) % 9,
                                 bio::Residue((i + t) % 20));
                const std::uint64_t digest =
                    serve::ResultCache::digest(key);
                if (cache.lookup(key, digest) != nullptr)
                    continue;
                auto result = std::make_shared<
                    serve::ResultCache::Result>();
                result->hits.resize(1 + i % 10);
                cache.insert(std::move(key), digest,
                             std::move(result));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_LE(cache.bytes(), ccfg.capacityBytes);
    EXPECT_EQ(metrics.gaugeValue("serve_cache_bytes"),
              static_cast<double>(cache.bytes()));
}

TEST(RouterConcurrency, ShardedLruUnderTwoThreads)
{
    hammerCache(2);
}

TEST(RouterConcurrency, ShardedLruUnderEightThreads)
{
    hammerCache(8);
}

} // namespace
