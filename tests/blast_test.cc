/**
 * @file
 * Tests for the BLASTP pipeline: neighborhood index construction,
 * ungapped X-drop extension, two-hit triggering, and whole-search
 * sensitivity against planted homologs.
 */

#include <gtest/gtest.h>

#include "align/blast.hh"
#include "align/smith_waterman.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using bio::Sequence;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

TEST(NeighborhoodIndex, ContainsExactWordsScoringAboveThreshold)
{
    // WWW scores 33 against itself — way above T=11, so the exact
    // word must be in its own neighborhood.
    const Sequence q("Q", "", "WWWWW");
    const align::BlastParams params;
    const align::NeighborhoodIndex index(q, kMat, params);
    EXPECT_EQ(index.wordSize(), 3);

    const auto [begin, end] =
        index.positions(index.encode(q.residues().data()));
    EXPECT_GT(end - begin, 0);
    bool found_pos0 = false;
    for (const std::int32_t *p = begin; p != end; ++p)
        found_pos0 |= (*p == 0);
    EXPECT_TRUE(found_pos0);
}

TEST(NeighborhoodIndex, ExcludesLowScoringExactWords)
{
    // AAA scores 12 >= 11 against itself, but SSS scores 12 too;
    // pick a word whose self-score is below T: use GGG? G/G=6 ->
    // 18. A better case: query word with X (score <= 0 rows) never
    // reaches T=33 threshold. Use a high threshold to force
    // emptiness.
    const Sequence q("Q", "", "AAA");
    align::BlastParams params;
    params.neighborThreshold = 13; // AAA self-score is 12
    const align::NeighborhoodIndex index(q, kMat, params);
    const auto [begin, end] =
        index.positions(index.encode(q.residues().data()));
    EXPECT_EQ(begin, end);
}

TEST(NeighborhoodIndex, NeighborhoodGrowsAsThresholdDrops)
{
    const Sequence q = bio::makeDefaultQuery();
    align::BlastParams strict;
    strict.neighborThreshold = 13;
    align::BlastParams loose;
    loose.neighborThreshold = 10;
    const align::NeighborhoodIndex a(q, kMat, strict);
    const align::NeighborhoodIndex b(q, kMat, loose);
    EXPECT_GT(b.numEntries(), a.numEntries());
    EXPECT_EQ(a.tableSize(), b.tableSize());
}

TEST(NeighborhoodIndex, EntriesActuallyScoreAboveThreshold)
{
    // Every (word, qpos) pair in the table must genuinely score >= T
    // against the query word — exhaustive validation of the pruned
    // DFS enumeration.
    bio::Rng rng(2024);
    const Sequence q = bio::makeRandomSequence(rng, 40);
    const align::BlastParams params;
    const align::NeighborhoodIndex index(q, kMat, params);

    std::size_t checked = 0;
    const std::size_t space = index.tableSize();
    for (std::uint32_t w = 0; w < space; ++w) {
        const auto [begin, end] = index.positions(w);
        for (const std::int32_t *p = begin; p != end; ++p) {
            // Decode word w into residues.
            bio::Residue r[3];
            std::uint32_t x = w;
            for (int k = 2; k >= 0; --k) {
                r[k] = static_cast<bio::Residue>(
                    x % bio::Alphabet::numSymbols);
                x /= bio::Alphabet::numSymbols;
            }
            int score = 0;
            for (int k = 0; k < 3; ++k)
                score += kMat.score(
                    q[static_cast<std::size_t>(*p + k)], r[k]);
            ASSERT_GE(score, params.neighborThreshold);
            ++checked;
        }
    }
    EXPECT_EQ(checked, index.numEntries());
    EXPECT_GT(checked, 0u);
}

TEST(UngappedExtend, ExtendsAcrossPerfectMatch)
{
    const Sequence q("Q", "", "WCHWCHWCHW");
    const Sequence s = q;
    const align::UngappedExtension ext =
        align::ungappedExtend(q, s, kMat, 4, 4, 3, 16);
    int self = 0;
    for (std::size_t i = 0; i < q.length(); ++i)
        self += kMat.score(q[i], s[i]);
    EXPECT_EQ(ext.score, self);
    EXPECT_EQ(ext.queryStart, 0);
    EXPECT_EQ(ext.queryEnd, 9);
}

TEST(UngappedExtend, StopsAtXDrop)
{
    // Strong seed, then a long run of mismatches, then another
    // strong region far away: the X-drop must cut before reaching it.
    const std::string junk(20, 'A');
    const Sequence q("Q", "", "WWW" + junk + "WWW");
    const Sequence s("S", "", "WWW" + std::string(20, 'D') + "WWW");
    const align::UngappedExtension ext =
        align::ungappedExtend(q, s, kMat, 0, 0, 3, 10);
    // Seed only: A-vs-D runs at -2 per residue; after 5 residues the
    // drop exceeds 10, long before the distal WWW.
    EXPECT_EQ(ext.score, 3 * kMat.score(bio::Alphabet::encode('W'),
                                        bio::Alphabet::encode('W')));
    EXPECT_EQ(ext.queryStart, 0);
    EXPECT_EQ(ext.queryEnd, 2);
}

TEST(UngappedExtend, ExtendsLeftToo)
{
    const Sequence q("Q", "", "WCHWCH");
    const Sequence s = q;
    // Seed at the last word; left extension must pick up the rest.
    const align::UngappedExtension ext =
        align::ungappedExtend(q, s, kMat, 3, 3, 3, 16);
    int self = 0;
    for (std::size_t i = 0; i < q.length(); ++i)
        self += kMat.score(q[i], s[i]);
    EXPECT_EQ(ext.score, self);
    EXPECT_EQ(ext.queryStart, 0);
}

TEST(BlastScan, SelfSearchProducesStrongScore)
{
    const Sequence q = bio::makeDefaultQuery();
    const align::BlastParams params;
    const align::NeighborhoodIndex index(q, kMat, params);
    const align::BlastScores bs =
        align::blastScan(index, q, q, kMat, kGaps, params);
    EXPECT_GT(bs.wordHits, 0);
    EXPECT_GT(bs.extensionsTried, 0);
    EXPECT_GT(bs.gappedExtensions, 0);
    const int sw = align::smithWatermanScore(q, q, kMat, kGaps).score;
    // Banded gapped extension around the main diagonal recovers the
    // full self-alignment.
    EXPECT_EQ(bs.score, sw);
}

TEST(BlastScan, GappedScoreNeverExceedsSmithWaterman)
{
    bio::Rng rng(424242);
    const align::BlastParams params;
    for (int t = 0; t < 15; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(40 + rng.below(100)));
        const Sequence s =
            bio::mutate(rng, q, 0.4 + rng.uniform() * 0.5, "S", "");
        const align::NeighborhoodIndex index(q, kMat, params);
        const align::BlastScores bs =
            align::blastScan(index, q, s, kMat, kGaps, params);
        const int sw =
            align::smithWatermanScore(q, s, kMat, kGaps).score;
        EXPECT_LE(bs.score, sw);
        EXPECT_LE(bs.bestUngapped, sw);
    }
}

TEST(BlastScan, TwoHitTriggersLessThanOneHit)
{
    bio::Rng rng(11);
    const Sequence q = bio::makeRandomSequence(rng, 200);
    const Sequence s = bio::mutate(rng, q, 0.5, "S", "");
    align::BlastParams two_hit;
    align::BlastParams one_hit;
    one_hit.twoHit = false;
    const align::NeighborhoodIndex index(q, kMat, two_hit);
    const align::BlastScores a =
        align::blastScan(index, q, s, kMat, kGaps, two_hit);
    const align::BlastScores b =
        align::blastScan(index, q, s, kMat, kGaps, one_hit);
    EXPECT_LT(a.extensionsTried, b.extensionsTried)
        << "two-hit heuristic must suppress extensions";
    EXPECT_EQ(a.wordHits, b.wordHits);
}

TEST(BlastSearch, FindsHighIdentityHomologs)
{
    const Sequence query = bio::makeDefaultQuery();
    bio::DatabaseSpec spec;
    spec.numSequences = 80;
    const bio::SequenceDatabase db = bio::makeDatabase(spec, {query});
    const align::SearchResults res =
        align::blastSearch(query, db, kMat, kGaps);

    ASSERT_FALSE(res.hits.empty());
    const Sequence &top = db[res.hits.front().dbIndex];
    EXPECT_NE(top.description().find("homolog of P14942"),
              std::string::npos);
    EXPECT_LT(res.hits.front().evalue, 1e-6);
}

TEST(BlastSearch, DoesFarLessWorkThanSmithWaterman)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(40);
    const align::SearchResults res =
        align::blastSearch(query, db, kMat, kGaps);
    const std::uint64_t sw_cells =
        query.length() * db.totalResidues();
    EXPECT_LT(res.cellsComputed, sw_cells / 4)
        << "BLAST must be an order of magnitude cheaper than SW";
}

} // namespace
