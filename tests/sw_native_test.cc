/**
 * @file
 * Native striped Smith-Waterman backend tests: backend resolution,
 * bit-identity to the scalar reference across a seeded fuzz corpus
 * and the striped-layout edge lengths, and the overflow ladder
 * (8-bit saturation -> 16-bit rescan -> scalar fallback) on
 * adversarial high-identity inputs. Every test loops over every
 * backend compiled into this binary, so the CI native-SIMD leg
 * exercises SSE2/AVX2 and the default leg the portable lanes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "align/smith_waterman.hh"
#include "align/sw_striped_native.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"

namespace
{

using namespace bioarch;

bio::Sequence
randomSeq(bio::Rng &rng, int length, const std::string &id)
{
    std::vector<bio::Residue> rs;
    rs.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i)
        rs.push_back(static_cast<bio::Residue>(
            rng.below(bio::Alphabet::numSymbols)));
    return bio::Sequence(id, "", std::move(rs));
}

TEST(SwNativeBackend, ResolutionAndNames)
{
    const auto &backends = align::compiledNativeBackends();
    ASSERT_FALSE(backends.empty());
    // Portable is always compiled and always last (the fallback).
    EXPECT_EQ(backends.back(), align::SimdBackend::Portable);
    EXPECT_EQ(align::bestNativeBackend(), backends.front());

    for (const align::SimdBackend b : backends) {
        const auto parsed = align::parseBackend(align::backendName(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_EQ(align::parseBackend("model"),
              align::SimdBackend::Model);
    EXPECT_EQ(align::parseBackend("auto"),
              align::bestNativeBackend());
    EXPECT_FALSE(align::parseBackend("vliw").has_value());
    // The serving default is never the model path unless forced.
    if (!std::getenv("BIOARCH_SIMD_BACKEND"))
        EXPECT_NE(align::defaultScanBackend(),
                  align::SimdBackend::Model);
}

TEST(SwNativeScan, FuzzMatchesScalarOnAllBackends)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xF0229);

    for (int pair = 0; pair < 500; ++pair) {
        const int m = 1 + static_cast<int>(rng.below(160));
        const int n = 1 + static_cast<int>(rng.below(240));
        const bio::Sequence q = randomSeq(rng, m, "q");
        const bio::Sequence s = randomSeq(rng, n, "s");
        const align::LocalScore ref =
            align::smithWatermanScore(q, s, mat, gaps);

        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            const align::LocalScore got =
                align::swStripedNativeScan(profile, s, gaps);
            ASSERT_EQ(got.score, ref.score)
                << "pair " << pair << " backend "
                << align::backendName(backend) << " m=" << m
                << " n=" << n;
        }
    }
}

// The striped layout's pad rows kick in at the lane-count
// boundaries; sweep query lengths around every compiled backend's
// 8-bit and 16-bit lane counts (1..2N+1 for N up to 32).
TEST(SwNativeScan, PadBoundaryQueryLengths)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xBADF00D);
    const bio::Sequence subject = randomSeq(rng, 53, "s");

    for (int m :
         {1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 37, 64, 65}) {
        const bio::Sequence q = randomSeq(rng, m, "q");
        const align::LocalScore ref =
            align::smithWatermanScore(q, subject, mat, gaps);
        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            EXPECT_EQ(
                align::swStripedNativeScan(profile, subject, gaps)
                    .score,
                ref.score)
                << "m=" << m << " backend "
                << align::backendName(backend);
        }
    }
}

// A high-identity long pair drives the best score far above what
// 8-bit lanes can hold; the ladder must rescan at 16 bits and
// still match the scalar reference exactly.
TEST(SwNativeScan, U8SaturationRescansAt16Bits)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0x5A7);
    const bio::Sequence q = randomSeq(rng, 600, "q");
    const bio::Sequence s = q; // identical: score ~ sum of self-scores

    const align::LocalScore ref =
        align::smithWatermanScore(q, s, mat, gaps);
    ASSERT_GT(ref.score, 255); // adversarial premise

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        ASSERT_TRUE(profile.hasU8());
        align::NativeScanStats stats;
        std::uint64_t cells = 0;
        const align::LocalScore got = align::swStripedNativeScan(
            profile, s, gaps, &cells, &stats);
        EXPECT_EQ(got.score, ref.score)
            << align::backendName(backend);
        EXPECT_EQ(stats.scans, 1u);
        EXPECT_EQ(stats.rescans16, 1u);
        EXPECT_EQ(stats.rescansScalar, 0u);
        EXPECT_EQ(cells, 600u * 600u);
    }
}

// A tryptophan homopolymer of 3200 residues aligned to itself
// scores 3200 * 11 = 35200 > INT16_MAX: both SIMD levels saturate
// and the ladder must land on the scalar reference.
TEST(SwNativeScan, I16SaturationFallsBackToScalar)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    const bio::Sequence q("w", "", std::string(3200, 'W'));
    const align::LocalScore ref =
        align::smithWatermanScore(q, q, mat, gaps);
    ASSERT_GT(ref.score, 32767);

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        align::NativeScanStats stats;
        const align::LocalScore got = align::swStripedNativeScan(
            profile, q, gaps, nullptr, &stats);
        EXPECT_EQ(got.score, ref.score)
            << align::backendName(backend);
        EXPECT_EQ(stats.rescansScalar, 1u);
        // The scalar level tracks coordinates too.
        EXPECT_EQ(got.queryEnd, ref.queryEnd);
        EXPECT_EQ(got.subjectEnd, ref.subjectEnd);
    }
}

// The most extreme matrix an int8 score table allows (bias 128,
// max 127) saturates the 8-bit level on the very first match, so
// every boundary-length scan is forced through the 16-bit level —
// driving its -1000 pad sentinel at each striped edge case.
TEST(SwNativeScan, ExtremeMatrixForces16BitPads)
{
    const bio::ScoringMatrix mat =
        bio::makeMatchMismatch(127, -128);
    const bio::GapPenalties gaps;
    const bio::Sequence subject("s", "", std::string(40, 'A'));

    for (int m : {1, 7, 8, 9, 15, 16, 17, 31, 32, 33}) {
        const bio::Sequence q("q", "", std::string(m, 'A'));
        const align::LocalScore ref =
            align::smithWatermanScore(q, subject, mat, gaps);
        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            // int8 scores always fit the biased byte level...
            EXPECT_TRUE(profile.hasU8());
            align::NativeScanStats stats;
            EXPECT_EQ(align::swStripedNativeScan(profile, subject,
                                                 gaps, nullptr,
                                                 &stats)
                          .score,
                      ref.score)
                << "m=" << m << " backend "
                << align::backendName(backend);
            // ...but one 127-point match reaches the saturation
            // band (255 - bias = 127), so every scan rescans.
            EXPECT_EQ(stats.rescans16, 1u);
            EXPECT_EQ(stats.rescansScalar, 0u);
        }
    }
}

TEST(SwNativeScan, EmptyInputsScoreZero)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xE);
    const bio::Sequence q = randomSeq(rng, 12, "q");
    const bio::Sequence empty("e", "", std::string());

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::uint64_t cells = 0;
        EXPECT_EQ(
            align::swStripedNativeScan(profile, empty, gaps, &cells)
                .score,
            0);
        EXPECT_EQ(cells, 0u);

        const align::NativeQueryProfile eprofile(empty, mat,
                                                 backend);
        EXPECT_EQ(align::swStripedNativeScan(eprofile, q, gaps)
                      .score,
                  0);
    }
}

TEST(SwNativeScan, CellAccountingIsLogicalDpSize)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xCE115);
    const bio::Sequence q = randomSeq(rng, 37, "q");
    const bio::Sequence s = randomSeq(rng, 91, "s");

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::uint64_t cells = 0;
        align::NativeScanStats stats;
        (void)align::swStripedNativeScan(profile, s, gaps, &cells,
                                         &stats);
        EXPECT_EQ(cells, 37u * 91u);
        EXPECT_EQ(stats.scans, 1u);
    }
}

} // namespace
