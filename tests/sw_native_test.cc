/**
 * @file
 * Native striped Smith-Waterman backend tests: backend resolution,
 * bit-identity to the scalar reference across a seeded fuzz corpus
 * and the striped-layout edge lengths, and the overflow ladder
 * (8-bit saturation -> 16-bit rescan -> scalar fallback) on
 * adversarial high-identity inputs. Every test loops over every
 * backend compiled into this binary, so the CI native-SIMD leg
 * exercises SSE2/AVX2 and the default leg the portable lanes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "align/smith_waterman.hh"
#include "align/sw_intersequence_native.hh"
#include "align/sw_striped_native.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"

namespace
{

using namespace bioarch;

bio::Sequence
randomSeq(bio::Rng &rng, int length, const std::string &id)
{
    std::vector<bio::Residue> rs;
    rs.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i)
        rs.push_back(static_cast<bio::Residue>(
            rng.below(bio::Alphabet::numSymbols)));
    return bio::Sequence(id, "", std::move(rs));
}

TEST(SwNativeBackend, ResolutionAndNames)
{
    const auto &backends = align::compiledNativeBackends();
    ASSERT_FALSE(backends.empty());
    // Portable is always compiled and always last (the fallback).
    EXPECT_EQ(backends.back(), align::SimdBackend::Portable);
    EXPECT_EQ(align::bestNativeBackend(), backends.front());

    for (const align::SimdBackend b : backends) {
        const auto parsed = align::parseBackend(align::backendName(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_EQ(align::parseBackend("model"),
              align::SimdBackend::Model);
    EXPECT_EQ(align::parseBackend("auto"),
              align::bestNativeBackend());
    EXPECT_FALSE(align::parseBackend("vliw").has_value());
    // The serving default is never the model path unless forced.
    if (!std::getenv("BIOARCH_SIMD_BACKEND"))
        EXPECT_NE(align::defaultScanBackend(),
                  align::SimdBackend::Model);
}

TEST(SwNativeScan, FuzzMatchesScalarOnAllBackends)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xF0229);

    for (int pair = 0; pair < 500; ++pair) {
        const int m = 1 + static_cast<int>(rng.below(160));
        const int n = 1 + static_cast<int>(rng.below(240));
        const bio::Sequence q = randomSeq(rng, m, "q");
        const bio::Sequence s = randomSeq(rng, n, "s");
        const align::LocalScore ref =
            align::smithWatermanScore(q, s, mat, gaps);

        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            const align::LocalScore got =
                align::swStripedNativeScan(profile, s, gaps);
            ASSERT_EQ(got.score, ref.score)
                << "pair " << pair << " backend "
                << align::backendName(backend) << " m=" << m
                << " n=" << n;
        }
    }
}

// The striped layout's pad rows kick in at the lane-count
// boundaries; sweep query lengths around every compiled backend's
// 8-bit and 16-bit lane counts (1..2N+1 for N up to 32).
TEST(SwNativeScan, PadBoundaryQueryLengths)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xBADF00D);
    const bio::Sequence subject = randomSeq(rng, 53, "s");

    for (int m :
         {1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 37, 64, 65}) {
        const bio::Sequence q = randomSeq(rng, m, "q");
        const align::LocalScore ref =
            align::smithWatermanScore(q, subject, mat, gaps);
        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            EXPECT_EQ(
                align::swStripedNativeScan(profile, subject, gaps)
                    .score,
                ref.score)
                << "m=" << m << " backend "
                << align::backendName(backend);
        }
    }
}

// A high-identity long pair drives the best score far above what
// 8-bit lanes can hold; the ladder must rescan at 16 bits and
// still match the scalar reference exactly.
TEST(SwNativeScan, U8SaturationRescansAt16Bits)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0x5A7);
    const bio::Sequence q = randomSeq(rng, 600, "q");
    const bio::Sequence s = q; // identical: score ~ sum of self-scores

    const align::LocalScore ref =
        align::smithWatermanScore(q, s, mat, gaps);
    ASSERT_GT(ref.score, 255); // adversarial premise

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        ASSERT_TRUE(profile.hasU8());
        align::NativeScanStats stats;
        std::uint64_t cells = 0;
        const align::LocalScore got = align::swStripedNativeScan(
            profile, s, gaps, &cells, &stats);
        EXPECT_EQ(got.score, ref.score)
            << align::backendName(backend);
        EXPECT_EQ(stats.scans, 1u);
        EXPECT_EQ(stats.rescans16, 1u);
        EXPECT_EQ(stats.rescansScalar, 0u);
        EXPECT_EQ(cells, 600u * 600u);
    }
}

// A tryptophan homopolymer of 3200 residues aligned to itself
// scores 3200 * 11 = 35200 > INT16_MAX: both SIMD levels saturate
// and the ladder must land on the scalar reference.
TEST(SwNativeScan, I16SaturationFallsBackToScalar)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    const bio::Sequence q("w", "", std::string(3200, 'W'));
    const align::LocalScore ref =
        align::smithWatermanScore(q, q, mat, gaps);
    ASSERT_GT(ref.score, 32767);

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        align::NativeScanStats stats;
        const align::LocalScore got = align::swStripedNativeScan(
            profile, q, gaps, nullptr, &stats);
        EXPECT_EQ(got.score, ref.score)
            << align::backendName(backend);
        EXPECT_EQ(stats.rescansScalar, 1u);
        // The scalar level tracks coordinates too.
        EXPECT_EQ(got.queryEnd, ref.queryEnd);
        EXPECT_EQ(got.subjectEnd, ref.subjectEnd);
    }
}

// The most extreme matrix an int8 score table allows (bias 128,
// max 127) saturates the 8-bit level on the very first match, so
// every boundary-length scan is forced through the 16-bit level —
// driving its -1000 pad sentinel at each striped edge case.
TEST(SwNativeScan, ExtremeMatrixForces16BitPads)
{
    const bio::ScoringMatrix mat =
        bio::makeMatchMismatch(127, -128);
    const bio::GapPenalties gaps;
    const bio::Sequence subject("s", "", std::string(40, 'A'));

    for (int m : {1, 7, 8, 9, 15, 16, 17, 31, 32, 33}) {
        const bio::Sequence q("q", "", std::string(m, 'A'));
        const align::LocalScore ref =
            align::smithWatermanScore(q, subject, mat, gaps);
        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            // int8 scores always fit the biased byte level...
            EXPECT_TRUE(profile.hasU8());
            align::NativeScanStats stats;
            EXPECT_EQ(align::swStripedNativeScan(profile, subject,
                                                 gaps, nullptr,
                                                 &stats)
                          .score,
                      ref.score)
                << "m=" << m << " backend "
                << align::backendName(backend);
            // ...but one 127-point match reaches the saturation
            // band (255 - bias = 127), so every scan rescans.
            EXPECT_EQ(stats.rescans16, 1u);
            EXPECT_EQ(stats.rescansScalar, 0u);
        }
    }
}

TEST(SwNativeScan, EmptyInputsScoreZero)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xE);
    const bio::Sequence q = randomSeq(rng, 12, "q");
    const bio::Sequence empty("e", "", std::string());

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::uint64_t cells = 0;
        EXPECT_EQ(
            align::swStripedNativeScan(profile, empty, gaps, &cells)
                .score,
            0);
        EXPECT_EQ(cells, 0u);

        const align::NativeQueryProfile eprofile(empty, mat,
                                                 backend);
        EXPECT_EQ(align::swStripedNativeScan(eprofile, q, gaps)
                      .score,
                  0);
    }
}

// ---- inter-sequence (multi-subject) kernel ---------------------

std::vector<align::SubjectSpan>
spansOf(const std::vector<bio::Sequence> &subjects)
{
    std::vector<align::SubjectSpan> spans;
    spans.reserve(subjects.size());
    for (const bio::Sequence &s : subjects)
        spans.push_back(
            align::SubjectSpan{s.residues().data(), s.length()});
    return spans;
}

// Mixed-length batches, larger and smaller than the lane count, in
// shuffled length order: every subject's score AND subjectEnd must
// be bit-identical to both the scalar oracle and the striped
// kernel, on every compiled backend. Exercises lane refill (batch
// > lanes), partial fills (batch < lanes), and the in-kernel
// (length, index) sort.
TEST(SwInterSequence, FuzzBatchesMatchScalarOnAllBackends)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0x1A7E5);

    for (int round = 0; round < 12; ++round) {
        const int m = 1 + static_cast<int>(rng.below(120));
        const bio::Sequence q = randomSeq(rng, m, "q");
        // 1..96 subjects of wildly mixed lengths (1..200).
        const int count = 1 + static_cast<int>(rng.below(96));
        std::vector<bio::Sequence> subjects;
        for (int i = 0; i < count; ++i)
            subjects.push_back(randomSeq(
                rng, 1 + static_cast<int>(rng.below(200)),
                "s" + std::to_string(i)));
        const std::vector<align::SubjectSpan> spans =
            spansOf(subjects);

        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            const align::NativeQueryProfile profile(q, mat,
                                                    backend);
            std::vector<align::LocalScore> got(spans.size());
            align::NativeScanStats stats;
            std::uint64_t cells = 0;
            align::swInterSequenceScan(profile, spans.data(),
                                       spans.size(), gaps,
                                       got.data(), &cells, &stats);
            EXPECT_EQ(stats.scans,
                      static_cast<std::uint64_t>(count));
            EXPECT_EQ(stats.interSequence,
                      static_cast<std::uint64_t>(count));
            std::uint64_t expect_cells = 0;
            for (int i = 0; i < count; ++i) {
                const align::LocalScore ref =
                    align::smithWatermanScore(q, subjects[i], mat,
                                              gaps);
                const align::LocalScore striped =
                    align::swStripedNativeScan(profile,
                                               subjects[i], gaps);
                ASSERT_EQ(got[i].score, ref.score)
                    << "round " << round << " subject " << i
                    << " backend "
                    << align::backendName(backend);
                ASSERT_EQ(got[i].subjectEnd, striped.subjectEnd)
                    << "round " << round << " subject " << i
                    << " backend "
                    << align::backendName(backend);
                expect_cells += static_cast<std::uint64_t>(m)
                    * subjects[i].length();
            }
            EXPECT_EQ(cells, expect_cells);
        }
    }
}

// A batch whose lanes retire at every boundary the refill logic
// has: length-1 subjects, runs of equal lengths (mass simultaneous
// retirement under the sorted schedule), and one subject much
// longer than the rest that outlives several refill generations.
TEST(SwInterSequence, LaneRefillBoundaries)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0x2EF111);

    const bio::Sequence q = randomSeq(rng, 48, "q");
    std::vector<bio::Sequence> subjects;
    int id = 0;
    for (int rep = 0; rep < 40; ++rep) // forty length-1 subjects
        subjects.push_back(
            randomSeq(rng, 1, "a" + std::to_string(id++)));
    for (int rep = 0; rep < 40; ++rep) // forty equal mid-length
        subjects.push_back(
            randomSeq(rng, 17, "b" + std::to_string(id++)));
    subjects.push_back(randomSeq(rng, 900, "long"));
    const std::vector<align::SubjectSpan> spans =
        spansOf(subjects);

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::vector<align::LocalScore> got(spans.size());
        align::swInterSequenceScan(profile, spans.data(),
                                   spans.size(), gaps, got.data());
        for (std::size_t i = 0; i < subjects.size(); ++i) {
            const align::LocalScore ref = align::smithWatermanScore(
                q, subjects[i], mat, gaps);
            ASSERT_EQ(got[i].score, ref.score)
                << "subject " << i << " backend "
                << align::backendName(backend);
        }
    }
}

// One lane saturating must not disturb its neighbors: a batch of
// ordinary subjects with a near-identical copy of a 600-residue
// query (u8 saturation -> 16-bit rescan of that one subject) and a
// 3200-residue tryptophan homopolymer against a matching query
// elsewhere would be i16 saturation; here, drive u8 saturation in
// individual lanes and check the whole batch still lands on the
// scalar reference with the expected ladder counts.
TEST(SwInterSequence, SaturationInIndividualLanes)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0x5A77);

    const bio::Sequence q = randomSeq(rng, 600, "q");
    std::vector<bio::Sequence> subjects;
    for (int i = 0; i < 20; ++i)
        subjects.push_back(randomSeq(
            rng, 30 + static_cast<int>(rng.below(60)),
            "s" + std::to_string(i)));
    subjects.push_back(q); // self-alignment: score >> 255
    for (int i = 0; i < 20; ++i)
        subjects.push_back(randomSeq(
            rng, 30 + static_cast<int>(rng.below(60)),
            "t" + std::to_string(i)));
    const std::vector<align::SubjectSpan> spans =
        spansOf(subjects);

    const align::LocalScore hot_ref =
        align::smithWatermanScore(q, q, mat, gaps);
    ASSERT_GT(hot_ref.score, 255);

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        ASSERT_TRUE(profile.hasU8());
        std::vector<align::LocalScore> got(spans.size());
        align::NativeScanStats stats;
        align::swInterSequenceScan(profile, spans.data(),
                                   spans.size(), gaps, got.data(),
                                   nullptr, &stats);
        // Exactly the hot lane climbed the ladder.
        EXPECT_EQ(stats.rescans16, 1u)
            << align::backendName(backend);
        EXPECT_EQ(stats.rescansScalar, 0u);
        for (std::size_t i = 0; i < subjects.size(); ++i) {
            const align::LocalScore ref = align::smithWatermanScore(
                q, subjects[i], mat, gaps);
            ASSERT_EQ(got[i].score, ref.score)
                << "subject " << i << " backend "
                << align::backendName(backend);
        }
    }
}

// Forced i16 saturation inside one lane: the homopolymer subject
// must fall through to the scalar level (rescansScalar == 1) while
// the rest of the batch stays on the 8-bit inter-sequence pass.
TEST(SwInterSequence, I16SaturationInOneLaneFallsBackToScalar)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0x16B);

    const bio::Sequence q("w", "", std::string(3200, 'W'));
    std::vector<bio::Sequence> subjects;
    for (int i = 0; i < 10; ++i)
        subjects.push_back(randomSeq(
            rng, 20 + static_cast<int>(rng.below(40)),
            "s" + std::to_string(i)));
    subjects.push_back(q); // 3200*11 = 35200 > INT16_MAX
    const std::vector<align::SubjectSpan> spans =
        spansOf(subjects);

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::vector<align::LocalScore> got(spans.size());
        align::NativeScanStats stats;
        align::swInterSequenceScan(profile, spans.data(),
                                   spans.size(), gaps, got.data(),
                                   nullptr, &stats);
        EXPECT_EQ(stats.rescans16, 1u);
        EXPECT_EQ(stats.rescansScalar, 1u);
        for (std::size_t i = 0; i < subjects.size(); ++i) {
            const align::LocalScore ref = align::smithWatermanScore(
                q, subjects[i], mat, gaps);
            ASSERT_EQ(got[i].score, ref.score)
                << "subject " << i << " backend "
                << align::backendName(backend);
        }
        // The scalar level tracks end coordinates.
        EXPECT_EQ(got.back().queryEnd,
                  align::smithWatermanScore(q, q, mat, gaps)
                      .queryEnd);
    }
}

// Degenerate inputs: empty batch, empty query, zero-length
// subjects mixed into a batch.
TEST(SwInterSequence, EmptyAndZeroLengthInputs)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xE2);
    const bio::Sequence q = randomSeq(rng, 12, "q");
    const bio::Sequence empty("e", "", std::string());

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        // Empty batch is a no-op.
        align::swInterSequenceScan(profile, nullptr, 0, gaps,
                                   nullptr);
        // Zero-length subjects score 0 and cost no cells.
        std::vector<bio::Sequence> subjects = {
            empty, randomSeq(rng, 9, "s"), empty};
        const std::vector<align::SubjectSpan> spans =
            spansOf(subjects);
        std::vector<align::LocalScore> got(spans.size());
        std::uint64_t cells = 0;
        align::NativeScanStats stats;
        align::swInterSequenceScan(profile, spans.data(),
                                   spans.size(), gaps, got.data(),
                                   &cells, &stats);
        EXPECT_EQ(got[0].score, 0);
        EXPECT_EQ(got[2].score, 0);
        EXPECT_EQ(got[1].score,
                  align::smithWatermanScore(q, subjects[1], mat,
                                            gaps)
                      .score);
        EXPECT_EQ(cells, 12u * 9u);
        EXPECT_EQ(stats.scans, 1u);

        // Empty query scores every subject 0.
        const align::NativeQueryProfile eprofile(empty, mat,
                                                 backend);
        std::vector<align::LocalScore> egot(spans.size());
        align::swInterSequenceScan(eprofile, spans.data(),
                                   spans.size(), gaps,
                                   egot.data());
        for (const align::LocalScore &ls : egot)
            EXPECT_EQ(ls.score, 0);
    }
}

// The most extreme int8 matrix saturates the 8-bit level on the
// first match; every subject in the batch must climb to 16 bits
// and still match the scalar reference.
TEST(SwInterSequence, ExtremeMatrixSaturatesEveryLane)
{
    const bio::ScoringMatrix mat =
        bio::makeMatchMismatch(127, -128);
    const bio::GapPenalties gaps;
    const bio::Sequence q("q", "", std::string(21, 'A'));
    std::vector<bio::Sequence> subjects;
    for (int n : {1, 3, 8, 21, 40})
        subjects.push_back(bio::Sequence(
            "s" + std::to_string(n), "", std::string(n, 'A')));
    const std::vector<align::SubjectSpan> spans =
        spansOf(subjects);

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::vector<align::LocalScore> got(spans.size());
        align::NativeScanStats stats;
        align::swInterSequenceScan(profile, spans.data(),
                                   spans.size(), gaps, got.data(),
                                   nullptr, &stats);
        EXPECT_EQ(stats.rescans16, spans.size());
        for (std::size_t i = 0; i < subjects.size(); ++i)
            EXPECT_EQ(got[i].score,
                      align::smithWatermanScore(q, subjects[i],
                                                mat, gaps)
                          .score)
                << "subject " << i << " backend "
                << align::backendName(backend);
    }
}

TEST(SwNativeScan, CellAccountingIsLogicalDpSize)
{
    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    bio::Rng rng(0xCE115);
    const bio::Sequence q = randomSeq(rng, 37, "q");
    const bio::Sequence s = randomSeq(rng, 91, "s");

    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const align::NativeQueryProfile profile(q, mat, backend);
        std::uint64_t cells = 0;
        align::NativeScanStats stats;
        (void)align::swStripedNativeScan(profile, s, gaps, &cells,
                                         &stats);
        EXPECT_EQ(cells, 37u * 91u);
        EXPECT_EQ(stats.scans, 1u);
    }
}

} // namespace
