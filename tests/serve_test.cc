/**
 * @file
 * Tests for the batched query-serving engine (src/serve).
 *
 * The load-bearing contract mirrors sweep_test.cc: the ranked
 * top-K hit list of every request — db ids, scores, bit scores,
 * E-values — is bit-for-bit identical across worker counts, shard
 * counts, and batch sizes, and equal to a straightforward serial
 * scan of the whole database under the (score desc, db index asc)
 * order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "bio/synthetic.hh"
#include "core/percentile.hh"
#include "obs/metrics.hh"
#include "serve/clock.hh"
#include "serve/engine.hh"
#include "serve/hit_list.hh"
#include "serve/latency.hh"
#include "serve/loop.hh"
#include "serve/shard.hh"

namespace
{

using namespace bioarch;

/** Small planted-homolog database shared across tests. */
const bio::SequenceDatabase &
testDb()
{
    static const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(48);
    return db;
}

const std::vector<bio::Sequence> &
queryPool()
{
    static const std::vector<bio::Sequence> pool =
        bio::makeQuerySet();
    return pool;
}

/**
 * The reference the engine must match: scan every database
 * sequence serially with the same prepared query, rank with the
 * total order, truncate to K.
 */
std::vector<align::SearchHit>
serialReference(const serve::Request &request,
                const bio::SequenceDatabase &db,
                const serve::EngineConfig &cfg, std::size_t top_k)
{
    const serve::PreparedQuery prepared(
        request, bio::blosum62(), cfg.gaps, cfg.fasta, cfg.blast);
    const align::KarlinParams &ka = align::blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());
    const double m =
        static_cast<double>(request.query.length());

    std::vector<align::SearchHit> hits;
    std::uint64_t cells = 0;
    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const align::LocalScore ls =
            prepared.scan(db[idx], &cells);
        if (ls.score <= 0)
            continue;
        align::SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        hit.bitScore = ka.bitScore(ls.score);
        hit.evalue = ka.evalue(ls.score, m, total);
        hits.push_back(hit);
    }
    std::sort(hits.begin(), hits.end(), serve::hitRanksBefore);
    if (hits.size() > top_k)
        hits.resize(top_k);
    return hits;
}

void
expectSameHits(const std::vector<align::SearchHit> &got,
               const std::vector<align::SearchHit> &want,
               const std::string &context)
{
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dbIndex, want[i].dbIndex)
            << context << " hit " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << context << " hit " << i;
        // Bit-for-bit: same doubles, not just approximately.
        EXPECT_EQ(got[i].bitScore, want[i].bitScore)
            << context << " hit " << i;
        EXPECT_EQ(got[i].evalue, want[i].evalue)
            << context << " hit " << i;
        EXPECT_EQ(got[i].queryEnd, want[i].queryEnd)
            << context << " hit " << i;
        EXPECT_EQ(got[i].subjectEnd, want[i].subjectEnd)
            << context << " hit " << i;
    }
}

/** A 6-request stream covering several kinds and query lengths. */
std::vector<serve::Request>
mixedStream(kernels::Workload a, kernels::Workload b)
{
    std::vector<serve::Request> stream;
    for (std::size_t i = 0; i < 6; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = i % 2 == 0 ? a : b;
        r.query = queryPool()[i % queryPool().size()];
        stream.push_back(std::move(r));
    }
    return stream;
}

TEST(ServeDeterminism, RankingInvariantAcrossJobsShardsBatches)
{
    // Two heuristic + two DP kinds; each request pair exercises a
    // different application.
    const std::vector<std::pair<kernels::Workload,
                                kernels::Workload>>
        kind_pairs = {
            {kernels::Workload::Ssearch34,
             kernels::Workload::Blast},
            {kernels::Workload::SwVmx128,
             kernels::Workload::Fasta34},
        };

    for (const auto &[a, b] : kind_pairs) {
        const std::vector<serve::Request> stream =
            mixedStream(a, b);

        serve::EngineConfig ref_cfg;
        std::vector<std::vector<align::SearchHit>> reference;
        for (const serve::Request &r : stream)
            reference.push_back(serialReference(
                r, testDb(), ref_cfg, ref_cfg.topK));

        for (const unsigned jobs : {1u, 2u, 8u}) {
            for (const std::size_t shards : {1u, 4u}) {
                for (const std::size_t batch : {1u, 8u}) {
                    serve::EngineConfig cfg;
                    cfg.jobs = jobs;
                    cfg.shards = shards;
                    cfg.batch = batch;
                    serve::Engine engine(testDb(), cfg);
                    const serve::StreamReport report =
                        engine.serveStream(stream);

                    ASSERT_EQ(report.responses.size(),
                              stream.size());
                    for (std::size_t i = 0; i < stream.size();
                         ++i) {
                        const std::string context =
                            "jobs=" + std::to_string(jobs)
                            + " shards=" + std::to_string(shards)
                            + " batch=" + std::to_string(batch)
                            + " request=" + std::to_string(i);
                        EXPECT_EQ(report.responses[i].id,
                                  stream[i].id)
                            << context;
                        expectSameHits(report.responses[i].hits,
                                       reference[i], context);
                    }
                }
            }
        }
    }
}

TEST(ServeDeterminism, EveryRequestScansTheWholeDatabase)
{
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 4;
    serve::Engine engine(testDb(), cfg);

    serve::Request r;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool().front();
    const serve::Response resp = engine.serve(r);
    EXPECT_EQ(resp.sequencesSearched, testDb().size());
    EXPECT_GT(resp.cellsComputed, 0u);
    EXPECT_FALSE(resp.hits.empty()); // homologs are planted
    EXPECT_GE(resp.serviceUs, 0.0);
}

TEST(ServeEngine, PerRequestTopKOverridesDefault)
{
    serve::EngineConfig cfg;
    cfg.topK = 10;
    serve::Engine engine(testDb(), cfg);

    serve::Request r;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool().front();
    r.topK = 3;
    const serve::Response resp = engine.serve(r);
    EXPECT_EQ(resp.hits.size(), 3u);

    r.topK = 0; // engine default
    const serve::Response def = engine.serve(r);
    EXPECT_LE(def.hits.size(), 10u);
    EXPECT_GT(def.hits.size(), 3u);
    // The override is a prefix of the default ranking.
    for (std::size_t i = 0; i < resp.hits.size(); ++i)
        EXPECT_EQ(resp.hits[i].dbIndex, def.hits[i].dbIndex);
}

TEST(ServeEngine, StreamReportAccountsEveryRequest)
{
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.batch = 4;
    serve::Engine engine(testDb(), cfg);

    const std::vector<serve::Request> stream = mixedStream(
        kernels::Workload::Ssearch34, kernels::Workload::Blast);
    const serve::StreamReport report = engine.serveStream(stream);

    EXPECT_EQ(report.responses.size(), stream.size());
    EXPECT_EQ(report.latency.count(), stream.size());
    EXPECT_EQ(report.batches, 2u); // 6 requests / batch of 4
    EXPECT_GT(report.wallMs, 0.0);
    EXPECT_GT(report.requestsPerSec(), 0.0);
    EXPECT_GT(report.totalCells, 0u);

    const serve::LatencySummary lat = report.latency.summary();
    EXPECT_EQ(lat.count, stream.size());
    EXPECT_LE(lat.p50Us, lat.p95Us);
    EXPECT_LE(lat.p95Us, lat.p99Us);
    EXPECT_LE(lat.p99Us, lat.maxUs);
    for (const serve::Response &r : report.responses)
        EXPECT_GE(r.latencyUs(), r.serviceUs);
}

TEST(ServeEngine, NativeBackendMatchesModelScores)
{
    // Every native backend must rank exactly like the
    // instruction-accurate model kernels for all three
    // Smith-Waterman kinds: same db ids, scores, bit scores and
    // E-values. (End coordinates are backend-specific reporting —
    // the model vector kernels and the native kernel both leave
    // queryEnd untracked, but not identically — so they are not
    // compared.)
    const std::vector<kernels::Workload> sw_kinds = {
        kernels::Workload::Ssearch34,
        kernels::Workload::SwVmx128,
        kernels::Workload::SwVmx256,
    };

    for (const kernels::Workload kind : sw_kinds) {
        std::vector<serve::Request> stream;
        for (std::size_t i = 0; i < 4; ++i) {
            serve::Request r;
            r.id = i;
            r.kind = kind;
            r.query = queryPool()[i % queryPool().size()];
            stream.push_back(std::move(r));
        }

        serve::EngineConfig model_cfg;
        model_cfg.backend = align::SimdBackend::Model;
        serve::Engine model_engine(testDb(), model_cfg);
        const std::vector<serve::Response> model =
            model_engine.serveBatch(stream);

        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            serve::EngineConfig cfg;
            cfg.backend = backend;
            serve::Engine engine(testDb(), cfg);
            const std::vector<serve::Response> native =
                engine.serveBatch(stream);

            ASSERT_EQ(native.size(), model.size());
            for (std::size_t i = 0; i < native.size(); ++i) {
                const std::string context =
                    std::string(align::backendName(backend))
                    + " kind="
                    + std::string(kernels::workloadName(kind))
                    + " request=" + std::to_string(i);
                ASSERT_EQ(native[i].hits.size(),
                          model[i].hits.size())
                    << context;
                for (std::size_t h = 0; h < native[i].hits.size();
                     ++h) {
                    EXPECT_EQ(native[i].hits[h].dbIndex,
                              model[i].hits[h].dbIndex)
                        << context << " hit " << h;
                    EXPECT_EQ(native[i].hits[h].score,
                              model[i].hits[h].score)
                        << context << " hit " << h;
                    EXPECT_EQ(native[i].hits[h].bitScore,
                              model[i].hits[h].bitScore)
                        << context << " hit " << h;
                    EXPECT_EQ(native[i].hits[h].evalue,
                              model[i].hits[h].evalue)
                        << context << " hit " << h;
                }
            }
        }
    }
}

TEST(ServeDeterminism, HitsBitIdenticalAcrossKernelChoices)
{
    // The inter-sequence/striped cutover is a pure throughput knob:
    // ranked hits — ids, scores, bit scores, E-values, end
    // coordinates — must be bit-for-bit identical whether every
    // subject goes striped (cutover 0), every subject goes
    // inter-sequence (huge cutover), or the mix splits at the
    // default, across jobs {1, 2, 8}.
    std::vector<serve::Request> stream;
    for (std::size_t i = 0; i < 4; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = kernels::Workload::Ssearch34;
        r.query = queryPool()[i % queryPool().size()];
        stream.push_back(std::move(r));
    }

    // Reference: all-striped, serial.
    serve::EngineConfig ref_cfg;
    ref_cfg.jobs = 1;
    ref_cfg.interseqCutover = 0;
    serve::Engine ref_engine(testDb(), ref_cfg);
    const std::vector<serve::Response> reference =
        ref_engine.serveBatch(stream);
    ASSERT_TRUE(ref_engine.config().interseqCutover == 0);

    for (const std::size_t cutover :
         {std::size_t{0}, align::interSequenceCutover(),
          std::size_t{1} << 30}) {
        for (const unsigned jobs : {1u, 2u, 8u}) {
            serve::EngineConfig cfg;
            cfg.jobs = jobs;
            cfg.interseqCutover = cutover;
            serve::Engine engine(testDb(), cfg);
            const std::vector<serve::Response> got =
                engine.serveBatch(stream);
            ASSERT_EQ(got.size(), reference.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                expectSameHits(
                    got[i].hits, reference[i].hits,
                    "cutover=" + std::to_string(cutover)
                        + " jobs=" + std::to_string(jobs)
                        + " request=" + std::to_string(i));

            // The per-kernel accounting covers every scan exactly
            // once, and the extreme cutovers route exclusively.
            const obs::Registry &m = engine.metrics();
            const std::uint64_t inter = m.counterValue(
                "native_intersequence_total",
                "backend=\""
                    + std::string(align::backendName(
                        engine.config().backend))
                    + "\"");
            const std::uint64_t striped = m.counterValue(
                "native_striped_total",
                "backend=\""
                    + std::string(align::backendName(
                        engine.config().backend))
                    + "\"");
            EXPECT_EQ(inter + striped,
                      m.counterValue(
                          "native_scans_total",
                          "backend=\""
                              + std::string(align::backendName(
                                  engine.config().backend))
                              + "\""));
            // Cutover 0 never forms a batch; a huge cutover
            // batches everything except shards below the
            // occupancy floor, which fall back to striped.
            if (cutover == 0) {
                EXPECT_EQ(inter, 0u);
            } else if (cutover == (std::size_t{1} << 30)) {
                EXPECT_GT(inter, 0u);
            }
        }
    }
}

TEST(ServeDeterminism, ShardScanOrderInvariantUnderBatching)
{
    // Regression for the length-sorted batching: however the lane
    // schedule reorders the actual scans, the hit list's total
    // order must stay a pure function of (query, shard) — the heap
    // is fed per-subject slots in ascending db index, never in
    // schedule order. Score ties across subjects (the planted
    // homolog pairs) are what make feed order observable.
    serve::Request r;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool().front();
    serve::EngineConfig cfg;
    const serve::PreparedQuery prepared(
        r, bio::blosum62(), cfg.gaps, cfg.fasta, cfg.blast);
    ASSERT_TRUE(prepared.usesNativeScan());
    const align::KarlinParams &ka = align::blosum62Karlin();
    const double total =
        static_cast<double>(testDb().totalResidues());

    serve::Shard whole;
    whole.begin = 0;
    whole.end = testDb().size();

    serve::ScanRoute ref_route;
    ref_route.interseqCutover = 0;
    const serve::ShardScan ref = serve::scanShard(
        prepared, testDb(), whole, 16, ka, total, ref_route);
    for (const std::size_t cutover : {7u, 40u, 1u << 20}) {
        serve::ScanRoute route;
        route.interseqCutover = cutover;
        const serve::ShardScan got = serve::scanShard(
            prepared, testDb(), whole, 16, ka, total, route);
        ASSERT_EQ(got.hits.size(), ref.hits.size())
            << "cutover=" << cutover;
        for (std::size_t h = 0; h < got.hits.size(); ++h) {
            EXPECT_EQ(got.hits[h].dbIndex, ref.hits[h].dbIndex)
                << "cutover=" << cutover << " hit " << h;
            EXPECT_EQ(got.hits[h].score, ref.hits[h].score)
                << "cutover=" << cutover << " hit " << h;
            EXPECT_EQ(got.hits[h].subjectEnd,
                      ref.hits[h].subjectEnd)
                << "cutover=" << cutover << " hit " << h;
        }
        EXPECT_EQ(got.sequences, ref.sequences);
        EXPECT_EQ(got.cells, ref.cells);
        EXPECT_EQ(got.native.scans, ref.native.scans);
        EXPECT_EQ(got.native.interSequence + got.native.striped,
                  got.native.scans);
    }
}

TEST(ServeEngine, BatchDedupSharesIdenticalRequests)
{
    serve::EngineConfig cfg;
    cfg.batch = 8;
    serve::Engine engine(testDb(), cfg);

    // 8 requests, but only 3 distinct (kind, query) groups: the
    // same query under two kinds, plus one other query.
    std::vector<serve::Request> batch;
    for (std::size_t i = 0; i < 8; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = i == 5 ? kernels::Workload::Blast
                        : kernels::Workload::Ssearch34;
        r.query = queryPool()[i == 7 ? 1 : 0];
        batch.push_back(std::move(r));
    }
    const obs::Registry &m = engine.metrics();
    const std::uint64_t unique0 =
        m.counterValue("serve_batch_unique_total");
    const std::uint64_t saved0 =
        m.counterValue("serve_dedup_saved_total");
    const std::uint64_t fills0 =
        m.counterValue("serve_karlin_lazy_fills_total");
    const std::vector<serve::Response> responses =
        engine.serveBatch(batch);
    EXPECT_EQ(m.counterValue("serve_batch_unique_total") - unique0,
              3u);
    // 8 requests, 3 distinct groups: 5 prepares saved by dedup.
    EXPECT_EQ(m.counterValue("serve_dedup_saved_total") - saved0,
              5u);
    // Karlin statistics are filled lazily, for per-shard heap
    // survivors only — bounded by shards x top-K per request
    // (dedup shares the prepared query; every request still scans
    // its shards), never one fill per scanned sequence.
    ASSERT_EQ(responses.size(), 8u);
    std::uint64_t survivors = 0;
    for (const serve::Response &r : responses)
        survivors += r.hits.size();
    const std::uint64_t fills =
        m.counterValue("serve_karlin_lazy_fills_total") - fills0;
    EXPECT_GE(fills, survivors);
    EXPECT_LE(fills, 8u * engine.config().shards
                         * engine.config().topK);
    EXPECT_LT(fills, 8u * testDb().size()); // lazy, not per scan

    // Dedup must be invisible in the results: duplicates answer
    // exactly like their representative...
    for (const std::size_t dup : {1u, 2u, 3u, 4u, 6u}) {
        ASSERT_EQ(responses[dup].hits.size(),
                  responses[0].hits.size());
        for (std::size_t h = 0; h < responses[dup].hits.size();
             ++h) {
            EXPECT_EQ(responses[dup].hits[h].dbIndex,
                      responses[0].hits[h].dbIndex);
            EXPECT_EQ(responses[dup].hits[h].score,
                      responses[0].hits[h].score);
        }
    }
    // ...and every request still reports its own id and full scan
    // accounting.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(responses[i].id, i);
        EXPECT_EQ(responses[i].sequencesSearched, testDb().size());
    }

    // An all-distinct batch dedups nothing.
    const std::vector<serve::Request> stream = mixedStream(
        kernels::Workload::Ssearch34, kernels::Workload::Blast);
    const std::uint64_t unique1 =
        m.counterValue("serve_batch_unique_total");
    const std::uint64_t saved1 =
        m.counterValue("serve_dedup_saved_total");
    (void)engine.serveBatch(stream);
    EXPECT_EQ(m.counterValue("serve_batch_unique_total") - unique1,
              stream.size());
    EXPECT_EQ(m.counterValue("serve_dedup_saved_total") - saved1,
              0u);
}

TEST(ShardedDatabase, PartitionCoversEverySequenceOnce)
{
    for (const std::size_t shards : {1u, 3u, 4u, 7u}) {
        const serve::ShardedDatabase sharded(testDb(), shards);
        ASSERT_EQ(sharded.numShards(), shards);
        std::size_t expected_begin = 0;
        std::uint64_t residues = 0;
        for (std::size_t i = 0; i < shards; ++i) {
            const serve::Shard &s = sharded.shard(i);
            EXPECT_EQ(s.index, i);
            EXPECT_EQ(s.begin, expected_begin);
            EXPECT_LE(s.begin, s.end);
            expected_begin = s.end;
            residues += s.residues;
        }
        EXPECT_EQ(expected_begin, testDb().size());
        EXPECT_EQ(residues, testDb().totalResidues());
    }
}

TEST(ShardedDatabase, MoreShardsThanSequencesIsFine)
{
    bio::SequenceDatabase tiny;
    tiny.add(bio::Sequence("A", "", "ACDEFGH"));
    tiny.add(bio::Sequence("B", "", "KLMNPQR"));
    const serve::ShardedDatabase sharded(tiny, 5);
    EXPECT_EQ(sharded.numShards(), 5u);
    std::size_t covered = 0;
    for (std::size_t i = 0; i < 5; ++i)
        covered += sharded.shard(i).size();
    EXPECT_EQ(covered, tiny.size());
    EXPECT_EQ(sharded.shard(4).end, tiny.size());
}

TEST(TopKHeap, KeepsBestKWithStableTieBreak)
{
    serve::TopKHeap heap(3);
    auto hit = [](std::size_t idx, int score) {
        align::SearchHit h;
        h.dbIndex = idx;
        h.score = score;
        return h;
    };
    // Ties on score must keep the lower db index.
    heap.consider(hit(5, 10));
    heap.consider(hit(2, 10));
    heap.consider(hit(9, 30));
    heap.consider(hit(7, 10));
    heap.consider(hit(1, 5));

    const std::vector<align::SearchHit> ranked = heap.ranked();
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].dbIndex, 9u); // score 30
    EXPECT_EQ(ranked[1].dbIndex, 2u); // score 10, lowest index
    EXPECT_EQ(ranked[2].dbIndex, 5u);
}

TEST(TopKHeap, MergeEqualsGlobalRanking)
{
    auto hit = [](std::size_t idx, int score) {
        align::SearchHit h;
        h.dbIndex = idx;
        h.score = score;
        return h;
    };
    // Simulate two shards each keeping their local top 3.
    std::vector<align::SearchHit> all;
    for (std::size_t i = 0; i < 20; ++i)
        all.push_back(hit(i, static_cast<int>((i * 7) % 12) + 1));

    serve::TopKHeap left(3);
    serve::TopKHeap right(3);
    for (const align::SearchHit &h : all)
        (h.dbIndex < 10 ? left : right).consider(h);

    const std::vector<align::SearchHit> merged =
        serve::mergeRanked({left.ranked(), right.ranked()}, 3);

    std::vector<align::SearchHit> global = all;
    std::sort(global.begin(), global.end(),
              serve::hitRanksBefore);
    global.resize(3);
    ASSERT_EQ(merged.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(merged[i].dbIndex, global[i].dbIndex);
        EXPECT_EQ(merged[i].score, global[i].score);
    }
}

TEST(Percentile, QuantileInterpolatesLinearly)
{
    const std::vector<double> samples = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(core::quantile(samples, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(core::quantile(samples, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(core::quantile(samples, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(core::percentile(samples, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(core::percentile({}, 99.0), 0.0);
    EXPECT_DOUBLE_EQ(core::percentile({7.0}, 99.0), 7.0);
    // Order must not matter.
    EXPECT_DOUBLE_EQ(core::quantile({40, 10, 30, 20}, 0.5), 25.0);
}

TEST(LatencyRecorder, SummaryAndHistogram)
{
    serve::LatencyRecorder rec;
    EXPECT_TRUE(rec.histogram().empty());
    EXPECT_EQ(rec.summary().count, 0u);

    for (const double us : {100.0, 200.0, 400.0, 800.0})
        rec.record(us);
    const serve::LatencySummary s = rec.summary();
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.meanUs, 375.0);
    EXPECT_DOUBLE_EQ(s.maxUs, 800.0);
    EXPECT_DOUBLE_EQ(s.p50Us, 300.0);

    const std::vector<serve::LatencyBucket> hist =
        rec.histogram();
    ASSERT_FALSE(hist.empty());
    std::size_t total = 0;
    for (const serve::LatencyBucket &b : hist) {
        EXPECT_LT(b.loUs, b.hiUs);
        total += b.count;
    }
    EXPECT_EQ(total, 4u);
}

TEST(LatencyRecorder, BucketEdgesArePinned)
{
    // Regression: bucket boundaries are hoisted to construction
    // and must be the exact powers of two, identical on every
    // histogram() call.
    const std::array<double, obs::Histogram::numBuckets> &bounds =
        obs::Histogram::bucketBounds();
    for (int i = 0; i < obs::Histogram::numBuckets; ++i)
        EXPECT_DOUBLE_EQ(bounds[i], std::exp2(i + 1)) << i;
    EXPECT_EQ(&bounds, &obs::Histogram::bucketBounds());

    serve::LatencyRecorder rec;
    for (const double us : {100.0, 200.0, 400.0, 800.0})
        rec.record(us);
    const std::vector<serve::LatencyBucket> hist = rec.histogram();
    ASSERT_EQ(hist.size(), 4u);
    const double lo[] = {64.0, 128.0, 256.0, 512.0};
    const double hi[] = {128.0, 256.0, 512.0, 1024.0};
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(hist[i].loUs, lo[i]) << i;
        EXPECT_DOUBLE_EQ(hist[i].hiUs, hi[i]) << i;
        EXPECT_EQ(hist[i].count, 1u) << i;
    }
    const std::vector<serve::LatencyBucket> again =
        rec.histogram();
    ASSERT_EQ(again.size(), hist.size());
    for (std::size_t i = 0; i < hist.size(); ++i) {
        EXPECT_DOUBLE_EQ(again[i].loUs, hist[i].loUs);
        EXPECT_DOUBLE_EQ(again[i].hiUs, hist[i].hiUs);
    }

    // Sub-unit samples land in bucket 0, range [0, 2).
    serve::LatencyRecorder tiny;
    tiny.record(0.5);
    const std::vector<serve::LatencyBucket> t = tiny.histogram();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_DOUBLE_EQ(t[0].loUs, 0.0);
    EXPECT_DOUBLE_EQ(t[0].hiUs, 2.0);
}

serve::Request
loopRequest(std::uint64_t id)
{
    serve::Request r;
    r.id = id;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool()[id % queryPool().size()];
    return r;
}

TEST(ServeEngine, BatchControlSkipsExpiredAtShardGranularity)
{
    serve::EngineConfig cfg;
    cfg.shards = 4;
    serve::Engine engine(testDb(), cfg);

    serve::ManualClock clock;
    clock.set(1000.0);
    const std::vector<serve::Request> batch = {loopRequest(0),
                                               loopRequest(1)};
    const double deadlines[] = {500.0, 0.0}; // expired / none
    serve::Engine::BatchControl control;
    control.deadlinesUs = deadlines;
    control.clock = &clock;
    const std::vector<serve::Response> out =
        engine.serveBatch(batch, control);

    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].deadlineExpired());
    EXPECT_EQ(out[0].shardsSkipped, cfg.shards);
    EXPECT_EQ(out[0].sequencesSearched, 0u);
    EXPECT_TRUE(out[0].hits.empty());
    EXPECT_FALSE(out[1].deadlineExpired());
    EXPECT_EQ(out[1].sequencesSearched, testDb().size());
    EXPECT_EQ(engine.metrics().counterValue(
                  "serve_shards_skipped_total"),
              cfg.shards);
}

TEST(ServeLoop, DeadlineExpiryReturnsDeadlineWithoutScanning)
{
    serve::Engine engine(testDb());
    serve::ManualClock clock;
    serve::ServeLoop loop(engine, {}, &clock);
    const obs::Registry &m = engine.metrics();

    clock.set(100.0);
    const serve::Submission sub =
        loop.submit(loopRequest(0), serve::Priority::Normal,
                    500.0);
    ASSERT_TRUE(sub.admitted);

    clock.set(900.0); // past the deadline before dispatch
    EXPECT_EQ(loop.pumpAll(), 1u);
    const std::vector<serve::LoopResult> results = loop.results();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, serve::LoopStatus::Deadline);
    EXPECT_EQ(results[0].response.sequencesSearched, 0u);
    // The engine was never invoked for the expired request.
    EXPECT_EQ(m.counterValue("serve_requests_total"), 0u);
    EXPECT_EQ(m.counterValue("loop_deadline_expired_total"), 1u);
    EXPECT_EQ(m.counterValue("loop_served_total"), 0u);
}

TEST(ServeLoop, FullQueueShedsWithRetryAfter)
{
    serve::Engine engine(testDb());
    serve::ManualClock clock;
    serve::LoopConfig lcfg;
    lcfg.queueCapacity = 4;
    serve::ServeLoop loop(engine, lcfg, &clock);
    const obs::Registry &m = engine.metrics();

    std::size_t admitted = 0;
    for (std::uint64_t i = 0; i < 6; ++i) {
        const serve::Submission sub =
            loop.submit(loopRequest(i));
        if (i < 4) {
            EXPECT_TRUE(sub.admitted) << i;
            ++admitted;
        } else {
            EXPECT_FALSE(sub.admitted) << i;
            EXPECT_GE(sub.retryAfterUs, lcfg.minRetryAfterUs)
                << i;
        }
        EXPECT_EQ(sub.ticket, i);
    }
    EXPECT_EQ(admitted, 4u);
    EXPECT_EQ(loop.queueDepth(), 4u);
    EXPECT_EQ(m.counterValue("loop_shed_queue_full_total"), 2u);

    EXPECT_EQ(loop.pumpAll(), 4u);
    const std::vector<serve::LoopResult> results = loop.results();
    ASSERT_EQ(results.size(), 6u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(results[i].status, serve::LoopStatus::Served)
            << i;
    for (const std::uint64_t i : {4u, 5u})
        EXPECT_EQ(results[i].status,
                  serve::LoopStatus::RetryAfter)
            << i;
    // Counter identity.
    EXPECT_EQ(m.counterValue("loop_served_total")
                  + m.counterValue("loop_shed_queue_full_total"),
              m.counterValue("loop_offered_total"));
}

TEST(ServeLoop, StopDropsQueuedDeterministically)
{
    serve::Engine engine(testDb());
    serve::ManualClock clock;
    serve::LoopConfig lcfg;
    lcfg.batch = 2;
    serve::ServeLoop loop(engine, lcfg, &clock);
    const obs::Registry &m = engine.metrics();

    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(loop.submit(loopRequest(i)).admitted) << i;

    // One batch is "in flight": it completes; the rest is dropped
    // in ticket order.
    EXPECT_EQ(loop.pumpOne(), 2u);
    loop.stop();
    EXPECT_EQ(loop.queueDepth(), 0u);

    const std::vector<serve::LoopResult> results = loop.results();
    ASSERT_EQ(results.size(), 5u);
    EXPECT_EQ(results[0].status, serve::LoopStatus::Served);
    EXPECT_EQ(results[1].status, serve::LoopStatus::Served);
    for (const std::uint64_t i : {2u, 3u, 4u})
        EXPECT_EQ(results[i].status, serve::LoopStatus::Dropped)
            << i;
    EXPECT_EQ(m.counterValue("loop_dropped_total"), 3u);

    // Submissions after shutdown are shed, not queued.
    const serve::Submission late = loop.submit(loopRequest(9));
    EXPECT_FALSE(late.admitted);
    EXPECT_EQ(m.counterValue("loop_shed_shutdown_total"), 1u);
    EXPECT_EQ(m.counterValue("loop_served_total")
                  + m.counterValue("loop_dropped_total")
                  + m.counterValue("loop_shed_shutdown_total"),
              m.counterValue("loop_offered_total"));
}

TEST(ServeLoop, ReproducibleAcrossJobs)
{
    // The loop's decisions depend only on (submission order, clock
    // values): the full per-ticket outcome — status, dispatch
    // order, ranked hits — is bit-for-bit identical whether the
    // engine runs 1, 2, or 8 workers.
    struct Outcome
    {
        serve::LoopStatus status;
        std::uint64_t dispatchOrder;
        std::vector<std::pair<std::size_t, int>> hits;
    };
    std::vector<std::vector<Outcome>> runs;

    for (const unsigned jobs : {1u, 2u, 8u}) {
        serve::EngineConfig cfg;
        cfg.jobs = jobs;
        serve::Engine engine(testDb(), cfg);
        serve::ManualClock clock;
        serve::LoopConfig lcfg;
        lcfg.queueCapacity = 8;
        lcfg.batch = 4;
        serve::ServeLoop loop(engine, lcfg, &clock);

        for (std::uint64_t i = 0; i < 12; ++i) {
            const double arrival =
                static_cast<double>(i) * 100.0;
            clock.set(arrival);
            double deadline = 0.0; // none
            if (i % 4 == 1)
                deadline = arrival + 50.0; // expires pre-pump
            else if (i % 4 == 3)
                deadline = arrival - 10.0; // shed at admission
            const serve::Priority prio =
                static_cast<serve::Priority>(i % 3);
            (void)loop.submit(loopRequest(i), prio, deadline);
        }
        clock.set(5000.0);
        loop.pumpAll();

        std::vector<Outcome> outcomes;
        for (const serve::LoopResult &r : loop.results()) {
            Outcome o;
            o.status = r.status;
            o.dispatchOrder = r.dispatchOrder;
            for (const align::SearchHit &h : r.response.hits)
                o.hits.emplace_back(h.dbIndex, h.score);
            outcomes.push_back(std::move(o));
        }
        runs.push_back(std::move(outcomes));

        // Identity on every run.
        const obs::Registry &m = engine.metrics();
        EXPECT_EQ(m.counterValue("loop_served_total")
                      + m.counterValue("loop_shed_queue_full_total")
                      + m.counterValue("loop_shed_deadline_total")
                      + m.counterValue("loop_deadline_expired_total")
                      + m.counterValue("loop_dropped_total"),
                  m.counterValue("loop_offered_total"))
            << "jobs=" << jobs;
    }

    ASSERT_EQ(runs.size(), 3u);
    for (std::size_t run = 1; run < runs.size(); ++run) {
        ASSERT_EQ(runs[run].size(), runs[0].size());
        for (std::size_t t = 0; t < runs[0].size(); ++t) {
            EXPECT_EQ(runs[run][t].status, runs[0][t].status)
                << "run=" << run << " ticket=" << t;
            EXPECT_EQ(runs[run][t].dispatchOrder,
                      runs[0][t].dispatchOrder)
                << "run=" << run << " ticket=" << t;
            EXPECT_EQ(runs[run][t].hits, runs[0][t].hits)
                << "run=" << run << " ticket=" << t;
        }
    }
}

TEST(ServeLoop, ThreadedDrainServesEverythingAdmitted)
{
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.batch = 4;
    serve::Engine engine(testDb(), cfg);
    serve::LoopConfig lcfg;
    lcfg.queueCapacity = 16;
    serve::ServeLoop loop(engine, lcfg); // wall clock
    const obs::Registry &m = engine.metrics();

    loop.start();
    EXPECT_TRUE(loop.running());
    std::size_t admitted = 0;
    for (std::uint64_t i = 0; i < 24; ++i)
        if (loop.submit(loopRequest(i)).admitted)
            ++admitted;
    loop.drain();
    EXPECT_FALSE(loop.running());
    EXPECT_EQ(loop.queueDepth(), 0u);

    // Drain is graceful: every admitted request was served; the
    // only other outcome is a queue-full shed.
    EXPECT_EQ(m.counterValue("loop_served_total"), admitted);
    EXPECT_EQ(m.counterValue("loop_served_total")
                  + m.counterValue("loop_shed_queue_full_total"),
              24u);
    std::size_t served = 0;
    for (const serve::LoopResult &r : loop.results()) {
        if (r.status != serve::LoopStatus::Served)
            continue;
        ++served;
        EXPECT_EQ(r.response.sequencesSearched, testDb().size());
        EXPECT_GE(r.latencyUs(), 0.0);
    }
    EXPECT_EQ(served, admitted);
}

serve::Request
tenantRequest(std::uint64_t id, std::uint32_t tenant)
{
    serve::Request r = loopRequest(id);
    r.tenant = tenant;
    return r;
}

std::string
tenantLabel(std::uint32_t tenant)
{
    return "tenant=\"" + std::to_string(tenant) + "\"";
}

TEST(ServeLoopTenants, QuotaShedAndRefillHint)
{
    serve::Engine engine(testDb());
    serve::ManualClock clock;
    serve::LoopConfig lcfg;
    serve::TenantQuota quota;
    quota.tenant = 7;
    quota.rateQps = 10.0; // one token per 100 ms
    quota.burst = 2.0;
    lcfg.tenants.push_back(quota);
    serve::ServeLoop loop(engine, lcfg, &clock);
    const obs::Registry &m = engine.metrics();

    // The fresh bucket holds `burst` tokens: two admissions.
    EXPECT_TRUE(loop.submit(tenantRequest(0, 7)).admitted);
    EXPECT_TRUE(loop.submit(tenantRequest(1, 7)).admitted);

    // Empty bucket: shed, and the hint is the bucket's actual
    // refill time (1 token at 10 qps = 100 ms), not the generic
    // minRetryAfterUs floor.
    const serve::Submission shed = loop.submit(tenantRequest(2, 7));
    EXPECT_FALSE(shed.admitted);
    EXPECT_DOUBLE_EQ(shed.retryAfterUs, 100000.0);
    EXPECT_EQ(m.counterValue("loop_shed_quota_total"), 1u);

    // Retrying exactly when the hint says is admitted.
    clock.advance(shed.retryAfterUs);
    EXPECT_TRUE(loop.submit(tenantRequest(3, 7)).admitted);

    // An unconfigured tenant is never quota-shed.
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(loop.submit(tenantRequest(10 + i, 9)).admitted)
            << i;

    EXPECT_EQ(loop.pumpAll(), 11u);
    EXPECT_EQ(m.counterValue("serve_tenant_offered_total",
                             tenantLabel(7)),
              4u);
    EXPECT_EQ(m.counterValue("serve_tenant_served_total",
                             tenantLabel(7)),
              3u);
    EXPECT_EQ(m.counterValue("serve_tenant_shed_total",
                             tenantLabel(7)),
              1u);
    EXPECT_EQ(m.counterValue("serve_tenant_shed_total",
                             tenantLabel(9)),
              0u);
}

TEST(ServeLoopTenants, WeightedFairDispatch)
{
    // Two backlogged tenants with weights 3:1 split a batch of 4
    // as [A, A, A, B] — weighted deficit round-robin, FIFO within
    // each tenant, regardless of arrival interleaving.
    serve::Engine engine(testDb());
    serve::ManualClock clock;
    serve::LoopConfig lcfg;
    lcfg.batch = 4;
    lcfg.queueCapacity = 16;
    serve::TenantQuota a;
    a.tenant = 1;
    a.weight = 3.0;
    serve::TenantQuota b;
    b.tenant = 2;
    b.weight = 1.0;
    lcfg.tenants = {a, b};
    serve::ServeLoop loop(engine, lcfg, &clock);

    // 8 requests, alternating tenants; tenant 1 activates first.
    for (std::uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(loop.submit(tenantRequest(
                                    i, i % 2 == 0 ? 1u : 2u))
                        .admitted)
            << i;

    EXPECT_EQ(loop.pumpOne(), 4u);
    EXPECT_EQ(loop.pumpAll(), 4u);

    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
    for (const serve::LoopResult &r : loop.results())
        order.emplace_back(r.dispatchOrder, r.tenant);
    std::sort(order.begin(), order.end());
    const std::vector<std::uint32_t> want = {
        1, 1, 1, 2,  // batch 1: weight-3 tenant gets 3 slots
        1, 2, 2, 2}; // batch 2: tenant 1 drains, 2 gets the rest
    ASSERT_EQ(order.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(order[i].second, want[i]) << "slot " << i;
}

TEST(ServeLoopTenants, PerTenantIdentityWithDrops)
{
    // Per-tenant counters satisfy the same identity as the global
    // family even through a mid-run stop():
    //   served + shed + deadline_expired + dropped == offered.
    serve::Engine engine(testDb());
    serve::ManualClock clock;
    serve::LoopConfig lcfg;
    lcfg.batch = 2;
    lcfg.queueCapacity = 6;
    serve::TenantQuota quota;
    quota.tenant = 2;
    quota.rateQps = 5.0;
    quota.burst = 2.0;
    lcfg.tenants.push_back(quota);
    serve::ServeLoop loop(engine, lcfg, &clock);
    const obs::Registry &m = engine.metrics();

    // Tenant 1 unlimited, tenant 2 quota-limited: 4 + 4 offered,
    // tenant 2 sheds half. Tenant 1's first request carries a
    // deadline that goes stale before the pump, so it expires at
    // dispatch (WDRR puts one request per tenant in the first
    // batch, so it must be the tenant's queue head to dispatch).
    clock.set(1000.0);
    for (std::uint64_t i = 0; i < 4; ++i)
        loop.submit(tenantRequest(i, 1), serve::Priority::Normal,
                    i == 0 ? 1500.0 : 0.0);
    for (std::uint64_t i = 4; i < 8; ++i)
        loop.submit(tenantRequest(i, 2));

    clock.set(2000.0);       // past ticket 0's deadline
    EXPECT_EQ(loop.pumpOne(), 2u); // one in-flight batch
    loop.stop();             // rest dropped in ticket order

    for (const std::uint32_t t : {1u, 2u}) {
        const std::string label = tenantLabel(t);
        const std::uint64_t offered =
            m.counterValue("serve_tenant_offered_total", label);
        EXPECT_EQ(offered, 4u) << label;
        EXPECT_EQ(
            m.counterValue("serve_tenant_served_total", label)
                + m.counterValue("serve_tenant_shed_total", label)
                + m.counterValue(
                    "serve_tenant_deadline_expired_total", label)
                + m.counterValue("serve_tenant_dropped_total",
                                 label),
            offered)
            << label;
    }
    EXPECT_EQ(m.counterValue("serve_tenant_shed_total",
                             tenantLabel(2)),
              2u);
    EXPECT_EQ(m.counterValue("serve_tenant_deadline_expired_total",
                             tenantLabel(1)),
              1u);
    EXPECT_GT(m.counterValue("serve_tenant_dropped_total",
                             tenantLabel(1))
                  + m.counterValue("serve_tenant_dropped_total",
                                   tenantLabel(2)),
              0u);
    // The global identity still holds too.
    EXPECT_EQ(m.counterValue("loop_served_total")
                  + m.counterValue("loop_shed_quota_total")
                  + m.counterValue("loop_deadline_expired_total")
                  + m.counterValue("loop_dropped_total"),
              m.counterValue("loop_offered_total"));
}

TEST(RequestStream, DeterministicAndWellFormed)
{
    serve::StreamSpec spec;
    spec.requests = 32;
    const std::vector<serve::Request> a =
        serve::makeRequestStream(spec, queryPool());
    const std::vector<serve::Request> b =
        serve::makeRequestStream(spec, queryPool());
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].query.id(), b[i].query.id());
    }
    // A different seed changes the stream.
    spec.seed ^= 0xFF;
    const std::vector<serve::Request> c =
        serve::makeRequestStream(spec, queryPool());
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].kind != c[i].kind
            || a[i].query.id() != c[i].query.id();
    EXPECT_TRUE(differs);

    EXPECT_THROW(serve::makeRequestStream(spec, {}),
                 std::invalid_argument);
}

} // namespace
