/**
 * @file
 * Tests for the batched query-serving engine (src/serve).
 *
 * The load-bearing contract mirrors sweep_test.cc: the ranked
 * top-K hit list of every request — db ids, scores, bit scores,
 * E-values — is bit-for-bit identical across worker counts, shard
 * counts, and batch sizes, and equal to a straightforward serial
 * scan of the whole database under the (score desc, db index asc)
 * order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bio/synthetic.hh"
#include "core/percentile.hh"
#include "serve/engine.hh"
#include "serve/hit_list.hh"
#include "serve/latency.hh"
#include "serve/shard.hh"

namespace
{

using namespace bioarch;

/** Small planted-homolog database shared across tests. */
const bio::SequenceDatabase &
testDb()
{
    static const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(48);
    return db;
}

const std::vector<bio::Sequence> &
queryPool()
{
    static const std::vector<bio::Sequence> pool =
        bio::makeQuerySet();
    return pool;
}

/**
 * The reference the engine must match: scan every database
 * sequence serially with the same prepared query, rank with the
 * total order, truncate to K.
 */
std::vector<align::SearchHit>
serialReference(const serve::Request &request,
                const bio::SequenceDatabase &db,
                const serve::EngineConfig &cfg, std::size_t top_k)
{
    const serve::PreparedQuery prepared(
        request, bio::blosum62(), cfg.gaps, cfg.fasta, cfg.blast);
    const align::KarlinParams &ka = align::blosum62Karlin();
    const double total = static_cast<double>(db.totalResidues());
    const double m =
        static_cast<double>(request.query.length());

    std::vector<align::SearchHit> hits;
    std::uint64_t cells = 0;
    for (std::size_t idx = 0; idx < db.size(); ++idx) {
        const align::LocalScore ls =
            prepared.scan(db[idx], &cells);
        if (ls.score <= 0)
            continue;
        align::SearchHit hit;
        hit.dbIndex = idx;
        hit.score = ls.score;
        hit.queryEnd = ls.queryEnd;
        hit.subjectEnd = ls.subjectEnd;
        hit.bitScore = ka.bitScore(ls.score);
        hit.evalue = ka.evalue(ls.score, m, total);
        hits.push_back(hit);
    }
    std::sort(hits.begin(), hits.end(), serve::hitRanksBefore);
    if (hits.size() > top_k)
        hits.resize(top_k);
    return hits;
}

void
expectSameHits(const std::vector<align::SearchHit> &got,
               const std::vector<align::SearchHit> &want,
               const std::string &context)
{
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dbIndex, want[i].dbIndex)
            << context << " hit " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << context << " hit " << i;
        // Bit-for-bit: same doubles, not just approximately.
        EXPECT_EQ(got[i].bitScore, want[i].bitScore)
            << context << " hit " << i;
        EXPECT_EQ(got[i].evalue, want[i].evalue)
            << context << " hit " << i;
        EXPECT_EQ(got[i].queryEnd, want[i].queryEnd)
            << context << " hit " << i;
        EXPECT_EQ(got[i].subjectEnd, want[i].subjectEnd)
            << context << " hit " << i;
    }
}

/** A 6-request stream covering several kinds and query lengths. */
std::vector<serve::Request>
mixedStream(kernels::Workload a, kernels::Workload b)
{
    std::vector<serve::Request> stream;
    for (std::size_t i = 0; i < 6; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = i % 2 == 0 ? a : b;
        r.query = queryPool()[i % queryPool().size()];
        stream.push_back(std::move(r));
    }
    return stream;
}

TEST(ServeDeterminism, RankingInvariantAcrossJobsShardsBatches)
{
    // Two heuristic + two DP kinds; each request pair exercises a
    // different application.
    const std::vector<std::pair<kernels::Workload,
                                kernels::Workload>>
        kind_pairs = {
            {kernels::Workload::Ssearch34,
             kernels::Workload::Blast},
            {kernels::Workload::SwVmx128,
             kernels::Workload::Fasta34},
        };

    for (const auto &[a, b] : kind_pairs) {
        const std::vector<serve::Request> stream =
            mixedStream(a, b);

        serve::EngineConfig ref_cfg;
        std::vector<std::vector<align::SearchHit>> reference;
        for (const serve::Request &r : stream)
            reference.push_back(serialReference(
                r, testDb(), ref_cfg, ref_cfg.topK));

        for (const unsigned jobs : {1u, 2u, 8u}) {
            for (const std::size_t shards : {1u, 4u}) {
                for (const std::size_t batch : {1u, 8u}) {
                    serve::EngineConfig cfg;
                    cfg.jobs = jobs;
                    cfg.shards = shards;
                    cfg.batch = batch;
                    serve::Engine engine(testDb(), cfg);
                    const serve::StreamReport report =
                        engine.serveStream(stream);

                    ASSERT_EQ(report.responses.size(),
                              stream.size());
                    for (std::size_t i = 0; i < stream.size();
                         ++i) {
                        const std::string context =
                            "jobs=" + std::to_string(jobs)
                            + " shards=" + std::to_string(shards)
                            + " batch=" + std::to_string(batch)
                            + " request=" + std::to_string(i);
                        EXPECT_EQ(report.responses[i].id,
                                  stream[i].id)
                            << context;
                        expectSameHits(report.responses[i].hits,
                                       reference[i], context);
                    }
                }
            }
        }
    }
}

TEST(ServeDeterminism, EveryRequestScansTheWholeDatabase)
{
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 4;
    serve::Engine engine(testDb(), cfg);

    serve::Request r;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool().front();
    const serve::Response resp = engine.serve(r);
    EXPECT_EQ(resp.sequencesSearched, testDb().size());
    EXPECT_GT(resp.cellsComputed, 0u);
    EXPECT_FALSE(resp.hits.empty()); // homologs are planted
    EXPECT_GE(resp.serviceUs, 0.0);
}

TEST(ServeEngine, PerRequestTopKOverridesDefault)
{
    serve::EngineConfig cfg;
    cfg.topK = 10;
    serve::Engine engine(testDb(), cfg);

    serve::Request r;
    r.kind = kernels::Workload::Ssearch34;
    r.query = queryPool().front();
    r.topK = 3;
    const serve::Response resp = engine.serve(r);
    EXPECT_EQ(resp.hits.size(), 3u);

    r.topK = 0; // engine default
    const serve::Response def = engine.serve(r);
    EXPECT_LE(def.hits.size(), 10u);
    EXPECT_GT(def.hits.size(), 3u);
    // The override is a prefix of the default ranking.
    for (std::size_t i = 0; i < resp.hits.size(); ++i)
        EXPECT_EQ(resp.hits[i].dbIndex, def.hits[i].dbIndex);
}

TEST(ServeEngine, StreamReportAccountsEveryRequest)
{
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.batch = 4;
    serve::Engine engine(testDb(), cfg);

    const std::vector<serve::Request> stream = mixedStream(
        kernels::Workload::Ssearch34, kernels::Workload::Blast);
    const serve::StreamReport report = engine.serveStream(stream);

    EXPECT_EQ(report.responses.size(), stream.size());
    EXPECT_EQ(report.latency.count(), stream.size());
    EXPECT_EQ(report.batches, 2u); // 6 requests / batch of 4
    EXPECT_GT(report.wallMs, 0.0);
    EXPECT_GT(report.requestsPerSec(), 0.0);
    EXPECT_GT(report.totalCells, 0u);

    const serve::LatencySummary lat = report.latency.summary();
    EXPECT_EQ(lat.count, stream.size());
    EXPECT_LE(lat.p50Us, lat.p95Us);
    EXPECT_LE(lat.p95Us, lat.p99Us);
    EXPECT_LE(lat.p99Us, lat.maxUs);
    for (const serve::Response &r : report.responses)
        EXPECT_GE(r.latencyUs(), r.serviceUs);
}

TEST(ServeEngine, NativeBackendMatchesModelScores)
{
    // Every native backend must rank exactly like the
    // instruction-accurate model kernels for all three
    // Smith-Waterman kinds: same db ids, scores, bit scores and
    // E-values. (End coordinates are backend-specific reporting —
    // the model vector kernels and the native kernel both leave
    // queryEnd untracked, but not identically — so they are not
    // compared.)
    const std::vector<kernels::Workload> sw_kinds = {
        kernels::Workload::Ssearch34,
        kernels::Workload::SwVmx128,
        kernels::Workload::SwVmx256,
    };

    for (const kernels::Workload kind : sw_kinds) {
        std::vector<serve::Request> stream;
        for (std::size_t i = 0; i < 4; ++i) {
            serve::Request r;
            r.id = i;
            r.kind = kind;
            r.query = queryPool()[i % queryPool().size()];
            stream.push_back(std::move(r));
        }

        serve::EngineConfig model_cfg;
        model_cfg.backend = align::SimdBackend::Model;
        serve::Engine model_engine(testDb(), model_cfg);
        const std::vector<serve::Response> model =
            model_engine.serveBatch(stream);

        for (const align::SimdBackend backend :
             align::compiledNativeBackends()) {
            serve::EngineConfig cfg;
            cfg.backend = backend;
            serve::Engine engine(testDb(), cfg);
            const std::vector<serve::Response> native =
                engine.serveBatch(stream);

            ASSERT_EQ(native.size(), model.size());
            for (std::size_t i = 0; i < native.size(); ++i) {
                const std::string context =
                    std::string(align::backendName(backend))
                    + " kind="
                    + std::string(kernels::workloadName(kind))
                    + " request=" + std::to_string(i);
                ASSERT_EQ(native[i].hits.size(),
                          model[i].hits.size())
                    << context;
                for (std::size_t h = 0; h < native[i].hits.size();
                     ++h) {
                    EXPECT_EQ(native[i].hits[h].dbIndex,
                              model[i].hits[h].dbIndex)
                        << context << " hit " << h;
                    EXPECT_EQ(native[i].hits[h].score,
                              model[i].hits[h].score)
                        << context << " hit " << h;
                    EXPECT_EQ(native[i].hits[h].bitScore,
                              model[i].hits[h].bitScore)
                        << context << " hit " << h;
                    EXPECT_EQ(native[i].hits[h].evalue,
                              model[i].hits[h].evalue)
                        << context << " hit " << h;
                }
            }
        }
    }
}

TEST(ServeEngine, BatchDedupSharesIdenticalRequests)
{
    serve::EngineConfig cfg;
    cfg.batch = 8;
    serve::Engine engine(testDb(), cfg);

    // 8 requests, but only 3 distinct (kind, query) groups: the
    // same query under two kinds, plus one other query.
    std::vector<serve::Request> batch;
    for (std::size_t i = 0; i < 8; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = i == 5 ? kernels::Workload::Blast
                        : kernels::Workload::Ssearch34;
        r.query = queryPool()[i == 7 ? 1 : 0];
        batch.push_back(std::move(r));
    }
    const std::vector<serve::Response> responses =
        engine.serveBatch(batch);
    EXPECT_EQ(engine.lastBatchUnique(), 3u);

    // Dedup must be invisible in the results: duplicates answer
    // exactly like their representative...
    ASSERT_EQ(responses.size(), 8u);
    for (const std::size_t dup : {1u, 2u, 3u, 4u, 6u}) {
        ASSERT_EQ(responses[dup].hits.size(),
                  responses[0].hits.size());
        for (std::size_t h = 0; h < responses[dup].hits.size();
             ++h) {
            EXPECT_EQ(responses[dup].hits[h].dbIndex,
                      responses[0].hits[h].dbIndex);
            EXPECT_EQ(responses[dup].hits[h].score,
                      responses[0].hits[h].score);
        }
    }
    // ...and every request still reports its own id and full scan
    // accounting.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(responses[i].id, i);
        EXPECT_EQ(responses[i].sequencesSearched, testDb().size());
    }

    // An all-distinct batch dedups nothing.
    const std::vector<serve::Request> stream = mixedStream(
        kernels::Workload::Ssearch34, kernels::Workload::Blast);
    (void)engine.serveBatch(stream);
    EXPECT_EQ(engine.lastBatchUnique(), stream.size());
}

TEST(ShardedDatabase, PartitionCoversEverySequenceOnce)
{
    for (const std::size_t shards : {1u, 3u, 4u, 7u}) {
        const serve::ShardedDatabase sharded(testDb(), shards);
        ASSERT_EQ(sharded.numShards(), shards);
        std::size_t expected_begin = 0;
        std::uint64_t residues = 0;
        for (std::size_t i = 0; i < shards; ++i) {
            const serve::Shard &s = sharded.shard(i);
            EXPECT_EQ(s.index, i);
            EXPECT_EQ(s.begin, expected_begin);
            EXPECT_LE(s.begin, s.end);
            expected_begin = s.end;
            residues += s.residues;
        }
        EXPECT_EQ(expected_begin, testDb().size());
        EXPECT_EQ(residues, testDb().totalResidues());
    }
}

TEST(ShardedDatabase, MoreShardsThanSequencesIsFine)
{
    bio::SequenceDatabase tiny;
    tiny.add(bio::Sequence("A", "", "ACDEFGH"));
    tiny.add(bio::Sequence("B", "", "KLMNPQR"));
    const serve::ShardedDatabase sharded(tiny, 5);
    EXPECT_EQ(sharded.numShards(), 5u);
    std::size_t covered = 0;
    for (std::size_t i = 0; i < 5; ++i)
        covered += sharded.shard(i).size();
    EXPECT_EQ(covered, tiny.size());
    EXPECT_EQ(sharded.shard(4).end, tiny.size());
}

TEST(TopKHeap, KeepsBestKWithStableTieBreak)
{
    serve::TopKHeap heap(3);
    auto hit = [](std::size_t idx, int score) {
        align::SearchHit h;
        h.dbIndex = idx;
        h.score = score;
        return h;
    };
    // Ties on score must keep the lower db index.
    heap.consider(hit(5, 10));
    heap.consider(hit(2, 10));
    heap.consider(hit(9, 30));
    heap.consider(hit(7, 10));
    heap.consider(hit(1, 5));

    const std::vector<align::SearchHit> ranked = heap.ranked();
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].dbIndex, 9u); // score 30
    EXPECT_EQ(ranked[1].dbIndex, 2u); // score 10, lowest index
    EXPECT_EQ(ranked[2].dbIndex, 5u);
}

TEST(TopKHeap, MergeEqualsGlobalRanking)
{
    auto hit = [](std::size_t idx, int score) {
        align::SearchHit h;
        h.dbIndex = idx;
        h.score = score;
        return h;
    };
    // Simulate two shards each keeping their local top 3.
    std::vector<align::SearchHit> all;
    for (std::size_t i = 0; i < 20; ++i)
        all.push_back(hit(i, static_cast<int>((i * 7) % 12) + 1));

    serve::TopKHeap left(3);
    serve::TopKHeap right(3);
    for (const align::SearchHit &h : all)
        (h.dbIndex < 10 ? left : right).consider(h);

    const std::vector<align::SearchHit> merged =
        serve::mergeRanked({left.ranked(), right.ranked()}, 3);

    std::vector<align::SearchHit> global = all;
    std::sort(global.begin(), global.end(),
              serve::hitRanksBefore);
    global.resize(3);
    ASSERT_EQ(merged.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(merged[i].dbIndex, global[i].dbIndex);
        EXPECT_EQ(merged[i].score, global[i].score);
    }
}

TEST(Percentile, QuantileInterpolatesLinearly)
{
    const std::vector<double> samples = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(core::quantile(samples, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(core::quantile(samples, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(core::quantile(samples, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(core::percentile(samples, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(core::percentile({}, 99.0), 0.0);
    EXPECT_DOUBLE_EQ(core::percentile({7.0}, 99.0), 7.0);
    // Order must not matter.
    EXPECT_DOUBLE_EQ(core::quantile({40, 10, 30, 20}, 0.5), 25.0);
}

TEST(LatencyRecorder, SummaryAndHistogram)
{
    serve::LatencyRecorder rec;
    EXPECT_TRUE(rec.histogram().empty());
    EXPECT_EQ(rec.summary().count, 0u);

    for (const double us : {100.0, 200.0, 400.0, 800.0})
        rec.record(us);
    const serve::LatencySummary s = rec.summary();
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.meanUs, 375.0);
    EXPECT_DOUBLE_EQ(s.maxUs, 800.0);
    EXPECT_DOUBLE_EQ(s.p50Us, 300.0);

    const std::vector<serve::LatencyBucket> hist =
        rec.histogram();
    ASSERT_FALSE(hist.empty());
    std::size_t total = 0;
    for (const serve::LatencyBucket &b : hist) {
        EXPECT_LT(b.loUs, b.hiUs);
        total += b.count;
    }
    EXPECT_EQ(total, 4u);
}

TEST(RequestStream, DeterministicAndWellFormed)
{
    serve::StreamSpec spec;
    spec.requests = 32;
    const std::vector<serve::Request> a =
        serve::makeRequestStream(spec, queryPool());
    const std::vector<serve::Request> b =
        serve::makeRequestStream(spec, queryPool());
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].query.id(), b[i].query.id());
    }
    // A different seed changes the stream.
    spec.seed ^= 0xFF;
    const std::vector<serve::Request> c =
        serve::makeRequestStream(spec, queryPool());
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].kind != c[i].kind
            || a[i].query.id() != c[i].query.id();
    EXPECT_TRUE(differs);

    EXPECT_THROW(serve::makeRequestStream(spec, {}),
                 std::invalid_argument);
}

} // namespace
