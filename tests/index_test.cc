/**
 * @file
 * Tests for the indexed serving tier (src/index + the serve-side
 * route): seed-index build/probe exactness, the on-disk container
 * round trip and its corruption/truncation rejection, epoch
 * handles, and the engine-level guarantee that indexed serving is
 * invisible in the results — ranked hit lists bit-identical to a
 * full scan across worker counts and shard counts, and hot
 * reloads that never lose a request.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "align/blast.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"
#include "index/container.hh"
#include "index/epoch.hh"
#include "index/seed_index.hh"
#include "obs/metrics.hh"
#include "serve/engine.hh"
#include "serve/loop.hh"
#include "serve/reload.hh"

namespace
{

using namespace bioarch;

/** Zipf-length planted-homolog database shared across tests. */
const bio::SequenceDatabase &
testDb()
{
    static const bio::SequenceDatabase db =
        bio::makeZipfDatabase(96);
    return db;
}

const std::vector<bio::Sequence> &
queryPool()
{
    static const std::vector<bio::Sequence> pool =
        bio::makeQuerySet();
    return pool;
}

/** A scratch file path that cleans itself up. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : _path((std::filesystem::temp_directory_path()
                 / ("bioarch_index_test_" + name
                    + std::to_string(::getpid()) + ".db"))
                    .string())
    {
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** BLAST request stream over the Table II queries. */
std::vector<serve::Request>
blastStream(std::size_t n)
{
    serve::StreamSpec spec;
    spec.requests = n;
    spec.kinds = {kernels::Workload::Blast};
    return serve::makeRequestStream(spec, queryPool());
}

void
expectSameHits(const std::vector<align::SearchHit> &got,
               const std::vector<align::SearchHit> &want,
               const std::string &context)
{
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dbIndex, want[i].dbIndex)
            << context << " hit " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << context << " hit " << i;
        // Bit-for-bit: same doubles, not just approximately.
        EXPECT_EQ(got[i].bitScore, want[i].bitScore)
            << context << " hit " << i;
        EXPECT_EQ(got[i].evalue, want[i].evalue)
            << context << " hit " << i;
    }
}

// ---------------------------------------------------------------
// Seed index: build + probe exactness
// ---------------------------------------------------------------

TEST(SeedIndex, BuildCountsEveryWord)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);

    // Every sequence of length >= w contributes len - w + 1
    // postings; shorter ones contribute none.
    std::uint64_t expected = 0;
    for (std::size_t s = 0; s < db.size(); ++s) {
        const std::size_t len = db[s].length();
        if (len + 1 > static_cast<std::size_t>(idx.wordSize()))
            expected += len - idx.wordSize() + 1;
    }
    EXPECT_EQ(idx.numPostings(), expected);

    // Posting lists are sorted by (seq, pos) and every posting
    // really is an occurrence of its word.
    for (std::uint32_t w = 0;
         w < static_cast<std::uint32_t>(idx.tableSize()); ++w) {
        const auto [pb, pe] = idx.postings(w);
        for (const index::Posting *p = pb; p != pe; ++p) {
            if (p != pb) {
                EXPECT_TRUE(p[-1].seq < p->seq
                            || (p[-1].seq == p->seq
                                && p[-1].pos < p->pos));
            }
            const bio::Sequence &seq = db[p->seq];
            ASSERT_LE(static_cast<std::size_t>(p->pos)
                          + static_cast<std::size_t>(idx.wordSize()),
                      seq.length());
            EXPECT_EQ(index::SeedIndex::encodeWord(
                          seq.residues().data() + p->pos,
                          idx.wordSize()),
                      w);
        }
    }
}

TEST(SeedIndex, PostingsInRangeMatchesFilter)
{
    const index::SeedIndex idx = index::SeedIndex::build(testDb());
    for (const std::uint32_t w : {0u, 137u, 4242u, 12166u}) {
        const auto [pb, pe] = idx.postings(w);
        const auto [rb, re] = idx.postingsInRange(w, 10, 40);
        for (const index::Posting *p = pb; p != pe; ++p) {
            const bool in = p->seq >= 10 && p->seq < 40;
            EXPECT_EQ(in, p >= rb && p < re);
        }
    }
}

/**
 * The load-bearing exactness property: the probe's candidate set
 * is exactly the set of sequences on which blastScan would try at
 * least one ungapped extension. (Rescoring only those provably
 * reproduces the full scan's results: non-candidates score 0.)
 */
TEST(SeedIndex, ProbeMatchesBlastScanTriggerOracle)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;

    for (const int t : {11, 14, 16}) {
        for (const bool two_hit : {true, false}) {
            align::BlastParams params;
            params.neighborThreshold = t;
            params.twoHit = two_hit;
            for (const std::size_t qi : {0ul, 2ul, 7ul}) {
                const bio::Sequence &q = queryPool()[qi];
                const align::NeighborhoodIndex nbhd(q, matrix,
                                                    params);
                std::vector<std::uint32_t> oracle;
                for (std::size_t s = 0; s < db.size(); ++s)
                    if (align::blastScan(nbhd, q, db[s], matrix,
                                         gaps, params)
                            .extensionsTried
                        > 0)
                        oracle.push_back(
                            static_cast<std::uint32_t>(s));
                const std::vector<std::uint32_t> probed =
                    index::probeCandidates(idx, nbhd, params, 0,
                                           db.size());
                EXPECT_EQ(probed, oracle)
                    << "T=" << t << " twoHit=" << two_hit
                    << " query=" << q.id();
            }
        }
    }
}

TEST(SeedIndex, ProbeShardsPartitionTheWholeRange)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    align::BlastParams params;
    params.neighborThreshold = 14;
    const align::NeighborhoodIndex nbhd(queryPool()[2],
                                        bio::blosum62(), params);

    const std::vector<std::uint32_t> whole =
        index::probeCandidates(idx, nbhd, params, 0, db.size());
    std::vector<std::uint32_t> stitched;
    const std::size_t cut1 = db.size() / 3;
    const std::size_t cut2 = 2 * db.size() / 3;
    for (const auto &[b, e] :
         {std::pair<std::size_t, std::size_t>{0, cut1},
          {cut1, cut2},
          {cut2, db.size()}}) {
        const std::vector<std::uint32_t> part =
            index::probeCandidates(idx, nbhd, params, b, e);
        stitched.insert(stitched.end(), part.begin(), part.end());
    }
    EXPECT_EQ(stitched, whole);
}

TEST(SeedIndex, ProbeRejectsWordSizeMismatch)
{
    const index::SeedIndex idx = index::SeedIndex::build(testDb());
    align::BlastParams params;
    params.wordSize = 2;
    const align::NeighborhoodIndex nbhd(queryPool()[0],
                                        bio::blosum62(), params);
    EXPECT_THROW(index::probeCandidates(idx, nbhd, params, 0, 1),
                 std::invalid_argument);
}

// ---------------------------------------------------------------
// Container: round trip + rejection
// ---------------------------------------------------------------

TEST(Container, RoundTripPreservesEverything)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    TempFile file("roundtrip");
    index::writeDatabaseFile(file.path(), db, &idx);

    const auto mapped = index::DatabaseFile::load(file.path());
    EXPECT_EQ(mapped->numSequences(), db.size());
    EXPECT_EQ(mapped->totalResidues(), db.totalResidues());
    ASSERT_TRUE(mapped->hasIndex());

    // The mapped index view is structurally identical to the
    // in-memory build (heads and posting lists, zero-copy).
    const index::SeedIndex view = mapped->indexView();
    EXPECT_FALSE(view.ownsStorage());
    EXPECT_TRUE(idx.equals(view));

    // The packed arena is byte-identical, and ids/descriptions
    // survive.
    ASSERT_EQ(db.totalResidues(), mapped->totalResidues());
    EXPECT_EQ(std::memcmp(db.packedResidues(), mapped->arena(),
                          static_cast<std::size_t>(
                              db.totalResidues())),
              0);
    for (const std::size_t s : {0ul, 17ul, 95ul}) {
        EXPECT_EQ(mapped->id(s), db[s].id());
        EXPECT_EQ(mapped->description(s), db[s].description());
    }

    // Materialize rebuilds a database that indexes identically.
    const bio::SequenceDatabase copy = mapped->materialize();
    ASSERT_EQ(copy.size(), db.size());
    EXPECT_TRUE(
        index::SeedIndex::build(copy).equals(idx));
}

TEST(Container, NoIndexRoundTrip)
{
    const bio::SequenceDatabase &db = testDb();
    TempFile file("noindex");
    index::writeDatabaseFile(file.path(), db, nullptr);
    const auto mapped = index::DatabaseFile::load(file.path());
    EXPECT_FALSE(mapped->hasIndex());
    EXPECT_EQ(mapped->numSequences(), db.size());
}

TEST(Container, CorruptedPayloadIsRejectedWithReason)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    TempFile file("corrupt");
    index::writeDatabaseFile(file.path(), db, &idx);

    // Flip one byte in the middle of the payload.
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out
                       | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(size / 2);
    f.write(&byte, 1);
    f.close();

    try {
        (void)index::DatabaseFile::load(file.path());
        FAIL() << "corrupted file loaded clean";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(file.path()), std::string::npos)
            << what;
        // Depending on which section the byte lands in, either
        // the checksum or a structural invariant trips — both
        // must say so.
        const bool descriptive =
            what.find("checksum") != std::string::npos
            || what.find("monotone") != std::string::npos
            || what.find("corrupt") != std::string::npos
            || what.find("range") != std::string::npos;
        EXPECT_TRUE(descriptive) << what;
    }
}

TEST(Container, TruncatedFileIsRejectedWithReason)
{
    const bio::SequenceDatabase &db = testDb();
    TempFile file("trunc");
    index::writeDatabaseFile(file.path(), db, nullptr);

    std::ifstream in(file.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes.resize(bytes.size() - 64);
    std::ofstream out(file.path(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();

    try {
        (void)index::DatabaseFile::load(file.path());
        FAIL() << "truncated file loaded clean";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("truncat"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Container, JunkFileIsRejected)
{
    TempFile file("junk");
    std::ofstream out(file.path(), std::ios::binary);
    // Big enough to clear the header-size check, so the rejection
    // is really the magic test.
    for (int i = 0; i < 64; ++i)
        out << "this is not a bioarch database\n";
    out.close();
    try {
        (void)index::DatabaseFile::load(file.path());
        FAIL() << "junk file loaded clean";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Container, MissingFileIsRejected)
{
    EXPECT_THROW((void)index::DatabaseFile::load(
                     "/nonexistent/bioarch.db"),
                 std::runtime_error);
}

// ---------------------------------------------------------------
// Epoch handles
// ---------------------------------------------------------------

TEST(Epoch, MakeEpochBuildsIndexOnRequest)
{
    const auto with = index::makeEpoch(testDb(), true, 7);
    EXPECT_EQ(with->epoch, 7u);
    ASSERT_TRUE(with->index.has_value());
    EXPECT_TRUE(with->index->equals(
        index::SeedIndex::build(testDb())));

    const auto without = index::makeEpoch(testDb(), false);
    EXPECT_FALSE(without->index.has_value());
}

TEST(Epoch, LoadEpochServesFromMappedFile)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    TempFile file("epoch");
    index::writeDatabaseFile(file.path(), db, &idx);

    const auto epoch = index::loadEpoch(file.path(), 3);
    EXPECT_EQ(epoch->epoch, 3u);
    EXPECT_EQ(epoch->db.size(), db.size());
    ASSERT_TRUE(epoch->index.has_value());
    EXPECT_FALSE(epoch->index->ownsStorage());
    EXPECT_TRUE(epoch->index->equals(idx));
}

// ---------------------------------------------------------------
// Engine-level: indexed route invisible in the results
// ---------------------------------------------------------------

/**
 * The tentpole determinism matrix: indexed vs full-scan ranked
 * hit lists must be bit-identical across jobs x shards, both at
 * the indexed tier's reference threshold (T=16: probes genuinely
 * filter) and at blastp's default (T=11: the selectivity gate
 * forces fallback on this workload).
 */
TEST(IndexedEngine, RankedHitsMatchFullScanAcrossSchedules)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    const std::vector<serve::Request> requests = blastStream(8);

    for (const int t : {16, 11}) {
        serve::EngineConfig base;
        base.blast.neighborThreshold = t;
        base.jobs = 1;
        base.shards = 1;
        serve::Engine reference(db, base);
        const std::vector<serve::Response> want =
            reference.serveBatch(requests);

        for (const unsigned jobs : {1u, 2u, 8u}) {
            for (const std::size_t shards : {1ul, 4ul}) {
                serve::EngineConfig cfg = base;
                cfg.jobs = jobs;
                cfg.shards = shards;
                cfg.seedIndex = &idx;
                serve::Engine engine(db, cfg);
                const std::vector<serve::Response> got =
                    engine.serveBatch(requests);
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t i = 0; i < got.size(); ++i)
                    expectSameHits(
                        got[i].hits, want[i].hits,
                        "T=" + std::to_string(t) + " jobs="
                            + std::to_string(jobs) + " shards="
                            + std::to_string(shards) + " req="
                            + std::to_string(i));
            }
        }
    }
}

TEST(IndexedEngine, SelectivityGateFallsBackAtDefaultT)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 2;
    cfg.seedIndex = &idx; // default T=11: probes mark nearly all
    serve::Engine engine(db, cfg);
    (void)engine.serveBatch(blastStream(4));
    const obs::Registry &m = engine.metrics();
    EXPECT_GT(m.counterValue("index_probe_total"), 0u);
    EXPECT_EQ(m.counterValue("index_fallback_scan_total"),
              m.counterValue("index_probe_total"));
}

TEST(IndexedEngine, PrefilterSkipsCountedButNotDeadline)
{
    const bio::SequenceDatabase &db = testDb();
    const index::SeedIndex idx = index::SeedIndex::build(db);

    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 4;
    cfg.blast.neighborThreshold = 16;
    cfg.seedIndex = &idx;

    serve::Request request;
    request.kind = kernels::Workload::Blast;
    request.query = queryPool()[2];

    // Expected per-shard candidate presence, from the probe run
    // the engine itself will do.
    const serve::PreparedQuery prepared(
        request, bio::blosum62(), cfg.gaps, cfg.fasta, cfg.blast);
    const std::vector<std::uint32_t> candidates =
        index::probeCandidates(idx, *prepared.neighborhoodIndex(),
                               prepared.blastParams(), 0,
                               db.size());
    ASSERT_LE(static_cast<double>(candidates.size()),
              cfg.indexMaxSelectivity
                  * static_cast<double>(db.size()))
        << "workload drifted: gate would fall back";

    serve::Engine engine(db, cfg);
    std::uint64_t expect_skipped = 0;
    std::uint64_t expect_scanned = 0;
    for (std::size_t s = 0; s < engine.sharded().numShards();
         ++s) {
        const serve::Shard &shard = engine.sharded().shard(s);
        const bool any = std::any_of(
            candidates.begin(), candidates.end(),
            [&shard](std::uint32_t c) {
                return c >= shard.begin && c < shard.end;
            });
        (any ? expect_scanned : expect_skipped) += 1;
    }
    ASSERT_GT(expect_skipped, 0u)
        << "workload drifted: every shard has candidates";

    const serve::Response resp = engine.serve(request);
    const obs::Registry &m = engine.metrics();
    // A prefilter skip is a complete answer: it lands in
    // serve_shards_skipped_total but never marks the response
    // deadline-expired.
    EXPECT_EQ(m.counterValue("serve_shards_skipped_total"),
              expect_skipped);
    EXPECT_EQ(m.counterValue("serve_shards_scanned_total"),
              expect_scanned);
    EXPECT_EQ(resp.shardsSkipped, 0u);
    EXPECT_FALSE(resp.deadlineExpired());

    // And the scanned-residue accounting is exactly the candidate
    // total.
    std::uint64_t cand_residues = 0;
    for (const std::uint32_t c : candidates)
        cand_residues += db[c].length();
    EXPECT_EQ(resp.residuesScanned, cand_residues);
    EXPECT_EQ(m.counterValue("index_candidates_total"),
              candidates.size());
}

// ---------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------

TEST(HotReload, SwapsEpochsMidRunWithoutLosingRequests)
{
    const bio::SequenceDatabase db2 =
        bio::makeZipfDatabase(96, 0xDBDBDBDC);

    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 2;
    cfg.blast.neighborThreshold = 16;
    serve::ReloadableEngine engine(
        index::makeEpoch(testDb(), true, 1), cfg);
    EXPECT_EQ(engine.epochNumber(), 1u);
    EXPECT_EQ(engine.metrics().gaugeValue("db_epoch"), 1.0);

    serve::LoopConfig lcfg;
    lcfg.queueCapacity = 64;
    serve::ServeLoop loop(engine, lcfg);

    const std::vector<serve::Request> requests = blastStream(12);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (i == requests.size() / 2)
            engine.reload(index::makeEpoch(db2, true, 2));
        (void)loop.submit(requests[i]);
    }
    loop.pumpAll();

    EXPECT_EQ(engine.epochNumber(), 2u);
    EXPECT_EQ(engine.metrics().gaugeValue("db_epoch"), 2.0);

    // Books balance across the swap: every offered request ended
    // in exactly one terminal state.
    const obs::Registry &m = engine.metrics();
    const std::uint64_t offered =
        m.counterValue("loop_offered_total");
    EXPECT_EQ(offered, requests.size());
    EXPECT_EQ(m.counterValue("loop_served_total")
                  + m.counterValue("loop_shed_queue_full_total")
                  + m.counterValue("loop_shed_deadline_total")
                  + m.counterValue("loop_shed_shutdown_total")
                  + m.counterValue("loop_deadline_expired_total")
                  + m.counterValue("loop_dropped_total"),
              offered);

    // Requests served after the swap see the *new* database:
    // their hits equal a full scan of db2.
    serve::EngineConfig ref_cfg = cfg;
    ref_cfg.jobs = 1;
    ref_cfg.shards = 1;
    serve::Engine reference(db2, ref_cfg);
    const serve::Response want = reference.serve(requests.back());
    const std::vector<serve::LoopResult> &results =
        loop.results();
    ASSERT_FALSE(results.empty());
    const serve::LoopResult &last = results.back();
    ASSERT_EQ(last.status, serve::LoopStatus::Served);
    ASSERT_EQ(last.response.id, requests.back().id);
    expectSameHits(last.response.hits, want.hits,
                   "post-reload request");
}

TEST(HotReload, ReloadableEngineServesLikePlainEngine)
{
    const bio::SequenceDatabase &db = testDb();
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 4;
    cfg.blast.neighborThreshold = 16;

    serve::ReloadableEngine reloadable(
        index::makeEpoch(db, true, 1), cfg);
    const index::SeedIndex idx = index::SeedIndex::build(db);
    serve::EngineConfig plain_cfg = cfg;
    plain_cfg.seedIndex = &idx;
    serve::Engine plain(db, plain_cfg);

    const std::vector<serve::Request> requests = blastStream(6);
    const std::vector<serve::Response> got =
        reloadable.serveBatch(requests, serve::BatchControl{});
    const std::vector<serve::Response> want =
        plain.serveBatch(requests);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameHits(got[i].hits, want[i].hits,
                       "request " + std::to_string(i));
}

} // namespace
