/**
 * @file
 * Pipeline resource-limit tests: each structural limit of the
 * modeled core (physical registers, predicted-branch cap, NFA
 * penalty, issue-queue capacity, store-to-load dependences,
 * front-end depth) is exercised in isolation with a crafted trace
 * and must produce the expected throughput effect and trauma.
 */

#include <gtest/gtest.h>

#include "sim/pipeline.hh"
#include "trace/tracer.hh"

namespace
{

using namespace bioarch;
using sim::SimConfig;
using trace::Reg;
using trace::Tracer;

SimConfig
idealMemoryConfig()
{
    SimConfig cfg;
    cfg.memory = sim::memoryInf();
    return cfg;
}

TEST(PipelineLimits, PhysicalRegistersBoundTheWindow)
{
    // Long-latency producers hold physical registers; with a tiny
    // register file the machine cannot cover the latency even
    // though the ROB could.
    Tracer t("regs");
    for (int i = 0; i < 4000; ++i)
        t.vcomplex(); // 4-cycle producers, all independent
    const trace::Trace tr = t.take();

    SimConfig small = idealMemoryConfig();
    small.core.vprRegs = 40; // ~6 usable past the architected 34
    SimConfig large = idealMemoryConfig();
    large.core.vprRegs = 128;
    // Equalize everything else that could bind.
    for (auto *c : {&small.core, &large.core}) {
        c->units[static_cast<int>(sim::FuClass::VCmplx)] = 4;
        c->issueQueue[static_cast<int>(sim::FuClass::VCmplx)] = 80;
    }

    const double ipc_small = sim::Simulator(small).run(tr).ipc();
    const double ipc_large = sim::Simulator(large).run(tr).ipc();
    EXPECT_GT(ipc_large, 1.5 * ipc_small);
}

TEST(PipelineLimits, PredictedBranchCapThrottlesFetch)
{
    // A branch-dense trace (every other instruction) with slow
    // resolution: the 12-predicted-branch cap limits lookahead.
    Tracer t("brcap");
    Reg r = t.vcomplex();
    for (int i = 0; i < 3000; ++i) {
        r = t.vcomplex({r}); // slow chain the branches depend on
        t.branch(i % 2 == 0, {r});
    }
    const trace::Trace tr = t.take();

    SimConfig tight = idealMemoryConfig();
    tight.bpred.kind = sim::PredictorKind::Perfect;
    tight.bpred.maxPredictedBranches = 1;
    SimConfig loose = tight;
    loose.bpred.maxPredictedBranches = 64;

    const sim::SimStats st = sim::Simulator(tight).run(tr);
    const sim::SimStats sl = sim::Simulator(loose).run(tr);
    EXPECT_GT(sl.ipc(), 1.2 * st.ipc());
    EXPECT_GT(st.traumas.get(sim::Trauma::IfBrch), 0u);
}

TEST(PipelineLimits, NfaMissesCostFetchBubbles)
{
    // Many distinct always-taken branches thrash a tiny BTB.
    Tracer t("nfa");
    for (int i = 0; i < 600; ++i) {
        // 64 distinct jump sites exercised round-robin... a static
        // loop emitting from one site would share a PC, so unroll
        // by hand over several textual sites.
        t.jump();
        t.alu();
        t.jump();
        t.alu();
        t.jump();
        t.alu();
    }
    const trace::Trace tr = t.take();

    SimConfig no_penalty = idealMemoryConfig();
    no_penalty.bpred.nfaMissPenalty = 0;
    SimConfig harsh = idealMemoryConfig();
    harsh.bpred.nfaMissPenalty = 12;
    harsh.bpred.btbEntries = 2; // thrash even 3 jump sites
    harsh.bpred.btbAssociativity = 1;

    const sim::SimStats fast =
        sim::Simulator(no_penalty).run(tr);
    const sim::SimStats slow = sim::Simulator(harsh).run(tr);
    EXPECT_GT(slow.cycles, fast.cycles);
    EXPECT_GT(slow.traumas.get(sim::Trauma::IfNfa), 0u);
    EXPECT_GT(slow.btbMisses, 100u);
}

TEST(PipelineLimits, IssueQueueFullBlocksDispatch)
{
    // A long-latency serial chain fills the VCMPLX queue; younger
    // independent work behind it cannot dispatch (in-order
    // dispatch) -> diq_* traumas.
    Tracer t("qfull");
    Reg r = t.vcomplex();
    for (int i = 0; i < 500; ++i) {
        r = t.vcomplex({r});
        for (int k = 0; k < 8; ++k)
            t.alu();
    }
    const trace::Trace tr = t.take();

    SimConfig cfg = idealMemoryConfig();
    cfg.core.issueQueue[static_cast<int>(sim::FuClass::VCmplx)] =
        4;
    const sim::SimStats stats = sim::Simulator(cfg).run(tr);
    EXPECT_GT(stats.traumas.get(sim::Trauma::DiqVcmplx), 0u);
}

TEST(PipelineLimits, StoreToLoadDependenceSerializes)
{
    // load <- store <- load ... through one address: the machine
    // must serialize on the store queue (no forwarding), and the
    // same trace with *disjoint* addresses must run much faster.
    auto make = [](bool aliased) {
        Tracer t(aliased ? "alias" : "noalias");
        const isa::Addr buf = t.alloc(1 << 16, "buf");
        Reg v = t.alu();
        for (int i = 0; i < 2000; ++i) {
            const isa::Addr addr = aliased
                ? buf
                : buf + static_cast<isa::Addr>(i % 1024) * 64;
            Reg x = t.load(addr, 8, {});
            v = t.alu({x, v});
            t.store(addr, 8, v, {});
        }
        return t.take();
    };

    SimConfig cfg = idealMemoryConfig();
    const sim::SimStats aliased =
        sim::Simulator(cfg).run(make(true));
    const sim::SimStats disjoint =
        sim::Simulator(cfg).run(make(false));
    EXPECT_GT(disjoint.ipc(), 1.5 * aliased.ipc());
    EXPECT_GT(aliased.traumas.get(sim::Trauma::StData)
                  + aliased.traumas.get(sim::Trauma::RgMem),
              0u);
}

TEST(PipelineLimits, FrontEndDepthSetsFlushCost)
{
    // Unpredictable branches: a deeper decode pipe makes each
    // flush costlier.
    Tracer t("depth");
    Reg r = t.alu();
    for (int i = 0; i < 4000; ++i) {
        r = t.alu({r});
        t.branch((i * 2654435761u >> 11) & 1, {r});
    }
    const trace::Trace tr = t.take();

    SimConfig shallow = idealMemoryConfig();
    shallow.core.frontEndDepth = 1;
    SimConfig deep = idealMemoryConfig();
    deep.core.frontEndDepth = 16;

    const double ipc_shallow =
        sim::Simulator(shallow).run(tr).ipc();
    const double ipc_deep = sim::Simulator(deep).run(tr).ipc();
    EXPECT_GT(ipc_shallow, 1.3 * ipc_deep);
}

TEST(PipelineLimits, MshrLimitGatesMissParallelism)
{
    // Independent missing loads: more MSHRs = more memory-level
    // parallelism.
    Tracer t("mshr");
    const isa::Addr buf = t.alloc(32u << 20, "big");
    for (int i = 0; i < 1500; ++i)
        t.load(buf + static_cast<isa::Addr>(i) * 4096, 4, {});
    const trace::Trace tr = t.take();

    SimConfig one;
    one.memory = sim::memoryMe1();
    one.core.maxOutstandingMisses = 1;
    SimConfig many = one;
    many.core.maxOutstandingMisses = 16;

    const double ipc_one = sim::Simulator(one).run(tr).ipc();
    const double ipc_many = sim::Simulator(many).run(tr).ipc();
    EXPECT_GT(ipc_many, 3.0 * ipc_one);
}

TEST(PipelineLimits, RetireWidthCapsIpc)
{
    Tracer t("retire");
    for (int i = 0; i < 20000; ++i) {
        t.alu();
        t.vsimple();
        t.vperm();
        t.other();
    }
    const trace::Trace tr = t.take();

    SimConfig cfg = idealMemoryConfig();
    cfg.core = sim::core16Way();
    cfg.core.retireWidth = 2;
    const double ipc = sim::Simulator(cfg).run(tr).ipc();
    EXPECT_LE(ipc, 2.01);
    EXPECT_GT(ipc, 1.8);
}

} // namespace
