/**
 * @file
 * Tests for the instrumented kernel twins: every twin must compute
 * exactly the same scores as its untraced library counterpart (the
 * trace really is the algorithm), and the traces must reproduce the
 * paper's instruction-mix and size characteristics (Fig. 1,
 * Table III) in shape.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "bio/scoring.hh"
#include "kernels/factory.hh"
#include "trace/trace.hh"

namespace
{

using namespace bioarch;
using kernels::TraceInput;
using kernels::TraceSpec;
using kernels::Workload;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

/** Small shared working set (built once; tracing all 5 apps). */
const TraceInput &
smallInput()
{
    static const TraceInput input = [] {
        TraceSpec spec;
        spec.dbSequences = 16;
        return kernels::makeTraceInput(spec);
    }();
    return input;
}

TEST(Workloads, NamesMatchPaper)
{
    EXPECT_EQ(kernels::workloadName(Workload::Ssearch34),
              "SSEARCH34");
    EXPECT_EQ(kernels::workloadName(Workload::SwVmx128),
              "SW_vmx128");
    EXPECT_EQ(kernels::workloadName(Workload::Blast), "BLAST");
}

TEST(Workloads, TraceInputUsesRequestedQuery)
{
    const TraceInput &input = smallInput();
    EXPECT_EQ(input.query.id(), "P14942");
    EXPECT_EQ(input.query.length(), 222u);
    EXPECT_EQ(input.db.size(), 16u);
}

TEST(SsearchTraced, ScoresEqualLibrary)
{
    const TraceInput &input = smallInput();
    const kernels::TracedRun run =
        kernels::traceWorkload(Workload::Ssearch34, input);
    const align::QueryProfile profile(input.query, kMat);
    ASSERT_EQ(run.scores.size(), input.db.size());
    for (std::size_t i = 0; i < input.db.size(); ++i) {
        const align::LocalScore ref =
            align::ssearchScan(profile, input.db[i], kGaps);
        EXPECT_EQ(run.scores[i], ref.score) << "sequence " << i;
    }
}

TEST(SwVmxTraced, ScoresEqualSmithWatermanBothWidths)
{
    const TraceInput &input = smallInput();
    const kernels::TracedRun v128 =
        kernels::traceWorkload(Workload::SwVmx128, input);
    const kernels::TracedRun v256 =
        kernels::traceWorkload(Workload::SwVmx256, input);
    ASSERT_EQ(v128.scores.size(), input.db.size());
    ASSERT_EQ(v256.scores.size(), input.db.size());
    for (std::size_t i = 0; i < input.db.size(); ++i) {
        const int ref = align::smithWatermanScore(
            input.query, input.db[i], kMat, kGaps).score;
        EXPECT_EQ(v128.scores[i], ref) << "sequence " << i;
        EXPECT_EQ(v256.scores[i], ref) << "sequence " << i;
    }
}

TEST(FastaTraced, ScoresEqualLibrary)
{
    const TraceInput &input = smallInput();
    const kernels::TracedRun run =
        kernels::traceWorkload(Workload::Fasta34, input);
    const align::KtupIndex index(input.query, 2);
    ASSERT_EQ(run.scores.size(), input.db.size());
    for (std::size_t i = 0; i < input.db.size(); ++i) {
        const align::FastaScores ref = align::fastaScan(
            index, input.query, input.db[i], kMat, kGaps, {});
        EXPECT_EQ(run.scores[i], std::max(ref.opt, ref.initn))
            << "sequence " << i;
    }
}

TEST(BlastTraced, ScoresEqualLibrary)
{
    const TraceInput &input = smallInput();
    const kernels::TracedRun run =
        kernels::traceWorkload(Workload::Blast, input);
    const align::BlastParams params;
    const align::NeighborhoodIndex index(input.query, kMat, params);
    ASSERT_EQ(run.scores.size(), input.db.size());
    for (std::size_t i = 0; i < input.db.size(); ++i) {
        const align::BlastScores ref = align::blastScan(
            index, input.query, input.db[i], kMat, kGaps, params);
        EXPECT_EQ(run.scores[i], ref.score) << "sequence " << i;
    }
}

// ---- Fig. 1: instruction-mix shape ------------------------------

TEST(Mix, SsearchMatchesPaperShape)
{
    const trace::InstructionMix mix =
        kernels::traceWorkload(Workload::Ssearch34, smallInput())
            .trace.mix();
    // Paper: ~25% ctrl, ~22% loads, ~44% integer ALU.
    EXPECT_NEAR(mix.ctrlFraction(), 0.25, 0.08);
    EXPECT_NEAR(mix.loadFraction(), 0.22, 0.08);
    EXPECT_NEAR(mix.fraction(isa::OpClass::IntAlu), 0.44, 0.10);
    // No vector work at all in the scalar app.
    EXPECT_EQ(mix.count(isa::OpClass::VecSimple), 0u);
    EXPECT_EQ(mix.count(isa::OpClass::VecPerm), 0u);
}

TEST(Mix, SimdAppsHaveFewBranchesAndMuchVectorWork)
{
    const trace::InstructionMix m128 =
        kernels::traceWorkload(Workload::SwVmx128, smallInput())
            .trace.mix();
    const trace::InstructionMix m256 =
        kernels::traceWorkload(Workload::SwVmx256, smallInput())
            .trace.mix();
    // Paper: ~2% ctrl for the SIMD apps, ~16-17% loads.
    EXPECT_LT(m128.ctrlFraction(), 0.05);
    EXPECT_LT(m256.ctrlFraction(), 0.05);
    EXPECT_NEAR(m128.loadFraction(), 0.16, 0.07);
    EXPECT_NEAR(m256.loadFraction(), 0.17, 0.07);
    // VI is a leading category in vmx128 (paper: 21%) and its share
    // drops in vmx256 (paper: 14%) while ialu's share rises.
    EXPECT_NEAR(m128.fraction(isa::OpClass::VecSimple), 0.21, 0.08);
    EXPECT_LT(m256.fraction(isa::OpClass::VecSimple),
              m128.fraction(isa::OpClass::VecSimple));
    EXPECT_GT(m256.fraction(isa::OpClass::IntAlu),
              m128.fraction(isa::OpClass::IntAlu));
    // Plenty of permute work (alignment, shifts, fixup).
    EXPECT_GT(m128.fraction(isa::OpClass::VecPerm), 0.10);
}

TEST(Mix, FastaMatchesPaperShape)
{
    const trace::InstructionMix mix =
        kernels::traceWorkload(Workload::Fasta34, smallInput())
            .trace.mix();
    // Paper: ~18% ctrl, ~17% loads, ~48% integer ALU.
    EXPECT_NEAR(mix.ctrlFraction(), 0.18, 0.08);
    EXPECT_NEAR(mix.loadFraction(), 0.17, 0.08);
    EXPECT_NEAR(mix.fraction(isa::OpClass::IntAlu), 0.48, 0.12);
}

TEST(Mix, BlastMatchesPaperShape)
{
    const trace::InstructionMix mix =
        kernels::traceWorkload(Workload::Blast, smallInput())
            .trace.mix();
    // Paper: ~16% ctrl, ~21% loads, ~54% integer ALU.
    EXPECT_NEAR(mix.ctrlFraction(), 0.16, 0.08);
    EXPECT_NEAR(mix.loadFraction(), 0.21, 0.08);
    EXPECT_NEAR(mix.fraction(isa::OpClass::IntAlu), 0.54, 0.12);
}

// ---- Table III: trace-size ordering and ratios -------------------

TEST(TraceSizes, OrderingMatchesTableIII)
{
    const TraceInput &input = smallInput();
    const std::size_t ssearch =
        kernels::traceWorkload(Workload::Ssearch34, input)
            .trace.size();
    const std::size_t v128 =
        kernels::traceWorkload(Workload::SwVmx128, input)
            .trace.size();
    const std::size_t v256 =
        kernels::traceWorkload(Workload::SwVmx256, input)
            .trace.size();
    const std::size_t fasta =
        kernels::traceWorkload(Workload::Fasta34, input)
            .trace.size();
    const std::size_t blast =
        kernels::traceWorkload(Workload::Blast, input).trace.size();

    // SSEARCH > vmx128 > vmx256 > FASTA > BLAST (Table III).
    EXPECT_GT(ssearch, v128);
    EXPECT_GT(v128, v256);
    EXPECT_GT(v256, fasta);
    EXPECT_GT(fasta, blast);

    // vmx256 / vmx128 ~ 0.83 in the paper ("the instruction
    // reduction using 256-bit SIMD (18% on average)").
    const double r = static_cast<double>(v256)
        / static_cast<double>(v128);
    EXPECT_NEAR(r, 0.83, 0.08);

    // vmx128 / SSEARCH ~ 0.247 in Table III.
    const double r128 = static_cast<double>(v128)
        / static_cast<double>(ssearch);
    EXPECT_NEAR(r128, 0.247, 0.10);
}

TEST(TracedRuns, BranchDensityIsDataDependent)
{
    // The scalar apps' conditional branches must not be constant
    // direction (that would make them trivially predictable and
    // break the paper's branch-prediction story).
    const trace::Trace tr =
        kernels::traceWorkload(Workload::Ssearch34, smallInput())
            .trace;
    std::uint64_t taken = 0;
    std::uint64_t cond = 0;
    for (const isa::Inst &inst : tr) {
        if (inst.isBranch() && inst.conditional) {
            ++cond;
            taken += inst.taken;
        }
    }
    ASSERT_GT(cond, 0u);
    const double taken_rate =
        static_cast<double>(taken) / static_cast<double>(cond);
    EXPECT_GT(taken_rate, 0.10);
    EXPECT_LT(taken_rate, 0.90);
}

TEST(TracedRuns, WorkingSetsMatchApplicationCharacter)
{
    // The BLAST image must be dominated by the neighborhood table
    // (>= 48 KB of heads alone); SSEARCH's live arrays are small.
    // We check the static footprint through allocatedBytes by
    // regenerating with tiny databases so the db region is small.
    TraceSpec spec;
    spec.dbSequences = 2;
    const TraceInput input = kernels::makeTraceInput(spec);
    // (Indirect check: BLAST's trace must touch far more distinct
    // cache lines than SSEARCH's.)
    const trace::Trace blast =
        kernels::traceWorkload(Workload::Blast, input).trace;
    const trace::Trace ssearch =
        kernels::traceWorkload(Workload::Ssearch34, input).trace;
    auto distinct_lines = [](const trace::Trace &tr) {
        std::unordered_set<isa::Addr> lines;
        for (const isa::Inst &inst : tr)
            if (inst.isMemory())
                lines.insert(inst.addr / 128);
        return lines.size();
    };
    EXPECT_GT(distinct_lines(blast), distinct_lines(ssearch));
}

} // namespace
